//! `exp` from the workspace root — same binary as `ofd-bench`'s `exp`, so
//! `cargo run --release --bin exp` works without `-p ofd-bench`.

use std::process::ExitCode;

fn main() -> ExitCode {
    ofd_bench::cli::exp_main()
}
