//! `fastofd` — command-line front end for OFD checking, discovery and
//! cleaning over CSV data and text-format ontologies.
//!
//! ```text
//! fastofd generate --preset clinical --rows 5000 --err 3 --inc 4 \
//!                  --out data.csv --onto-out onto.txt
//! fastofd discover --data data.csv --ontology onto.txt [--kappa 0.9]
//!                  [--theta N] [--max-level L] [--threads T]
//!                  [--partition-cache-mib M] [--sample-rounds N]
//!                  [--shards K | --shard-rows R]
//! fastofd check    --data data.csv --ontology onto.txt --ofd "CC->CTRY"
//! fastofd clean    --data data.csv --ontology onto.txt \
//!                  --ofd "CC->CTRY" --ofd "SYMP,DIAG->MED" \
//!                  [--tau 0.65] [--beam B] [--out repaired.csv]
//!                  [--onto-out repaired-onto.txt]
//! fastofd serve    [--addr 127.0.0.1:8080] [--workers N] [--queue-cap N]
//!                  [--budget-ms N] [--rss-high-water-mib N]
//!                  [--breaker-failures N] [--breaker-cooldown-ms N]
//!                  [--checkpoint-dir DIR]
//! ```
//!
//! `serve` also exposes the streaming endpoints `POST /v1/append` and
//! `POST /v1/retract`: tuple inserts, deletes and consequent-cell updates
//! are maintained incrementally against a per-dataset session (delta
//! stripped partitions — only the touched equivalence classes are
//! re-verified), checkpointed under `--checkpoint-dir` so sessions
//! survive restarts and replica failover.
//!
//! Exit codes: `0` success, `1` error (bad flags, I/O failure, violated
//! `check`), `3` the run finished with a sound-but-INCOMPLETE partial
//! result (guard limit, drain or injected fault) — scripts can tell
//! partial from complete without parsing output.

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

use fastofd::clean::{
    enforce_approximate, explain_violations, ofd_clean, render_report, OfdCleanConfig,
};
use fastofd::core::{
    silence_injected_panics, CheckpointOptions, ExecGuard, FaultPlan, GuardConfig, Obs, Ofd,
    Relation, Schema, SnapshotStore, Validator,
};
use fastofd::datagen::{census, clinical, csv, demo_dataset, kiva, PresetConfig};
use fastofd::discovery::{DiscoveryOptions, FastOfd};
use fastofd::ontology::{parse_ontology, write_ontology, Ontology};

/// Exit code for a run that finished with a sound-but-partial
/// (`INCOMPLETE`) result: everything printed/written is valid, but a
/// guard limit or interrupt stopped the run before completion.
const EXIT_INCOMPLETE: u8 = 3;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// `SUCCESS` for a complete run, [`EXIT_INCOMPLETE`] otherwise.
fn completion_code(complete: bool) -> ExitCode {
    if complete {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_INCOMPLETE)
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut flags: HashMap<String, Vec<String>> = HashMap::new();
    let mut current: Option<String> = None;
    for arg in args {
        if let Some(name) = arg.strip_prefix("--") {
            current = Some(name.to_owned());
            flags.entry(name.to_owned()).or_default();
        } else if let Some(name) = &current {
            flags.get_mut(name).expect("flag registered").push(arg);
            current = None;
        } else {
            return Err(format!("unexpected positional argument {arg:?}"));
        }
    }
    let single = |name: &str| -> Option<&str> {
        flags.get(name).and_then(|v| v.first()).map(String::as_str)
    };
    // Execution limits shared by every long-running command: the guard is
    // probed at every checkpoint and the command reports a sound partial
    // result marked INCOMPLETE when a limit trips.
    let guard = guard_from_flags(&flags)?;
    // Observability: `--metrics-out <path>` writes the metrics snapshot as
    // JSON, `--trace` prints the span tree to stderr. The handle is
    // disabled (zero-cost) unless one of the two flags is present.
    let obs = obs_from_flags(&flags);
    // Crash safety: `--checkpoint-dir DIR` snapshots resumable state at
    // every completed level/phase boundary; `--resume` restarts from the
    // newest valid snapshot. `--faults SPEC` (or FASTOFD_FAULTS) installs
    // a seeded fault-injection plan — testing only.
    let faults = faults_from_flags(&flags)?;
    if faults.is_active() {
        silence_injected_panics();
    }
    let checkpoint = checkpoint_from_flags(&flags, &faults)?;

    match command.as_str() {
        "generate" => {
            let preset = single("preset").unwrap_or("clinical");
            let rows: usize = single("rows")
                .unwrap_or("2000")
                .parse()
                .map_err(|_| "--rows expects an integer")?;
            let err_pct: f64 = single("err").unwrap_or("0").parse().map_err(|_| "--err")?;
            let inc_pct: f64 = single("inc").unwrap_or("0").parse().map_err(|_| "--inc")?;
            let seed: u64 = single("seed").unwrap_or("42").parse().map_err(|_| "--seed")?;
            let cfg = PresetConfig {
                n_rows: rows,
                seed,
                ..PresetConfig::default()
            };
            let mut ds = match preset {
                "clinical" => clinical(&cfg),
                "kiva" => kiva(&cfg),
                "census" => census(&PresetConfig { n_attrs: 11, ..cfg }),
                // Real-world vocabulary: ISO codes, country-name variants,
                // currencies, generic/brand drug names.
                "demo" => demo_dataset(rows, seed),
                other => return Err(format!("unknown preset {other:?}")),
            };
            if inc_pct > 0.0 {
                ds.degrade_ontology(inc_pct / 100.0, seed);
            }
            if err_pct > 0.0 {
                ds.inject_errors(err_pct / 100.0, seed);
            }
            let out = single("out").unwrap_or("data.csv");
            fs::write(out, csv::write_csv(&ds.relation)).map_err(|e| e.to_string())?;
            let onto_out = single("onto-out").unwrap_or("ontology.txt");
            fs::write(onto_out, write_ontology(&ds.ontology)).map_err(|e| e.to_string())?;
            println!(
                "wrote {rows} rows to {out}, {} senses to {onto_out} ({} errors injected, {} ontology values removed)",
                ds.ontology.len(),
                ds.injected.len(),
                ds.removed_values.len()
            );
            println!("planted OFDs:");
            for o in &ds.ofds {
                println!("  {}", o.display(ds.relation.schema()));
            }
            Ok(ExitCode::SUCCESS)
        }
        "discover" => {
            let (rel, onto) = load(&single("data"), &single("ontology"))?;
            let mut opts = DiscoveryOptions::new();
            if let Some(kappa) = single("kappa") {
                opts = opts.min_support(kappa.parse().map_err(|_| "--kappa expects a float")?);
            }
            if let Some(theta) = single("theta") {
                opts = opts.kind(fastofd::core::OfdKind::Inheritance {
                    theta: theta.parse().map_err(|_| "--theta expects an integer")?,
                });
            }
            if let Some(level) = single("max-level") {
                opts = opts.max_level(level.parse().map_err(|_| "--max-level")?);
            }
            if let Some(t) = single("threads") {
                opts = opts.threads(t.parse().map_err(|_| "--threads")?);
            }
            if let Some(mib) = single("partition-cache-mib") {
                opts = opts.partition_cache_mib(
                    mib.parse()
                        .map_err(|_| "--partition-cache-mib expects MiB (0 disables)")?,
                );
            }
            if let Some(rounds) = single("sample-rounds") {
                opts = opts.sample_rounds(
                    rounds
                        .parse()
                        .map_err(|_| "--sample-rounds expects an integer (0 disables)")?,
                );
            }
            if let Some(rows) = single("shard-rows") {
                opts = opts.shard_rows(
                    rows.parse()
                        .map_err(|_| "--shard-rows expects a row count (0 disables)")?,
                );
            }
            if let Some(n) = single("shards") {
                opts = opts
                    .shards(n.parse().map_err(|_| "--shards expects an integer (0 disables)")?);
            }
            opts = opts.guard(guard).obs(obs.clone()).faults(faults.clone());
            if let Some(ck) = checkpoint.clone() {
                opts = opts.checkpoint(ck);
            }
            let out = FastOfd::new(&rel, &onto).options(opts).run();
            print!("{}", out.display(rel.schema()));
            if let Some(level) = out.resumed_from_level {
                eprintln!("resumed from checkpoint: levels 1..={level} restored");
            }
            if out.snapshots_written > 0 || out.snapshot_errors > 0 {
                eprintln!(
                    "checkpoints: {} written, {} failed",
                    out.snapshots_written, out.snapshot_errors
                );
            }
            eprintln!(
                "{} minimal OFDs in {:.2?} ({} candidates verified)",
                out.len(),
                out.stats.elapsed,
                out.stats.total_verified()
            );
            if let Some(path) = single("out") {
                let text = sigma_to_text(rel.schema(), out.ofds());
                fs::write(path, text).map_err(|e| e.to_string())?;
                eprintln!("wrote Σ to {path} (load with --ofds-file)");
            }
            emit_obs(&obs, &flags)?;
            Ok(completion_code(out.complete))
        }
        "check" => {
            let (rel, onto) = load(&single("data"), &single("ontology"))?;
            let ofds = parse_ofds(&flags, rel.schema())?;
            if ofds.is_empty() {
                return Err("check requires at least one --ofd".into());
            }
            let validator = Validator::new(&rel, &onto);
            let mut all_ok = true;
            for ofd in &ofds {
                let v = validator.check(ofd);
                all_ok &= v.satisfied();
                println!(
                    "{}: {} (support {:.4}, {} violating classes)",
                    ofd.display(rel.schema()),
                    if v.satisfied() { "SATISFIED" } else { "VIOLATED" },
                    v.support(),
                    v.violation_count()
                );
                for o in v.violations().take(5) {
                    println!(
                        "  class@t{}: {}/{} tuples consistent",
                        o.representative, o.covered, o.size
                    );
                }
            }
            if !all_ok && flags.contains_key("explain") {
                println!();
                for e in explain_violations(&rel, &onto, &ofds) {
                    print!("{}", e.render());
                }
            }
            if all_ok {
                Ok(ExitCode::SUCCESS)
            } else {
                Err("one or more OFDs violated".into())
            }
        }
        "clean" => {
            let (rel, onto) = load(&single("data"), &single("ontology"))?;
            let ofds = parse_ofds(&flags, rel.schema())?;
            if ofds.is_empty() {
                return Err("clean requires at least one --ofd".into());
            }
            let mut config = OfdCleanConfig::default();
            if let Some(tau) = single("tau") {
                config.tau = tau.parse().map_err(|_| "--tau expects a float")?;
            }
            if let Some(beam) = single("beam") {
                config.beam = Some(beam.parse().map_err(|_| "--beam expects an integer")?);
            }
            config.guard = guard;
            config.obs = obs.clone();
            config.checkpoint = checkpoint.clone();
            let result = ofd_clean(&rel, &onto, &ofds, &config);
            if let Some(phase) = result.resumed_from_phase {
                eprintln!("resumed from checkpoint: phases 1..={phase} restored");
            }
            if result.snapshots_written > 0 || result.snapshot_errors > 0 {
                eprintln!(
                    "checkpoints: {} written, {} failed",
                    result.snapshots_written, result.snapshot_errors
                );
            }
            println!(
                "satisfied: {} — {} ontology insertion(s), {} cell repair(s), {} sense reassignment(s)",
                result.satisfied,
                result.ontology_dist(),
                result.data_dist(),
                result.reassignments
            );
            if let Some(i) = result.interrupt {
                println!("INCOMPLETE: interrupted ({i}); repairs above are sound but partial");
            }
            for (v, s) in &result.ontology_adds {
                println!(
                    "  S' += {:?} under {:?}",
                    result.repaired.pool().resolve(*v),
                    result
                        .repaired_ontology
                        .concept(*s)
                        .map(|c| c.label().to_owned())
                        .unwrap_or_default()
                );
            }
            for r in result.data_repairs.iter().take(20) {
                println!(
                    "  I'[{}][{}]: {:?} -> {:?}",
                    r.row,
                    result.repaired.schema().name(r.attr),
                    r.old,
                    r.new
                );
            }
            if result.data_repairs.len() > 20 {
                println!("  … {} more repairs", result.data_repairs.len() - 20);
            }
            if let Some(out) = single("out") {
                fs::write(out, csv::write_csv(&result.repaired)).map_err(|e| e.to_string())?;
                println!("wrote repaired data to {out}");
            }
            if let Some(onto_out) = single("onto-out") {
                fs::write(onto_out, write_ontology(&result.repaired_ontology))
                    .map_err(|e| e.to_string())?;
                println!("wrote repaired ontology to {onto_out}");
            }
            if let Some(report_path) = single("report") {
                let report = render_report(&rel, &onto, &ofds, &result);
                fs::write(report_path, report).map_err(|e| e.to_string())?;
                println!("wrote repair report to {report_path}");
            }
            emit_obs(&obs, &flags)?;
            Ok(completion_code(result.complete))
        }
        "enforce" => {
            // §5: discover κ-approximate OFDs on the (dirty) data, then
            // repair until they hold exactly.
            let (rel, onto) = load(&single("data"), &single("ontology"))?;
            let kappa: f64 = single("kappa")
                .unwrap_or("0.9")
                .parse()
                .map_err(|_| "--kappa expects a float")?;
            let max_level: Option<usize> = match single("max-level") {
                Some(l) => Some(l.parse().map_err(|_| "--max-level")?),
                None => Some(3),
            };
            let mut config = OfdCleanConfig::default();
            if let Some(tau) = single("tau") {
                config.tau = tau.parse().map_err(|_| "--tau expects a float")?;
            }
            config.guard = guard;
            config.obs = obs.clone();
            config.checkpoint = checkpoint.clone();
            let result = enforce_approximate(&rel, &onto, kappa, max_level, &config);
            println!("discovered {} repairable rules at κ = {kappa}:", result.sigma.len());
            for o in &result.sigma {
                println!("  {}", o.display(rel.schema()));
            }
            println!(
                "repair: satisfied={} — {} ontology insertion(s), {} cell repair(s); all rules exact: {}",
                result.clean.satisfied,
                result.clean.ontology_dist(),
                result.clean.data_dist(),
                result.all_exact()
            );
            if let Some(i) = result.clean.interrupt {
                println!("INCOMPLETE: interrupted ({i}); repairs above are sound but partial");
            }
            if let Some(out) = single("out") {
                fs::write(out, csv::write_csv(&result.clean.repaired))
                    .map_err(|e| e.to_string())?;
                println!("wrote repaired data to {out}");
            }
            emit_obs(&obs, &flags)?;
            Ok(completion_code(result.clean.complete))
        }
        "serve" if flags.contains_key("router") => {
            // Router mode: this process runs no engines. It spawns and
            // supervises `--workers N` single-server worker processes
            // (each `fastofd serve` on an OS-assigned port, re-execed
            // from this binary), consistent-hash routes requests by
            // dataset fingerprint, fails over to the next replica on
            // connect/5xx errors, and respawns crashed workers behind a
            // restart-storm breaker. Give the fleet a shared
            // `--checkpoint-dir` so any replica can adopt a dead
            // sibling's checkpoints and the dataset catalog is
            // fleet-wide.
            let workers: usize = match single("workers") {
                Some(n) => n.parse().map_err(|_| "--workers expects an integer")?,
                None => 2,
            };
            let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
            let mut worker_args: Vec<String> =
                vec!["serve".into(), "--addr".into(), "127.0.0.1:0".into()];
            // Workers inherit every serve flag that shapes job execution;
            // `--workers` is the *process* count here, so per-process
            // thread count travels as `--worker-threads`.
            for flag in [
                "queue-cap",
                "budget-ms",
                "max-body-mib",
                "rss-high-water-mib",
                "breaker-failures",
                "breaker-cooldown-ms",
                "retry-after-ms",
                "checkpoint-dir",
                "faults",
                "head-timeout-ms",
                "peer-timeout-ms",
                // Local workers learn the remote hosts too, so their
                // catalog read-repair and checkpoint shipping can reach
                // across the fleet.
                "peers",
            ] {
                if let Some(v) = single(flag) {
                    worker_args.push(format!("--{flag}"));
                    worker_args.push(v.to_owned());
                }
            }
            if let Some(n) = single("worker-threads") {
                worker_args.push("--workers".into());
                worker_args.push(n.to_owned());
            }
            let remote = match single("peers") {
                Some(spec) => fastofd::serve::parse_peer_list(spec)
                    .map_err(|e| format!("--peers: {e}"))?,
                None => Vec::new(),
            };
            let n_remote = remote.len();
            let obs_handle = Obs::enabled();
            let supervisor = fastofd::serve::Supervisor::start(fastofd::serve::SupervisorConfig {
                workers,
                remote,
                obs: obs_handle.clone(),
                ..fastofd::serve::SupervisorConfig::new(fastofd::serve::WorkerSpec {
                    program: exe,
                    args: worker_args,
                })
            })
            .map_err(|e| format!("supervisor: {e}"))?;
            let mut router_cfg = fastofd::serve::RouterConfig {
                addr: single("addr").unwrap_or("127.0.0.1:0").to_owned(),
                catalog_dir: single("checkpoint-dir")
                    .map(|d| std::path::PathBuf::from(d).join("catalog")),
                obs: obs_handle.clone(),
                ..fastofd::serve::RouterConfig::default()
            };
            if let Some(ms) = single("probe-interval-ms") {
                router_cfg.probe_interval_ms =
                    ms.parse().map_err(|_| "--probe-interval-ms expects an integer")?;
            }
            if let Some(ms) = single("head-timeout-ms") {
                router_cfg.head_timeout_ms =
                    ms.parse().map_err(|_| "--head-timeout-ms expects an integer")?;
            }
            if let Some(ms) = single("peer-timeout-ms") {
                router_cfg.peer_timeout_ms =
                    ms.parse().map_err(|_| "--peer-timeout-ms expects an integer")?;
            }
            let router = fastofd::serve::Router::bind(
                router_cfg,
                fastofd::serve::Fleet::Supervised(supervisor),
            )
            .map_err(|e| format!("router bind: {e}"))?;
            println!(
                "listening on {} (router, workers={workers}, peers={n_remote})",
                router.addr()
            );
            {
                use std::io::Write;
                let _ = std::io::stdout().flush();
            }
            let term = fastofd::serve::termination_flag();
            while !term.load(std::sync::atomic::Ordering::SeqCst) && !router.drain_requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            eprintln!("router stopping: drained workers will not be respawned");
            router.shutdown();
            emit_obs(&obs_handle, &flags)?;
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            // Long-running resilient service over the same engines; see
            // the README "Serving" section for endpoint and shedding
            // semantics. Drains gracefully on SIGTERM/SIGINT or
            // `POST /admin/drain`, checkpointing in-flight jobs under
            // `--checkpoint-dir` for byte-identical resume after restart.
            let mut cfg = fastofd::serve::ServeConfig {
                faults: faults.clone(),
                ..fastofd::serve::ServeConfig::default()
            };
            if let Some(addr) = single("addr") {
                cfg.addr = addr.to_owned();
            }
            if let Some(n) = single("workers") {
                cfg.workers = n.parse().map_err(|_| "--workers expects an integer")?;
            }
            if let Some(n) = single("queue-cap") {
                cfg.queue_cap = n.parse().map_err(|_| "--queue-cap expects an integer")?;
            }
            if let Some(ms) = single("budget-ms") {
                cfg.budget_ms = ms.parse().map_err(|_| "--budget-ms expects an integer")?;
            }
            if let Some(mib) = single("max-body-mib") {
                let mib: usize = mib.parse().map_err(|_| "--max-body-mib expects an integer")?;
                cfg.max_body_bytes = mib * 1024 * 1024;
            }
            if let Some(mib) = single("rss-high-water-mib") {
                cfg.rss_high_water_mib =
                    Some(mib.parse().map_err(|_| "--rss-high-water-mib expects an integer")?);
            }
            if let Some(n) = single("breaker-failures") {
                cfg.breaker_threshold =
                    n.parse().map_err(|_| "--breaker-failures expects an integer")?;
            }
            if let Some(ms) = single("breaker-cooldown-ms") {
                cfg.breaker_cooldown_ms =
                    ms.parse().map_err(|_| "--breaker-cooldown-ms expects an integer")?;
            }
            if let Some(ms) = single("retry-after-ms") {
                cfg.retry_after_ms =
                    ms.parse().map_err(|_| "--retry-after-ms expects an integer")?;
            }
            if let Some(ms) = single("head-timeout-ms") {
                cfg.head_timeout_ms =
                    ms.parse().map_err(|_| "--head-timeout-ms expects an integer")?;
            }
            if let Some(ms) = single("peer-timeout-ms") {
                cfg.peer_timeout_ms =
                    ms.parse().map_err(|_| "--peer-timeout-ms expects an integer")?;
            }
            cfg.checkpoint_dir = single("checkpoint-dir").map(std::path::PathBuf::from);
            if let Some(spec) = single("peers") {
                cfg.peers = fastofd::serve::parse_peer_list(spec)
                    .map_err(|e| format!("--peers: {e}"))?;
            }

            let server = fastofd::serve::Server::bind(cfg).map_err(|e| format!("bind: {e}"))?;
            let obs_handle = server.obs().clone();
            println!(
                "listening on {} (workers={}, queue={})",
                server.addr(),
                single("workers").unwrap_or("2"),
                single("queue-cap").unwrap_or("64"),
            );
            {
                use std::io::Write;
                let _ = std::io::stdout().flush();
            }
            let term = fastofd::serve::termination_flag();
            while !term.load(std::sync::atomic::Ordering::SeqCst) && !server.drain_requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            eprintln!("draining: admission closed, cancelling in-flight jobs to checkpoints");
            let summary = server.shutdown(std::time::Duration::from_secs(30));
            eprintln!(
                "drained: admitted={} shed={} breaker_open={} drained={} resumed={}",
                summary.admitted,
                summary.shed,
                summary.breaker_open,
                summary.drained,
                summary.resumed
            );
            emit_obs(&obs_handle, &flags)?;
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            eprintln!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: fastofd <generate|discover|check|clean|enforce|serve> [--flags...]\n\
     serving: fastofd serve [--addr A] [--workers N] [--queue-cap N] [--budget-ms N]\n\
              [--rss-high-water-mib N] [--breaker-failures N] [--breaker-cooldown-ms N]\n\
              [--checkpoint-dir DIR] [--head-timeout-ms N] [--peer-timeout-ms N]\n\
              — graceful drain on SIGTERM or POST /admin/drain\n\
     streaming: POST /v1/append {csv, ontology, ofds|kappa, rows:[[cells]], updates:[{row,\n\
              attr, value[, old]}]} and POST /v1/retract {.., rows:[idx]} maintain a live\n\
              session incrementally (delta partitions, no re-validation of untouched\n\
              classes); sessions persist under --checkpoint-dir and survive restarts;\n\
              stale \"old\" guards and out-of-range rows answer 409\n\
     fleet: fastofd serve --router [--workers N] [--worker-threads N] [--checkpoint-dir DIR]\n\
            [--peers HOST:PORT,..] [--probe-interval-ms N] — supervised worker processes\n\
            plus fixed remote workers, consistent-hash routing by dataset fingerprint,\n\
            failover + respawn; probe-driven ring ejection/readmission for remote peers;\n\
            share --checkpoint-dir for checkpoint adoption + catalog, or give workers\n\
            --peers so quorum catalog writes and checkpoint shipping cross filesystems\n\
     exit codes: 0 complete, 1 error, 3 sound-but-INCOMPLETE partial result\n\
     execution limits (discover/clean/enforce): --timeout-ms N --max-work N --max-rss-mib N\n\
     observability (discover/clean/enforce): --metrics-out metrics.json --trace\n\
     crash safety (discover/clean/enforce): --checkpoint-dir DIR [--resume]\n\
     performance (discover): --partition-cache-mib M (0 disables; default 256)\n\
     hybrid pre-filter (discover, exact mode; result-neutral): --sample-rounds N (default 2,\n\
              0 disables) --shards K | --shard-rows R (0 disables) — HyFD-style sampled\n\
              evidence plus per-shard minimal covers refute candidates before any\n\
              full-relation scan or partition product\n\
     fault injection (testing only): --faults \"seed=N,snapshot-io%P,panic@N\" or FASTOFD_FAULTS;\n\
              network sites: net-delay net-reset net-partial net-blackhole net-refuse\n\
              (+ delay-ms=N), realised by the in-process chaos proxy (serve_probe --chaos-net)\n\
     see the module docs (`cargo doc`) or README.md for details"
        .to_owned()
}

/// Parses the seeded fault-injection plan from `--faults SPEC`, falling
/// back to the `FASTOFD_FAULTS` environment variable. Inert unless set;
/// meant for the chaos harness and crash-safety tests.
fn faults_from_flags(flags: &HashMap<String, Vec<String>>) -> Result<FaultPlan, String> {
    let spec = flags
        .get("faults")
        .and_then(|v| v.first())
        .cloned()
        .or_else(|| std::env::var("FASTOFD_FAULTS").ok());
    match spec {
        Some(s) if !s.trim().is_empty() => {
            FaultPlan::parse(&s).map_err(|e| format!("--faults: {e}"))
        }
        _ => Ok(FaultPlan::none()),
    }
}

/// Builds checkpointing options from `--checkpoint-dir DIR` and `--resume`.
/// Snapshot-write faults from the active fault plan are installed on the
/// store so injected I/O errors and torn writes hit the real write path.
fn checkpoint_from_flags(
    flags: &HashMap<String, Vec<String>>,
    faults: &FaultPlan,
) -> Result<Option<CheckpointOptions>, String> {
    let Some(dir) = flags.get("checkpoint-dir").and_then(|v| v.first()) else {
        if flags.contains_key("resume") {
            return Err("--resume requires --checkpoint-dir".into());
        }
        return Ok(None);
    };
    let mut store = SnapshotStore::new(dir);
    if faults.is_active() {
        store = store.with_faults(faults.clone());
    }
    Ok(Some(CheckpointOptions {
        store,
        resume: flags.contains_key("resume"),
    }))
}

/// Builds the run's [`Obs`] handle: enabled when `--metrics-out` or
/// `--trace` is present, disabled (all no-ops) otherwise.
fn obs_from_flags(flags: &HashMap<String, Vec<String>>) -> Obs {
    if flags.contains_key("metrics-out") || flags.contains_key("trace") {
        Obs::enabled()
    } else {
        Obs::disabled()
    }
}

/// Writes the metrics snapshot to `--metrics-out` (pretty JSON) and prints
/// the span tree to stderr under `--trace`.
fn emit_obs(obs: &Obs, flags: &HashMap<String, Vec<String>>) -> Result<(), String> {
    if !obs.is_enabled() {
        return Ok(());
    }
    let snapshot = obs.snapshot();
    if let Some(path) = flags.get("metrics-out").and_then(|v| v.first()) {
        fastofd::core::atomic_write(std::path::Path::new(path), snapshot.to_json_string(true).as_bytes())
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    if flags.contains_key("trace") {
        eprint!("{}", snapshot.render_trace());
    }
    Ok(())
}

/// Builds the run's [`ExecGuard`] from `--timeout-ms`, `--max-work` and
/// `--max-rss-mib`; unlimited when none are given.
fn guard_from_flags(flags: &HashMap<String, Vec<String>>) -> Result<ExecGuard, String> {
    let single =
        |name: &str| -> Option<&str> { flags.get(name).and_then(|v| v.first()).map(String::as_str) };
    let mut cfg = GuardConfig::default();
    if let Some(ms) = single("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--timeout-ms expects an integer")?;
        cfg.timeout = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(w) = single("max-work") {
        cfg.max_work = Some(w.parse().map_err(|_| "--max-work expects an integer")?);
    }
    if let Some(m) = single("max-rss-mib") {
        cfg.max_rss_mib = Some(m.parse().map_err(|_| "--max-rss-mib expects an integer")?);
    }
    Ok(ExecGuard::new(cfg))
}

fn load(
    data: &Option<&str>,
    ontology: &Option<&str>,
) -> Result<(Relation, Ontology), String> {
    let data = data.ok_or("--data <file.csv> is required")?;
    let text = fs::read_to_string(data).map_err(|e| format!("{data}: {e}"))?;
    let rel = csv::read_csv(&text).map_err(|e| format!("{data}: {e}"))?;
    let onto = match ontology {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_ontology(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => Ontology::empty(),
    };
    Ok((rel, onto))
}

/// Serializes OFDs in the `A,B->C` line format `--ofds-file` loads
/// (comments and blank lines allowed).
fn sigma_to_text<'a>(schema: &Schema, ofds: impl Iterator<Item = &'a Ofd>) -> String {
    let mut out = String::from("# fastofd Σ file: one \"A,B->C\" per line\n");
    for ofd in ofds {
        let lhs: Vec<&str> = ofd.lhs.iter().map(|a| schema.name(a)).collect();
        out.push_str(&format!("{}->{}\n", lhs.join(","), schema.name(ofd.rhs)));
    }
    out
}

/// Parses every `--ofd "A,B->C"` occurrence plus any `--ofds-file` files;
/// `--theta N` switches all of them to inheritance semantics.
fn parse_ofds(
    flags: &HashMap<String, Vec<String>>,
    schema: &Schema,
) -> Result<Vec<Ofd>, String> {
    let theta: Option<usize> = match flags.get("theta").and_then(|v| v.first()) {
        Some(t) => Some(t.parse().map_err(|_| "--theta expects an integer")?),
        None => None,
    };
    let mut specs: Vec<String> = flags
        .get("ofd").cloned()
        .unwrap_or_default();
    for path in flags.get("ofds-file").map(Vec::as_slice).unwrap_or(&[]) {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        specs.extend(
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_owned),
        );
    }
    let mut out = Vec::new();
    for spec in &specs {
        let (lhs, rhs) = spec
            .split_once("->")
            .ok_or_else(|| format!("bad OFD {spec:?}; expected \"A,B->C\""))?;
        let lhs_names: Vec<&str> = lhs
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let lhs_set = schema
            .set(lhs_names.iter().copied())
            .map_err(|e| e.to_string())?;
        let rhs_attr = schema.attr(rhs.trim()).map_err(|e| e.to_string())?;
        out.push(match theta {
            Some(theta) => Ofd::inheritance(lhs_set, rhs_attr, theta),
            None => Ofd::synonym(lhs_set, rhs_attr),
        });
    }
    Ok(out)
}
