#![warn(missing_docs)]
//! # fastofd
//!
//! Umbrella crate for the FastOFD / OFDClean reproduction: discovery and
//! contextual data cleaning with Ontology Functional Dependencies.
//!
//! Re-exports each workspace crate under a short module name; see the
//! individual crates for full documentation:
//!
//! * [`ontology`] — senses, concepts, is-a trees ([`ofd_ontology`]);
//! * [`core`] — relations, partitions, OFD definitions & verification
//!   ([`ofd_core`]);
//! * [`logic`] — axioms, closure, implication, minimal covers
//!   ([`ofd_logic`]);
//! * [`discovery`] — the FastOFD lattice discovery algorithm
//!   ([`ofd_discovery`]);
//! * [`baselines`] — the seven classic FD discovery algorithms used as
//!   comparators ([`fd_baselines`]);
//! * [`clean`] — the OFDClean repair framework ([`ofd_clean`]);
//! * [`datagen`] — synthetic dataset & ontology generators ([`ofd_datagen`]);
//! * [`serve`] — the resilient HTTP service layer ([`ofd_serve`]).

pub use fd_baselines as baselines;
pub use ofd_clean as clean;
pub use ofd_core as core;
pub use ofd_datagen as datagen;
pub use ofd_discovery as discovery;
pub use ofd_logic as logic;
pub use ofd_ontology as ontology;
pub use ofd_serve as serve;
