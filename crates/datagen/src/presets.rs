//! Dataset presets standing in for the paper's two real datasets (see
//! DESIGN.md, substitution 1): a Clinical (LinkedCT-style) schema and a
//! Kiva-loans-style schema, both 15 attributes wide with planted OFDs.

use crate::synth::{generate, AttrRole, Dataset, SynthSpec};

/// Shared generator knobs, mirroring Table 5's parameters.
#[derive(Debug, Clone, Copy)]
pub struct PresetConfig {
    /// Number of tuples N.
    pub n_rows: usize,
    /// Schema width n (4 ..= 15); dependents keep their determinants in
    /// every prefix.
    pub n_attrs: usize,
    /// Senses per entity |λ| (Table 5 default: 4).
    pub n_senses: usize,
    /// Extra synonyms per sense.
    pub synonyms: usize,
    /// Target |Σ| (padded with valid augmented OFDs when above the number
    /// of planted dependents; Table 5 default: 10).
    pub n_ofds: usize,
    /// Cross-interpretation ambiguity: probability that a synonym also
    /// names its entity under each other standard (see
    /// [`crate::synth::SynthSpec::ambiguity`]).
    pub ambiguity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PresetConfig {
    fn default() -> Self {
        PresetConfig {
            n_rows: 1_000,
            n_attrs: 15,
            n_senses: 4,
            synonyms: 3,
            n_ofds: 10,
            ambiguity: 0.2,
            seed: 42,
        }
    }
}

fn build(cfg: &PresetConfig, attrs: Vec<(String, AttrRole)>) -> Dataset {
    assert!(
        (2..=attrs.len()).contains(&cfg.n_attrs),
        "n_attrs must be in 2..={}",
        attrs.len()
    );
    let mut attrs: Vec<(String, AttrRole)> = attrs.into_iter().take(cfg.n_attrs).collect();
    // Apply the sense / synonym knobs to every dependent.
    let mut planted = 0usize;
    for (_, role) in &mut attrs {
        if let AttrRole::Dependent {
            senses, synonyms, ..
        } = role
        {
            *senses = cfg.n_senses.max(1);
            *synonyms = cfg.synonyms.max(1);
            planted += 1;
        }
    }
    let spec = SynthSpec {
        attrs,
        n_rows: cfg.n_rows,
        seed: cfg.seed,
        extra_ofds: cfg.n_ofds.saturating_sub(planted),
        ambiguity: cfg.ambiguity,
        family_size: 1,
        family_mix: 0.0,
    };
    generate(&spec)
}

fn s(name: &str) -> String {
    name.to_owned()
}

fn dep(determinants: &[&str], entities: usize) -> AttrRole {
    AttrRole::Dependent {
        determinants: determinants.iter().map(|d| s(d)).collect(),
        entities,
        senses: 4,
        synonyms: 3,
    }
}

/// Clinical-trials-style dataset (LinkedCT substitute): 15 attributes,
/// planted OFDs `CC→CTRY`, `[SYMP,TEST]→DIAG`, `[CC,SYMP]→MED` (drug names
/// vary by country), `[PHASE,STATUS]→OUTCOME`, `[AGE_GRP,GENDER]→DRUG_CLASS`
/// and `SYMP→COND`.
pub fn clinical(cfg: &PresetConfig) -> Dataset {
    build(
        cfg,
        vec![
            (s("NCTID"), AttrRole::Key),
            (s("CC"), AttrRole::Driver { domain: 30 }),
            (s("SYMP"), AttrRole::Driver { domain: 40 }),
            (s("CTRY"), dep(&["CC"], 30)),
            (s("TEST"), AttrRole::Driver { domain: 10 }),
            (s("DIAG"), dep(&["SYMP", "TEST"], 60)),
            (s("MED"), dep(&["CC", "SYMP"], 80)),
            (s("PHASE"), AttrRole::Driver { domain: 4 }),
            (s("STATUS"), AttrRole::Driver { domain: 5 }),
            (s("OUTCOME"), dep(&["PHASE", "STATUS"], 15)),
            (s("AGE_GRP"), AttrRole::Driver { domain: 5 }),
            (s("GENDER"), AttrRole::Driver { domain: 3 }),
            (s("DRUG_CLASS"), dep(&["AGE_GRP", "GENDER"], 12)),
            (s("SPONSOR"), AttrRole::Driver { domain: 50 }),
            (s("COND"), dep(&["SYMP"], 40)),
        ],
    )
}

/// Kiva-loans-style dataset: 15 attributes, planted OFDs `CC→CTRY`,
/// `ACTIVITY→SECTOR`, `CC→CURRENCY`, `[CC,REGION_CODE]→REGION`,
/// `[TERM_BIN,YEAR]→REPAY` and `ACTIVITY→USE_CAT`.
pub fn kiva(cfg: &PresetConfig) -> Dataset {
    build(
        cfg,
        vec![
            (s("LOAN_ID"), AttrRole::Key),
            (s("CC"), AttrRole::Driver { domain: 40 }),
            (s("ACTIVITY"), AttrRole::Driver { domain: 60 }),
            (s("CTRY"), dep(&["CC"], 40)),
            (s("SECTOR"), dep(&["ACTIVITY"], 15)),
            (s("CURRENCY"), dep(&["CC"], 35)),
            (s("REGION_CODE"), AttrRole::Driver { domain: 30 }),
            (s("REGION"), dep(&["CC", "REGION_CODE"], 90)),
            (s("AMOUNT_BIN"), AttrRole::Driver { domain: 10 }),
            (s("TERM_BIN"), AttrRole::Driver { domain: 8 }),
            (s("YEAR"), AttrRole::Driver { domain: 5 }),
            (s("REPAY"), dep(&["TERM_BIN", "YEAR"], 20)),
            (s("GENDER"), AttrRole::Driver { domain: 3 }),
            (s("PARTNER"), AttrRole::Driver { domain: 100 }),
            (s("USE_CAT"), dep(&["ACTIVITY"], 25)),
        ],
    )
}

/// US-census-style dataset (the original FastOFD paper's second dataset):
/// 11 attributes over population properties, planted OFDs
/// `OCCUPATION→SALARY_BAND` (equivalent jobs earn similar salaries, the
/// paper's O₁), `[EDU,AGE_GRP]→WORKCLASS` and `STATE→REGION`.
pub fn census(cfg: &PresetConfig) -> Dataset {
    build(
        cfg,
        vec![
            (s("PERSON_ID"), AttrRole::Key),
            (s("OCCUPATION"), AttrRole::Driver { domain: 40 }),
            (s("SALARY_BAND"), dep(&["OCCUPATION"], 12)),
            (s("EDU"), AttrRole::Driver { domain: 12 }),
            (s("AGE_GRP"), AttrRole::Driver { domain: 8 }),
            (s("WORKCLASS"), dep(&["EDU", "AGE_GRP"], 9)),
            (s("STATE"), AttrRole::Driver { domain: 50 }),
            (s("REGION"), dep(&["STATE"], 10)),
            (s("MARITAL"), AttrRole::Driver { domain: 6 }),
            (s("RACE"), AttrRole::Driver { domain: 7 }),
            (s("RELATIONSHIP"), dep(&["MARITAL", "AGE_GRP"], 8)),
        ],
    )
}

/// A preset builder: one of [`clinical`], [`kiva`], [`census`].
pub type PresetFn = fn(&PresetConfig) -> Dataset;

/// Named perf workloads — the registry shared by the bench probes and the
/// checked-in `BENCH_discovery.json`, so an entry's `preset` field always
/// means the same schema, scale and seed:
///
/// * `clinical-40k` — the long-standing perf-smoke gate workload;
/// * `clinical-250k` — quarter-million-row clinical, the sharded-pipeline
///   smoke scale;
/// * `kiva-670k` — Kiva-loans-style at the paper's real dataset size
///   (§7: 670K loans);
/// * `synth-1m` — the million-row stress workload (clinical schema,
///   distinct seed so it is not a prefix of the smaller runs).
///
/// Returns the builder plus its config (callers may downscale `n_rows`
/// for cheap smoke tests); `None` for unknown names.
pub fn named(name: &str) -> Option<(PresetFn, PresetConfig)> {
    let base = PresetConfig::default();
    match name {
        "clinical-40k" => Some((
            clinical,
            PresetConfig {
                n_rows: 40_000,
                ..base
            },
        )),
        "clinical-250k" => Some((
            clinical,
            PresetConfig {
                n_rows: 250_000,
                ..base
            },
        )),
        "kiva-670k" => Some((
            kiva,
            PresetConfig {
                n_rows: 670_000,
                seed: 9,
                ..base
            },
        )),
        "synth-1m" => Some((
            clinical,
            PresetConfig {
                n_rows: 1_000_000,
                seed: 7,
                ..base
            },
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::Validator;

    #[test]
    fn clinical_defaults_generate_valid_dataset() {
        let cfg = PresetConfig {
            n_rows: 400,
            ..PresetConfig::default()
        };
        let ds = clinical(&cfg);
        assert_eq!(ds.clean.n_attrs(), 15);
        assert_eq!(ds.clean.n_rows(), 400);
        assert_eq!(ds.ofds.len(), 10, "6 planted + 4 extra");
        let v = Validator::new(&ds.clean, &ds.full_ontology);
        for ofd in &ds.ofds {
            assert!(v.check(ofd).satisfied());
        }
    }

    #[test]
    fn kiva_defaults_generate_valid_dataset() {
        let cfg = PresetConfig {
            n_rows: 400,
            seed: 9,
            ..PresetConfig::default()
        };
        let ds = kiva(&cfg);
        assert_eq!(ds.clean.n_attrs(), 15);
        let v = Validator::new(&ds.clean, &ds.full_ontology);
        for ofd in &ds.ofds {
            assert!(v.check(ofd).satisfied());
        }
    }

    #[test]
    fn census_preset_is_valid_and_11_wide() {
        let cfg = PresetConfig {
            n_rows: 300,
            n_attrs: 11,
            n_ofds: 4,
            ..PresetConfig::default()
        };
        let ds = census(&cfg);
        assert_eq!(ds.clean.n_attrs(), 11);
        let v = Validator::new(&ds.clean, &ds.full_ontology);
        for ofd in &ds.ofds {
            assert!(v.check(ofd).satisfied());
        }
        // O₁ from the original paper: OCCUPATION →syn SALARY_BAND.
        let schema = ds.clean.schema();
        assert!(ds.ofds.iter().any(|o| {
            o.lhs == schema.set(["OCCUPATION"]).unwrap()
                && o.rhs == schema.attr("SALARY_BAND").unwrap()
        }));
    }

    #[test]
    fn narrow_prefixes_remain_valid() {
        for n_attrs in [4, 6, 8, 10, 12] {
            let cfg = PresetConfig {
                n_rows: 200,
                n_attrs,
                n_ofds: 3,
                ..PresetConfig::default()
            };
            let ds = clinical(&cfg);
            assert_eq!(ds.clean.n_attrs(), n_attrs);
            let v = Validator::new(&ds.clean, &ds.full_ontology);
            for ofd in &ds.ofds {
                assert!(v.check(ofd).satisfied(), "n_attrs={n_attrs}");
            }
        }
    }

    #[test]
    fn sense_count_controls_ambiguity() {
        let lo = clinical(&PresetConfig {
            n_rows: 150,
            n_senses: 1,
            ..PresetConfig::default()
        });
        let hi = clinical(&PresetConfig {
            n_rows: 150,
            n_senses: 8,
            ..PresetConfig::default()
        });
        assert!(hi.full_ontology.len() > lo.full_ontology.len());
        // With one sense per entity, no value is ambiguous.
        assert!(lo
            .full_ontology
            .values()
            .all(|v| lo.full_ontology.names(v).len() == 1));
        // With eight, the shared entity values belong to eight senses.
        assert!(hi
            .full_ontology
            .values()
            .any(|v| hi.full_ontology.names(v).len() == 8));
    }

    #[test]
    fn named_registry_resolves_perf_workloads() {
        let (_, c40) = named("clinical-40k").unwrap();
        assert_eq!((c40.n_rows, c40.seed), (40_000, 42));
        let (_, c250) = named("clinical-250k").unwrap();
        assert_eq!((c250.n_rows, c250.seed), (250_000, 42));
        let (_, k670) = named("kiva-670k").unwrap();
        assert_eq!((k670.n_rows, k670.seed), (670_000, 9));
        let (_, s1m) = named("synth-1m").unwrap();
        assert_eq!((s1m.n_rows, s1m.seed), (1_000_000, 7));
        assert!(named("no-such-preset").is_none());
        // Downscaled instances of every named workload generate valid
        // datasets (full-scale generation belongs to the perf probe, not
        // unit tests).
        for name in ["clinical-40k", "clinical-250k", "kiva-670k", "synth-1m"] {
            let (build, cfg) = named(name).unwrap();
            let ds = build(&PresetConfig { n_rows: 300, ..cfg });
            assert_eq!(ds.clean.n_rows(), 300, "{name}");
            let v = Validator::new(&ds.clean, &ds.full_ontology);
            for ofd in &ds.ofds {
                assert!(v.check(ofd).satisfied(), "{name}: {:?}", ofd);
            }
        }
    }

    #[test]
    fn ontology_covers_dependent_columns_90_percent() {
        // §7 "we maximize coverage upwards of 90%+ for some attributes".
        let ds = clinical(&PresetConfig {
            n_rows: 500,
            ..PresetConfig::default()
        });
        let med = ds.clean.schema().attr("MED").unwrap();
        let covered = (0..ds.clean.n_rows())
            .filter(|&r| ds.full_ontology.contains_value(ds.clean.text(r, med)))
            .count();
        assert!(covered as f64 / ds.clean.n_rows() as f64 >= 0.9);
    }
}
