//! Minimal CSV serialization for [`Relation`]s (RFC-4180-style quoting).

use ofd_core::{CoreError, Relation, Schema};

/// Serializes a relation to CSV with a header row.
pub fn write_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let names: Vec<String> = rel
        .schema()
        .attrs()
        .map(|a| quote(rel.schema().name(a)))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in 0..rel.n_rows() {
        let cells: Vec<String> = rel.row_texts(row).iter().map(|c| quote(c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV with a header row into a relation.
///
/// Malformed input is a typed [`CoreError`], never a panic: an empty file
/// is [`CoreError::MalformedInput`], a ragged row is
/// [`CoreError::ArityMismatch`] (with its row index), and a row with an
/// unterminated quoted cell is [`CoreError::MalformedInput`].
pub fn read_csv(text: &str) -> Result<Relation, CoreError> {
    let mut lines = text.lines().filter(|l| !l.is_empty()).enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CoreError::MalformedInput("empty csv".into()))?;
    let names = split_row(header)
        .ok_or_else(|| CoreError::MalformedInput("unterminated quote in header".into()))?;
    let schema = Schema::new(names.iter().map(String::as_str))?;
    let mut b = Relation::builder(schema);
    for (lineno, line) in lines {
        let cells = split_row(line).ok_or_else(|| {
            CoreError::MalformedInput(format!("unterminated quote on line {}", lineno + 1))
        })?;
        b.push_row(cells.iter().map(String::as_str))?;
    }
    Ok(b.finish())
}

/// Parses raw bytes as CSV, rejecting invalid UTF-8 with a typed error
/// instead of panicking — the entry point for untrusted files.
pub fn read_csv_bytes(bytes: &[u8]) -> Result<Relation, CoreError> {
    let text = std::str::from_utf8(bytes).map_err(|e| {
        CoreError::MalformedInput(format!("invalid utf-8 at byte {}", e.valid_up_to()))
    })?;
    read_csv(text)
}

fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// Splits one CSV record; `None` when a quoted cell never closes (the
/// line-based reader cannot span records, so this is a hard parse fault).
fn split_row(line: &str) -> Option<Vec<String>> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    if in_quotes {
        return None;
    }
    cells.push(cur);
    Some(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::table1;

    #[test]
    fn round_trips_table1() {
        let rel = table1();
        let csv = write_csv(&rel);
        let back = read_csv(&csv).unwrap();
        assert_eq!(back.n_rows(), rel.n_rows());
        assert_eq!(back.schema(), rel.schema());
        for row in 0..rel.n_rows() {
            assert_eq!(back.row_texts(row), rel.row_texts(row));
        }
    }

    #[test]
    fn quoting_handles_commas_and_quotes() {
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["hello, world", "say \"hi\""] as &[&str]],
        )
        .unwrap();
        let csv = write_csv(&rel);
        let back = read_csv(&csv).unwrap();
        assert_eq!(back.text(0, back.schema().attr("A").unwrap()), "hello, world");
        assert_eq!(back.text(0, back.schema().attr("B").unwrap()), "say \"hi\"");
    }

    mod properties {
        use super::*;
        use ofd_core::Schema;
        use proptest::prelude::*;

        /// Cells containing commas, quotes and unicode (no newlines — the
        /// line-based reader documents that limitation) round-trip exactly.
        #[test]
        fn random_cells_round_trip() {
            proptest!(ProptestConfig::with_cases(64), |(
                rows in prop::collection::vec(
                    prop::collection::vec("[ -~αβγ]{0,12}", 3),
                    1..12,
                ),
            )| {
                let mut b = Relation::builder(Schema::new(["A", "B", "C"]).unwrap());
                for row in &rows {
                    b.push_row(row.iter().map(String::as_str)).unwrap();
                }
                let rel = b.finish();
                let back = read_csv(&write_csv(&rel)).unwrap();
                prop_assert_eq!(back.n_rows(), rel.n_rows());
                for r in 0..rel.n_rows() {
                    prop_assert_eq!(back.row_texts(r), rel.row_texts(r));
                }
            });
        }
    }

    #[test]
    fn csv_parser_is_total() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(128), |(input in ".{0,300}")| {
            // Never panics: structured error or a relation that re-serializes.
            if let Ok(rel) = read_csv(&input) {
                let _ = write_csv(&rel);
            }
        });
    }

    #[test]
    fn rejects_empty_input_and_ragged_rows() {
        assert!(matches!(read_csv(""), Err(CoreError::MalformedInput(_))));
        assert!(matches!(
            read_csv("\n\n"),
            Err(CoreError::MalformedInput(_)),
        ));
        assert!(matches!(
            read_csv("A,B\nonly-one\n"),
            Err(CoreError::ArityMismatch { row: 0, expected: 2, got: 1 }),
        ));
        assert!(matches!(
            read_csv("A,B\na,b\nx,y,z\n"),
            Err(CoreError::ArityMismatch { row: 1, expected: 2, got: 3 }),
        ));
    }

    #[test]
    fn rejects_unterminated_quotes() {
        assert!(matches!(
            read_csv("A,B\n\"open,b\n"),
            Err(CoreError::MalformedInput(_)),
        ));
        assert!(matches!(
            read_csv("\"A,B\n"),
            Err(CoreError::MalformedInput(_)),
        ));
    }

    #[test]
    fn rejects_invalid_utf8_bytes() {
        let err = read_csv_bytes(b"A,B\n\xff\xfe,x\n").unwrap_err();
        assert!(matches!(err, CoreError::MalformedInput(_)));
        assert!(err.to_string().contains("utf-8"));
        // Valid bytes parse identically to the &str path.
        let rel = read_csv_bytes(b"A,B\nx,y\n").unwrap();
        assert_eq!(rel.n_rows(), 1);
    }

    #[test]
    fn duplicate_header_names_are_typed_errors() {
        assert!(matches!(
            read_csv("A,A\nx,y\n"),
            Err(CoreError::DuplicateAttribute(_)),
        ));
    }
}
