//! The generic synthetic-dataset engine: schemas with key / driver /
//! dependent attributes, multi-sense entity catalogs, planted OFDs, error
//! injection and ontology degradation.
//!
//! This substitutes for the paper's Clinical (LinkedCT) and Kiva datasets
//! (see DESIGN.md): it reproduces the *properties* the algorithms are
//! sensitive to — planted OFDs whose consequents vary across synonyms,
//! configurable sense ambiguity |λ|, ≥90% ontology coverage of consequent
//! domains, seeded error injection into consequents, and ontology
//! incompleteness with retained ground truth.

use std::collections::HashMap;

use ofd_core::{AttrId, Ofd, Relation, Schema, ValueId};
use ofd_ontology::{Ontology, OntologyBuilder, SenseId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Role of one attribute in the generated schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrRole {
    /// Unique per row (e.g. `NCTID`).
    Key,
    /// Independent categorical attribute with the given domain size.
    Driver {
        /// Number of distinct values.
        domain: usize,
    },
    /// Functionally determined by the named driver attributes through an
    /// entity catalog: the cell value is a synonym of the entity's concept
    /// under the class's true sense.
    Dependent {
        /// Names of determining attributes.
        determinants: Vec<String>,
        /// Number of distinct entities in this attribute's catalog.
        entities: usize,
        /// Senses per entity (the paper's |λ|).
        senses: usize,
        /// Synonyms per sense (beyond the shared, ambiguous one).
        synonyms: usize,
    },
}

/// Declarative description of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// `(attribute name, role)` pairs, in schema order.
    pub attrs: Vec<(String, AttrRole)>,
    /// Number of rows.
    pub n_rows: usize,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
    /// Extra non-minimal OFDs (augmented antecedents) appended to Σ to
    /// reach a target |Σ| — they hold by construction (Exp-12 sweeps |Σ|).
    pub extra_ofds: usize,
    /// Probability that a sense's non-shared value is also inserted into
    /// each *other* sense of the same entity — the cross-interpretation
    /// ambiguity (drugs with the same name under different standards) that
    /// makes sense selection hard; precision declines with |λ| because the
    /// number of competing senses per value grows (Exp-6).
    pub ambiguity: f64,
    /// Entities per is-a *family*: with `family_size > 1`, each dependent
    /// attribute's concepts sit under family mid-nodes (root → family →
    /// entity), so entities of one family share an ancestor within θ = 2.
    /// `0` or `1` keeps the flat shape.
    pub family_size: usize,
    /// Probability that a generated cell is drawn from a *sibling* entity
    /// of the same family instead of the class's own entity — violating the
    /// synonym OFD while preserving the inheritance OFD at θ = 2 (the
    /// paper's tylenol-is-an-analgesic pattern).
    pub family_mix: f64,
}

/// One injected error (data-repair ground truth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedError {
    /// Row of the corrupted cell.
    pub row: usize,
    /// Attribute of the corrupted cell.
    pub attr: AttrId,
    /// The clean value.
    pub original: String,
    /// The injected dirty value.
    pub corrupted: String,
}

/// A generated dataset with full ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The (possibly corrupted) working relation.
    pub relation: Relation,
    /// The pristine relation (repair ground truth).
    pub clean: Relation,
    /// The (possibly degraded) working ontology.
    pub ontology: Ontology,
    /// The full ontology before degradation (ontology-repair ground truth).
    pub full_ontology: Ontology,
    /// Planted OFDs Σ; all hold on (`clean`, `full_ontology`).
    pub ofds: Vec<Ofd>,
    /// True sense per (OFD index, antecedent-value signature).
    pub truth_senses: HashMap<(usize, Vec<ValueId>), SenseId>,
    /// Errors injected so far.
    pub injected: Vec<InjectedError>,
    /// `(sense, value)` pairs removed by ontology degradation.
    pub removed_values: Vec<(SenseId, String)>,
}

impl Dataset {
    /// Injects errors into the consequents of the planted OFDs at the given
    /// rate (fraction of rows), per the paper's protocol: half the errors
    /// introduce fresh out-of-domain values, half swap in another existing
    /// domain value.
    pub fn inject_errors(&mut self, rate: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE44);
        let n = self.relation.n_rows();
        let count = ((n as f64) * rate).round() as usize;
        // Inject into cells participating in non-singleton classes: errors
        // in singleton classes violate nothing and would silently deflate
        // the effective error rate (the paper's datasets are large enough
        // that classes are never degenerate).
        let mut eligible: Vec<(usize, AttrId)> = Vec::new();
        {
            use ofd_core::StrippedPartition;
            let mut seen: std::collections::HashSet<(usize, AttrId)> =
                std::collections::HashSet::new();
            for ofd in &self.ofds {
                let sp = StrippedPartition::of(&self.relation, ofd.lhs);
                for class in sp.classes() {
                    for &t in class {
                        if seen.insert((t as usize, ofd.rhs)) {
                            eligible.push((t as usize, ofd.rhs));
                        }
                    }
                }
            }
            eligible.sort_unstable();
        }
        if eligible.is_empty() {
            return;
        }
        let mut fresh = 0usize;
        let mut corrupted_cells: std::collections::HashSet<(usize, AttrId)> = self
            .injected
            .iter()
            .map(|e| (e.row, e.attr))
            .collect();
        for k in 0..count {
            let (row, attr) = eligible[rng.random_range(0..eligible.len())];
            if corrupted_cells.contains(&(row, attr)) {
                continue; // one error per cell keeps ground truth exact
            }
            let original = self.relation.text(row, attr).to_owned();
            let corrupted = if k % 2 == 0 {
                fresh += 1;
                format!("err_{}_{fresh}", self.relation.schema().name(attr))
            } else {
                // Swap in a different existing value of the same column —
                // skipping synonyms of the original, which would not be
                // semantic errors at all.
                let other_row = rng.random_range(0..n);
                let v = self.relation.text(other_row, attr).to_owned();
                if v == original
                    || !self.full_ontology.common_sense([v.as_str(), original.as_str()]).is_empty()
                {
                    continue;
                }
                v
            };
            self.relation
                .set(row, attr, &corrupted)
                .expect("in-bounds injection");
            corrupted_cells.insert((row, attr));
            self.injected.push(InjectedError {
                row,
                attr,
                original,
                corrupted,
            });
        }
    }

    /// The injected errors that are *detectable*: errors whose row lies in
    /// a non-singleton equivalence class of some OFD with that consequent.
    /// Errors in singleton classes violate nothing and are information-
    /// theoretically unrepairable by constraint-based cleaning, so recall
    /// is fairly measured against this subset.
    pub fn detectable_errors(&self) -> Vec<InjectedError> {
        use ofd_core::StrippedPartition;
        use std::collections::HashSet;
        let mut covered: HashSet<(usize, AttrId)> = HashSet::new();
        for ofd in &self.ofds {
            let sp = StrippedPartition::of(&self.relation, ofd.lhs);
            for class in sp.classes() {
                for &t in class {
                    covered.insert((t as usize, ofd.rhs));
                }
            }
        }
        self.injected
            .iter()
            .filter(|e| covered.contains(&(e.row, e.attr)))
            .cloned()
            .collect()
    }

    /// Removes `rate` of the ontology's data-covering values (the paper's
    /// `inc%`): the values stay in the data, so they become ontology-repair
    /// candidates. Shared (multi-sense) values are kept so the degradation
    /// hits identifiable ground truth.
    pub fn degrade_ontology(&mut self, rate: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x17C);
        let mut removals: Vec<(SenseId, String)> = Vec::new();
        for c in self.full_ontology.concepts() {
            for v in c.synonyms() {
                // Only single-sense values are removable: dropping one
                // occurrence of a shared value would change its sense set
                // rather than orphan it.
                if self.full_ontology.names(v).len() == 1 && rng.random_bool(rate) {
                    removals.push((c.id(), v.clone()));
                }
            }
        }
        // Rebuild the working ontology without the removed values.
        let removed_lookup: HashMap<&str, SenseId> = removals
            .iter()
            .map(|(s, v)| (v.as_str(), *s))
            .collect();
        let mut b = OntologyBuilder::new();
        for label in self.full_ontology.interpretation_labels() {
            b.interpretation(label);
        }
        for c in self.full_ontology.concepts() {
            let keep: Vec<&str> = c
                .synonyms()
                .iter()
                .map(String::as_str)
                .filter(|v| removed_lookup.get(v) != Some(&c.id()))
                .collect();
            let mut cb = b
                .concept(c.label())
                .synonyms(keep)
                .interpretations(c.interpretations().iter().copied());
            if let Some(p) = c.parent() {
                cb = cb.parent(p);
            }
            cb.build().expect("degraded concept");
        }
        self.ontology = b.finish().expect("degraded ontology");
        self.removed_values = removals;
    }
}

/// Generates a dataset from a spec.
pub fn generate(spec: &SynthSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let names: Vec<&str> = spec.attrs.iter().map(|(n, _)| n.as_str()).collect();
    let schema = Schema::new(names.iter().copied()).expect("valid synthetic schema");

    // Build the ontology: one catalog per dependent attribute.
    let mut ob = OntologyBuilder::new();
    let max_senses = spec
        .attrs
        .iter()
        .filter_map(|(_, r)| match r {
            AttrRole::Dependent { senses, .. } => Some(*senses),
            _ => None,
        })
        .max()
        .unwrap_or(1);
    let interps: Vec<_> = (0..max_senses)
        .map(|j| ob.interpretation(format!("STD{j}")))
        .collect();

    // catalog[attr index] = per-entity vector of (sense id, synonym values).
    type EntityCatalog = Vec<Vec<(SenseId, Vec<String>)>>;
    let mut catalogs: HashMap<usize, EntityCatalog> = HashMap::new();
    for (ai, (name, role)) in spec.attrs.iter().enumerate() {
        let AttrRole::Dependent {
            entities,
            senses,
            synonyms,
            ..
        } = role
        else {
            continue;
        };
        let root = ob
            .concept(format!("{name} domain"))
            .build()
            .expect("domain root");
        let family_size = spec.family_size.max(1);
        let n_families = entities.div_ceil(family_size);
        let families: Vec<ofd_ontology::SenseId> = (0..n_families)
            .map(|f| {
                if family_size > 1 {
                    ob.concept(format!("{name} family {f}"))
                        .parent(root)
                        .build()
                        .expect("family node")
                } else {
                    root
                }
            })
            .collect();
        // First pass: each entity's per-sense value lists — the shared
        // (entity-canonical) value plus sense-unique synonyms.
        let mut value_lists: Vec<Vec<Vec<String>>> = Vec::with_capacity(*entities);
        for e in 0..*entities {
            let shared = format!("{name}_e{e}");
            let mut per_sense = Vec::with_capacity(*senses);
            for j in 0..*senses {
                let mut values = vec![shared.clone()];
                for k in 0..*synonyms {
                    values.push(format!("{name}_e{e}_s{j}_{k}"));
                }
                per_sense.push(values);
            }
            value_lists.push(per_sense);
        }
        // Second pass: cross-interpretation ambiguity — a non-shared value
        // may also name the entity under other standards, so it joins each
        // other sense with probability `ambiguity` (more senses ⇒ more
        // competitors per value ⇒ harder sense selection, Exp-6).
        if spec.ambiguity > 0.0 && *senses > 1 {
            for entity in value_lists.iter_mut() {
                for j in 0..*senses {
                    for k in 0..*synonyms {
                        let value = entity[j][k + 1].clone();
                        for (j2, target) in entity.iter_mut().enumerate() {
                            if j2 != j
                                && rng.random_bool(spec.ambiguity)
                                && !target.contains(&value)
                            {
                                target.push(value.clone());
                            }
                        }
                    }
                }
            }
        }
        let mut entity_senses = Vec::with_capacity(*entities);
        for (e, per_sense_values) in value_lists.into_iter().enumerate() {
            let parent = families[e / family_size];
            let mut per_sense = Vec::with_capacity(*senses);
            for (j, values) in per_sense_values.into_iter().enumerate() {
                let sid = ob
                    .concept(format!("{name} entity {e} sense {j}"))
                    .parent(parent)
                    .synonyms(values.iter().map(String::as_str))
                    .interpretations([interps[j]])
                    .build()
                    .expect("entity concept");
                per_sense.push((sid, values));
            }
            entity_senses.push(per_sense);
        }
        catalogs.insert(ai, entity_senses);
    }
    let full_ontology = ob.finish().expect("synthetic ontology");

    // Generate columns in schema order; dependents may reference any earlier
    // or later driver (drivers are generated first in a prepass).
    let n = spec.n_rows;
    let mut columns: Vec<Vec<String>> = vec![Vec::new(); spec.attrs.len()];
    for (ai, (name, role)) in spec.attrs.iter().enumerate() {
        match role {
            AttrRole::Key => {
                columns[ai] = (0..n).map(|r| format!("{name}_{r}")).collect();
            }
            AttrRole::Driver { domain } => {
                columns[ai] = (0..n)
                    .map(|_| format!("{name}_v{}", rng.random_range(0..*domain)))
                    .collect();
            }
            AttrRole::Dependent { .. } => {} // second pass
        }
    }

    let mut ofds: Vec<Ofd> = Vec::new();
    let mut planted: Vec<(usize, Vec<usize>, usize)> = Vec::new(); // (ofd idx, lhs col idxs, rhs col idx)
    // truth sense per (ofd index, lhs string signature); translated to
    // ValueIds after the relation is materialized.
    let mut truth_raw: HashMap<(usize, Vec<String>), SenseId> = HashMap::new();

    for (ai, (_name, role)) in spec.attrs.iter().enumerate() {
        let AttrRole::Dependent {
            determinants,
            entities,
            senses,
            ..
        } = role
        else {
            continue;
        };
        let det_idx: Vec<usize> = determinants
            .iter()
            .map(|d| {
                names
                    .iter()
                    .position(|n| n == d)
                    .unwrap_or_else(|| panic!("unknown determinant {d}"))
            })
            .collect();
        for &d in &det_idx {
            assert!(
                !matches!(spec.attrs[d].1, AttrRole::Dependent { .. }),
                "determinants must be keys or drivers"
            );
        }
        let ofd_idx = ofds.len();
        let lhs = ofd_core::AttrSet::from_attrs(det_idx.iter().map(|&i| AttrId::from_index(i)));
        // Family mixing draws sibling-entity values: consistent only under
        // inheritance (shared family ancestor at distance ≤ 2), so the
        // planted dependency switches kind accordingly.
        let planted_ofd = if spec.family_size > 1 && spec.family_mix > 0.0 {
            Ofd::inheritance(lhs, AttrId::from_index(ai), 2)
        } else {
            Ofd::synonym(lhs, AttrId::from_index(ai))
        };
        ofds.push(planted_ofd);
        planted.push((ofd_idx, det_idx.clone(), ai));

        // Assign (entity, true sense) per distinct lhs combination, then
        // draw each cell from the true sense's synonym list.
        let mut class_map: HashMap<Vec<String>, (usize, usize)> = HashMap::new();
        let catalog = &catalogs[&ai];
        let mut col = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // r indexes several parallel columns
        for r in 0..n {
            let key: Vec<String> = det_idx.iter().map(|&d| columns[d][r].clone()).collect();
            let (e, j) = *class_map.entry(key.clone()).or_insert_with(|| {
                (rng.random_range(0..*entities), rng.random_range(0..*senses))
            });
            let (sid, _) = &catalog[e][j];
            truth_raw.entry((ofd_idx, key)).or_insert(*sid);
            // Optionally draw from a sibling entity of the same family —
            // consistent under inheritance (shared family ancestor) but not
            // under synonym semantics.
            let family_size = spec.family_size.max(1);
            let source_e = if family_size > 1 && rng.random_bool(spec.family_mix) {
                let family = e / family_size;
                let start = family * family_size;
                let end = (start + family_size).min(*entities);
                rng.random_range(start..end)
            } else {
                e
            };
            let (_, values) = &catalog[source_e][j.min(catalog[source_e].len() - 1)];
            col.push(values[rng.random_range(0..values.len())].clone());
        }
        columns[ai] = col;
    }

    // Extra (augmented, non-minimal) OFDs to reach a target |Σ|.
    // Augmentation pool: drivers and keys (adding either to a valid
    // antecedent keeps the OFD valid).
    let driver_attrs: Vec<usize> = spec
        .attrs
        .iter()
        .enumerate()
        .filter(|(_, (_, r))| matches!(r, AttrRole::Driver { .. } | AttrRole::Key))
        .map(|(i, _)| i)
        .collect();
    let mut added = 0usize;
    'outer: for width in 1..=driver_attrs.len() {
        for (_, base_lhs, rhs) in &planted {
            for combo_start in 0..driver_attrs.len() {
                if added >= spec.extra_ofds {
                    break 'outer;
                }
                let mut lhs = ofd_core::AttrSet::from_attrs(
                    base_lhs.iter().map(|&i| AttrId::from_index(i)),
                );
                for w in 0..width {
                    let extra = driver_attrs[(combo_start + w) % driver_attrs.len()];
                    lhs.insert(AttrId::from_index(extra));
                }
                let kind = ofds[0].kind;
                let ofd = Ofd { lhs, rhs: AttrId::from_index(*rhs), kind };
                if !ofds.contains(&ofd) {
                    ofds.push(ofd);
                    added += 1;
                }
            }
        }
        if planted.is_empty() || driver_attrs.is_empty() {
            break;
        }
    }

    // Materialize the relation.
    let mut b = Relation::builder(schema);
    let mut row_buf: Vec<&str> = Vec::with_capacity(spec.attrs.len());
    for r in 0..n {
        row_buf.clear();
        row_buf.extend(columns.iter().map(|col| col[r].as_str()));
        b.push_row(row_buf.iter().copied()).expect("generated row");
    }
    let relation = b.finish();

    // Translate the truth keys to ValueIds.
    let mut truth_senses = HashMap::new();
    for ((ofd_idx, key), sid) in truth_raw {
        let ids: Vec<ValueId> = key
            .iter()
            .map(|v| relation.pool().get(v).expect("lhs value interned"))
            .collect();
        truth_senses.insert((ofd_idx, ids), sid);
    }

    Dataset {
        clean: relation.clone(),
        relation,
        ontology: full_ontology.clone(),
        full_ontology,
        ofds,
        truth_senses,
        injected: Vec::new(),
        removed_values: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::Validator;

    fn small_spec() -> SynthSpec {
        SynthSpec {
            attrs: vec![
                ("ID".into(), AttrRole::Key),
                ("CC".into(), AttrRole::Driver { domain: 12 }),
                ("GRP".into(), AttrRole::Driver { domain: 6 }),
                (
                    "CTRY".into(),
                    AttrRole::Dependent {
                        determinants: vec!["CC".into()],
                        entities: 12,
                        senses: 2,
                        synonyms: 2,
                    },
                ),
                (
                    "MED".into(),
                    AttrRole::Dependent {
                        determinants: vec!["CC".into(), "GRP".into()],
                        entities: 20,
                        senses: 3,
                        synonyms: 2,
                    },
                ),
            ],
            n_rows: 300,
            seed: 7,
            extra_ofds: 0,
            ambiguity: 0.3,
            family_size: 1,
            family_mix: 0.0,
        }
    }

    #[test]
    fn planted_ofds_hold_on_clean_data() {
        let ds = generate(&small_spec());
        let v = Validator::new(&ds.clean, &ds.full_ontology);
        for ofd in &ds.ofds {
            assert!(
                v.check(ofd).satisfied(),
                "{} violated on clean data",
                ofd.display(ds.clean.schema())
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.clean.cell_distance(&b.clean).unwrap(), 0);
        assert_eq!(a.ofds, b.ofds);
    }

    #[test]
    fn plain_fds_are_broken_by_synonym_variation() {
        // The whole point: CC -> CTRY holds as OFD but not as FD.
        let ds = generate(&small_spec());
        let v = Validator::new(&ds.clean, &ds.full_ontology);
        let broken = ds
            .ofds
            .iter()
            .filter(|o| !v.check_fd(&o.as_fd()))
            .count();
        assert!(broken > 0, "synonym variation should break plain FDs");
    }

    #[test]
    fn error_injection_records_ground_truth() {
        let mut ds = generate(&small_spec());
        ds.inject_errors(0.10, 1);
        assert!(!ds.injected.is_empty());
        let dist = ds.relation.cell_distance(&ds.clean).unwrap();
        assert!(dist > 0 && dist <= ds.injected.len());
        for e in &ds.injected {
            assert_eq!(ds.relation.text(e.row, e.attr), e.corrupted);
        }
        // At this error rate some OFD must now be violated.
        let v = Validator::new(&ds.relation, &ds.ontology);
        assert!(ds.ofds.iter().any(|o| !v.check(o).satisfied()));
    }

    #[test]
    fn degradation_removes_values_but_keeps_them_in_data() {
        let mut ds = generate(&small_spec());
        ds.degrade_ontology(0.2, 2);
        assert!(!ds.removed_values.is_empty());
        for (sense, value) in &ds.removed_values {
            assert!(!ds.ontology.contains_value(value), "{value} still present");
            assert!(ds.full_ontology.contains_value(value));
            assert!(ds
                .full_ontology
                .concept(*sense)
                .unwrap()
                .has_synonym(value));
        }
        // The degraded ontology keeps the same concept count.
        assert_eq!(ds.ontology.len(), ds.full_ontology.len());
    }

    #[test]
    fn extra_ofds_hold_and_share_consequents() {
        let mut spec = small_spec();
        spec.extra_ofds = 3;
        let ds = generate(&spec);
        assert!(ds.ofds.len() >= 4);
        let v = Validator::new(&ds.clean, &ds.full_ontology);
        for ofd in &ds.ofds {
            assert!(v.check(ofd).satisfied());
        }
    }

    #[test]
    fn family_mixing_plants_inheritance_ofds() {
        let spec = SynthSpec {
            attrs: vec![
                ("K".into(), AttrRole::Key),
                ("D".into(), AttrRole::Driver { domain: 8 }),
                (
                    "R".into(),
                    AttrRole::Dependent {
                        determinants: vec!["D".into()],
                        entities: 12,
                        senses: 2,
                        synonyms: 2,
                    },
                ),
            ],
            n_rows: 300,
            seed: 31,
            extra_ofds: 0,
            ambiguity: 0.2,
            family_size: 3,
            family_mix: 0.4,
        };
        let ds = generate(&spec);
        assert_eq!(ds.ofds.len(), 1);
        let planted = ds.ofds[0];
        assert!(matches!(
            planted.kind,
            ofd_core::OfdKind::Inheritance { theta: 2 }
        ));
        let v = Validator::new(&ds.clean, &ds.full_ontology);
        assert!(v.check(&planted).satisfied(), "inheritance reading holds");
        // The synonym reading is genuinely broken by the sibling draws.
        let syn = Ofd::synonym(planted.lhs, planted.rhs);
        assert!(!v.check(&syn).satisfied(), "synonym reading must fail");
        // The family layer is visible in the ontology: entity concepts sit
        // at depth 2.
        let some_entity = ds
            .full_ontology
            .names(ds.clean.text(0, planted.rhs))
            .first()
            .copied()
            .expect("value known");
        assert_eq!(ds.full_ontology.depth(some_entity).unwrap(), 2);
    }

    mod properties {
        use super::*;
        use ofd_core::Validator;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Every randomly-configured spec yields a dataset whose
            /// planted OFDs hold and whose ontology covers the dependents.
            #[test]
            fn random_specs_generate_valid_datasets(
                n_rows in 20usize..200,
                seed in 0u64..1000,
                senses in 1usize..5,
                synonyms in 1usize..4,
                entities in 2usize..20,
                domain in 2usize..15,
                ambiguity in 0.0f64..0.8,
            ) {
                let spec = SynthSpec {
                    attrs: vec![
                        ("K".into(), AttrRole::Key),
                        ("D1".into(), AttrRole::Driver { domain }),
                        ("D2".into(), AttrRole::Driver { domain: domain + 1 }),
                        (
                            "R1".into(),
                            AttrRole::Dependent {
                                determinants: vec!["D1".into()],
                                entities,
                                senses,
                                synonyms,
                            },
                        ),
                        (
                            "R2".into(),
                            AttrRole::Dependent {
                                determinants: vec!["D1".into(), "D2".into()],
                                entities,
                                senses,
                                synonyms,
                            },
                        ),
                    ],
                    n_rows,
                    seed,
                    extra_ofds: 1,
                    ambiguity,
                    family_size: 1,
                    family_mix: 0.0,
                };
                let ds = generate(&spec);
                prop_assert_eq!(ds.clean.n_rows(), n_rows);
                let v = Validator::new(&ds.clean, &ds.full_ontology);
                for ofd in &ds.ofds {
                    prop_assert!(
                        v.check(ofd).satisfied(),
                        "{} violated",
                        ofd.display(ds.clean.schema())
                    );
                }
            }

            /// Injection + degradation keep their ground-truth invariants at
            /// any rate.
            #[test]
            fn corruption_invariants(rate in 0.0f64..0.4, seed in 0u64..500) {
                let spec = SynthSpec {
                    attrs: vec![
                        ("K".into(), AttrRole::Key),
                        ("D".into(), AttrRole::Driver { domain: 6 }),
                        (
                            "R".into(),
                            AttrRole::Dependent {
                                determinants: vec!["D".into()],
                                entities: 8,
                                senses: 3,
                                synonyms: 2,
                            },
                        ),
                    ],
                    n_rows: 120,
                    seed,
                    extra_ofds: 0,
                    ambiguity: 0.3,
                    family_size: 1,
                    family_mix: 0.0,
                };
                let mut ds = generate(&spec);
                ds.inject_errors(rate, seed);
                for e in &ds.injected {
                    prop_assert_eq!(ds.relation.text(e.row, e.attr), e.corrupted.as_str());
                    prop_assert_eq!(ds.clean.text(e.row, e.attr), e.original.as_str());
                    prop_assert_ne!(&e.original, &e.corrupted);
                }
                ds.degrade_ontology(rate, seed);
                for (sense, value) in &ds.removed_values {
                    prop_assert!(!ds.ontology.contains_value(value));
                    prop_assert!(ds
                        .full_ontology
                        .concept(*sense)
                        .unwrap()
                        .has_synonym(value));
                }
            }
        }
    }

    #[test]
    fn truth_senses_cover_every_class() {
        let ds = generate(&small_spec());
        // Every (ofd, lhs combination) appearing in the data has a recorded
        // true sense.
        for (idx, ofd) in ds.ofds.iter().enumerate() {
            if idx >= 2 {
                break; // only the planted (non-extra) ones are recorded
            }
            for row in 0..ds.clean.n_rows() {
                let key: Vec<ValueId> = ofd
                    .lhs
                    .iter()
                    .map(|a| ds.clean.value(row, a))
                    .collect();
                assert!(
                    ds.truth_senses.contains_key(&(idx, key)),
                    "missing truth for row {row}"
                );
            }
        }
    }
}
