//! A small real-world vocabulary — ISO country codes, country-name
//! variants, currencies, and drug generic/brand names — backing the `demo`
//! dataset: the same planted-OFD machinery as [`crate::synth`], but with
//! cells that read like the paper's clinical-trials examples instead of
//! `CTRY_e7_s2_1` tokens.

use std::collections::HashMap;

use ofd_core::{Ofd, Relation, Schema, ValueId};
use ofd_ontology::{Ontology, OntologyBuilder, SenseId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::synth::Dataset;

/// `(iso2, iso3, name, alternate name, currency code, currency name)`.
pub const COUNTRIES: &[(&str, &str, &str, &str, &str, &str)] = &[
    ("US", "USA", "United States", "America", "USD", "US Dollar"),
    ("IN", "IND", "India", "Bharat", "INR", "Indian Rupee"),
    ("CA", "CAN", "Canada", "Dominion of Canada", "CAD", "Canadian Dollar"),
    ("DE", "DEU", "Germany", "Deutschland", "EUR", "Euro"),
    ("FR", "FRA", "France", "République française", "EUR", "Euro"),
    ("JP", "JPN", "Japan", "Nippon", "JPY", "Japanese Yen"),
    ("CN", "CHN", "China", "Zhongguo", "CNY", "Renminbi"),
    ("BR", "BRA", "Brazil", "Brasil", "BRL", "Brazilian Real"),
    ("GB", "GBR", "United Kingdom", "Great Britain", "GBP", "Pound Sterling"),
    ("AU", "AUS", "Australia", "Commonwealth of Australia", "AUD", "Australian Dollar"),
    ("MX", "MEX", "Mexico", "Estados Unidos Mexicanos", "MXN", "Mexican Peso"),
    ("KR", "KOR", "South Korea", "Republic of Korea", "KRW", "South Korean Won"),
    ("NL", "NLD", "Netherlands", "Holland", "EUR", "Euro"),
    ("CH", "CHE", "Switzerland", "Helvetia", "CHF", "Swiss Franc"),
    ("ES", "ESP", "Spain", "España", "EUR", "Euro"),
    ("IT", "ITA", "Italy", "Italia", "EUR", "Euro"),
    ("SE", "SWE", "Sweden", "Sverige", "SEK", "Swedish Krona"),
    ("NO", "NOR", "Norway", "Norge", "NOK", "Norwegian Krone"),
    ("PL", "POL", "Poland", "Polska", "PLN", "Polish Zloty"),
    ("TR", "TUR", "Turkey", "Türkiye", "TRY", "Turkish Lira"),
    ("EG", "EGY", "Egypt", "Misr", "EGP", "Egyptian Pound"),
    ("ZA", "ZAF", "South Africa", "Mzansi", "ZAR", "South African Rand"),
    ("AR", "ARG", "Argentina", "República Argentina", "ARS", "Argentine Peso"),
    ("GR", "GRC", "Greece", "Hellas", "EUR", "Euro"),
    ("IE", "IRL", "Ireland", "Éire", "EUR", "Euro"),
];

/// `(generic name, US brand name, international brand name)` — the drug
/// families of the paper's motivation (brand names vary by regulator).
pub const DRUGS: &[(&str, &str, &str)] = &[
    ("acetaminophen", "Tylenol", "Paracetamol"),
    ("ibuprofen", "Advil", "Nurofen"),
    ("diltiazem", "Cartia", "Tiazac"),
    ("acetylsalicylic acid", "Aspirin", "ASA"),
    ("naproxen", "Aleve", "Naprosyn"),
    ("omeprazole", "Prilosec", "Losec"),
    ("atorvastatin", "Lipitor", "Sortis"),
    ("salbutamol", "Ventolin", "Albuterol"),
    ("epoetin alfa", "Epogen", "Eprex"),
    ("metformin", "Glucophage", "Glumetza"),
    ("warfarin", "Coumadin", "Jantoven"),
    ("loratadine", "Claritin", "Clarityn"),
];

/// Symptoms driving prescriptions in the demo schema.
pub const SYMPTOMS: &[&str] = &[
    "headache", "fever", "joint pain", "nausea", "chest pain", "fatigue", "cough",
    "dizziness",
];

/// Builds the real-vocabulary ontology: one country concept per row of
/// [`COUNTRIES`] ({name, alternate}, GEO), one currency concept per
/// distinct currency ({code, name}), and two concepts per drug — FDA
/// ({generic, US brand}) and EMA ({generic, international brand}) — whose
/// shared generic makes the sense ambiguous, exactly like `cartia` in the
/// paper's Figure 1.
pub fn world_ontology() -> Ontology {
    let mut b = OntologyBuilder::new();
    let geo = b.interpretation("GEO");
    let fda = b.interpretation("FDA");
    let ema = b.interpretation("EMA");

    let countries_root = b.concept("country").build().expect("root");
    for (_, _, name, alt, _, _) in COUNTRIES {
        b.concept(*name)
            .parent(countries_root)
            .synonyms([*name, *alt])
            .interpretations([geo])
            .build()
            .expect("country concept");
    }
    let currency_root = b.concept("currency").build().expect("root");
    let mut seen = std::collections::HashSet::new();
    for (_, _, _, _, code, cname) in COUNTRIES {
        if seen.insert(*code) {
            b.concept(*cname)
                .parent(currency_root)
                .synonyms([*code, *cname])
                .interpretations([geo])
                .build()
                .expect("currency concept");
        }
    }
    let drug_root = b.concept("continuant drug").build().expect("root");
    for (generic, us, intl) in DRUGS {
        b.concept(format!("{generic} (FDA)"))
            .parent(drug_root)
            .synonyms([*generic, *us])
            .interpretations([fda])
            .build()
            .expect("fda drug");
        b.concept(format!("{generic} (EMA)"))
            .parent(drug_root)
            .synonyms([*generic, *intl])
            .interpretations([ema])
            .build()
            .expect("ema drug");
    }
    b.finish().expect("world ontology")
}

/// Generates the real-vocabulary demo dataset over
/// `(TRIAL_ID, CC, CTRY, CURRENCY, SYMPTOM, DRUG)` with planted OFDs
/// `CC → CTRY`, `CC → CURRENCY` and `[CC, SYMPTOM] → DRUG`, full ground
/// truth included (compatible with [`Dataset::inject_errors`] /
/// [`Dataset::degrade_ontology`]).
pub fn demo_dataset(n_rows: usize, seed: u64) -> Dataset {
    let onto = world_ontology();
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(["TRIAL_ID", "CC", "CTRY", "CURRENCY", "SYMPTOM", "DRUG"])
        .expect("demo schema");
    let mut b = Relation::builder(schema);

    // Per (CC, SYMPTOM) class: a fixed drug and a fixed regulator sense.
    let mut drug_of: HashMap<(usize, usize), (usize, bool)> = HashMap::new();
    let mut rows: Vec<[String; 6]> = Vec::with_capacity(n_rows);
    for r in 0..n_rows {
        let c = rng.random_range(0..COUNTRIES.len());
        let (iso2, _iso3, name, alt, code, cname) = COUNTRIES[c];
        let symptom_idx = rng.random_range(0..SYMPTOMS.len());
        let (drug_idx, use_fda) = *drug_of
            .entry((c, symptom_idx))
            .or_insert_with(|| (rng.random_range(0..DRUGS.len()), rng.random_bool(0.5)));
        let (generic, us, intl) = DRUGS[drug_idx];
        let drug_cell = if rng.random_bool(0.5) {
            generic
        } else if use_fda {
            us
        } else {
            intl
        };
        rows.push([
            format!("NCT{r:06}"),
            iso2.to_owned(),
            if rng.random_bool(0.7) { name } else { alt }.to_owned(),
            if rng.random_bool(0.7) { code } else { cname }.to_owned(),
            SYMPTOMS[symptom_idx].to_owned(),
            drug_cell.to_owned(),
        ]);
    }
    for row in &rows {
        b.push_row(row.iter().map(String::as_str)).expect("demo row");
    }
    let relation = b.finish();
    let schema = relation.schema();

    let ofds = vec![
        Ofd::synonym_named(schema, &["CC"], "CTRY").expect("φ1"),
        Ofd::synonym_named(schema, &["CC"], "CURRENCY").expect("φ2"),
        Ofd::synonym_named(schema, &["CC", "SYMPTOM"], "DRUG").expect("φ3"),
    ];

    // Ground-truth senses.
    let mut truth: HashMap<(usize, Vec<ValueId>), SenseId> = HashMap::new();
    let sense_of = |value: &str| -> SenseId { onto.names(value)[0] };
    for r in 0..n_rows {
        let c_iso2 = relation.value(r, schema.attr("CC").expect("CC"));
        let symptom = relation.value(r, schema.attr("SYMPTOM").expect("SYMPTOM"));
        let iso2_text = relation.pool().resolve(c_iso2).to_owned();
        let c = COUNTRIES
            .iter()
            .position(|(i2, ..)| *i2 == iso2_text)
            .expect("known country");
        let symptom_text = relation.pool().resolve(symptom).to_owned();
        let s = SYMPTOMS
            .iter()
            .position(|sym| *sym == symptom_text)
            .expect("known symptom");
        truth.insert((0, vec![c_iso2]), sense_of(COUNTRIES[c].2));
        truth.insert((1, vec![c_iso2]), sense_of(COUNTRIES[c].5));
        let (drug_idx, use_fda) = drug_of[&(c, s)];
        let (generic, us, intl) = DRUGS[drug_idx];
        let brand = if use_fda { us } else { intl };
        // The generating sense is the regulator concept containing both the
        // generic and the class's brand form.
        let sense = onto
            .common_sense([generic, brand])
            .first()
            .copied()
            .expect("regulator sense exists");
        truth.insert((2, vec![c_iso2, symptom]), sense);
    }

    Dataset {
        clean: relation.clone(),
        relation,
        ontology: onto.clone(),
        full_ontology: onto,
        ofds,
        truth_senses: truth,
        injected: Vec::new(),
        removed_values: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::Validator;

    #[test]
    fn world_ontology_encodes_paper_facts() {
        let o = world_ontology();
        assert!(!o.common_sense(["United States", "America"]).is_empty());
        assert!(!o.common_sense(["India", "Bharat"]).is_empty());
        assert!(!o.common_sense(["Cartia", "diltiazem"]).is_empty());
        assert!(!o.common_sense(["Tiazac", "diltiazem"]).is_empty());
        // Brand names of different regulators share only the generic.
        assert!(o.common_sense(["Cartia", "Tiazac"]).is_empty());
        // The generic is two-sense ambiguous, like `cartia` in Figure 1.
        assert_eq!(o.names("diltiazem").len(), 2);
    }

    #[test]
    fn demo_dataset_satisfies_its_planted_ofds() {
        let ds = demo_dataset(800, 5);
        let v = Validator::new(&ds.clean, &ds.full_ontology);
        for ofd in &ds.ofds {
            assert!(
                v.check(ofd).satisfied(),
                "{} violated",
                ofd.display(ds.clean.schema())
            );
        }
        // Synonym variation genuinely breaks the plain FDs.
        assert!(ds.ofds.iter().any(|o| !v.check_fd(&o.as_fd())));
    }

    #[test]
    fn demo_dataset_supports_corruption_and_truth() {
        let mut ds = demo_dataset(600, 9);
        ds.inject_errors(0.05, 10);
        assert!(!ds.injected.is_empty());
        ds.degrade_ontology(0.05, 11);
        assert!(!ds.removed_values.is_empty());
        // Truth senses cover the CC → CTRY classes.
        let schema = ds.clean.schema();
        let cc = schema.attr("CC").unwrap();
        for r in 0..ds.clean.n_rows() {
            let key = (0usize, vec![ds.clean.value(r, cc)]);
            assert!(ds.truth_senses.contains_key(&key));
        }
    }

    #[test]
    fn demo_dataset_is_deterministic() {
        let a = demo_dataset(300, 1);
        let b = demo_dataset(300, 1);
        assert_eq!(a.clean.cell_distance(&b.clean).unwrap(), 0);
        let c = demo_dataset(300, 2);
        assert!(c.clean.cell_distance(&a.clean).unwrap() > 0);
    }
}
