#![warn(missing_docs)]
//! # ofd-datagen
//!
//! Synthetic datasets, ontologies and corruption for the experimental
//! harness — the substitute for the paper's Clinical (LinkedCT) and Kiva
//! datasets and their medical/WordNet ontologies (DESIGN.md, substitutions
//! 1–2):
//!
//! * [`synth`] — the generic engine: key / driver / dependent attribute
//!   roles, multi-sense entity catalogs, planted OFDs, seeded error
//!   injection (`err%`) and ontology degradation (`inc%`), all with
//!   retained ground truth;
//! * [`presets`] — the `clinical` and `kiva` 15-attribute schemas used by
//!   every experiment;
//! * [`csv`] — CSV import/export for relations.

pub mod csv;
pub mod presets;
pub mod synth;
pub mod vocab;

pub use presets::{census, clinical, kiva, named, PresetConfig, PresetFn};
pub use vocab::{demo_dataset, world_ontology};
pub use synth::{generate, AttrRole, Dataset, InjectedError, SynthSpec};
