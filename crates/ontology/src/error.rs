//! Error type for ontology construction, mutation and parsing.

use std::error::Error;
use std::fmt;

use crate::concept::SenseId;

/// Errors raised while building, repairing or parsing an [`crate::Ontology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// A referenced parent concept does not exist.
    UnknownParent(SenseId),
    /// A referenced concept does not exist.
    UnknownSense(SenseId),
    /// A referenced interpretation does not exist.
    UnknownInterpretation(u16),
    /// The same value appears twice in one concept's synonym set.
    DuplicateSynonym {
        /// The concept holding the duplicate.
        sense: SenseId,
        /// The duplicated value.
        value: String,
    },
    /// A concept label is empty.
    EmptyLabel,
    /// A synonym value is empty.
    EmptyValue {
        /// The concept holding the empty value.
        sense: SenseId,
    },
    /// Text-format parse failure with 1-based line number.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::UnknownParent(id) => {
                write!(f, "unknown parent concept {id}")
            }
            OntologyError::UnknownSense(id) => write!(f, "unknown concept {id}"),
            OntologyError::UnknownInterpretation(id) => {
                write!(f, "unknown interpretation #{id}")
            }
            OntologyError::DuplicateSynonym { sense, value } => {
                write!(f, "duplicate synonym {value:?} in concept {sense}")
            }
            OntologyError::EmptyLabel => write!(f, "concept label must be non-empty"),
            OntologyError::EmptyValue { sense } => {
                write!(f, "empty synonym value in concept {sense}")
            }
            OntologyError::Parse { line, message } => {
                write!(f, "ontology parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for OntologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OntologyError::DuplicateSynonym {
            sense: SenseId(2),
            value: "cartia".into(),
        };
        let s = e.to_string();
        assert!(s.contains("cartia"), "{s}");
        assert!(s.contains("λ2"), "{s}");

        let p = OntologyError::Parse {
            line: 12,
            message: "bad field".into(),
        };
        assert!(p.to_string().contains("line 12"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&OntologyError::EmptyLabel);
    }
}
