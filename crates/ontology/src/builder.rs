//! Builders for assembling ontologies programmatically.

use std::collections::HashMap;

use crate::concept::{Concept, InterpretationId, SenseId};
use crate::error::OntologyError;
use crate::ontology::Ontology;

/// Incrementally assembles an [`Ontology`].
///
/// Parents must be created before their children, which makes cycles
/// unrepresentable by construction (the forest shape the paper assumes).
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    concepts: Vec<Concept>,
    interpretations: Vec<String>,
    index: HashMap<String, Vec<SenseId>>,
}

impl OntologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) an interpretation label such as `"FDA"`.
    pub fn interpretation(&mut self, label: impl AsRef<str>) -> InterpretationId {
        let label = label.as_ref();
        if let Some(pos) = self.interpretations.iter().position(|l| l == label) {
            return InterpretationId::from_index(pos);
        }
        self.interpretations.push(label.to_owned());
        InterpretationId::from_index(self.interpretations.len() - 1)
    }

    /// Starts a new concept with the given class label.
    pub fn concept(&mut self, label: impl Into<String>) -> ConceptBuilder<'_> {
        ConceptBuilder {
            owner: self,
            label: label.into(),
            parent: None,
            synonyms: Vec::new(),
            interpretations: Vec::new(),
        }
    }

    /// Number of concepts added so far.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether no concepts have been added yet.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    fn push_concept(
        &mut self,
        label: String,
        parent: Option<SenseId>,
        synonyms: Vec<String>,
        interpretations: Vec<InterpretationId>,
    ) -> Result<SenseId, OntologyError> {
        if label.is_empty() {
            return Err(OntologyError::EmptyLabel);
        }
        if let Some(p) = parent {
            if p.index() >= self.concepts.len() {
                return Err(OntologyError::UnknownParent(p));
            }
        }
        for i in &interpretations {
            if i.index() >= self.interpretations.len() {
                return Err(OntologyError::UnknownInterpretation(
                    u16::try_from(i.index()).unwrap_or(u16::MAX),
                ));
            }
        }
        let id = SenseId::from_index(self.concepts.len());
        for (pos, v) in synonyms.iter().enumerate() {
            if v.is_empty() {
                return Err(OntologyError::EmptyValue { sense: id });
            }
            if synonyms[..pos].contains(v) {
                return Err(OntologyError::DuplicateSynonym {
                    sense: id,
                    value: v.clone(),
                });
            }
        }
        for v in &synonyms {
            self.index.entry(v.clone()).or_default().push(id);
        }
        if let Some(p) = parent {
            self.concepts[p.index()].children.push(id);
        }
        self.concepts.push(Concept {
            id,
            label,
            parent,
            children: Vec::new(),
            synonyms,
            interpretations,
        });
        Ok(id)
    }

    /// Finalizes the ontology.
    pub fn finish(self) -> Result<Ontology, OntologyError> {
        let roots = self
            .concepts
            .iter()
            .filter(|c| c.parent.is_none())
            .map(|c| c.id)
            .collect();
        let mut index = self.index;
        for senses in index.values_mut() {
            senses.sort_unstable();
            senses.dedup();
        }
        Ok(Ontology {
            concepts: self.concepts,
            interpretations: self.interpretations,
            roots,
            index,
        })
    }
}

/// Fluent builder for a single concept; created via
/// [`OntologyBuilder::concept`], finalized with [`ConceptBuilder::build`].
#[derive(Debug)]
pub struct ConceptBuilder<'a> {
    owner: &'a mut OntologyBuilder,
    label: String,
    parent: Option<SenseId>,
    synonyms: Vec<String>,
    interpretations: Vec<InterpretationId>,
}

impl ConceptBuilder<'_> {
    /// Sets the is-a parent.
    pub fn parent(mut self, parent: SenseId) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Appends one synonym value.
    pub fn synonym(mut self, value: impl Into<String>) -> Self {
        self.synonyms.push(value.into());
        self
    }

    /// Appends several synonym values; the first value of the concept's
    /// overall synonym list becomes its canonical value.
    pub fn synonyms<I, V>(mut self, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<String>,
    {
        self.synonyms.extend(values.into_iter().map(Into::into));
        self
    }

    /// Tags the concept with interpretation labels.
    pub fn interpretations<I>(mut self, interps: I) -> Self
    where
        I: IntoIterator<Item = InterpretationId>,
    {
        self.interpretations.extend(interps);
        self
    }

    /// Validates and inserts the concept, returning its sense id.
    pub fn build(self) -> Result<SenseId, OntologyError> {
        self.owner
            .push_concept(self.label, self.parent, self.synonyms, self.interpretations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_forest_with_children_links() {
        let mut b = OntologyBuilder::new();
        let r1 = b.concept("animals").build().unwrap();
        let r2 = b.concept("vehicles").build().unwrap();
        let cat = b.concept("cat").parent(r1).synonym("felis catus").build().unwrap();
        let o = b.finish().unwrap();
        assert_eq!(o.roots(), &[r1, r2]);
        assert_eq!(o.concept(r1).unwrap().children(), &[cat]);
        assert_eq!(o.concept(cat).unwrap().parent(), Some(r1));
    }

    #[test]
    fn interpretation_labels_are_deduplicated() {
        let mut b = OntologyBuilder::new();
        let a = b.interpretation("FDA");
        let b2 = b.interpretation("MoH");
        let a2 = b.interpretation("FDA");
        assert_eq!(a, a2);
        assert_ne!(a, b2);
        let o = b.finish().unwrap();
        assert_eq!(o.interpretation_labels(), &["FDA".to_string(), "MoH".to_string()]);
        assert_eq!(o.interpretation_label(a).unwrap(), "FDA");
    }

    #[test]
    fn rejects_unknown_parent() {
        let mut b = OntologyBuilder::new();
        let err = b
            .concept("orphan")
            .parent(SenseId::from_index(7))
            .build()
            .unwrap_err();
        assert!(matches!(err, OntologyError::UnknownParent(_)));
    }

    #[test]
    fn rejects_empty_label_and_duplicate_synonyms() {
        let mut b = OntologyBuilder::new();
        assert!(matches!(
            b.concept("").build(),
            Err(OntologyError::EmptyLabel)
        ));
        let err = b
            .concept("c")
            .synonyms(["x", "y", "x"])
            .build()
            .unwrap_err();
        assert!(matches!(err, OntologyError::DuplicateSynonym { .. }));
        assert!(matches!(
            b.concept("c").synonym("").build(),
            Err(OntologyError::EmptyValue { .. })
        ));
    }

    #[test]
    fn rejects_unknown_interpretation() {
        let mut b = OntologyBuilder::new();
        let err = b
            .concept("c")
            .interpretations([InterpretationId::from_index(3)])
            .build()
            .unwrap_err();
        assert!(matches!(err, OntologyError::UnknownInterpretation(_)));
    }

    #[test]
    fn multi_sense_values_index_both_senses() {
        // "jaguar" as animal and as vehicle (the paper's running example).
        let mut b = OntologyBuilder::new();
        let animal = b
            .concept("panthera onca")
            .synonyms(["jaguar", "panthera onca"])
            .build()
            .unwrap();
        let vehicle = b
            .concept("jaguar land rover")
            .synonyms(["jaguar", "jaguar land rover"])
            .build()
            .unwrap();
        let o = b.finish().unwrap();
        assert_eq!(o.names("jaguar"), &[animal, vehicle]);
        assert_eq!(o.common_sense(["jaguar", "panthera onca"]), vec![animal]);
        assert_eq!(o.common_sense(["jaguar", "jaguar land rover"]), vec![vehicle]);
        assert!(o
            .common_sense(["panthera onca", "jaguar land rover"])
            .is_empty());
    }
}
