//! Concept (class/sense) nodes and their identifiers.

use std::fmt;

/// Identifier of a [`Concept`] inside one [`crate::Ontology`].
///
/// Following the paper, a concept doubles as a **sense**: the interpretation
/// under which a set of values are mutually synonymous. Sense ids are dense
/// indices assigned in insertion order, so they can be used to index
/// side-tables (`Vec<T>` keyed by sense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SenseId(pub(crate) u32);

impl SenseId {
    /// The dense index of this sense (0-based, insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a sense id from a dense index.
    ///
    /// Only meaningful for indices previously obtained from [`SenseId::index`]
    /// against the same ontology.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        SenseId(u32::try_from(index).expect("sense index exceeds u32"))
    }
}

impl fmt::Display for SenseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// Identifier of an interpretation label (e.g. `FDA`, `MoH`, `ISO`, `UN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InterpretationId(pub(crate) u16);

impl InterpretationId {
    /// The dense index of this interpretation (0-based, insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an interpretation id from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        InterpretationId(u16::try_from(index).expect("interpretation index exceeds u16"))
    }
}

/// A node of the ontology forest: a class `E` with a synonym set and an
/// optional is-a parent.
///
/// The first synonym is the concept's *canonical* value, used by the cleaning
/// algorithms when they project an equivalence class onto a sense.
#[derive(Debug, Clone)]
pub struct Concept {
    pub(crate) id: SenseId,
    pub(crate) label: String,
    pub(crate) parent: Option<SenseId>,
    pub(crate) children: Vec<SenseId>,
    pub(crate) synonyms: Vec<String>,
    pub(crate) interpretations: Vec<InterpretationId>,
}

impl Concept {
    /// This concept's identifier.
    #[inline]
    pub fn id(&self) -> SenseId {
        self.id
    }

    /// Human-readable class label (e.g. `"diltiazem hydrochloride"`).
    #[inline]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The is-a parent, or `None` for a root concept.
    #[inline]
    pub fn parent(&self) -> Option<SenseId> {
        self.parent
    }

    /// Direct is-a children.
    #[inline]
    pub fn children(&self) -> &[SenseId] {
        &self.children
    }

    /// The synonym set `synonyms(E)` of this class.
    #[inline]
    pub fn synonyms(&self) -> &[String] {
        &self.synonyms
    }

    /// The canonical value (first synonym), if the concept has synonyms.
    #[inline]
    pub fn canonical(&self) -> Option<&str> {
        self.synonyms.first().map(String::as_str)
    }

    /// Interpretation labels under which this concept is defined.
    #[inline]
    pub fn interpretations(&self) -> &[InterpretationId] {
        &self.interpretations
    }

    /// Whether `value` is one of this concept's synonyms.
    pub fn has_synonym(&self, value: &str) -> bool {
        self.synonyms.iter().any(|s| s == value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_id_round_trips_through_index() {
        let id = SenseId(42);
        assert_eq!(SenseId::from_index(id.index()), id);
        assert_eq!(id.to_string(), "λ42");
    }

    #[test]
    fn interpretation_id_round_trips_through_index() {
        let id = InterpretationId(7);
        assert_eq!(InterpretationId::from_index(id.index()), id);
    }

    #[test]
    fn concept_accessors() {
        let c = Concept {
            id: SenseId(3),
            label: "NSAID".into(),
            parent: Some(SenseId(0)),
            children: vec![],
            synonyms: vec!["ibuprofen".into(), "naproxen".into()],
            interpretations: vec![InterpretationId(0)],
        };
        assert_eq!(c.id(), SenseId(3));
        assert_eq!(c.label(), "NSAID");
        assert_eq!(c.parent(), Some(SenseId(0)));
        assert_eq!(c.canonical(), Some("ibuprofen"));
        assert!(c.has_synonym("naproxen"));
        assert!(!c.has_synonym("tylenol"));
        assert_eq!(c.interpretations(), &[InterpretationId(0)]);
    }
}
