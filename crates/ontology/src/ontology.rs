//! The [`Ontology`] container: a forest of concepts with a value index, plus
//! the [`OntologyRepair`] delta used by the cleaning algorithms.

use std::collections::HashMap;

use crate::concept::{Concept, InterpretationId, SenseId};
use crate::error::OntologyError;

/// A tree-shaped ontology `S`: a forest of [`Concept`] nodes with an index
/// from values to the senses containing them.
///
/// The paper assumes "values in the ontology are indexed and can be accessed
/// in constant time" (§4.3); [`Ontology::names`] provides exactly that.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    pub(crate) concepts: Vec<Concept>,
    pub(crate) interpretations: Vec<String>,
    pub(crate) roots: Vec<SenseId>,
    /// `names(v)`: for each value, the sorted list of senses whose synonym
    /// set contains it.
    pub(crate) index: HashMap<String, Vec<SenseId>>,
}

impl Ontology {
    /// An ontology with no concepts. Under an empty ontology every value has
    /// a single literal interpretation, so synonym OFDs degenerate to
    /// traditional FDs.
    pub fn empty() -> Self {
        Ontology::default()
    }

    /// Number of concepts (= senses).
    #[inline]
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the ontology has no concepts.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// All concepts, in insertion (= dense id) order.
    #[inline]
    pub fn concepts(&self) -> impl ExactSizeIterator<Item = &Concept> {
        self.concepts.iter()
    }

    /// All sense ids, in dense order.
    pub fn sense_ids(&self) -> impl ExactSizeIterator<Item = SenseId> + '_ {
        (0..self.concepts.len()).map(SenseId::from_index)
    }

    /// Looks up one concept.
    pub fn concept(&self, id: SenseId) -> Result<&Concept, OntologyError> {
        self.concepts
            .get(id.index())
            .ok_or(OntologyError::UnknownSense(id))
    }

    /// Root concepts of the forest.
    #[inline]
    pub fn roots(&self) -> &[SenseId] {
        &self.roots
    }

    /// Interpretation labels registered in this ontology (e.g. `FDA`, `MoH`).
    #[inline]
    pub fn interpretation_labels(&self) -> &[String] {
        &self.interpretations
    }

    /// The label of one interpretation.
    pub fn interpretation_label(
        &self,
        id: InterpretationId,
    ) -> Result<&str, OntologyError> {
        self.interpretations
            .get(id.index())
            .map(String::as_str)
            .ok_or(OntologyError::UnknownInterpretation(id.0))
    }

    /// `names(v)`: the senses whose synonym set contains `value`, sorted by
    /// sense id. Returns an empty slice for values unknown to the ontology.
    #[inline]
    pub fn names(&self, value: &str) -> &[SenseId] {
        self.index.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the ontology knows `value` at all.
    #[inline]
    pub fn contains_value(&self, value: &str) -> bool {
        self.index.contains_key(value)
    }

    /// Total number of distinct values across all synonym sets.
    #[inline]
    pub fn value_count(&self) -> usize {
        self.index.len()
    }

    /// Iterates over every distinct value known to the ontology.
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// `synonyms(E)`: the synonym set of sense `id`.
    pub fn synonyms(&self, id: SenseId) -> Result<&[String], OntologyError> {
        self.concept(id).map(|c| c.synonyms())
    }

    /// The canonical value of a sense: its first synonym, falling back to the
    /// concept label for synonym-less (purely structural) concepts.
    pub fn canonical(&self, id: SenseId) -> Result<&str, OntologyError> {
        self.concept(id)
            .map(|c| c.canonical().unwrap_or_else(|| c.label()))
    }

    /// The senses shared by *all* of `values` — the intersection
    /// `⋂ names(v)` from Definition 3.1. Empty input yields an empty result.
    pub fn common_sense<'a, I>(&self, values: I) -> Vec<SenseId>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut it = values.into_iter();
        let Some(first) = it.next() else {
            return Vec::new();
        };
        let mut acc: Vec<SenseId> = self.names(first).to_vec();
        for v in it {
            if acc.is_empty() {
                return acc;
            }
            let names = self.names(v);
            acc.retain(|s| names.binary_search(s).is_ok());
        }
        acc
    }

    /// All concepts in the subtree rooted at `id`, including `id` itself,
    /// in depth-first preorder.
    pub fn descendants(&self, id: SenseId) -> Result<Vec<SenseId>, OntologyError> {
        self.concept(id)?;
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            let c = &self.concepts[cur.index()];
            // Reverse keeps preorder stable (children visited left-to-right).
            stack.extend(c.children.iter().rev().copied());
        }
        Ok(out)
    }

    /// `descendants(E)` from the paper: every synonym of `id` or of any
    /// concept below it.
    pub fn descendant_values(&self, id: SenseId) -> Result<Vec<&str>, OntologyError> {
        let mut out = Vec::new();
        for d in self.descendants(id)? {
            out.extend(self.concepts[d.index()].synonyms.iter().map(String::as_str));
        }
        Ok(out)
    }

    /// Ancestors of `id` within `theta` is-a steps, paired with their
    /// distance; distance 0 is `id` itself.
    pub fn ancestors_within(
        &self,
        id: SenseId,
        theta: usize,
    ) -> Result<Vec<(SenseId, usize)>, OntologyError> {
        self.concept(id)?;
        let mut out = vec![(id, 0)];
        let mut cur = id;
        for dist in 1..=theta {
            match self.concepts[cur.index()].parent {
                Some(p) => {
                    out.push((p, dist));
                    cur = p;
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// Depth of a concept (0 for roots).
    pub fn depth(&self, id: SenseId) -> Result<usize, OntologyError> {
        self.concept(id)?;
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.concepts[cur.index()].parent {
            d += 1;
            cur = p;
        }
        Ok(d)
    }

    /// Adds a new synonym `value` to sense `id` — the paper's **ontology
    /// repair** primitive ("insertion of new value(s) to a node in S w.r.t. a
    /// sense λ", §5.1). The value index is kept sorted.
    pub fn add_synonym(
        &mut self,
        id: SenseId,
        value: impl Into<String>,
    ) -> Result<(), OntologyError> {
        let value = value.into();
        if value.is_empty() {
            return Err(OntologyError::EmptyValue { sense: id });
        }
        let idx = id.index();
        if idx >= self.concepts.len() {
            return Err(OntologyError::UnknownSense(id));
        }
        if self.concepts[idx].has_synonym(&value) {
            return Err(OntologyError::DuplicateSynonym { sense: id, value });
        }
        let senses = self.index.entry(value.clone()).or_default();
        match senses.binary_search(&id) {
            Ok(_) => unreachable!("index and synonym set out of sync"),
            Err(pos) => senses.insert(pos, id),
        }
        self.concepts[idx].synonyms.push(value);
        Ok(())
    }

    /// Applies a repair delta, returning the repaired ontology `S'` and
    /// leaving `self` untouched.
    pub fn with_repair(&self, repair: &OntologyRepair) -> Result<Ontology, OntologyError> {
        let mut s = self.clone();
        repair.apply(&mut s)?;
        Ok(s)
    }

    /// Diffs two *versions* of the same ontology (matched concept-by-concept
    /// — same count, labels and parents), returning the additions that turn
    /// `self` into `newer` as an [`OntologyRepair`], plus the values `self`
    /// has that `newer` dropped.
    ///
    /// This is the paper's §1 evolution story made operational: when a new
    /// standards release lands (e.g. the FDA's monthly drug approvals), the
    /// delta against the deployed ontology *is* an ontology repair.
    pub fn diff(
        &self,
        newer: &Ontology,
    ) -> Result<(OntologyRepair, Vec<(SenseId, String)>), OntologyError> {
        if self.concepts.len() != newer.concepts.len() {
            return Err(OntologyError::UnknownSense(SenseId::from_index(
                self.concepts.len().min(newer.concepts.len()),
            )));
        }
        let mut adds = OntologyRepair::new();
        let mut removed = Vec::new();
        for (old, new) in self.concepts.iter().zip(&newer.concepts) {
            if old.label != new.label || old.parent != new.parent {
                return Err(OntologyError::UnknownSense(old.id));
            }
            for v in &new.synonyms {
                if !old.has_synonym(v) {
                    adds.add(old.id, v.clone());
                }
            }
            for v in &old.synonyms {
                if !new.has_synonym(v) {
                    removed.push((old.id, v.clone()));
                }
            }
        }
        Ok((adds, removed))
    }

    /// The θ-expansion `S↑θ`: each concept's synonym set is widened to
    /// every value of its descendants within `theta` is-a steps (concept
    /// ids, parents and interpretations are preserved).
    ///
    /// An inheritance OFD over `S` with bound `theta` is equivalent to a
    /// *synonym* OFD over `S↑θ` — two values share an ancestor within θ
    /// exactly when some expanded concept contains both — which is how the
    /// cleaning pipeline supports inheritance semantics (the paper's stated
    /// future work) without new machinery.
    pub fn inheritance_expansion(&self, theta: usize) -> Ontology {
        let mut expanded = self.clone();
        // Collect per-concept expanded synonym lists first (reads the
        // original structure), then rebuild the index.
        let mut new_synonyms: Vec<Vec<String>> = Vec::with_capacity(self.concepts.len());
        for c in &self.concepts {
            let mut values: Vec<String> = Vec::new();
            // Descendants within theta steps of c.
            let mut stack: Vec<(SenseId, usize)> = vec![(c.id, 0)];
            while let Some((cur, depth)) = stack.pop() {
                let concept = &self.concepts[cur.index()];
                for v in &concept.synonyms {
                    if !values.contains(v) {
                        values.push(v.clone());
                    }
                }
                if depth < theta {
                    for &child in &concept.children {
                        stack.push((child, depth + 1));
                    }
                }
            }
            new_synonyms.push(values);
        }
        let mut index: HashMap<String, Vec<SenseId>> = HashMap::new();
        for (i, values) in new_synonyms.iter().enumerate() {
            for v in values {
                index.entry(v.clone()).or_default().push(SenseId::from_index(i));
            }
        }
        for senses in index.values_mut() {
            senses.sort_unstable();
            senses.dedup();
        }
        for (concept, values) in expanded.concepts.iter_mut().zip(new_synonyms) {
            concept.synonyms = values;
        }
        expanded.index = index;
        expanded
    }
}

/// A set of ontology repairs: values to insert under given senses.
///
/// `dist(S, S')` (Definition 5.2 of the repair section) is the number of new
/// values added, i.e. [`OntologyRepair::dist`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OntologyRepair {
    adds: Vec<(SenseId, String)>,
}

impl OntologyRepair {
    /// An empty repair (`S' = S`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules insertion of `value` under sense `sense`. Duplicate
    /// (sense, value) pairs are ignored so `dist` counts distinct additions.
    pub fn add(&mut self, sense: SenseId, value: impl Into<String>) -> &mut Self {
        let value = value.into();
        if !self.adds.iter().any(|(s, v)| *s == sense && *v == value) {
            self.adds.push((sense, value));
        }
        self
    }

    /// The scheduled additions.
    pub fn adds(&self) -> &[(SenseId, String)] {
        &self.adds
    }

    /// `dist(S, S')`: number of values this repair adds.
    pub fn dist(&self) -> usize {
        self.adds.len()
    }

    /// Whether the repair is empty.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty()
    }

    /// Applies the repair to `onto` in place.
    pub fn apply(&self, onto: &mut Ontology) -> Result<(), OntologyError> {
        for (sense, value) in &self.adds {
            onto.add_synonym(*sense, value.clone())?;
        }
        Ok(())
    }

    /// Merges another repair into this one (deduplicating).
    pub fn extend_from(&mut self, other: &OntologyRepair) {
        for (s, v) in &other.adds {
            self.add(*s, v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OntologyBuilder;

    fn small() -> (Ontology, SenseId, SenseId, SenseId) {
        let mut b = OntologyBuilder::new();
        let fda = b.interpretation("FDA");
        let root = b.concept("drug").build().unwrap();
        let nsaid = b
            .concept("NSAID")
            .parent(root)
            .synonyms(["ibuprofen", "naproxen", "NSAID"])
            .interpretations([fda])
            .build()
            .unwrap();
        let dilt = b
            .concept("diltiazem")
            .parent(root)
            .synonyms(["cartia", "tiazac"])
            .build()
            .unwrap();
        (b.finish().unwrap(), root, nsaid, dilt)
    }

    #[test]
    fn names_and_common_sense() {
        let (o, _, nsaid, dilt) = small();
        assert_eq!(o.names("ibuprofen"), &[nsaid]);
        assert_eq!(o.names("cartia"), &[dilt]);
        assert_eq!(o.names("unknown"), &[] as &[SenseId]);
        assert_eq!(o.common_sense(["ibuprofen", "naproxen"]), vec![nsaid]);
        assert!(o.common_sense(["ibuprofen", "cartia"]).is_empty());
        assert!(o.common_sense(std::iter::empty()).is_empty());
    }

    #[test]
    fn descendants_and_values() {
        let (o, root, nsaid, dilt) = small();
        let d = o.descendants(root).unwrap();
        assert_eq!(d, vec![root, nsaid, dilt]);
        let vals = o.descendant_values(root).unwrap();
        assert_eq!(vals, vec!["ibuprofen", "naproxen", "NSAID", "cartia", "tiazac"]);
    }

    #[test]
    fn ancestors_and_depth() {
        let (o, root, nsaid, _) = small();
        assert_eq!(o.depth(root).unwrap(), 0);
        assert_eq!(o.depth(nsaid).unwrap(), 1);
        let a = o.ancestors_within(nsaid, 5).unwrap();
        assert_eq!(a, vec![(nsaid, 0), (root, 1)]);
        let a0 = o.ancestors_within(nsaid, 0).unwrap();
        assert_eq!(a0, vec![(nsaid, 0)]);
    }

    #[test]
    fn canonical_falls_back_to_label() {
        let (o, root, nsaid, _) = small();
        assert_eq!(o.canonical(nsaid).unwrap(), "ibuprofen");
        assert_eq!(o.canonical(root).unwrap(), "drug");
    }

    #[test]
    fn add_synonym_updates_index() {
        let (mut o, _, _, dilt) = small();
        assert!(!o.contains_value("adizem"));
        o.add_synonym(dilt, "adizem").unwrap();
        assert_eq!(o.names("adizem"), &[dilt]);
        assert!(o.concept(dilt).unwrap().has_synonym("adizem"));
        // Duplicate within the same sense is rejected.
        let err = o.add_synonym(dilt, "adizem").unwrap_err();
        assert!(matches!(err, OntologyError::DuplicateSynonym { .. }));
        // Same value under a *different* sense is fine (multi-sense values).
        let nsaid = o.names("ibuprofen")[0];
        o.add_synonym(nsaid, "adizem").unwrap();
        assert_eq!(o.names("adizem").len(), 2);
    }

    #[test]
    fn add_synonym_rejects_bad_inputs() {
        let (mut o, _, _, dilt) = small();
        assert!(matches!(
            o.add_synonym(dilt, ""),
            Err(OntologyError::EmptyValue { .. })
        ));
        assert!(matches!(
            o.add_synonym(SenseId::from_index(999), "x"),
            Err(OntologyError::UnknownSense(_))
        ));
    }

    #[test]
    fn repair_delta_applies_without_mutating_base() {
        let (o, _, nsaid, dilt) = small();
        let mut r = OntologyRepair::new();
        r.add(dilt, "adizem").add(nsaid, "advil").add(dilt, "adizem");
        assert_eq!(r.dist(), 2);
        let s2 = o.with_repair(&r).unwrap();
        assert!(s2.contains_value("adizem"));
        assert!(s2.contains_value("advil"));
        assert!(!o.contains_value("adizem"));
    }

    #[test]
    fn repair_merge_dedups() {
        let (_, _, nsaid, dilt) = small();
        let mut a = OntologyRepair::new();
        a.add(dilt, "x");
        let mut b = OntologyRepair::new();
        b.add(dilt, "x").add(nsaid, "y");
        a.extend_from(&b);
        assert_eq!(a.dist(), 2);
    }

    #[test]
    fn empty_ontology_behaves_like_no_knowledge() {
        let o = Ontology::empty();
        assert!(o.is_empty());
        assert_eq!(o.names("anything"), &[] as &[SenseId]);
        assert!(o.common_sense(["a", "b"]).is_empty());
        assert_eq!(o.value_count(), 0);
    }

    #[test]
    fn diff_recovers_the_applied_repair() {
        let (base, _, nsaid, dilt) = small();
        let mut repair = OntologyRepair::new();
        repair.add(dilt, "adizem").add(nsaid, "advil");
        let newer = base.with_repair(&repair).unwrap();
        let (adds, removed) = base.diff(&newer).unwrap();
        let canon = |r: &OntologyRepair| {
            let mut v: Vec<_> = r.adds().to_vec();
            v.sort();
            v
        };
        assert_eq!(canon(&adds), canon(&repair), "diff must reproduce the repair delta");
        assert!(removed.is_empty());
        // Reverse direction: the additions show up as removals.
        let (rev_adds, rev_removed) = newer.diff(&base).unwrap();
        assert!(rev_adds.is_empty());
        assert_eq!(rev_removed.len(), 2);
        // Applying the diff reproduces the newer version.
        let rebuilt = base.with_repair(&adds).unwrap();
        for (a, b) in rebuilt.concepts().zip(newer.concepts()) {
            assert_eq!(a.synonyms(), b.synonyms());
        }
    }

    #[test]
    fn diff_rejects_structural_mismatch() {
        let (base, ..) = small();
        let other = crate::samples::country_ontology();
        assert!(base.diff(&other).is_err());
    }

    #[test]
    fn inheritance_expansion_widens_concepts() {
        let (o, root, nsaid, dilt) = small();
        let e0 = o.inheritance_expansion(0);
        // θ = 0: identical synonym sets.
        for (a, b) in o.concepts().zip(e0.concepts()) {
            assert_eq!(a.synonyms(), b.synonyms());
        }
        let e1 = o.inheritance_expansion(1);
        // θ = 1: the root absorbs its children's values.
        let root_syns = e1.concept(root).unwrap().synonyms();
        assert!(root_syns.iter().any(|s| s == "ibuprofen"));
        assert!(root_syns.iter().any(|s| s == "cartia"));
        // Leaves are unchanged.
        assert_eq!(e1.concept(nsaid).unwrap().synonyms().len(), 3);
        assert_eq!(e1.concept(dilt).unwrap().synonyms().len(), 2);
        // The index reflects the widened membership.
        assert!(e1.names("ibuprofen").contains(&root));
        assert!(e1.names("ibuprofen").contains(&nsaid));
        // Inheritance-as-synonym equivalence: ibuprofen and cartia share
        // the root ancestor within θ = 1.
        assert!(!e1.common_sense(["ibuprofen", "cartia"]).is_empty());
        assert!(o.common_sense(["ibuprofen", "cartia"]).is_empty());
    }

    #[test]
    fn sense_ids_are_dense() {
        let (o, ..) = small();
        let ids: Vec<_> = o.sense_ids().collect();
        assert_eq!(ids.len(), o.len());
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }
}
