//! Ready-made sample ontologies reproducing the paper's running examples:
//! the medical drug ontology of Figure 1 and the geographic ontology behind
//! Example 2.2. Used throughout the workspace's tests, examples and docs.

use crate::builder::OntologyBuilder;
use crate::ontology::Ontology;

/// The medical drug ontology of the paper's Figure 1.
///
/// * `ibuprofen` and `naproxen` are `NSAID`s;
/// * `tylenol` is an `acetaminophen`, which is-a `analgesic`;
/// * `cartia` and `tiazac` are `diltiazem hydrochloride` under the **FDA**
///   interpretation;
/// * `cartia` and `ASA` are equivalent under the **MoH** (Israel Ministry of
///   Health) interpretation;
/// * `adizem` is deliberately *absent* — Example 1.2 uses it as the value
///   that forces an ontology repair.
pub fn medical_drug_ontology() -> Ontology {
    let mut b = OntologyBuilder::new();
    let fda = b.interpretation("FDA");
    let moh = b.interpretation("MoH");

    let root = b.concept("continuant drug").build().expect("root");
    b.concept("NSAID")
        .parent(root)
        .synonyms(["NSAID", "ibuprofen", "naproxen"])
        .interpretations([fda])
        .build()
        .expect("nsaid");
    let analgesic = b
        .concept("analgesic")
        .parent(root)
        .synonyms(["analgesic"])
        .interpretations([fda])
        .build()
        .expect("analgesic");
    b.concept("acetaminophen")
        .parent(analgesic)
        .synonyms(["acetaminophen", "tylenol"])
        .interpretations([fda])
        .build()
        .expect("acetaminophen");
    b.concept("opioid")
        .parent(analgesic)
        .synonyms(["opioid", "morphine"])
        .interpretations([fda])
        .build()
        .expect("opioid");
    b.concept("diltiazem hydrochloride")
        .parent(root)
        .synonyms(["cartia", "tiazac"])
        .interpretations([fda])
        .build()
        .expect("diltiazem");
    b.concept("acetylsalicylic acid")
        .parent(root)
        .synonyms(["cartia", "ASA", "aspirin"])
        .interpretations([moh])
        .build()
        .expect("asa");

    b.finish().expect("medical ontology")
}

/// The geographic ontology behind Example 2.2: country names with their
/// synonym sets.
///
/// `names("United States") ∩ names("America") ∩ names("USA")` is the single
/// class *United States of America*; `Bharat` is synonymous with `India`.
pub fn country_ontology() -> Ontology {
    let mut b = OntologyBuilder::new();
    let geo = b.interpretation("GEO");
    let root = b.concept("country").build().expect("root");
    b.concept("United States of America")
        .parent(root)
        .synonyms(["USA", "America", "United States"])
        .interpretations([geo])
        .build()
        .expect("usa");
    b.concept("India")
        .parent(root)
        .synonyms(["India", "Bharat"])
        .interpretations([geo])
        .build()
        .expect("india");
    b.concept("Canada")
        .parent(root)
        .synonyms(["Canada"])
        .interpretations([geo])
        .build()
        .expect("canada");
    b.finish().expect("country ontology")
}

/// Country *code* ontology used by the false-positive experiment (§7 Exp-5):
/// under a traditional FD, `CA`, `CAN` and `CAD` all mapping to `Canada`
/// would be flagged as errors; here they are synonyms. The `ISO` and `UN`
/// interpretations illustrate codes varying by standard (§1).
pub fn country_code_ontology() -> Ontology {
    let mut b = OntologyBuilder::new();
    let iso = b.interpretation("ISO");
    let un = b.interpretation("UN");
    let root = b.concept("country code").build().expect("root");
    b.concept("Canada code")
        .parent(root)
        .synonyms(["CA", "CAN", "CAD"])
        .interpretations([iso, un])
        .build()
        .expect("ca");
    b.concept("United States code")
        .parent(root)
        .synonyms(["US", "USA"])
        .interpretations([iso])
        .build()
        .expect("us");
    b.concept("India code")
        .parent(root)
        .synonyms(["IN", "IND"])
        .interpretations([iso, un])
        .build()
        .expect("in");
    b.finish().expect("country code ontology")
}

/// Country and medical-drug ontologies merged into one forest — the overall
/// domain knowledge behind the paper's Table 1 running example, suitable for
/// discovery over all attributes at once.
pub fn combined_paper_ontology() -> Ontology {
    let mut b = OntologyBuilder::new();
    let fda = b.interpretation("FDA");
    let moh = b.interpretation("MoH");
    let geo = b.interpretation("GEO");

    // Geographic branch.
    let country = b.concept("country").build().expect("country root");
    b.concept("United States of America")
        .parent(country)
        .synonyms(["USA", "America", "United States"])
        .interpretations([geo])
        .build()
        .expect("usa");
    b.concept("India")
        .parent(country)
        .synonyms(["India", "Bharat"])
        .interpretations([geo])
        .build()
        .expect("india");
    b.concept("Canada")
        .parent(country)
        .synonyms(["Canada"])
        .interpretations([geo])
        .build()
        .expect("canada");

    // Medical branch (Figure 1).
    let root = b.concept("continuant drug").build().expect("drug root");
    b.concept("NSAID")
        .parent(root)
        .synonyms(["NSAID", "ibuprofen", "naproxen"])
        .interpretations([fda])
        .build()
        .expect("nsaid");
    let analgesic = b
        .concept("analgesic")
        .parent(root)
        .synonyms(["analgesic"])
        .interpretations([fda])
        .build()
        .expect("analgesic");
    b.concept("acetaminophen")
        .parent(analgesic)
        .synonyms(["acetaminophen", "tylenol"])
        .interpretations([fda])
        .build()
        .expect("acetaminophen");
    b.concept("opioid")
        .parent(analgesic)
        .synonyms(["opioid", "morphine"])
        .interpretations([fda])
        .build()
        .expect("opioid");
    b.concept("diltiazem hydrochloride")
        .parent(root)
        .synonyms(["cartia", "tiazac"])
        .interpretations([fda])
        .build()
        .expect("diltiazem");
    b.concept("acetylsalicylic acid")
        .parent(root)
        .synonyms(["cartia", "ASA", "aspirin"])
        .interpretations([moh])
        .build()
        .expect("asa");

    b.finish().expect("combined ontology")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_synonym_facts() {
        let o = medical_drug_ontology();
        // ibuprofen and naproxen share the NSAID class.
        assert!(!o.common_sense(["ibuprofen", "naproxen"]).is_empty());
        // cartia and tiazac are synonyms under FDA.
        assert!(!o.common_sense(["cartia", "tiazac"]).is_empty());
        // cartia and ASA are synonyms under MoH.
        assert!(!o.common_sense(["cartia", "ASA"]).is_empty());
        // ...but tiazac and ASA share no sense: cartia is the only bridge.
        assert!(o.common_sense(["tiazac", "ASA"]).is_empty());
        // Example 1.2: no sense makes {ASA, cartia, tiazac} all equivalent.
        assert!(o.common_sense(["ASA", "cartia", "tiazac"]).is_empty());
        // adizem is absent (it is the ontology-repair candidate).
        assert!(!o.contains_value("adizem"));
    }

    #[test]
    fn figure1_is_a_structure() {
        let o = medical_drug_ontology();
        let tylenol_senses = o.names("tylenol");
        assert_eq!(tylenol_senses.len(), 1);
        let acetaminophen = tylenol_senses[0];
        // acetaminophen is-a analgesic is-a continuant drug.
        assert_eq!(o.depth(acetaminophen).unwrap(), 2);
        let ancestors = o.ancestors_within(acetaminophen, 2).unwrap();
        let labels: Vec<&str> = ancestors
            .iter()
            .map(|(s, _)| o.concept(*s).unwrap().label())
            .collect();
        assert_eq!(labels, vec!["acetaminophen", "analgesic", "continuant drug"]);
    }

    #[test]
    fn example_2_2_country_intersection() {
        let o = country_ontology();
        let common = o.common_sense(["United States", "America", "USA"]);
        assert_eq!(common.len(), 1);
        assert_eq!(
            o.concept(common[0]).unwrap().label(),
            "United States of America"
        );
        assert!(!o.common_sense(["India", "Bharat"]).is_empty());
        assert!(o.common_sense(["India", "Canada"]).is_empty());
    }

    #[test]
    fn cartia_has_two_senses() {
        let o = medical_drug_ontology();
        assert_eq!(o.names("cartia").len(), 2, "cartia is FDA- and MoH-ambiguous");
    }

    #[test]
    fn combined_ontology_covers_both_domains() {
        let o = combined_paper_ontology();
        assert!(!o.common_sense(["USA", "America"]).is_empty());
        assert!(!o.common_sense(["cartia", "tiazac"]).is_empty());
        assert!(o.common_sense(["USA", "cartia"]).is_empty());
    }

    #[test]
    fn code_ontology_covers_multiple_standards() {
        let o = country_code_ontology();
        assert!(!o.common_sense(["CA", "CAN", "CAD"]).is_empty());
        assert!(o.common_sense(["CA", "US"]).is_empty());
    }
}
