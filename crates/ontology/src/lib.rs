#![warn(missing_docs)]
//! # ofd-ontology
//!
//! Tree-shaped ontologies with *senses* for Ontology Functional Dependencies
//! (OFDs), as defined in *"FastOFD: Contextual Data Cleaning with Ontology
//! Functional Dependencies"* and its extended version.
//!
//! An [`Ontology`] is a forest of [`Concept`] nodes. Each concept carries a
//! set of **synonym** values (the first synonym is its *canonical* value) and
//! optional **interpretation** labels (e.g. `FDA` vs `MoH`, `ISO` vs `UN`)
//! recording under which real-world standard the concept's synonym set is
//! meaningful. Following the paper, a concept doubles as a **sense**: the
//! interpretation under which a group of attribute values are all synonyms.
//!
//! The three primitives from the paper's §2 map onto this API:
//!
//! * `synonyms(E)` → [`Ontology::synonyms`]
//! * `names(C)`    → [`Ontology::names`] (constant-time via a value index)
//! * `descendants(E)` → [`Ontology::descendant_values`]
//!
//! ```
//! use ofd_ontology::OntologyBuilder;
//!
//! let mut b = OntologyBuilder::new();
//! let fda = b.interpretation("FDA");
//! let root = b.concept("continuant drug").build().unwrap();
//! let dilt = b
//!     .concept("diltiazem hydrochloride")
//!     .parent(root)
//!     .synonyms(["cartia", "tiazac"])
//!     .interpretations([fda])
//!     .build()
//!     .unwrap();
//! let onto = b.finish().unwrap();
//!
//! assert_eq!(onto.names("cartia"), &[dilt]);
//! assert_eq!(onto.canonical(dilt).unwrap(), "cartia");
//! assert!(onto.common_sense(["cartia", "tiazac"]).contains(&dilt));
//! ```

mod builder;
mod concept;
mod error;
mod ontology;
pub mod samples;
mod text;

pub use builder::{ConceptBuilder, OntologyBuilder};
pub use concept::{Concept, InterpretationId, SenseId};
pub use error::OntologyError;
pub use ontology::{Ontology, OntologyRepair};
pub use text::{parse_ontology, write_ontology};
