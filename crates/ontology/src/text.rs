//! A small line-based text format for persisting ontologies.
//!
//! ```text
//! ONTO v1
//! I FDA
//! I MoH
//! C - -\tcontinuant drug
//! C 0 0,1\tdiltiazem hydrochloride\tcartia\ttiazac
//! ```
//!
//! * `I <label>` registers an interpretation.
//! * `C <parent|-> <interps|->\t<label>[\t<synonym>...]` adds a concept;
//!   concept ids are implicit (0-based, in file order), so a parent always
//!   refers to an earlier line, which preserves the forest invariant.
//! * Blank lines and lines starting with `#` are ignored.

use crate::builder::OntologyBuilder;
use crate::concept::{InterpretationId, SenseId};
use crate::error::OntologyError;
use crate::ontology::Ontology;

const HEADER: &str = "ONTO v1";

/// Serializes an ontology to the text format.
pub fn write_ontology(onto: &Ontology) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for label in onto.interpretation_labels() {
        out.push_str("I ");
        out.push_str(label);
        out.push('\n');
    }
    for c in onto.concepts() {
        out.push_str("C ");
        match c.parent() {
            Some(p) => out.push_str(&p.index().to_string()),
            None => out.push('-'),
        }
        out.push(' ');
        if c.interpretations().is_empty() {
            out.push('-');
        } else {
            let interps: Vec<String> = c
                .interpretations()
                .iter()
                .map(|i| i.index().to_string())
                .collect();
            out.push_str(&interps.join(","));
        }
        out.push('\t');
        out.push_str(c.label());
        for s in c.synonyms() {
            out.push('\t');
            out.push_str(s);
        }
        out.push('\n');
    }
    out
}

fn parse_err(line: usize, message: impl Into<String>) -> OntologyError {
    OntologyError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses the text format produced by [`write_ontology`].
pub fn parse_ontology(text: &str) -> Result<Ontology, OntologyError> {
    let mut lines = text.lines().enumerate();
    let header = lines
        .by_ref()
        .map(|(i, l)| (i, l.trim_end()))
        .find(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .ok_or_else(|| parse_err(1, "empty input"))?;
    if header.1 != HEADER {
        return Err(parse_err(header.0 + 1, format!("expected {HEADER:?} header")));
    }

    let mut b = OntologyBuilder::new();
    for (i, raw) in lines {
        let lineno = i + 1;
        let line = raw.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("I ") {
            let label = rest.trim();
            if label.is_empty() {
                return Err(parse_err(lineno, "empty interpretation label"));
            }
            b.interpretation(label);
        } else if let Some(rest) = line.strip_prefix("C ") {
            let mut fields = rest.split('\t');
            let head = fields
                .next()
                .ok_or_else(|| parse_err(lineno, "missing concept head"))?;
            let mut head_it = head.split_whitespace();
            let parent_tok = head_it
                .next()
                .ok_or_else(|| parse_err(lineno, "missing parent field"))?;
            let interp_tok = head_it
                .next()
                .ok_or_else(|| parse_err(lineno, "missing interpretations field"))?;
            if head_it.next().is_some() {
                return Err(parse_err(lineno, "trailing tokens in concept head"));
            }
            let parent = if parent_tok == "-" {
                None
            } else {
                let idx: usize = parent_tok
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad parent {parent_tok:?}")))?;
                // Range-check before `from_index`, which panics past u32.
                if u32::try_from(idx).is_err() {
                    return Err(parse_err(lineno, format!("parent id {idx} out of range")));
                }
                Some(SenseId::from_index(idx))
            };
            let mut interps = Vec::new();
            if interp_tok != "-" {
                for part in interp_tok.split(',') {
                    let idx: usize = part.parse().map_err(|_| {
                        parse_err(lineno, format!("bad interpretation {part:?}"))
                    })?;
                    if u16::try_from(idx).is_err() {
                        return Err(parse_err(
                            lineno,
                            format!("interpretation id {idx} out of range"),
                        ));
                    }
                    interps.push(InterpretationId::from_index(idx));
                }
            }
            let label = fields
                .next()
                .ok_or_else(|| parse_err(lineno, "missing concept label"))?;
            let synonyms: Vec<&str> = fields.collect();
            let mut cb = b.concept(label).synonyms(synonyms).interpretations(interps);
            if let Some(p) = parent {
                cb = cb.parent(p);
            }
            cb.build()
                .map_err(|e| parse_err(lineno, e.to_string()))?;
        } else {
            return Err(parse_err(lineno, format!("unrecognized line {line:?}")));
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn round_trips_the_medical_ontology() {
        let o = samples::medical_drug_ontology();
        let text = write_ontology(&o);
        let o2 = parse_ontology(&text).unwrap();
        assert_eq!(o.len(), o2.len());
        assert_eq!(o.interpretation_labels(), o2.interpretation_labels());
        for (a, b) in o.concepts().zip(o2.concepts()) {
            assert_eq!(a.label(), b.label());
            assert_eq!(a.parent(), b.parent());
            assert_eq!(a.synonyms(), b.synonyms());
            assert_eq!(a.interpretations(), b.interpretations());
        }
        // Index behaves identically.
        for v in o.values() {
            assert_eq!(o.names(v), o2.names(v));
        }
    }

    #[test]
    fn ignores_comments_and_blank_lines() {
        let text = "# a comment\n\nONTO v1\n# more\nI ISO\nC - 0\tcountry\tUSA\tAmerica\n\n";
        let o = parse_ontology(text).unwrap();
        assert_eq!(o.len(), 1);
        assert_eq!(o.names("USA"), o.names("America"));
    }

    #[test]
    fn rejects_bad_header() {
        let err = parse_ontology("ONTO v999\n").unwrap_err();
        assert!(matches!(err, OntologyError::Parse { .. }));
    }

    #[test]
    fn rejects_forward_parent_reference() {
        let text = "ONTO v1\nC 1 -\tchild\nC - -\troot\n";
        let err = parse_ontology(text).unwrap_err();
        assert!(matches!(err, OntologyError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_unknown_line_kind() {
        let err = parse_ontology("ONTO v1\nX nonsense\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unrecognized"), "{msg}");
    }

    #[test]
    fn rejects_bad_interpretation_ref() {
        let text = "ONTO v1\nC - 5\troot\n";
        assert!(parse_ontology(text).is_err());
    }

    #[test]
    fn rejects_out_of_range_ids_without_panicking() {
        // Ids that parse as usize but exceed the id types' width must be
        // a typed parse error, not a panic.
        let big_parent = format!("ONTO v1\nC - -\troot\nC {} -\tchild\n", u64::from(u32::MAX) + 1);
        let err = parse_ontology(&big_parent).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let big_interp = format!("ONTO v1\nC - {}\troot\n", u32::from(u16::MAX) + 1);
        let err = parse_ontology(&big_interp).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    mod properties {
        use super::*;
        use crate::builder::OntologyBuilder;
        use proptest::prelude::*;

        fn arb_ontology() -> impl Strategy<Value = crate::Ontology> {
            // Random forest: per concept an optional parent among earlier
            // ids, 0-3 synonyms from a small vocabulary, 0-2 interpretations.
            let concept = (
                proptest::option::of(0usize..8),
                prop::collection::vec(0u8..20, 0..4),
                prop::collection::vec(0usize..3, 0..3),
            );
            prop::collection::vec(concept, 0..10).prop_map(|specs| {
                let mut b = OntologyBuilder::new();
                for i in 0..3 {
                    b.interpretation(format!("I{i}"));
                }
                for (ci, (parent, syns, interps)) in specs.iter().enumerate() {
                    let mut cb = b.concept(format!("c{ci}"));
                    if let Some(p) = parent {
                        if *p < ci {
                            cb = cb.parent(crate::SenseId::from_index(*p));
                        }
                    }
                    let mut values: Vec<String> =
                        syns.iter().map(|v| format!("w{v}")).collect();
                    values.sort();
                    values.dedup();
                    cb = cb.synonyms(values);
                    let mut labels: Vec<_> = interps
                        .iter()
                        .map(|&i| crate::InterpretationId::from_index(i))
                        .collect();
                    labels.sort();
                    labels.dedup();
                    cb.interpretations(labels).build().expect("valid concept");
                }
                b.finish().expect("valid ontology")
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// write ∘ parse is the identity on structure and index.
            #[test]
            fn text_round_trip(onto in arb_ontology()) {
                let text = write_ontology(&onto);
                let back = parse_ontology(&text).expect("parses");
                prop_assert_eq!(onto.len(), back.len());
                for (a, b) in onto.concepts().zip(back.concepts()) {
                    prop_assert_eq!(a.label(), b.label());
                    prop_assert_eq!(a.parent(), b.parent());
                    prop_assert_eq!(a.synonyms(), b.synonyms());
                    prop_assert_eq!(a.interpretations(), b.interpretations());
                }
                for v in onto.values() {
                    prop_assert_eq!(onto.names(v), back.names(v));
                }
            }

            /// The parser never panics on arbitrary input — it returns
            /// a structured error or a valid ontology.
            #[test]
            fn parser_is_total(input in ".{0,400}") {
                match parse_ontology(&input) {
                    Ok(onto) => {
                        // Whatever parsed must re-serialize and re-parse.
                        let again = parse_ontology(&write_ontology(&onto));
                        prop_assert!(again.is_ok());
                    }
                    Err(OntologyError::Parse { line, .. }) => prop_assert!(line >= 1),
                    Err(_) => {}
                }
            }

            /// θ-expansion is monotone in θ and the identity at θ = 0.
            #[test]
            fn expansion_monotone(onto in arb_ontology(), theta in 0usize..4) {
                let e0 = onto.inheritance_expansion(0);
                for (a, b) in onto.concepts().zip(e0.concepts()) {
                    prop_assert_eq!(a.synonyms(), b.synonyms());
                }
                let et = onto.inheritance_expansion(theta);
                let et1 = onto.inheritance_expansion(theta + 1);
                for v in onto.values() {
                    let small = et.names(v);
                    let big = et1.names(v);
                    for s in small {
                        prop_assert!(big.contains(s), "expansion must grow");
                    }
                }
            }
        }
    }

    #[test]
    fn values_with_spaces_survive() {
        let text = "ONTO v1\nC - -\tUnited States of America\tUnited States\tUSA\n";
        let o = parse_ontology(text).unwrap();
        assert!(o.contains_value("United States"));
        let back = write_ontology(&o);
        let o2 = parse_ontology(&back).unwrap();
        assert!(o2.contains_value("United States"));
    }
}
