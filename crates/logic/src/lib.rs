#![warn(missing_docs)]
//! # ofd-logic
//!
//! The formal framework of §3: a sound and complete axiomatization for OFDs
//! (Identity, Decomposition, Composition — Theorem 3.3), the linear-time
//! closure / inference procedure (Algorithm 1, Theorem 3.7), minimal covers
//! (Definition 3.8), and a small derivation engine that produces explicit
//! axiom-level proofs.
//!
//! OFD inference is *kind-agnostic*: the paper shows the OFD axiom system is
//! equivalent to Lien's NFD system (Theorem 3.5), so implication depends
//! only on the attribute-set shape of the dependencies, never on the
//! ontology. This crate therefore works on bare `(lhs, rhs)` pairs
//! ([`Dependency`]) convertible from both [`ofd_core::Fd`] and
//! [`ofd_core::Ofd`].
//!
//! A notable *non*-theorem: **Transitivity fails for OFDs** (Example 3.2).
//! The test `transitivity_counterexample` reproduces the paper's
//! three-tuple instance where `A →syn B` and `B →syn C` hold but
//! `A →syn C` does not — which is exactly why the axiom system above, and
//! not Armstrong's, is used for OFD pruning.

mod axioms;
mod closure;
mod cover;
mod derive;
pub mod nfd;
mod types;

pub use axioms::{augmentation, composition, decomposition, identity, reflexivity, union};
pub use closure::{closure, closure_naive, equivalent, implies};
pub use cover::{is_minimal_cover, minimal_cover, remove_extraneous_lhs};
pub use derive::{derive, Derivation, Rule, Step};
pub use types::Dependency;
