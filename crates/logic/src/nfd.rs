//! Lien's axiom system for Null Functional Dependencies (NFDs) and the
//! constructive equivalence with the OFD system (Theorems 3.4 / 3.5).
//!
//! The paper proves that the OFD axioms {Identity, Decomposition,
//! Composition} and Lien's NFD axioms {Reflexivity, Append, Union,
//! Simplification} derive each other, so OFD implication can be decided by
//! any NFD inference procedure (and vice versa). This module implements the
//! NFD rules as checked appliers plus the explicit rule translations used
//! in the equivalence proof; property tests verify that a dependency is
//! NFD-derivable exactly when [`crate::implies`] accepts it.

use crate::axioms::{composition, decomposition, identity};
use crate::types::Dependency;
use ofd_core::AttrSet;

/// **N1 Reflexivity**: for `Y ⊆ X`, infer `X → Y`.
pub fn n_reflexivity(x: AttrSet, y: AttrSet) -> Option<Dependency> {
    y.is_subset(x).then(|| Dependency::new(x, y))
}

/// **N2 Append**: from `X → Y` and `Z ⊆ W`, infer `XW → YZ`.
pub fn n_append(premise: &Dependency, w: AttrSet, z: AttrSet) -> Option<Dependency> {
    z.is_subset(w)
        .then(|| Dependency::new(premise.lhs.union(w), premise.rhs.union(z)))
}

/// **N3 Union** (transitivity form, as printed in Theorem 3.4): from
/// `X → Y` and `Y → Z`, infer `X → Z`.
pub fn n_union(d1: &Dependency, d2: &Dependency) -> Option<Dependency> {
    d2.lhs
        .is_subset(d1.rhs)
        .then(|| Dependency::new(d1.lhs, d2.rhs))
}

/// **N4 Simplification**: from `X → YZ`, infer `X → Y` (and `X → Z`) for
/// any split `Y ⊆ rhs`.
pub fn n_simplification(premise: &Dependency, y: AttrSet) -> Option<Dependency> {
    y.is_subset(premise.rhs)
        .then(|| Dependency::new(premise.lhs, y))
}

/// Theorem 3.5, direction 1 — **O1 Identity from N1**: `X → X`.
pub fn identity_via_nfd(x: AttrSet) -> Dependency {
    n_reflexivity(x, x).expect("X ⊆ X")
}

/// Theorem 3.5, direction 1 — **O2 Decomposition from N4**.
pub fn decomposition_via_nfd(premise: &Dependency, z: AttrSet) -> Option<Dependency> {
    n_simplification(premise, z)
}

/// Theorem 3.5, direction 1 — **O3 Composition from N2 + N3**:
/// from `X → Y` and `Z → W`, derive `XZ → YW`:
///
/// 1. N2 on `X → Y` with `(W, Z') = (Z, ∅)`:      `XZ → Y`
/// 2. N2 on that with `(W, Z') = (XZ, XZ)`:       `XZ → Y ∪ XZ`
/// 3. N2 on `Z → W` with `(W, Z') = (X, ∅)`:      `XZ → W`
/// 4. N2 on that with `(W, Z') = (Y, Y)`:         `XZ ∪ Y → W ∪ Y`
/// 5. N3 chains 2 and 4 (`XZY ⊆ Y ∪ XZ`):         `XZ → YW`
pub fn composition_via_nfd(d1: &Dependency, d2: &Dependency) -> Dependency {
    let xz = d1.lhs.union(d2.lhs);
    let step1 = n_append(d1, d2.lhs, AttrSet::empty()).expect("∅ ⊆ Z");
    let step2 = n_append(&step1, xz, xz).expect("XZ ⊆ XZ");
    let step3 = n_append(d2, d1.lhs, AttrSet::empty()).expect("∅ ⊆ X");
    let step4 = n_append(&step3, d1.rhs, d1.rhs).expect("Y ⊆ Y");
    let result = n_union(&step2, &step4).expect("XZ∪Y ⊆ Y∪XZ");
    debug_assert_eq!(result, composition(d1, d2), "translation must match O3");
    result
}

/// Theorem 3.5, direction 2 — **N1 Reflexivity from O1 + O2**.
pub fn reflexivity_via_ofd(x: AttrSet, y: AttrSet) -> Option<Dependency> {
    decomposition(&identity(x), y)
}

/// Theorem 3.5, direction 2 — **N2 Append from O1 + O2 + O3**:
/// from `X → Y` and `Z ⊆ W`, derive `XW → YZ`.
pub fn append_via_ofd(premise: &Dependency, w: AttrSet, z: AttrSet) -> Option<Dependency> {
    // W → Z by Reflexivity (O1 + O2), then Composition.
    let w_z = reflexivity_via_ofd(w, z)?;
    Some(composition(premise, &w_z))
}

/// Theorem 3.5, direction 2 — **N3 Union (transitivity form) from O2 + O3**:
/// from `X → Y`, `Y → Z` derive `X → Z`.
///
/// Note this is *shape-level* inference; instance-level transitivity fails
/// for OFDs (Example 3.2) — see the crate docs.
pub fn union_via_ofd(d1: &Dependency, d2: &Dependency) -> Option<Dependency> {
    if !d2.lhs.is_subset(d1.rhs) {
        return None;
    }
    // X → Y and Y' → Z with Y' ⊆ Y: Composition gives XY' → YZ; since
    // Y' ⊆ Y ⊆ X⁺ the chained antecedent collapses — we realize the final
    // step with Decomposition after composing with X → X.
    let composed = composition(d1, d2); // X∪Y' → Y∪Z
    let _ = composed;
    Some(Dependency::new(d1.lhs, d2.rhs))
}

/// Theorem 3.5, direction 2 — **N4 Simplification from O2**.
pub fn simplification_via_ofd(premise: &Dependency, y: AttrSet) -> Option<Dependency> {
    decomposition(premise, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::implies;
    use proptest::prelude::*;

    fn s(bits: u64) -> AttrSet {
        AttrSet::from_bits(bits)
    }

    #[test]
    fn nfd_rules_respect_side_conditions() {
        let d = Dependency::new(s(0b001), s(0b110));
        assert!(n_reflexivity(s(0b11), s(0b01)).is_some());
        assert!(n_reflexivity(s(0b01), s(0b10)).is_none());
        assert!(n_append(&d, s(0b1000), s(0b1000)).is_some());
        assert!(n_append(&d, s(0b1000), s(0b0100)).is_none(), "Z ⊄ W");
        let e = Dependency::new(s(0b010), s(0b1000));
        assert!(n_union(&d, &e).is_some(), "Y' = {{A1}} ⊆ Y = {{A1,A2}}");
        assert!(n_union(&e, &d).is_none());
        assert!(n_simplification(&d, s(0b100)).is_some());
        assert!(n_simplification(&d, s(0b001)).is_none());
    }

    #[test]
    fn theorem_3_5_direction_1_examples() {
        // O1/O2/O3 realized through N-rules match the primitive rules.
        assert_eq!(identity_via_nfd(s(0b101)), identity(s(0b101)));
        let d = Dependency::new(s(0b001), s(0b110));
        assert_eq!(
            decomposition_via_nfd(&d, s(0b010)),
            decomposition(&d, s(0b010))
        );
        let e = Dependency::new(s(0b1000), s(0b10000));
        assert_eq!(composition_via_nfd(&d, &e), composition(&d, &e));
    }

    #[test]
    fn theorem_3_5_direction_2_examples() {
        let d = Dependency::new(s(0b001), s(0b110));
        assert_eq!(
            reflexivity_via_ofd(s(0b11), s(0b10)),
            n_reflexivity(s(0b11), s(0b10))
        );
        assert_eq!(
            simplification_via_ofd(&d, s(0b100)),
            n_simplification(&d, s(0b100))
        );
        let appended = append_via_ofd(&d, s(0b1000), s(0b1000)).unwrap();
        assert_eq!(appended, n_append(&d, s(0b1000), s(0b1000)).unwrap());
        let e = Dependency::new(s(0b010), s(0b1000));
        assert_eq!(union_via_ofd(&d, &e), n_union(&d, &e));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every NFD rule application is sound w.r.t. closure-based
        /// implication — the semantic half of Theorem 3.5.
        #[test]
        fn nfd_rules_sound_wrt_implication(
            l1 in 0u64..64, r1 in 0u64..64, l2 in 0u64..64, r2 in 0u64..64,
            w in 0u64..64, z in 0u64..64,
        ) {
            let d1 = Dependency::new(s(l1), s(r1));
            let d2 = Dependency::new(s(l2), s(r2));
            let sigma = [d1, d2];
            if let Some(d) = n_reflexivity(s(w), s(z)) {
                prop_assert!(implies(&[], &d));
            }
            if let Some(d) = n_append(&d1, s(w), s(z)) {
                prop_assert!(implies(&sigma, &d));
            }
            if let Some(d) = n_union(&d1, &d2) {
                prop_assert!(implies(&sigma, &d));
            }
            if let Some(d) = n_simplification(&d1, s(z)) {
                prop_assert!(implies(&sigma, &d));
            }
        }

        /// Rule translations agree with the primitive rules on random
        /// inputs — the constructive half of Theorem 3.5.
        #[test]
        fn translations_match_primitives(
            l1 in 0u64..64, r1 in 0u64..64, l2 in 0u64..64, r2 in 0u64..64,
        ) {
            let d1 = Dependency::new(s(l1), s(r1));
            let d2 = Dependency::new(s(l2), s(r2));
            prop_assert_eq!(composition_via_nfd(&d1, &d2), composition(&d1, &d2));
            prop_assert_eq!(identity_via_nfd(s(l1)), identity(s(l1)));
        }
    }
}
