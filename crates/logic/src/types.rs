//! The shape-level dependency type used by inference.

use std::fmt;

use ofd_core::{AttrSet, Fd, Ofd, Schema};

/// A dependency `X → Y` at the attribute-set level — the unit of logical
/// inference, agnostic to synonym/inheritance semantics (Theorem 3.5 makes
/// OFD inference equivalent to NFD inference, which depends only on shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dependency {
    /// Antecedent.
    pub lhs: AttrSet,
    /// Consequent (possibly multi-attribute; covers split it).
    pub rhs: AttrSet,
}

impl Dependency {
    /// Constructs a dependency.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Dependency {
        Dependency { lhs, rhs }
    }

    /// Whether the dependency is trivial (`Y ⊆ X`, provable by Reflexivity).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(self.lhs)
    }

    /// Splits a multi-attribute consequent into single-attribute
    /// dependencies (justified by Decomposition; reversible by Union).
    pub fn split(&self) -> impl Iterator<Item = Dependency> + '_ {
        self.rhs
            .iter()
            .map(move |a| Dependency::new(self.lhs, AttrSet::single(a)))
    }

    /// Renders with attribute names.
    pub fn display(&self, schema: &Schema) -> String {
        format!(
            "{} -> {}",
            schema.display_set(self.lhs),
            schema.display_set(self.rhs)
        )
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

impl From<Fd> for Dependency {
    fn from(fd: Fd) -> Dependency {
        Dependency::new(fd.lhs, AttrSet::single(fd.rhs))
    }
}

impl From<Ofd> for Dependency {
    fn from(ofd: Ofd) -> Dependency {
        Dependency::new(ofd.lhs, AttrSet::single(ofd.rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::AttrId;

    fn a(i: usize) -> AttrId {
        AttrId::from_index(i)
    }

    #[test]
    fn triviality_and_split() {
        let d = Dependency::new(
            AttrSet::from_attrs([a(0), a(1)]),
            AttrSet::from_attrs([a(1), a(2)]),
        );
        assert!(!d.is_trivial());
        let parts: Vec<Dependency> = d.split().collect();
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.lhs == d.lhs && p.rhs.len() == 1));

        let t = Dependency::new(AttrSet::from_attrs([a(0), a(1)]), AttrSet::single(a(1)));
        assert!(t.is_trivial());
    }

    #[test]
    fn conversions_from_core_types() {
        let fd = Fd::new(AttrSet::single(a(0)), a(2));
        let d: Dependency = fd.into();
        assert_eq!(d.rhs, AttrSet::single(a(2)));
        let ofd = Ofd::synonym(AttrSet::single(a(1)), a(3));
        let d2: Dependency = ofd.into();
        assert_eq!(d2.lhs, AttrSet::single(a(1)));
    }

    #[test]
    fn display_with_schema() {
        let schema = Schema::new(["CC", "CTRY", "MED"]).unwrap();
        let d = Dependency::new(
            schema.set(["CC"]).unwrap(),
            schema.set(["CTRY", "MED"]).unwrap(),
        );
        assert_eq!(d.display(&schema), "[CC] -> [CTRY, MED]");
    }
}
