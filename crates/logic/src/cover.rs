//! Minimal covers (Definition 3.8, Theorem "every set of OFDs has a minimal
//! cover").

use crate::closure::{closure, equivalent, implies};
use crate::types::Dependency;

/// Removes extraneous antecedent attributes from one single-consequent
/// dependency w.r.t. `sigma` (condition 2 of Definition 3.8): an attribute
/// `B ∈ X` is extraneous for `X → A` when `A ∈ (X \ B)⁺`.
pub fn remove_extraneous_lhs(dep: Dependency, sigma: &[Dependency]) -> Dependency {
    debug_assert_eq!(dep.rhs.len(), 1, "normalize consequents first");
    let mut lhs = dep.lhs;
    // Iterate to a fixpoint; attribute order is ascending for determinism.
    loop {
        let mut changed = false;
        for b in lhs.iter() {
            let reduced = lhs.without(b);
            if dep.rhs.is_subset(closure(reduced, sigma)) {
                lhs = reduced;
                changed = true;
                break;
            }
        }
        if !changed {
            return Dependency::new(lhs, dep.rhs);
        }
    }
}

/// Computes a minimal cover of `sigma` (Definition 3.8):
///
/// 1. every consequent is a single attribute (Decomposition);
/// 2. no antecedent attribute is extraneous;
/// 3. no dependency is redundant.
///
/// The result is equivalent to the input and deterministic for a given input
/// order.
pub fn minimal_cover(sigma: &[Dependency]) -> Vec<Dependency> {
    // Step 1: normalize to single consequents, dropping trivial parts.
    let mut g: Vec<Dependency> = sigma
        .iter()
        .flat_map(|d| d.split())
        .filter(|d| !d.is_trivial())
        .collect();
    g.sort_by_key(|d| (d.lhs.len(), d.lhs.bits(), d.rhs.bits()));
    g.dedup();

    // Step 2: drop extraneous antecedent attributes.
    // Recompute against the evolving set for correctness.
    for i in 0..g.len() {
        let reduced = remove_extraneous_lhs(g[i], &g);
        g[i] = reduced;
    }
    g.sort_by_key(|d| (d.lhs.len(), d.lhs.bits(), d.rhs.bits()));
    g.dedup();

    // Step 3: drop redundant dependencies.
    let mut keep: Vec<Dependency> = Vec::with_capacity(g.len());
    for i in 0..g.len() {
        let rest: Vec<Dependency> = keep
            .iter()
            .copied()
            .chain(g[i + 1..].iter().copied())
            .collect();
        if !implies(&rest, &g[i]) {
            keep.push(g[i]);
        }
    }
    keep
}

/// Checks the three conditions of Definition 3.8 on `sigma`.
pub fn is_minimal_cover(sigma: &[Dependency]) -> bool {
    // Condition 1: single-attribute consequents.
    if sigma.iter().any(|d| d.rhs.len() != 1) {
        return false;
    }
    // Condition 2: no proper-subset antecedent yields an equivalent set.
    for (i, d) in sigma.iter().enumerate() {
        for b in d.lhs.iter() {
            let mut replaced: Vec<Dependency> = sigma.to_vec();
            replaced[i] = Dependency::new(d.lhs.without(b), d.rhs);
            if equivalent(sigma, &replaced) {
                return false;
            }
        }
    }
    // Condition 3: no dependency is redundant.
    for i in 0..sigma.len() {
        let rest: Vec<Dependency> = sigma
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, d)| *d)
            .collect();
        if implies(&rest, &sigma[i]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{AttrId, AttrSet};
    use proptest::prelude::*;

    fn a(i: usize) -> AttrId {
        AttrId::from_index(i)
    }

    fn dep(lhs: &[usize], rhs: &[usize]) -> Dependency {
        Dependency::new(
            AttrSet::from_attrs(lhs.iter().map(|&i| a(i))),
            AttrSet::from_attrs(rhs.iter().map(|&i| a(i))),
        )
    }

    #[test]
    fn example_3_9_cover_drops_composed_dependency() {
        // Σ = {CC→CTRY, {CC,DIAG}→MED, {CC,DIAG}→{MED,CTRY}} is not minimal;
        // the third member follows by Composition.
        let sigma = vec![
            dep(&[0], &[1]),
            dep(&[0, 2], &[3]),
            dep(&[0, 2], &[3, 1]),
        ];
        let cover = minimal_cover(&sigma);
        assert!(equivalent(&sigma, &cover));
        assert!(is_minimal_cover(&cover));
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn extraneous_attributes_are_removed() {
        // With A→B, the dependency {A,C}→B has an extraneous C.
        let sigma = vec![dep(&[0], &[1]), dep(&[0, 2], &[1])];
        let cover = minimal_cover(&sigma);
        assert!(is_minimal_cover(&cover));
        assert_eq!(cover, vec![dep(&[0], &[1])]);
    }

    #[test]
    fn trivial_dependencies_vanish() {
        let sigma = vec![dep(&[0, 1], &[1]), dep(&[2], &[2])];
        assert!(minimal_cover(&sigma).is_empty());
    }

    #[test]
    fn remove_extraneous_is_stable_when_nothing_extraneous() {
        let sigma = vec![dep(&[0, 1], &[2])];
        let d = remove_extraneous_lhs(sigma[0], &sigma);
        assert_eq!(d, sigma[0]);
    }

    #[test]
    fn cover_of_cycle_keeps_both_directions() {
        let sigma = vec![dep(&[0], &[1]), dep(&[1], &[0])];
        let cover = minimal_cover(&sigma);
        assert!(equivalent(&sigma, &cover));
        assert!(is_minimal_cover(&cover));
        assert_eq!(cover.len(), 2);
    }

    fn arb_dep(width: usize) -> impl Strategy<Value = Dependency> {
        let m = (1u64 << width) - 1;
        (0..=m, 0..=m)
            .prop_map(|(l, r)| Dependency::new(AttrSet::from_bits(l), AttrSet::from_bits(r)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cover_is_equivalent_and_minimal(
            sigma in prop::collection::vec(arb_dep(6), 0..8),
        ) {
            let cover = minimal_cover(&sigma);
            prop_assert!(equivalent(&sigma, &cover));
            prop_assert!(is_minimal_cover(&cover));
        }

        #[test]
        fn cover_is_idempotent(
            sigma in prop::collection::vec(arb_dep(6), 0..8),
        ) {
            let c1 = minimal_cover(&sigma);
            let c2 = minimal_cover(&c1);
            prop_assert!(equivalent(&c1, &c2));
            prop_assert_eq!(c1.len(), c2.len());
        }
    }
}
