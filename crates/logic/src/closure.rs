//! Attribute-set closure and implication (Definition 3.1, Algorithm 1,
//! Theorem 3.7).
//!
//! Two implementations:
//!
//! * [`closure_naive`] — a literal transcription of the paper's Algorithm 1
//!   (repeatedly fire any unused dependency whose antecedent is contained in
//!   the current set); worst-case quadratic in |Σ| but obviously correct.
//! * [`closure`] — the linear-time counting algorithm (Beeri–Bernstein):
//!   each dependency keeps a count of antecedent attributes not yet in the
//!   closure; an attribute→dependency index lets each attribute be processed
//!   once. This realizes Theorem 3.7's linear bound.
//!
//! Property tests assert the two agree on random inputs.

use crate::types::Dependency;
use ofd_core::{AttrId, AttrSet, MAX_ATTRS};

/// The paper's Algorithm 1: closure of `attrs` under `sigma`, firing unused
/// dependencies until a fixpoint.
pub fn closure_naive(attrs: AttrSet, sigma: &[Dependency]) -> AttrSet {
    let mut x = attrs;
    let mut unused: Vec<bool> = vec![true; sigma.len()];
    loop {
        let fired = sigma.iter().enumerate().find(|(i, d)| {
            unused[*i] && d.lhs.is_subset(x) && !d.rhs.is_subset(x)
        });
        match fired {
            Some((i, d)) => {
                x = x.union(d.rhs);
                unused[i] = false;
            }
            None => {
                // Also retire dependencies that add nothing, mirroring the
                // Σ_unused bookkeeping; the fixpoint is reached either way.
                return x;
            }
        }
    }
}

/// Linear-time closure of `attrs` under `sigma`.
pub fn closure(attrs: AttrSet, sigma: &[Dependency]) -> AttrSet {
    // counter[i]: antecedent attributes of sigma[i] still missing from the
    // closure. uses[a]: dependencies whose antecedent contains attribute a.
    let mut counter: Vec<usize> = sigma.iter().map(|d| d.lhs.len()).collect();
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); MAX_ATTRS];
    for (i, d) in sigma.iter().enumerate() {
        for a in d.lhs.iter() {
            uses[a.index()].push(i);
        }
    }

    let mut result = attrs;
    let mut queue: Vec<AttrId> = attrs.iter().collect();

    // Dependencies with empty antecedents fire unconditionally.
    for (i, d) in sigma.iter().enumerate() {
        if counter[i] == 0 {
            for b in d.rhs.minus(result).iter() {
                result.insert(b);
                queue.push(b);
            }
        }
    }

    while let Some(a) = queue.pop() {
        for &i in &uses[a.index()] {
            counter[i] -= 1;
            if counter[i] == 0 {
                for b in sigma[i].rhs.minus(result).iter() {
                    result.insert(b);
                    queue.push(b);
                }
            }
        }
    }
    result
}

/// Whether `sigma ⊨ dep` — equivalently (Lemma 3.2) whether
/// `dep.rhs ⊆ closure(dep.lhs)`.
pub fn implies(sigma: &[Dependency], dep: &Dependency) -> bool {
    dep.rhs.is_subset(closure(dep.lhs, sigma))
}

/// Whether two dependency sets imply each other.
pub fn equivalent(a: &[Dependency], b: &[Dependency]) -> bool {
    a.iter().all(|d| implies(b, d)) && b.iter().all(|d| implies(a, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::AttrId;
    use proptest::prelude::*;

    fn a(i: usize) -> AttrId {
        AttrId::from_index(i)
    }

    fn dep(lhs: &[usize], rhs: &[usize]) -> Dependency {
        Dependency::new(
            AttrSet::from_attrs(lhs.iter().map(|&i| a(i))),
            AttrSet::from_attrs(rhs.iter().map(|&i| a(i))),
        )
    }

    #[test]
    fn closure_reaches_transitive_consequences() {
        // Inference is shape-level, where chaining *is* valid (the axioms
        // derive X→AB from X→A, A→B via Composition with X→X).
        let sigma = vec![dep(&[0], &[1]), dep(&[1], &[2]), dep(&[2, 3], &[4])];
        let c = closure(AttrSet::single(a(0)), &sigma);
        assert_eq!(c, AttrSet::from_attrs([a(0), a(1), a(2)]));
        let c2 = closure(AttrSet::from_attrs([a(0), a(3)]), &sigma);
        assert_eq!(c2, AttrSet::from_attrs([a(0), a(1), a(2), a(3), a(4)]));
    }

    #[test]
    fn closure_of_empty_set_fires_empty_lhs_deps() {
        let sigma = vec![dep(&[], &[3]), dep(&[3], &[4])];
        let c = closure(AttrSet::empty(), &sigma);
        assert_eq!(c, AttrSet::from_attrs([a(3), a(4)]));
    }

    #[test]
    fn implies_example_3_9() {
        // Σ = {CC→CTRY, {CC,DIAG}→MED}; then {CC,DIAG}→{MED,CTRY} follows
        // by Composition (the paper's Example 3.9 redundancy).
        let cc = 0;
        let ctry = 1;
        let diag = 2;
        let med = 3;
        let sigma = vec![dep(&[cc], &[ctry]), dep(&[cc, diag], &[med])];
        assert!(implies(&sigma, &dep(&[cc, diag], &[med, ctry])));
        assert!(!implies(&sigma, &dep(&[diag], &[med])));
    }

    #[test]
    fn equivalent_detects_redundancy() {
        let sigma3 = vec![
            dep(&[0], &[1]),
            dep(&[0, 2], &[3]),
            dep(&[0, 2], &[3, 1]),
        ];
        let sigma2 = vec![dep(&[0], &[1]), dep(&[0, 2], &[3])];
        assert!(equivalent(&sigma3, &sigma2));
        assert!(!equivalent(&sigma2, &[dep(&[0], &[1])]));
    }

    #[test]
    fn trivial_dependencies_always_implied() {
        assert!(implies(&[], &dep(&[0, 1], &[1])));
        assert!(implies(&[], &dep(&[2], &[])));
    }

    fn arb_dep(width: usize) -> impl Strategy<Value = Dependency> {
        let m = (1u64 << width) - 1;
        (0..=m, 0..=m).prop_map(|(l, r)| Dependency::new(AttrSet::from_bits(l), AttrSet::from_bits(r)))
    }

    proptest! {
        #[test]
        fn linear_matches_naive(
            sigma in prop::collection::vec(arb_dep(8), 0..12),
            start in 0u64..256,
        ) {
            let x = AttrSet::from_bits(start);
            prop_assert_eq!(closure(x, &sigma), closure_naive(x, &sigma));
        }

        #[test]
        fn closure_is_monotone_and_idempotent(
            sigma in prop::collection::vec(arb_dep(8), 0..12),
            start in 0u64..256,
            extra in 0u64..256,
        ) {
            let x = AttrSet::from_bits(start);
            let y = AttrSet::from_bits(start | extra);
            let cx = closure(x, &sigma);
            let cy = closure(y, &sigma);
            // Extensive: X ⊆ X⁺.
            prop_assert!(x.is_subset(cx));
            // Monotone: X ⊆ Y ⇒ X⁺ ⊆ Y⁺.
            prop_assert!(cx.is_subset(cy));
            // Idempotent: (X⁺)⁺ = X⁺.
            prop_assert_eq!(closure(cx, &sigma), cx);
        }

        #[test]
        fn every_sigma_member_is_implied(
            sigma in prop::collection::vec(arb_dep(8), 1..12),
        ) {
            for d in &sigma {
                prop_assert!(implies(&sigma, d));
            }
        }
    }
}
