//! Checked applications of the OFD inference rules (Theorem 3.3) and the
//! derived rules proved from them (Reflexivity, Augmentation, Union —
//! the Opt-1/Opt-2 pruning rules of §3.2).
//!
//! Each function validates its side condition and returns the inferred
//! dependency, so tests and the derivation engine can build sound proofs
//! only.

use crate::types::Dependency;
use ofd_core::AttrSet;

/// **O1 Identity**: `X → X` for any `X ⊆ R`.
pub fn identity(x: AttrSet) -> Dependency {
    Dependency::new(x, x)
}

/// **O2 Decomposition**: from `X → Y` and `Z ⊆ Y`, infer `X → Z`.
/// Returns `None` when `Z ⊄ Y`.
pub fn decomposition(premise: &Dependency, z: AttrSet) -> Option<Dependency> {
    z.is_subset(premise.rhs)
        .then(|| Dependency::new(premise.lhs, z))
}

/// **O3 Composition**: from `X → Y` and `Z → W`, infer `XZ → YW`.
pub fn composition(d1: &Dependency, d2: &Dependency) -> Dependency {
    Dependency::new(d1.lhs.union(d2.lhs), d1.rhs.union(d2.rhs))
}

/// **Reflexivity** (derived; Opt-1): if `Y ⊆ X` then `X → Y`.
/// Returns `None` when `Y ⊄ X`.
pub fn reflexivity(x: AttrSet, y: AttrSet) -> Option<Dependency> {
    y.is_subset(x).then(|| Dependency::new(x, y))
}

/// **Augmentation** (derived; Opt-2): from `X → A`, infer `XY → A` for any
/// `Y`. This is why supersets of a satisfied antecedent are pruned from the
/// discovery lattice.
pub fn augmentation(premise: &Dependency, y: AttrSet) -> Dependency {
    Dependency::new(premise.lhs.union(y), premise.rhs)
}

/// **Union** (derived): from `X → Y` and `X → Z`, infer `X → YZ`.
/// Returns `None` when the antecedents differ.
pub fn union(d1: &Dependency, d2: &Dependency) -> Option<Dependency> {
    (d1.lhs == d2.lhs).then(|| Dependency::new(d1.lhs, d1.rhs.union(d2.rhs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::implies;
    use ofd_core::AttrId;
    use proptest::prelude::*;

    fn s(bits: u64) -> AttrSet {
        AttrSet::from_bits(bits)
    }

    #[test]
    fn rule_side_conditions() {
        let d = Dependency::new(s(0b001), s(0b110));
        assert_eq!(identity(s(0b101)), Dependency::new(s(0b101), s(0b101)));
        assert_eq!(decomposition(&d, s(0b010)), Some(Dependency::new(s(0b001), s(0b010))));
        assert_eq!(decomposition(&d, s(0b001)), None, "Z ⊄ Y");
        assert_eq!(reflexivity(s(0b011), s(0b010)), Some(Dependency::new(s(0b011), s(0b010))));
        assert_eq!(reflexivity(s(0b011), s(0b100)), None);
        let e = Dependency::new(s(0b100), s(0b1000));
        assert_eq!(composition(&d, &e), Dependency::new(s(0b101), s(0b1110)));
        assert_eq!(augmentation(&d, s(0b1000)), Dependency::new(s(0b1001), s(0b110)));
        let f = Dependency::new(s(0b001), s(0b1000));
        assert_eq!(union(&d, &f), Some(Dependency::new(s(0b001), s(0b1110))));
        assert_eq!(union(&e, &f), None, "different antecedents");
    }

    #[test]
    fn derived_rules_follow_from_o1_o3() {
        // Reflexivity = Identity + Decomposition.
        let x = s(0b0111);
        let y = s(0b0011);
        let via_primitives = decomposition(&identity(x), y).unwrap();
        assert_eq!(Some(via_primitives), reflexivity(x, y));

        // Union = Composition + Decomposition (on the shared antecedent).
        let d1 = Dependency::new(x, s(0b1000));
        let d2 = Dependency::new(x, s(0b10000));
        let composed = composition(&d1, &d2); // X∪X → YW
        assert_eq!(composed.lhs, x);
        assert_eq!(Some(composed), union(&d1, &d2));
    }

    fn a(i: usize) -> AttrId {
        AttrId::from_index(i)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every rule output is implied by its premises — the rules are
        /// sound w.r.t. the closure-based semantics.
        #[test]
        fn rules_are_sound_wrt_implication(
            l1 in 0u64..64, r1 in 0u64..64, l2 in 0u64..64, r2 in 0u64..64, z in 0u64..64,
        ) {
            let d1 = Dependency::new(s(l1), s(r1));
            let d2 = Dependency::new(s(l2), s(r2));
            let sigma = [d1, d2];
            prop_assert!(implies(&sigma, &composition(&d1, &d2)));
            prop_assert!(implies(&sigma, &augmentation(&d1, s(z))));
            if let Some(d) = decomposition(&d1, s(z)) {
                prop_assert!(implies(&sigma, &d));
            }
            if let Some(d) = union(&d1, &d2) {
                prop_assert!(implies(&sigma, &d));
            }
            if let Some(d) = reflexivity(s(l1), s(z)) {
                prop_assert!(implies(&[], &d), "reflexive deps need no premises");
            }
            prop_assert!(implies(&[], &identity(s(l1))));
            let _ = a(0);
        }
    }
}
