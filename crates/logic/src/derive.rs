//! A derivation engine: when `Σ ⊢ X → Y`, produce an explicit proof as a
//! sequence of axiom applications (Theorem 3.3's rules plus the derived
//! rules they justify).
//!
//! The proof is extracted from a closure replay: starting from `X → X`
//! (Identity), each Σ-dependency whose antecedent is already derivable is
//! folded in via Composition + Reflexivity, and a final Decomposition step
//! narrows to the target consequent.

use std::fmt;

use crate::closure::implies;
use crate::types::Dependency;
use ofd_core::Schema;

/// The inference rule used by one proof step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// O1: `X → X`.
    Identity,
    /// O2: narrow the consequent.
    Decomposition,
    /// O3 combined with Reflexivity: fold in `sigma[index]`.
    Composition {
        /// Index of the Σ-dependency folded in.
        index: usize,
    },
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Identity => write!(f, "Identity"),
            Rule::Decomposition => write!(f, "Decomposition"),
            Rule::Composition { index } => write!(f, "Composition(σ{index})"),
        }
    }
}

/// One step of a derivation: the rule applied and the dependency obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Rule applied.
    pub rule: Rule,
    /// Dependency this step proves.
    pub result: Dependency,
}

/// A complete derivation of `target` from `sigma`.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// The dependency proved.
    pub target: Dependency,
    /// The proof steps, in order; the last step's result has the target's
    /// antecedent and a consequent containing the target's.
    pub steps: Vec<Step>,
}

impl Derivation {
    /// Verifies the proof's internal structure: starts at Identity, each
    /// Composition step uses a Σ-dependency whose antecedent was already
    /// covered, and the final result implies the target.
    pub fn verify(&self, sigma: &[Dependency]) -> bool {
        let mut current: Option<Dependency> = None;
        for step in &self.steps {
            match &step.rule {
                Rule::Identity => {
                    if step.result.lhs != step.result.rhs || current.is_some() {
                        return false;
                    }
                }
                Rule::Composition { index } => {
                    let Some(prev) = current else { return false };
                    let Some(d) = sigma.get(*index) else {
                        return false;
                    };
                    // σ's antecedent must already be derivable (V ⊆ known).
                    if !d.lhs.is_subset(prev.rhs) {
                        return false;
                    }
                    if step.result.lhs != prev.lhs
                        || step.result.rhs != prev.rhs.union(d.rhs)
                    {
                        return false;
                    }
                }
                Rule::Decomposition => {
                    let Some(prev) = current else { return false };
                    if step.result.lhs != prev.lhs || !step.result.rhs.is_subset(prev.rhs) {
                        return false;
                    }
                }
            }
            current = Some(step.result);
        }
        current == Some(self.target)
    }

    /// Renders the proof with attribute names.
    pub fn display(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "{i:>3}. [{}] {}\n",
                step.rule,
                step.result.display(schema)
            ));
        }
        out
    }
}

/// Derives `target` from `sigma`, or returns `None` when `Σ ⊭ target`.
pub fn derive(sigma: &[Dependency], target: &Dependency) -> Option<Derivation> {
    if !implies(sigma, target) {
        return None;
    }
    let mut steps = Vec::new();
    let mut current = Dependency::new(target.lhs, target.lhs);
    steps.push(Step {
        rule: Rule::Identity,
        result: current,
    });
    // Replay Algorithm 1, recording fired dependencies.
    let mut used = vec![false; sigma.len()];
    while !target.rhs.is_subset(current.rhs) {
        let fired = sigma
            .iter()
            .enumerate()
            .find(|(i, d)| !used[*i] && d.lhs.is_subset(current.rhs) && !d.rhs.is_subset(current.rhs));
        let (i, d) = fired.expect("implies() guaranteed reachability");
        used[i] = true;
        current = Dependency::new(current.lhs, current.rhs.union(d.rhs));
        steps.push(Step {
            rule: Rule::Composition { index: i },
            result: current,
        });
    }
    if current.rhs != target.rhs {
        current = Dependency::new(current.lhs, target.rhs);
        steps.push(Step {
            rule: Rule::Decomposition,
            result: current,
        });
    }
    Some(Derivation {
        target: *target,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{AttrId, AttrSet};
    use proptest::prelude::*;

    fn a(i: usize) -> AttrId {
        AttrId::from_index(i)
    }

    fn dep(lhs: &[usize], rhs: &[usize]) -> Dependency {
        Dependency::new(
            AttrSet::from_attrs(lhs.iter().map(|&i| a(i))),
            AttrSet::from_attrs(rhs.iter().map(|&i| a(i))),
        )
    }

    #[test]
    fn derives_and_verifies_chain() {
        let sigma = vec![dep(&[0], &[1]), dep(&[1], &[2])];
        let target = dep(&[0], &[2]);
        let proof = derive(&sigma, &target).expect("derivable");
        assert!(proof.verify(&sigma));
        assert!(matches!(proof.steps[0].rule, Rule::Identity));
        assert!(proof.steps.len() >= 3);
    }

    #[test]
    fn underivable_yields_none() {
        let sigma = vec![dep(&[0], &[1])];
        assert!(derive(&sigma, &dep(&[1], &[0])).is_none());
    }

    #[test]
    fn trivial_target_is_identity_plus_decomposition() {
        let proof = derive(&[], &dep(&[0, 1], &[1])).unwrap();
        assert!(proof.verify(&[]));
        assert_eq!(proof.steps.len(), 2);
        assert!(matches!(proof.steps[1].rule, Rule::Decomposition));
    }

    #[test]
    fn tampered_proof_fails_verification() {
        let sigma = vec![dep(&[0], &[1])];
        let mut proof = derive(&sigma, &dep(&[0], &[1])).unwrap();
        assert!(proof.verify(&sigma));
        // Corrupt the final step's consequent.
        let last = proof.steps.len() - 1;
        proof.steps[last].result = dep(&[0], &[3]);
        assert!(!proof.verify(&sigma));
    }

    #[test]
    fn display_renders_named_steps() {
        let schema = Schema::new(["CC", "CTRY", "MED"]).unwrap();
        let sigma = vec![dep(&[0], &[1])];
        let proof = derive(&sigma, &dep(&[0], &[1])).unwrap();
        let text = proof.display(&schema);
        assert!(text.contains("Identity"));
        assert!(text.contains("[CC]"));
    }

    fn arb_dep(width: usize) -> impl Strategy<Value = Dependency> {
        let m = (1u64 << width) - 1;
        (0..=m, 0..=m)
            .prop_map(|(l, r)| Dependency::new(AttrSet::from_bits(l), AttrSet::from_bits(r)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Completeness in practice: whenever implication holds, a proof is
        /// produced and verifies; whenever it does not, no proof exists.
        #[test]
        fn derivation_iff_implication(
            sigma in prop::collection::vec(arb_dep(6), 0..8),
            target in arb_dep(6),
        ) {
            match derive(&sigma, &target) {
                Some(proof) => {
                    prop_assert!(implies(&sigma, &target));
                    prop_assert!(proof.verify(&sigma));
                }
                None => prop_assert!(!implies(&sigma, &target)),
            }
        }
    }
}
