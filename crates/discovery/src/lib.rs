#![warn(missing_docs)]
//! # ofd-discovery
//!
//! The **FastOFD** algorithm (§4): discovery of a complete and minimal set
//! of Ontology Functional Dependencies from data, by breadth-first traversal
//! of the set-containment lattice with axiom-derived pruning:
//!
//! * **Opt-1** — trivial candidates (`A ∈ X`) are never generated;
//! * **Opt-2** — Augmentation pruning via candidate sets `C⁺(X)`
//!   (Definition 5.2, Lemma 5.3), including deletion of exhausted nodes;
//! * **Opt-3** — superkey short-circuits: empty stripped partitions validate
//!   instantly and partition products below keys are skipped;
//! * **Opt-4** — candidates implied by known, exactly-holding FDs are valid
//!   by subsumption without data verification.
//!
//! Both exact and κ-approximate OFDs are supported, for synonym and
//! inheritance semantics. [`brute_force`] provides an exhaustive reference
//! implementation used to validate the lattice algorithm in tests.
//!
//! ```
//! use ofd_core::table1;
//! use ofd_discovery::FastOfd;
//! use ofd_ontology::samples;
//!
//! let rel = table1();
//! let onto = samples::combined_paper_ontology();
//! let result = FastOfd::new(&rel, &onto).run();
//! let schema = rel.schema();
//! assert!(result
//!     .ofds()
//!     .any(|o| o.display(schema) == "[CC] ->syn CTRY"));
//! ```

mod brute;
mod cache;
mod checkpoint;
mod fastofd;
mod options;
mod sample;
mod shard;
mod stats;

pub use brute::{brute_force, brute_force_guarded};
pub use cache::CacheStats;
pub use checkpoint::CheckpointOptions;
pub use fastofd::{DiscoveredOfd, Discovery, FastOfd};
pub use options::{DiscoveryOptions, DEFAULT_PARTITION_CACHE_MIB, DEFAULT_SAMPLE_ROUNDS};
pub use stats::{DiscoveryStats, LevelStats};

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1, Fd, Ofd, OfdKind, Relation};
    use ofd_ontology::{samples, Ontology, OntologyBuilder};
    use proptest::prelude::*;

    fn discover(rel: &Relation, onto: &Ontology, opts: DiscoveryOptions) -> Vec<Ofd> {
        FastOfd::new(rel, onto)
            .options(opts)
            .run()
            .ofds()
            .copied()
            .collect()
    }

    #[test]
    fn matches_brute_force_on_table1() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let fast = discover(&rel, &onto, DiscoveryOptions::default());
        let brute = brute_force(&rel, &onto, OfdKind::Synonym, 1.0);
        assert_eq!(fast, brute);
    }

    #[test]
    fn optimizations_do_not_change_output() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let reference = discover(&rel, &onto, DiscoveryOptions::default());
        for (o2, o3, o4) in [
            (false, false, false),
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (true, true, false),
            (true, false, true),
            (false, true, true),
        ] {
            let opts = DiscoveryOptions::new().opt2(o2).opt3(o3).opt4(o4);
            assert_eq!(
                discover(&rel, &onto, opts),
                reference,
                "opts ({o2},{o3},{o4}) diverged"
            );
        }
    }

    #[test]
    fn known_fds_shortcut_preserves_output() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let schema = rel.schema();
        let known = vec![Fd::new(
            schema.set(["SYMP"]).unwrap(),
            schema.attr("DIAG").unwrap(),
        )];
        let reference = discover(&rel, &onto, DiscoveryOptions::default());
        let with_fds = discover(
            &rel,
            &onto,
            DiscoveryOptions::default().known_fds(known),
        );
        assert_eq!(reference, with_fds);
    }

    #[test]
    fn max_level_truncates_output_prefix() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let full = FastOfd::new(&rel, &onto).run();
        let capped = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().max_level(2))
            .run();
        let expected: Vec<&DiscoveredOfd> =
            full.ofds.iter().filter(|d| d.level <= 2).collect();
        assert_eq!(capped.ofds.len(), expected.len());
        for (got, want) in capped.ofds.iter().zip(expected) {
            assert_eq!(got.ofd, want.ofd);
        }
    }

    #[test]
    fn empty_ontology_discovers_plain_fds() {
        let rel = table1();
        let onto = Ontology::empty();
        let found = discover(&rel, &onto, DiscoveryOptions::default());
        // Every discovered OFD must hold as a plain FD.
        let v = ofd_core::Validator::new(&rel, &onto);
        for ofd in &found {
            assert!(v.check_fd(&ofd.as_fd()), "{}", ofd.display(rel.schema()));
        }
        // And [CC] -> CTRY must NOT be among them (broken by USA/America).
        let bad = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
        assert!(!found.contains(&bad));
    }

    #[test]
    fn approximate_discovery_at_low_support() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let fast = discover(
            &rel,
            &onto,
            DiscoveryOptions::new().min_support(0.8),
        );
        let brute = brute_force(&rel, &onto, OfdKind::Synonym, 0.8);
        assert_eq!(fast, brute);
    }

    #[test]
    fn inheritance_discovery_matches_brute_force() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let kind = OfdKind::Inheritance { theta: 1 };
        let fast = discover(&rel, &onto, DiscoveryOptions::new().kind(kind));
        let brute = brute_force(&rel, &onto, kind, 1.0);
        assert_eq!(fast, brute);
        // [SYMP, DIAG] -> MED holds under inheritance; some antecedent
        // ⊆ {SYMP, DIAG} must be discovered for MED.
        let schema = rel.schema();
        let med = schema.attr("MED").unwrap();
        let symp_diag = schema.set(["SYMP", "DIAG"]).unwrap();
        assert!(fast
            .iter()
            .any(|o| o.rhs == med && o.lhs.is_subset(symp_diag)));
    }

    #[test]
    fn target_rhs_equals_filtered_full_output() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let schema = rel.schema();
        let full = discover(&rel, &onto, DiscoveryOptions::default());
        for name in ["CTRY", "MED", "DIAG"] {
            let target = schema.set([name]).unwrap();
            let targeted = discover(
                &rel,
                &onto,
                DiscoveryOptions::default().target_rhs(target),
            );
            let filtered: Vec<Ofd> = full
                .iter()
                .filter(|o| target.contains(o.rhs))
                .copied()
                .collect();
            assert_eq!(targeted, filtered, "target {name}");
        }
    }

    #[test]
    fn parallel_verification_matches_sequential() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let sequential = discover(&rel, &onto, DiscoveryOptions::default());
        for threads in [2, 4, 8] {
            let parallel = discover(
                &rel,
                &onto,
                DiscoveryOptions::default().threads(threads),
            );
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // Also under approximate + no-optimization settings.
        let seq_approx = discover(&rel, &onto, DiscoveryOptions::new().min_support(0.8));
        let par_approx = discover(
            &rel,
            &onto,
            DiscoveryOptions::new().min_support(0.8).threads(4),
        );
        assert_eq!(seq_approx, par_approx);
    }

    #[test]
    fn partition_cache_is_result_neutral() {
        // Σ — including raw support bits and levels — must be byte-identical
        // whether the cache is off, generously budgeted, or starved into
        // thrashing, at any thread count.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let reference = FastOfd::new(&rel, &onto).run();
        assert!(reference.stats.cache.is_some(), "cache defaults on");
        for mib in [0usize, 1, 256] {
            for threads in [1usize, 4] {
                let run = FastOfd::new(&rel, &onto)
                    .options(
                        DiscoveryOptions::default()
                            .partition_cache_mib(mib)
                            .threads(threads),
                    )
                    .run();
                assert_eq!(
                    run.ofds, reference.ofds,
                    "cache={mib}MiB threads={threads}: Σ diverged"
                );
                for (a, b) in run.ofds.iter().zip(&reference.ofds) {
                    assert_eq!(
                        a.support.to_bits(),
                        b.support.to_bits(),
                        "cache={mib}MiB threads={threads}: support bits diverged"
                    );
                }
                // Per-level counters are part of the contract too.
                assert_eq!(run.stats.levels.len(), reference.stats.levels.len());
                for (l, r) in run.stats.levels.iter().zip(&reference.stats.levels) {
                    assert_eq!(
                        (l.nodes, l.candidates, l.verified, l.key_shortcuts,
                         l.fd_shortcuts, l.found, l.pruned_nodes),
                        (r.nodes, r.candidates, r.verified, r.key_shortcuts,
                         r.fd_shortcuts, r.found, r.pruned_nodes),
                        "cache={mib}MiB threads={threads}: level {} stats diverged",
                        l.level
                    );
                }
                assert_eq!(run.stats.cache.is_some(), mib > 0);
            }
        }
    }

    #[test]
    fn hybrid_pipeline_is_result_neutral() {
        // The tentpole contract: sampling and sharding are refutation
        // oracles only, so Σ — including raw support bits — and the
        // per-level stats are byte-identical with the pipeline on or off,
        // at any shard count, thread count and sampling depth.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let reference = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().sample_rounds(0).shards(0))
            .run();
        for shards in [1usize, 2, 7] {
            for threads in [1usize, 4] {
                for rounds in [0usize, 3] {
                    let run = FastOfd::new(&rel, &onto)
                        .options(
                            DiscoveryOptions::new()
                                .sample_rounds(rounds)
                                .shards(shards)
                                .threads(threads),
                        )
                        .run();
                    let tag = format!("shards={shards} threads={threads} rounds={rounds}");
                    assert_eq!(run.ofds, reference.ofds, "{tag}: Σ diverged");
                    for (a, b) in run.ofds.iter().zip(&reference.ofds) {
                        assert_eq!(
                            a.support.to_bits(),
                            b.support.to_bits(),
                            "{tag}: support bits diverged"
                        );
                    }
                    assert_eq!(run.stats.levels.len(), reference.stats.levels.len(), "{tag}");
                    for (l, r) in run.stats.levels.iter().zip(&reference.stats.levels) {
                        assert_eq!(
                            (l.nodes, l.candidates, l.verified, l.key_shortcuts,
                             l.fd_shortcuts, l.found, l.pruned_nodes),
                            (r.nodes, r.candidates, r.verified, r.key_shortcuts,
                             r.fd_shortcuts, r.found, r.pruned_nodes),
                            "{tag}: level {} stats diverged",
                            l.level
                        );
                    }
                }
            }
        }
        // `shard_rows` is the other spelling of the same request.
        let by_rows = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().shard_rows(3))
            .run();
        assert_eq!(by_rows.ofds, reference.ofds);
    }

    #[test]
    fn hybrid_pipeline_prunes_and_counts_on_table1() {
        // The oracles must actually fire on Table 1 (most candidates fail)
        // and be attributed in the prune counters.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let obs = ofd_core::Obs::enabled();
        let run = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().shards(2).obs(obs.clone()))
            .run();
        assert!(run.complete);
        let m = obs.snapshot();
        assert_eq!(
            m.counter("discovery.sample.rounds"),
            Some(DEFAULT_SAMPLE_ROUNDS as u64)
        );
        assert!(m.counter("discovery.sample.evidence_pairs").unwrap_or(0) > 0);
        assert_eq!(m.counter("discovery.shard.shards"), Some(2));
        assert!(m.counter("discovery.shard.merged_candidates").unwrap_or(0) > 0);
        let pruned = m.counter("discovery.sample.candidates_pruned").unwrap_or(0)
            + m.counter("discovery.shard.candidates_pruned").unwrap_or(0);
        assert!(pruned > 0, "oracles refuted no candidate at all: {m:?}");
        // Refuted candidates and union-validated survivors partition the
        // data-decided verifications.
        let verified: u64 = run.stats.levels.iter().map(|l| l.verified as u64).sum();
        assert_eq!(
            m.counter("discovery.shard.union_validated").unwrap_or(0) + pruned,
            verified,
            "prune attribution must cover every data-decided candidate"
        );
    }

    #[test]
    fn approx_mode_ignores_hybrid_knobs() {
        // κ < 1: a violation on a sub-relation does not refute an
        // approximate candidate, so neither phase may run at all.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let obs = ofd_core::Obs::enabled();
        let hybrid = discover(
            &rel,
            &onto,
            DiscoveryOptions::new()
                .min_support(0.8)
                .sample_rounds(5)
                .shards(4)
                .obs(obs.clone()),
        );
        let plain = discover(&rel, &onto, DiscoveryOptions::new().min_support(0.8));
        assert_eq!(hybrid, plain);
        let m = obs.snapshot();
        assert_eq!(m.counter("discovery.sample.rounds"), Some(0));
        assert_eq!(m.counter("discovery.shard.shards"), Some(0));
    }

    #[test]
    fn partition_cache_reports_hits_on_table1() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let result = FastOfd::new(&rel, &onto).run();
        let cs = result.stats.cache.expect("cache on by default");
        assert!(cs.hits > 0, "lattice reuse must produce hits: {cs:?}");
        assert!(cs.resident_bytes > 0);
        assert!(cs.peak_resident_bytes >= cs.resident_bytes);
    }

    #[test]
    fn stats_track_levels_and_candidates() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let result = FastOfd::new(&rel, &onto).run();
        assert!(!result.stats.levels.is_empty());
        assert_eq!(result.stats.total_found(), result.ofds.len());
        assert!(result.stats.total_candidates() >= result.stats.total_found());
        assert!(result.stats.total_verified() <= result.stats.total_candidates());
    }

    #[test]
    fn discovered_set_is_satisfied_and_minimal() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let validator = ofd_core::Validator::new(&rel, &onto);
        let found = discover(&rel, &onto, DiscoveryOptions::default());
        for ofd in &found {
            assert!(validator.check(ofd).satisfied(), "{}", ofd.display(rel.schema()));
        }
        for a in &found {
            for b in &found {
                if a.rhs == b.rhs && a.lhs != b.lhs {
                    assert!(!a.lhs.is_proper_subset(b.lhs));
                }
            }
        }
    }

    #[test]
    fn constant_column_found_at_level_one() {
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["c", "1"] as &[&str], &["c", "2"], &["c", "3"]],
        )
        .unwrap();
        let onto = Ontology::empty();
        let result = FastOfd::new(&rel, &onto).run();
        // ∅ -> A holds (constant column) and is found at level 1.
        let found: Vec<_> = result.ofds.iter().filter(|d| d.level == 1).collect();
        assert_eq!(found.len(), 1);
        assert!(found[0].ofd.lhs.is_empty());
        assert_eq!(found[0].ofd.rhs, rel.schema().attr("A").unwrap());
    }

    #[test]
    fn metrics_counters_are_thread_invariant() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let run = |threads: usize| {
            let obs = ofd_core::Obs::enabled();
            let r = FastOfd::new(&rel, &onto)
                .options(DiscoveryOptions::default().threads(threads).obs(obs.clone()))
                .run();
            (r, obs.snapshot())
        };
        let (r1, m1) = run(1);
        let (r8, m8) = run(8);
        assert_eq!(r1.ofds, r8.ofds, "output is thread-invariant");
        assert_eq!(m1.counters, m8.counters, "counter totals are thread-invariant");
        assert!(m1.counter("discovery.candidates").unwrap_or(0) > 0);
        assert_eq!(
            m1.counter("discovery.found"),
            Some(r1.ofds.len() as u64),
            "found counter matches |Σ|"
        );
        // Per-level counters and prune attribution are present.
        assert!(m1.counter("discovery.level.1.candidates").is_some());
        assert!(m1.counter_sum("discovery.prune.") > 0);
        // Histograms stay thread-invariant too (partition products run on
        // the sequential path).
        assert_eq!(m1.histograms, m8.histograms);
    }

    #[test]
    fn disabled_obs_changes_nothing() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let plain = discover(&rel, &onto, DiscoveryOptions::default());
        let obs = ofd_core::Obs::disabled();
        let with_obs = discover(&rel, &onto, DiscoveryOptions::default().obs(obs.clone()));
        assert_eq!(plain, with_obs);
        assert!(obs.snapshot().counters.is_empty());
    }

    #[test]
    fn interrupted_run_labels_the_guard_interrupt() {
        let obs = ofd_core::Obs::enabled();
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let guard = ofd_core::ExecGuard::unlimited();
        guard.fail_after(3);
        let result = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().guard(guard).obs(obs.clone()))
            .run();
        assert!(!result.complete);
        assert_eq!(obs.snapshot().counter("guard.interrupt.fail_point"), Some(1));
    }

    #[test]
    fn boundary_support_is_decided_by_integer_arithmetic() {
        // 10 rows; X → A has exactly 8/10 support (one class of 10 with a
        // best cover of 8).
        let mut rows: Vec<[&str; 2]> = vec![["x", "good"]; 8];
        rows.push(["x", "bad1"]);
        rows.push(["x", "bad2"]);
        let rel = Relation::from_rows(["X", "A"], rows.iter().map(|r| &r[..])).unwrap();
        let onto = Ontology::empty();
        let has_dep = |kappa: f64| {
            let found = discover(&rel, &onto, DiscoveryOptions::new().min_support(kappa));
            let brute = brute_force(&rel, &onto, OfdKind::Synonym, kappa);
            assert_eq!(found, brute, "FastOFD and oracle must agree at κ={kappa}");
            let a = rel.schema().attr("A").unwrap();
            found.iter().any(|o| o.rhs == a)
        };
        // Exactly at the boundary: accepted.
        assert!(has_dep(0.8));
        // Infinitesimally above: the old epsilon comparison
        // (s + 1e-12 ≥ κ) accepted this; exact arithmetic rejects it.
        let kappa = 0.8 + 1e-13;
        assert!(0.8 + 1e-12 >= kappa, "the old comparison would accept");
        assert!(!has_dep(kappa));
        // Well below the boundary: rejected.
        assert!(!has_dep(0.9));
    }

    #[test]
    fn zero_deadline_interrupts_discovery_immediately() {
        use std::time::Duration;
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let guard = ofd_core::ExecGuard::with_timeout(Duration::ZERO);
        let result = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().guard(guard))
            .run();
        assert!(!result.complete);
        assert_eq!(result.interrupt, Some(ofd_core::Interrupt::DeadlineExceeded));
        assert_eq!(result.len(), 0, "nothing emitted before the first probe");
    }

    #[test]
    fn generous_deadline_discovery_is_complete_and_unchanged() {
        use std::time::Duration;
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let guard = ofd_core::ExecGuard::with_timeout(Duration::from_secs(3600));
        let result = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().guard(guard))
            .run();
        assert!(result.complete && result.interrupt.is_none());
        let unguarded: Vec<Ofd> = discover(&rel, &onto, DiscoveryOptions::default());
        let guarded: Vec<Ofd> = result.ofds().copied().collect();
        assert_eq!(guarded, unguarded);
    }

    #[test]
    fn pre_cancelled_discovery_reports_cancellation() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let guard = ofd_core::ExecGuard::unlimited();
        guard.cancel();
        let result = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().guard(guard))
            .run();
        assert!(!result.complete);
        assert_eq!(result.interrupt, Some(ofd_core::Interrupt::Cancelled));
    }

    fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ofd_discovery_ckpt_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn killed_and_resumed_run_equals_uninterrupted_run() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let reference = FastOfd::new(&rel, &onto).run();
        assert!(reference.complete);
        let dir = temp_ckpt_dir("resume");
        for kill_at in [1u64, 3, 7, 12, 20, 35] {
            let _ = std::fs::remove_dir_all(&dir);
            // "Kill" the run at an arbitrary checkpoint: on-disk state is
            // identical to a hard kill, since snapshots cover only fully
            // completed levels.
            let guard = ofd_core::ExecGuard::unlimited();
            guard.fail_after(kill_at);
            let killed = FastOfd::new(&rel, &onto)
                .options(
                    DiscoveryOptions::new()
                        .guard(guard)
                        .checkpoint(CheckpointOptions::new(&dir)),
                )
                .run();
            // Resume in a fresh engine until complete (a snapshot may not
            // exist yet if the kill landed before level 1 finished).
            let resumed = FastOfd::new(&rel, &onto)
                .options(
                    DiscoveryOptions::new()
                        .checkpoint(CheckpointOptions::new(&dir).resume(true)),
                )
                .run();
            assert!(resumed.complete, "kill_at={kill_at}");
            assert_eq!(
                resumed.ofds, reference.ofds,
                "kill_at={kill_at}: resumed Σ must be byte-identical"
            );
            if !killed.complete && killed.snapshots_written > 0 {
                assert!(resumed.resumed_from_level.is_some(), "kill_at={kill_at}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_accepts_changed_hybrid_knobs() {
        // Sampling/sharding knobs are excluded from the checkpoint
        // fingerprint (they are result-neutral), so a snapshot written by
        // a sequential run resumes under a hybrid configuration — and
        // completes to the identical Σ.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let reference = FastOfd::new(&rel, &onto).run();
        let dir = temp_ckpt_dir("hybrid_resume");
        let _ = std::fs::remove_dir_all(&dir);
        let guard = ofd_core::ExecGuard::unlimited();
        guard.fail_after(25);
        let killed = FastOfd::new(&rel, &onto)
            .options(
                DiscoveryOptions::new()
                    .sample_rounds(0)
                    .guard(guard)
                    .checkpoint(CheckpointOptions::new(&dir)),
            )
            .run();
        assert!(!killed.complete);
        let resumed = FastOfd::new(&rel, &onto)
            .options(
                DiscoveryOptions::new()
                    .sample_rounds(4)
                    .shards(3)
                    .checkpoint(CheckpointOptions::new(&dir).resume(true)),
            )
            .run();
        assert!(resumed.complete);
        assert_eq!(resumed.ofds, reference.ofds);
        if killed.snapshots_written > 0 {
            assert!(resumed.resumed_from_level.is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_mismatched_inputs_recomputes_fresh() {
        let onto = samples::combined_paper_ontology();
        let dir = temp_ckpt_dir("mismatch");
        let rel1 = table1();
        let complete = FastOfd::new(&rel1, &onto)
            .options(DiscoveryOptions::new().checkpoint(CheckpointOptions::new(&dir)))
            .run();
        assert!(complete.complete && complete.snapshots_written > 0);
        // Same checkpoint dir, different relation: the fingerprint rejects
        // the snapshot and the run starts fresh.
        let rel2 = ofd_core::table1_updated();
        let resumed = FastOfd::new(&rel2, &onto)
            .options(
                DiscoveryOptions::new().checkpoint(CheckpointOptions::new(&dir).resume(true)),
            )
            .run();
        assert!(resumed.resumed_from_level.is_none());
        assert_eq!(
            resumed.ofds,
            FastOfd::new(&rel2, &onto).run().ofds,
            "fresh run output"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_worker_panic_degrades_to_sound_partial() {
        ofd_core::silence_injected_panics();
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let reference = FastOfd::new(&rel, &onto).run();
        for threads in [1usize, 4] {
            let obs = ofd_core::Obs::enabled();
            let plan = ofd_core::FaultPlan::parse("seed=7,panic@5").unwrap();
            let result = FastOfd::new(&rel, &onto)
                .options(
                    DiscoveryOptions::new()
                        .threads(threads)
                        .faults(plan.clone())
                        .obs(obs.clone()),
                )
                .run();
            assert_eq!(plan.fired(ofd_core::FaultSite::WorkerPanic), 1);
            assert!(!result.complete, "threads={threads}");
            assert_eq!(result.interrupt, Some(ofd_core::Interrupt::WorkerPanic));
            for d in &result.ofds {
                assert!(
                    reference.ofds.contains(d),
                    "threads={threads}: partial Σ must be a sound subset"
                );
            }
            assert_eq!(
                obs.snapshot().counter("guard.interrupt.worker_panic"),
                Some(1),
                "threads={threads}"
            );
        }
    }

    /// Random small relations + random flat ontologies for differential
    /// testing against brute force.
    fn arb_instance() -> impl Strategy<Value = (Relation, Ontology)> {
        let n_attrs = 3usize;
        let rows = prop::collection::vec(
            prop::collection::vec(0u8..4, n_attrs),
            1..10,
        );
        let groups = prop::collection::vec(prop::collection::vec(0u8..8, 1..4), 0..4);
        (rows, groups).prop_map(move |(rows, groups)| {
            let names: Vec<String> = (0..n_attrs).map(|i| format!("A{i}")).collect();
            let mut b = Relation::builder(
                ofd_core::Schema::new(names.iter().map(String::as_str)).unwrap(),
            );
            for row in &rows {
                let cells: Vec<String> = row.iter().map(|v| format!("v{v}")).collect();
                b.push_row(cells.iter().map(String::as_str)).unwrap();
            }
            let rel = b.finish();
            let mut ob = OntologyBuilder::new();
            for (gi, group) in groups.iter().enumerate() {
                let mut values: Vec<String> =
                    group.iter().map(|v| format!("v{v}")).collect();
                values.sort();
                values.dedup();
                ob.concept(format!("g{gi}"))
                    .synonyms(values)
                    .build()
                    .unwrap();
            }
            (rel, ob.finish().unwrap())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn fastofd_equals_brute_force((rel, onto) in arb_instance()) {
            let brute = brute_force(&rel, &onto, OfdKind::Synonym, 1.0);
            for opts in [
                DiscoveryOptions::default(),
                DiscoveryOptions::new().no_optimizations(),
            ] {
                let fast = discover(&rel, &onto, opts);
                prop_assert_eq!(&fast, &brute);
            }
        }

        #[test]
        fn approximate_fastofd_equals_brute_force((rel, onto) in arb_instance()) {
            let brute = brute_force(&rel, &onto, OfdKind::Synonym, 0.7);
            let fast = discover(
                &rel,
                &onto,
                DiscoveryOptions::new().min_support(0.7),
            );
            prop_assert_eq!(fast, brute);
        }

        /// Cache-on and cache-off runs agree on Σ over random instances and
        /// thread counts (the perf-layer result-neutrality contract).
        #[test]
        fn cached_fastofd_equals_uncached(
            ((rel, onto), threads) in (arb_instance(), 1usize..5)
        ) {
            let uncached = FastOfd::new(&rel, &onto)
                .options(DiscoveryOptions::default().partition_cache_mib(0))
                .run();
            for mib in [1usize, 256] {
                let cached = FastOfd::new(&rel, &onto)
                    .options(
                        DiscoveryOptions::default()
                            .partition_cache_mib(mib)
                            .threads(threads),
                    )
                    .run();
                prop_assert_eq!(&cached.ofds, &uncached.ofds);
            }
        }

        /// Sampled + sharded runs agree with the plain sequential engine on
        /// Σ over random instances, shard counts and thread counts (the
        /// hybrid-pipeline result-neutrality contract).
        #[test]
        fn hybrid_fastofd_equals_sequential(
            ((rel, onto), shards, threads) in (arb_instance(), 1usize..8, 1usize..5)
        ) {
            let sequential = FastOfd::new(&rel, &onto)
                .options(DiscoveryOptions::new().sample_rounds(0).shards(0))
                .run();
            let hybrid = FastOfd::new(&rel, &onto)
                .options(
                    DiscoveryOptions::new()
                        .sample_rounds(3)
                        .shards(shards)
                        .threads(threads),
                )
                .run();
            prop_assert_eq!(&hybrid.ofds, &sequential.ofds);
        }

        /// Interrupting FastOFD at an arbitrary checkpoint yields a subset
        /// of the uninterrupted Σ and never an invalid OFD — the tentpole
        /// partial-result soundness property.
        #[test]
        fn interrupted_fastofd_emits_sound_subset(
            ((rel, onto), n) in (arb_instance(), 1u64..120)
        ) {
            let full = brute_force(&rel, &onto, OfdKind::Synonym, 1.0);
            let guard = ofd_core::ExecGuard::unlimited();
            guard.fail_after(n);
            let result = FastOfd::new(&rel, &onto)
                .options(DiscoveryOptions::new().guard(guard))
                .run();
            let partial: Vec<Ofd> = result.ofds().copied().collect();
            for ofd in &partial {
                prop_assert!(
                    full.contains(ofd),
                    "interrupted run emitted an OFD outside the full output"
                );
            }
            if result.complete {
                prop_assert!(result.interrupt.is_none());
                prop_assert_eq!(partial, full);
            } else {
                prop_assert!(result.interrupt.is_some());
            }
        }
    }
}
