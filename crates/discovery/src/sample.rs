//! Evidence sampling: the HyFD-style pre-filter for exact discovery.
//!
//! Full-relation verification is the dominant cost of lattice traversal,
//! and the overwhelming majority of candidates *fail*. A failing candidate
//! needs only one witness pair to be refuted, and witness pairs cluster:
//! two rows violating `X → A` agree on `X`, so they sit close together
//! when the rows are sorted by any attribute of `X`. Following HyFD's
//! focused-sampling idea (see `ofd-fd-baselines::hyfd` for the plain-FD
//! reference implementation), round `r` compares every row with its
//! `r + 1`-distant neighbour in each attribute's sort order and records
//! the pair's agree-set together with its incompatible consequents in an
//! [`EvidenceSet`].
//!
//! Soundness is one-directional by construction: a sampled pair that
//! refutes `X → A` refutes it on the full relation (the pair is in the
//! full `Π_X` class too), while nothing is ever concluded from the
//! *absence* of evidence — surviving candidates still pay for the exact
//! check. That is what makes the whole phase result-neutral.

use ofd_core::{EvidenceSet, ExecGuard, Relation, SenseIndex};

/// Outcome of the sampling phase.
pub(crate) struct SampleOutcome {
    /// The gathered (deduplicated) refutation witnesses.
    pub evidence: EvidenceSet,
    /// Rounds fully executed (may stop short under a tripped guard; the
    /// partial evidence is still sound).
    pub rounds_run: u64,
}

/// Runs `rounds` sorted-neighbourhood passes and returns the evidence.
///
/// Deterministic: the pair schedule depends only on the relation contents
/// (value-id sort orders with row-id tie-breaks), never on threads or
/// timing. The guard is probed once per (round, attribute) block; a trip
/// returns the evidence gathered so far.
pub(crate) fn gather_evidence(
    rel: &Relation,
    index: &SenseIndex,
    rounds: usize,
    guard: &ExecGuard,
) -> SampleOutcome {
    let n = rel.n_rows();
    let mut evidence = EvidenceSet::new(rel.n_attrs());
    let mut rounds_run = 0u64;
    if n < 2 || rounds == 0 {
        return SampleOutcome {
            evidence,
            rounds_run,
        };
    }
    // One sort per attribute, reused across rounds — the sorts dominate
    // the phase cost at scale.
    let orders: Vec<Vec<u32>> = rel
        .schema()
        .attrs()
        .map(|a| {
            let col = rel.column(a);
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_unstable_by_key(|&t| (col[t as usize], t));
            order
        })
        .collect();
    'rounds: for round in 0..rounds {
        let dist = round + 1;
        if dist >= n {
            break;
        }
        for order in &orders {
            if guard.check().is_err() {
                break 'rounds;
            }
            for i in 0..n - dist {
                evidence.observe_pair(
                    rel,
                    index,
                    order[i] as usize,
                    order[i + dist] as usize,
                );
            }
        }
        rounds_run += 1;
    }
    SampleOutcome {
        evidence,
        rounds_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1, AttrSet, Ofd, Validator};
    use ofd_ontology::samples;

    #[test]
    fn evidence_is_sound_wrt_full_relation() {
        // The satellite soundness contract: any candidate the sample
        // refutes is refuted by exact validation over the full relation.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let guard = ExecGuard::unlimited();
        let out = gather_evidence(&rel, &index, 4, &guard);
        assert_eq!(out.rounds_run, 4);
        assert!(!out.evidence.is_empty(), "Table 1 yields witnesses");
        let v = Validator::new(&rel, &onto);
        let schema = rel.schema();
        for a in schema.attrs() {
            for bits in 0..(1u64 << schema.len()) {
                let lhs = AttrSet::from_bits(bits);
                if lhs.contains(a) || !out.evidence.refutes(lhs, a) {
                    continue;
                }
                let ofd = Ofd::synonym(lhs, a);
                assert!(
                    !v.check(&ofd).satisfied(),
                    "sample refuted the valid OFD {}",
                    ofd.display(schema)
                );
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_and_guard_aware() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let a = gather_evidence(&rel, &index, 3, &ExecGuard::unlimited());
        let b = gather_evidence(&rel, &index, 3, &ExecGuard::unlimited());
        assert_eq!(a.evidence.len(), b.evidence.len());
        assert_eq!(a.evidence.pair_count(), b.evidence.pair_count());
        // A pre-tripped guard stops before any pair is examined.
        let tripped = ExecGuard::unlimited();
        tripped.cancel();
        let c = gather_evidence(&rel, &index, 3, &tripped);
        assert_eq!(c.rounds_run, 0);
        assert!(c.evidence.is_empty());
    }

    #[test]
    fn degenerate_inputs_produce_no_evidence() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let out = gather_evidence(&rel, &index, 0, &ExecGuard::unlimited());
        assert_eq!(out.rounds_run, 0);
        assert!(out.evidence.is_empty());
        // Distances beyond the relation size terminate cleanly.
        let far = gather_evidence(&rel, &index, 10_000, &ExecGuard::unlimited());
        assert!(far.rounds_run <= rel.n_rows() as u64);
    }
}
