//! Memory-budgeted cache of stripped partitions Π*_X for the lattice.
//!
//! With the cache enabled, FastOFD's lattice nodes stop owning their
//! partitions: every Π*_X is produced through [`PartitionCache::produce`],
//! which reuses a resident copy when one exists and otherwise computes the
//! partition from the **cheapest available operand pair** — the two cached
//! parents with the smallest `‖Π*‖`, one cached parent times its missing
//! pinned level-1 attribute partition, or (when nothing usable is resident)
//! directly from the relation. Because partitions are canonical by
//! construction, every route yields byte-identical CSR arrays, so cache
//! configuration can never change Σ.
//!
//! Byte accounting uses [`StrippedPartition::approx_bytes`] (exact for the
//! CSR arrays). Insertions evict least-recently-used unpinned entries until
//! the resident total fits the budget; level-1 attribute partitions are
//! pinned — they are the universal fallback operands and together cost at
//! most one `u32` per cell of the relation. Outstanding [`Arc`] references
//! keep evicted partitions alive until their borrowers finish, so eviction
//! is always safe mid-level.

use std::sync::Arc;

use ofd_core::{AttrSet, FxHashMap, Obs, ProductScratch, Relation, StrippedPartition};

/// Cache counters, exposed on [`crate::DiscoveryStats`] and as
/// `discovery.partition.cache.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident partition.
    pub hits: u64,
    /// Lookups that had to compute the partition.
    pub misses: u64,
    /// Total bytes released by LRU eviction.
    pub evicted_bytes: u64,
    /// Bytes resident at the end of the run.
    pub resident_bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
    /// Partition products performed (pair-combining computes; misses that
    /// fell back to a direct scan are `misses − products`).
    pub products: u64,
}

struct Entry {
    part: Arc<StrippedPartition>,
    bytes: u64,
    last_used: u64,
    pinned: bool,
}

/// LRU partition cache keyed by antecedent attribute-set bits.
pub(crate) struct PartitionCache {
    entries: FxHashMap<u64, Entry>,
    budget_bytes: u64,
    resident_bytes: u64,
    clock: u64,
    stats: CacheStats,
}

impl PartitionCache {
    pub(crate) fn new(budget_mib: usize) -> PartitionCache {
        PartitionCache {
            entries: FxHashMap::default(),
            budget_bytes: (budget_mib as u64) << 20,
            resident_bytes: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Non-counting peek used during operand search (operand availability is
    /// an implementation detail, not a logical lookup).
    fn peek(&self, bits: u64) -> Option<&Arc<StrippedPartition>> {
        self.entries.get(&bits).map(|e| &e.part)
    }

    /// Inserts a computed partition, evicting LRU unpinned entries until the
    /// resident total fits the budget again. Pinned entries are never
    /// evicted; an unpinned partition larger than the whole budget is not
    /// retained at all.
    pub(crate) fn insert(
        &mut self,
        bits: u64,
        part: Arc<StrippedPartition>,
        pinned: bool,
    ) {
        let bytes = part.approx_bytes() as u64;
        if !pinned && bytes > self.budget_bytes {
            return;
        }
        let now = self.tick();
        if let Some(old) = self.entries.insert(
            bits,
            Entry {
                part,
                bytes,
                last_used: now,
                pinned,
            },
        ) {
            self.resident_bytes -= old.bytes;
        }
        self.resident_bytes += bytes;
        self.stats.peak_resident_bytes = self.stats.peak_resident_bytes.max(self.resident_bytes);
        self.evict_to_budget();
    }

    fn evict_to_budget(&mut self) {
        while self.resident_bytes > self.budget_bytes {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| !e.pinned)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&bits, _)| bits);
            let Some(bits) = victim else {
                break; // only pinned entries left
            };
            let e = self.entries.remove(&bits).expect("victim resident");
            self.resident_bytes -= e.bytes;
            self.stats.evicted_bytes += e.bytes;
        }
    }

    /// Produces Π*_X, preferring (in order): the resident copy, a product of
    /// the two cheapest resident operands, a direct computation. The result
    /// is (re-)inserted unpinned unless already resident.
    pub(crate) fn produce(
        &mut self,
        rel: &Relation,
        attrs: AttrSet,
        scratch: &mut ProductScratch,
    ) -> Arc<StrippedPartition> {
        let bits = attrs.bits();
        if let Some(e) = self.entries.get_mut(&bits) {
            self.clock += 1;
            e.last_used = self.clock;
            self.stats.hits += 1;
            return Arc::clone(&e.part);
        }
        self.stats.misses += 1;
        let part = Arc::new(self.compute(rel, attrs, scratch));
        self.insert(bits, Arc::clone(&part), false);
        part
    }

    /// Computes Π*_X from the cheapest available operand pair: the resident
    /// parent with the smallest `‖Π*‖`, paired with either the next-smallest
    /// resident parent or its own missing level-1 attribute partition —
    /// whichever is smaller. Falls back to a direct relation scan when no
    /// parent is resident (or `|X| < 2`).
    fn compute(
        &mut self,
        rel: &Relation,
        attrs: AttrSet,
        scratch: &mut ProductScratch,
    ) -> StrippedPartition {
        if attrs.len() < 2 {
            return StrippedPartition::of(rel, attrs);
        }
        // Resident parents, cheapest first.
        let mut parents: Vec<(usize, AttrSet, u64)> = attrs
            .parents()
            .filter_map(|(a, p)| {
                self.peek(p.bits())
                    .map(|sp| (sp.tuple_count(), AttrSet::single(a), p.bits()))
            })
            .collect();
        parents.sort_unstable_by_key(|&(cost, _, _)| cost);
        let (left_bits, right_bits) = match parents.as_slice() {
            [] => {
                return StrippedPartition::of(rel, attrs);
            }
            [(_, missing, p_bits), rest @ ..] => {
                // Partner: next-cheapest parent vs the pinned level-1
                // partition of this parent's missing attribute.
                let attr_bits = missing.bits();
                let attr_cost = self.peek(attr_bits).map(|sp| sp.tuple_count());
                let parent2 = rest.first();
                match (parent2, attr_cost) {
                    (Some(&(c2, _, _)), Some(ca)) if ca < c2 => (*p_bits, attr_bits),
                    (Some(&(_, _, p2)), _) => (*p_bits, p2),
                    (None, Some(_)) => (*p_bits, attr_bits),
                    (None, None) => {
                        return StrippedPartition::of(rel, attrs);
                    }
                }
            }
        };
        let left = Arc::clone(self.peek(left_bits).expect("left operand resident"));
        let right = Arc::clone(self.peek(right_bits).expect("right operand resident"));
        self.stats.products += 1;
        left.product_with_scratch(&right, scratch)
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            resident_bytes: self.resident_bytes,
            ..self.stats
        }
    }

    /// Emits the cache counters/gauges under `discovery.partition.cache.*`.
    pub(crate) fn flush_obs(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        let s = self.stats();
        // Touch first: the counters are schema-pinned, so they must appear
        // in snapshots even when a total is zero (`Obs::add` drops zeros).
        for name in [
            "discovery.partition.cache.hits",
            "discovery.partition.cache.misses",
            "discovery.partition.cache.evicted_bytes",
        ] {
            obs.touch_counter(name);
        }
        obs.add("discovery.partition.cache.hits", s.hits);
        obs.add("discovery.partition.cache.misses", s.misses);
        obs.add("discovery.partition.cache.evicted_bytes", s.evicted_bytes);
        obs.set_gauge(
            "discovery.partition.cache.resident_bytes",
            s.resident_bytes as f64,
        );
        obs.set_gauge(
            "discovery.partition.cache.peak_resident_bytes",
            s.peak_resident_bytes as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1, AttrId};

    fn attr_set(rel: &Relation, names: &[&str]) -> AttrSet {
        rel.schema().set(names.iter().copied()).unwrap()
    }

    fn seed_level1(cache: &mut PartitionCache, rel: &Relation) {
        for a in rel.schema().attrs() {
            let sp = Arc::new(StrippedPartition::of_attr(rel, a));
            cache.insert(AttrSet::single(a).bits(), sp, true);
        }
    }

    #[test]
    fn produce_hits_after_insert_and_matches_direct() {
        let rel = table1();
        let mut cache = PartitionCache::new(64);
        let mut scratch = ProductScratch::default();
        seed_level1(&mut cache, &rel);
        let x = attr_set(&rel, &["CC", "SYMP"]);
        let first = cache.produce(&rel, x, &mut scratch);
        assert_eq!(*first, StrippedPartition::of(&rel, x));
        let before = cache.stats();
        let second = cache.produce(&rel, x, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(cache.stats().hits, before.hits + 1);
    }

    #[test]
    fn cheapest_pair_routes_equal_direct_everywhere() {
        // Whatever operands the cache picks, canonical CSR makes the result
        // equal the direct computation — over all 2- and 3-subsets.
        let rel = table1();
        let mut cache = PartitionCache::new(64);
        let mut scratch = ProductScratch::default();
        seed_level1(&mut cache, &rel);
        let attrs: Vec<AttrId> = rel.schema().attrs().collect();
        let mut sets: Vec<AttrSet> = Vec::new();
        for i in 0..attrs.len() {
            for j in (i + 1)..attrs.len() {
                sets.push(AttrSet::single(attrs[i]).with(attrs[j]));
                for k in (j + 1)..attrs.len() {
                    sets.push(AttrSet::single(attrs[i]).with(attrs[j]).with(attrs[k]));
                }
            }
        }
        sets.sort_by_key(|s| s.len()); // parents first, like the lattice
        for x in sets {
            let got = cache.produce(&rel, x, &mut scratch);
            assert_eq!(*got, StrippedPartition::of(&rel, x), "{:?}", x);
        }
    }

    #[test]
    fn eviction_respects_budget_and_pins() {
        let rel = table1();
        // A zero-MiB budget: nothing unpinned survives, pins stay.
        let mut cache = PartitionCache::new(0);
        let mut scratch = ProductScratch::default();
        seed_level1(&mut cache, &rel);
        let pinned_bytes = cache.stats().resident_bytes;
        assert!(pinned_bytes > 0, "pinned entries exceed the zero budget");
        let x = attr_set(&rel, &["CC", "SYMP"]);
        let p1 = cache.produce(&rel, x, &mut scratch);
        // The unpinned product cannot be retained.
        assert_eq!(cache.stats().resident_bytes, pinned_bytes);
        let p2 = cache.produce(&rel, x, &mut scratch);
        assert_eq!(p1, p2, "recompute reproduces the canonical partition");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let rel = table1();
        let mut cache = PartitionCache::new(64);
        let mut scratch = ProductScratch::default();
        seed_level1(&mut cache, &rel);
        let x = attr_set(&rel, &["CC", "SYMP"]);
        let y = attr_set(&rel, &["CC", "DIAG"]);
        let _ = cache.produce(&rel, x, &mut scratch);
        let _ = cache.produce(&rel, y, &mut scratch);
        let _ = cache.produce(&rel, x, &mut scratch); // x newer than y
        // Shrink the budget to force eviction of exactly the colder entry.
        cache.budget_bytes = cache.resident_bytes - 1;
        cache.evict_to_budget();
        assert!(cache.peek(x.bits()).is_some(), "recently used survives");
        assert!(cache.peek(y.bits()).is_none(), "LRU entry evicted");
        assert!(cache.stats().evicted_bytes > 0);
    }
}
