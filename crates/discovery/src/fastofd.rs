//! The FastOFD discovery algorithm (§4, Algorithms 2–4).
//!
//! Level-wise traversal of the set-containment lattice: level `l` holds
//! attribute sets `X` with `|X| = l`, and at each node the candidates
//! `X\A → A` for `A ∈ X ∩ C⁺(X)` are verified. The candidate sets
//! `C⁺(X) = ⋂_{A∈X} C⁺(X\A)` (Definition 5.2) realize the Augmentation
//! pruning (Opt-2); note they deliberately *omit* TANE's extra RHS⁺ rule,
//! which is unsound for OFDs (§4.1).
//!
//! Stripped partitions flow down the lattice by linear-time products, so the
//! whole run is polynomial in the number of tuples and exponential (in the
//! worst case) only in the number of attributes — matching the paper's
//! complexity analysis.

use ofd_core::FxHashMap;
use std::sync::Arc;
use std::time::Instant;

use ofd_core::{
    check_ofd_exact, check_ofd_with_index, support_threshold, AttrId, AttrSet, EvidenceSet, Ofd,
    OfdKind, ProductScratch, Relation, Schema, SenseIndex, StrippedPartition,
};
use ofd_logic::{implies, Dependency};
use ofd_ontology::Ontology;

use crate::cache::PartitionCache;
use crate::checkpoint;
use crate::options::DiscoveryOptions;
use crate::sample;
use crate::shard::{self, ShardCovers, ShardPlan};
use crate::stats::{DiscoveryStats, LevelStats};

/// One minimal OFD emitted by discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredOfd {
    /// The dependency.
    pub ofd: Ofd,
    /// Its support over the instance (1.0 for exact OFDs).
    pub support: f64,
    /// Lattice level at which it was found (`|X| + 1` for `X → A`).
    pub level: usize,
}

/// Output of a [`FastOfd`] run.
///
/// When the run's [`ExecGuard`](ofd_core::ExecGuard) interrupts it,
/// `complete` is false and `interrupt` records why. The partial Σ is
/// *sound*: every emitted OFD was verified against the instance and is
/// minimal w.r.t. the fully-explored lower levels — only dependencies at
/// unexplored positions may be missing.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// The minimal set Σ found so far, ordered by (level, antecedent,
    /// consequent); complete iff `complete`.
    pub ofds: Vec<DiscoveredOfd>,
    /// Instrumentation counters.
    pub stats: DiscoveryStats,
    /// Whether the lattice traversal ran to the end.
    pub complete: bool,
    /// Why the traversal stopped early, when `complete` is false.
    pub interrupt: Option<ofd_core::Interrupt>,
    /// The completed level a resumed run restarted after (`None` for a
    /// fresh run, including a requested resume with no usable snapshot).
    pub resumed_from_level: Option<usize>,
    /// Level-boundary snapshots written by this run.
    pub snapshots_written: usize,
    /// Snapshot writes that failed (I/O or injected faults); the run
    /// continues — a missed checkpoint only costs recompute on resume.
    pub snapshot_errors: usize,
}

impl Discovery {
    /// The discovered dependencies as bare [`Ofd`]s.
    pub fn ofds(&self) -> impl Iterator<Item = &Ofd> {
        self.ofds.iter().map(|d| &d.ofd)
    }

    /// The discovered dependencies as logic-level [`Dependency`] shapes.
    pub fn dependencies(&self) -> Vec<Dependency> {
        self.ofds.iter().map(|d| d.ofd.into()).collect()
    }

    /// Number of discovered OFDs.
    pub fn len(&self) -> usize {
        self.ofds.len()
    }

    /// Whether nothing was discovered.
    pub fn is_empty(&self) -> bool {
        self.ofds.is_empty()
    }

    /// Pretty-prints the result with attribute names; an interrupted run
    /// is explicitly marked incomplete with its reason.
    pub fn display(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for d in &self.ofds {
            out.push_str(&format!(
                "L{} s={:.3} {}\n",
                d.level,
                d.support,
                d.ofd.display(schema)
            ));
        }
        if let Some(i) = self.interrupt {
            out.push_str(&format!("INCOMPLETE: interrupted ({i}); Σ above is a sound subset\n"));
        }
        out
    }
}

/// A node of the discovery lattice.
struct Node {
    attrs: AttrSet,
    /// Candidate consequents `C⁺(X)`; `schema.all()` when Opt-2 is off.
    c_plus: AttrSet,
    /// The node-owned partition Π*_X — `Some` only when the partition
    /// cache is disabled. With the cache on, partitions live in (and are
    /// re-produced through) the [`PartitionCache`] instead, so residency is
    /// byte-bounded.
    partition: Option<Arc<StrippedPartition>>,
    /// Whether Π*_X is empty (X is a superkey) — retained on the node so
    /// Opt-3 never needs the partition to be resident.
    superkey: bool,
}

/// The FastOFD discovery driver.
pub struct FastOfd<'a> {
    rel: &'a Relation,
    onto: &'a Ontology,
    opts: DiscoveryOptions,
}

impl<'a> FastOfd<'a> {
    /// Creates a driver with default options.
    pub fn new(rel: &'a Relation, onto: &'a Ontology) -> FastOfd<'a> {
        FastOfd {
            rel,
            onto,
            opts: DiscoveryOptions::default(),
        }
    }

    /// Replaces the options.
    pub fn options(mut self, opts: DiscoveryOptions) -> FastOfd<'a> {
        self.opts = opts;
        self
    }

    /// Runs Algorithm 2: discovers the complete, minimal set of OFDs.
    pub fn run(&self) -> Discovery {
        let started = Instant::now();
        let obs = &self.opts.obs;
        let _run_span = obs.span("fastofd.run");
        let schema = self.rel.schema();
        let n = schema.len();
        let all = schema.all();
        // One shared sense index in the semantics of the requested kind;
        // `check_ofd_with_index` is thread-safe over it.
        let index = {
            let _span = obs.span("fastofd.index");
            match self.opts.kind {
                OfdKind::Synonym => SenseIndex::synonym(self.rel, self.onto),
                OfdKind::Inheritance { theta } => {
                    SenseIndex::inheritance(self.rel, self.onto, theta)
                }
            }
        };
        let known: Vec<Dependency> = self
            .opts
            .known_fds
            .iter()
            .map(|fd| Dependency::from(*fd))
            .collect();
        // Exact integer support: a candidate meets κ iff it covers at least
        // `ceil(κ · n_rows)` tuples. When that threshold is the full
        // relation (κ = 1, or κ close enough that any violation fails it),
        // the early-exit exact checker applies.
        let exact =
            support_threshold(self.rel.n_rows(), self.opts.min_support) == self.rel.n_rows();
        // Worker-utilization bookkeeping (gauge — not thread-invariant by
        // design, unlike every counter below).
        let mut busy_us: u64 = 0;
        let mut capacity_us: u64 = 0;

        let mut sigma: Vec<DiscoveredOfd> = Vec::new();
        let mut stats = DiscoveryStats::default();
        let mut scratch = ProductScratch::default();

        // Byte-budgeted partition cache (result-neutral: partitions are
        // canonical however produced, so Σ is identical at any budget).
        // Level-0/1 partitions are pinned — they are the universal operand
        // fallbacks for every later product.
        let mut cache: Option<PartitionCache> = (self.opts.partition_cache_mib > 0)
            .then(|| PartitionCache::new(self.opts.partition_cache_mib));
        if let Some(c) = cache.as_mut() {
            let _span = obs.span("fastofd.cache.seed");
            for a in schema.attrs() {
                let sp = Arc::new(StrippedPartition::of_attr(self.rel, a));
                c.insert(AttrSet::single(a).bits(), sp, true);
            }
        }

        // Level 0: the empty antecedent.
        let level0 = Arc::new(StrippedPartition::of(self.rel, AttrSet::empty()));
        let mut prev: Vec<Node> = vec![Node {
            attrs: AttrSet::empty(),
            c_plus: all,
            superkey: level0.is_superkey(),
            partition: match cache.as_mut() {
                Some(c) => {
                    c.insert(AttrSet::empty().bits(), level0, true);
                    None
                }
                None => Some(level0),
            },
        }];
        let mut prev_index: FxHashMap<u64, usize> =
            std::iter::once((AttrSet::empty().bits(), 0)).collect();

        let guard = &self.opts.guard;
        let max_level = self.opts.max_level.unwrap_or(n).min(n);

        // Checkpoint/resume: the fingerprint binds snapshots to exactly
        // these inputs and result-affecting options.
        let fp = self
            .opts
            .checkpoint
            .as_ref()
            .map(|_| checkpoint::fingerprint(self.rel, self.onto, &self.opts));
        let mut start_level = 1;
        let mut resumed_from_level = None;
        let mut snapshots_written = 0;
        let mut snapshot_errors = 0;
        if let Some(ck) = self.opts.checkpoint.as_ref().filter(|ck| ck.resume) {
            if let Ok(Some(loaded)) = ck.store.load_latest(checkpoint::STREAM) {
                match checkpoint::restore(&loaded.body, fp.expect("fp set"), self.opts.kind) {
                    Some(rs) => {
                        sigma = rs.sigma;
                        stats.levels = rs.levels;
                        // Stripped partitions are recomputed from the
                        // relation; `StrippedPartition::of` equals the
                        // product-built partition semantically, so every
                        // later decision is unchanged.
                        prev = rs
                            .frontier
                            .iter()
                            .map(|&(attrs, c_plus)| {
                                let sp = Arc::new(StrippedPartition::of(self.rel, attrs));
                                let superkey = sp.is_superkey();
                                let partition = match cache.as_mut() {
                                    Some(c) => {
                                        c.insert(attrs.bits(), sp, false);
                                        None
                                    }
                                    None => Some(sp),
                                };
                                Node {
                                    attrs,
                                    c_plus,
                                    partition,
                                    superkey,
                                }
                            })
                            .collect();
                        prev_index = prev
                            .iter()
                            .enumerate()
                            .map(|(i, node)| (node.attrs.bits(), i))
                            .collect();
                        start_level = rs.completed_level + 1;
                        resumed_from_level = Some(rs.completed_level);
                        // Re-seed obs accumulators so final totals cover
                        // the whole logical run, not just the tail.
                        for (name, v) in &rs.counters {
                            obs.add(name, *v);
                        }
                        if obs.is_enabled() {
                            obs.inc("discovery.resume");
                            obs.set_gauge(
                                "discovery.resumed_from_level",
                                rs.completed_level as f64,
                            );
                        }
                        // An empty restored frontier means the traversal
                        // had already converged: nothing left to run.
                        if prev.is_empty() {
                            start_level = max_level + 1;
                        }
                    }
                    None => {
                        if obs.is_enabled() {
                            obs.inc("discovery.resume.rejected");
                        }
                    }
                }
            }
        }

        // Fault injection (worker panics, delays) probed at every
        // candidate decision; panics are caught, never propagated.
        let faults = &self.opts.faults;

        // Hybrid pre-filter phases (sampling + shards). Both stages are
        // pure *refutation oracles* for the exact path: a positive answer
        // is a sound "fails on the full relation" verdict, the absence of
        // one proves nothing, and surviving candidates still pay for the
        // exact check — which is why Σ, supports and per-level stats are
        // byte-identical with the phases on or off (the result-neutrality
        // contract enforced by the differential tests). Neither phase runs
        // for κ < 1: a sub-relation violation does not refute an
        // approximate candidate.
        if obs.is_enabled() {
            for name in [
                "discovery.sample.rounds",
                "discovery.sample.evidence_pairs",
                "discovery.sample.candidates_pruned",
                "discovery.shard.shards",
                "discovery.shard.merged_candidates",
                "discovery.shard.candidates_pruned",
                "discovery.shard.union_validated",
            ] {
                obs.touch_counter(name);
            }
        }
        let run_phases = exact && start_level <= max_level;
        let evidence: Option<EvidenceSet> = (run_phases && self.opts.sample_rounds > 0)
            .then(|| {
                let _span = obs.span("fastofd.sample");
                let out =
                    sample::gather_evidence(self.rel, &index, self.opts.sample_rounds, guard);
                if obs.is_enabled() {
                    obs.add("discovery.sample.rounds", out.rounds_run);
                    obs.add(
                        "discovery.sample.evidence_pairs",
                        out.evidence.pair_count(),
                    );
                }
                out.evidence
            })
            .filter(|e| !e.is_empty());
        let n_shards = if run_phases {
            self.opts.effective_shards(self.rel.n_rows())
        } else {
            0
        };
        let shard_covers: Option<ShardCovers> = (n_shards > 1)
            .then(|| {
                let _span = obs.span("fastofd.shards");
                let plan = ShardPlan {
                    n_shards,
                    threads: self.opts.threads.max(1),
                    max_level,
                    target_rhs: self.opts.target_rhs,
                    kind: self.opts.kind,
                };
                let covers = shard::discover_shards(self.rel, &index, &plan, guard);
                if obs.is_enabled() {
                    obs.add("discovery.shard.shards", covers.completed as u64);
                    obs.add(
                        "discovery.shard.merged_candidates",
                        covers.merged_candidates(),
                    );
                }
                covers
            })
            .filter(|c| c.completed > 0);
        // Lazy partition mode: with a refutation oracle active (and the
        // cache available to materialize on demand), `next_level` stops
        // producing partitions eagerly — most candidates die on the oracles
        // alone, so only antecedents of *surviving* candidates are ever
        // materialized. Partition products dominate discovery cost at
        // scale, which makes this deferral the hybrid pipeline's wall-clock
        // win; it is result-neutral because the cache produces canonical
        // partitions whichever route computes them.
        let lazy_partitions =
            (evidence.is_some() || shard_covers.is_some()) && cache.is_some();

        for level in start_level..=max_level {
            // Per-level checkpoint: never start building a level once a
            // limit has expired.
            if guard.check().is_err() {
                break;
            }
            let level_started = Instant::now();
            let _level_span = obs.span(&format!("fastofd.level.{level}"));
            let mut ls = LevelStats {
                level,
                ..LevelStats::default()
            };

            // calculateNextLevel (Algorithm 3).
            let mut current: Vec<Node> = if level == 1 {
                schema
                    .attrs()
                    .map(|a| {
                        let attrs = AttrSet::single(a);
                        match cache.as_mut() {
                            Some(c) => {
                                // Seeded pinned at startup: always a hit.
                                let sp = c.produce(self.rel, attrs, &mut scratch);
                                Node {
                                    attrs,
                                    c_plus: all,
                                    superkey: sp.is_superkey(),
                                    partition: None,
                                }
                            }
                            None => {
                                let sp = Arc::new(self.attr_partition(a));
                                Node {
                                    attrs,
                                    c_plus: all,
                                    superkey: sp.is_superkey(),
                                    partition: Some(sp),
                                }
                            }
                        }
                    })
                    .collect()
            } else {
                self.next_level(&prev, &prev_index, &mut scratch, &mut cache, lazy_partitions)
            };
            ls.nodes = current.len();

            // computeOFDs (Algorithm 4), line 2: C⁺(X) = ⋂ C⁺(X\A).
            if self.opts.use_opt2 && level >= 1 {
                for node in &mut current {
                    let mut cp = all;
                    for (_, parent) in node.attrs.parents() {
                        match prev_index.get(&parent.bits()) {
                            Some(&pi) => cp = cp.intersect(prev[pi].c_plus),
                            None => cp = AttrSet::empty(),
                        }
                    }
                    node.c_plus = cp;
                }
            }

            // Candidate verification: collect the level's jobs, decide
            // them (in parallel when configured — order within a level is
            // immaterial), then apply emissions sequentially.
            //
            // Prune attribution (counters, thread-invariant): Opt-1 is
            // structural — the trivial candidates `X → A, A ∈ X` at each
            // node are never generated; Opt-2 removes consequents outside
            // `C⁺(X)` and candidates whose parent node was deleted.
            let mut opt1_trivial_skipped: u64 = 0;
            let mut opt2_candidates_pruned: u64 = 0;
            let mut jobs: Vec<(usize, AttrId, AttrSet, usize)> = Vec::new();
            for (ni, node) in current.iter().enumerate() {
                let mut base = node.attrs;
                if let Some(target) = self.opts.target_rhs {
                    base = base.intersect(target);
                }
                let cands = if self.opts.use_opt2 {
                    base.intersect(node.c_plus)
                } else {
                    base
                };
                opt1_trivial_skipped += node.attrs.len() as u64;
                opt2_candidates_pruned += (base.len() - cands.len()) as u64;
                for a in cands.iter() {
                    let lhs = node.attrs.without(a);
                    if let Some(&pi) = prev_index.get(&lhs.bits()) {
                        jobs.push((ni, a, lhs, pi));
                    } else {
                        // Only Opt-2's node deletion removes parents.
                        opt2_candidates_pruned += 1;
                    }
                }
            }
            ls.candidates = jobs.len();

            // Partition-free pre-decisions: Opt-4 logic subsumption, then
            // the hybrid refutation oracles. Deciding these before
            // partition resolution means (in lazy mode) refuted candidates
            // never force a materialization. Soundness keeps attribution
            // honest: a superkey antecedent implies a valid candidate,
            // which no sound oracle can refute, so every KeyShortcut
            // candidate still reaches the data path below.
            let prechecked: Vec<Option<(bool, f64, Decision)>> = jobs
                .iter()
                .map(|&(_, a, lhs, _)| {
                    let ofd = Ofd {
                        lhs,
                        rhs: a,
                        kind: self.opts.kind,
                    };
                    self.precheck(&ofd, &known, exact, evidence.as_ref(), shard_covers.as_ref())
                })
                .collect();

            // Resolve each antecedent partition a data decision still
            // needs, before any workers spawn: cache lookups stay on this
            // thread (counters remain thread-invariant) and workers only
            // read `Arc`s.
            let resolved: Vec<Option<Arc<StrippedPartition>>> = {
                let mut resolved: Vec<Option<Arc<StrippedPartition>>> = Vec::new();
                resolved.resize_with(prev.len(), || None);
                for (&(_, _, _, pi), pre) in jobs.iter().zip(prechecked.iter()) {
                    if pre.is_some() || resolved[pi].is_some() {
                        continue;
                    }
                    let node = &prev[pi];
                    resolved[pi] = Some(if let Some(p) = &node.partition {
                        Arc::clone(p)
                    } else if node.superkey {
                        // Canonical empty partition; no cache traffic.
                        Arc::new(StrippedPartition::empty(self.rel.n_rows()))
                    } else {
                        cache
                            .as_mut()
                            .expect("cache is on when node partitions are deferred")
                            .produce(self.rel, node.attrs, &mut scratch)
                    });
                }
                resolved
            };

            let decide_one = |i: usize| {
                faults.delay();
                faults.worker_panic();
                if let Some(pre) = prechecked[i] {
                    return pre;
                }
                let (_, a, lhs, pi) = jobs[i];
                let ofd = Ofd {
                    lhs,
                    rhs: a,
                    kind: self.opts.kind,
                };
                let lhs_partition = resolved[pi].as_ref().expect("resolved before decisions");
                self.decide_data(&index, &ofd, lhs_partition, exact)
            };
            // Panic isolation: a worker panic (a bug in verification, or
            // an injected fault) is caught, recorded as the sticky
            // `WorkerPanic` interrupt, and degrades the run to the same
            // sound partial result every other interrupt produces — the
            // process never aborts.
            let decide_caught = |i: usize| {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| decide_one(i))) {
                    Ok(out) => Some(out),
                    Err(_) => {
                        guard.trip_external(ofd_core::Interrupt::WorkerPanic);
                        None
                    }
                }
            };
            // Per-candidate checkpoint: a `None` decision means the guard
            // tripped before that candidate was examined (or the worker
            // deciding it panicked) — it is simply not part of the
            // (sound) partial output.
            let verify_started = Instant::now();
            let verify_span = obs.span("fastofd.verify");
            let decisions: Vec<Option<(bool, f64, Decision)>> = if self.opts.threads <= 1
                || jobs.len() < 2 * self.opts.threads
            {
                let out = (0..jobs.len())
                    .map(|i| guard.check().ok().and_then(|()| decide_caught(i)))
                    .collect();
                let wall = verify_started.elapsed().as_micros() as u64;
                busy_us += wall;
                capacity_us += wall;
                out
            } else {
                let n_threads = self.opts.threads.min(jobs.len());
                let counter = std::sync::atomic::AtomicUsize::new(0);
                let worker_busy = std::sync::atomic::AtomicU64::new(0);
                let mut slots: Vec<Option<(bool, f64, Decision)>> = vec![None; jobs.len()];
                let slot_ptr = SlotWriter(slots.as_mut_ptr());
                std::thread::scope(|scope| {
                    for _ in 0..n_threads {
                        let counter = &counter;
                        let worker_busy = &worker_busy;
                        let jobs = &jobs;
                        let decide_caught = &decide_caught;
                        let slot_ptr = &slot_ptr;
                        scope.spawn(move || {
                            let worker_started = Instant::now();
                            loop {
                                if guard.check().is_err() {
                                    break;
                                }
                                let i = counter
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if i >= jobs.len() {
                                    break;
                                }
                                let Some(out) = decide_caught(i) else {
                                    // This worker panicked; the guard is
                                    // tripped, so every worker (including
                                    // this one) stops at its next probe.
                                    continue;
                                };
                                // SAFETY: each index is claimed by exactly one
                                // thread via the atomic counter, so writes are
                                // disjoint.
                                unsafe {
                                    *slot_ptr.0.add(i) = Some(out);
                                }
                            }
                            worker_busy.fetch_add(
                                worker_started.elapsed().as_micros() as u64,
                                std::sync::atomic::Ordering::Relaxed,
                            );
                        });
                    }
                });
                let wall = verify_started.elapsed().as_micros() as u64;
                busy_us += worker_busy.load(std::sync::atomic::Ordering::Relaxed);
                capacity_us += wall * n_threads as u64;
                slots
            };
            drop(verify_span);
            if obs.is_enabled() {
                obs.set_gauge(
                    &format!("discovery.level.{level}.verify_ms"),
                    verify_started.elapsed().as_secs_f64() * 1e3,
                );
            }

            let mut sample_pruned: u64 = 0;
            let mut shard_pruned: u64 = 0;
            let mut union_validated: u64 = 0;
            for (&(ni, a, lhs, _), decision) in jobs.iter().zip(decisions.iter()) {
                let &Some((valid, support, how)) = decision else {
                    continue;
                };
                match how {
                    Decision::KeyShortcut => ls.key_shortcuts += 1,
                    Decision::FdShortcut => ls.fd_shortcuts += 1,
                    Decision::Verified => {
                        ls.verified += 1;
                        if shard_covers.is_some() {
                            // Survived the merged shard covers and was
                            // validated against the full union of rows.
                            union_validated += 1;
                        }
                    }
                    Decision::SampleRefuted => {
                        ls.verified += 1;
                        sample_pruned += 1;
                    }
                    Decision::ShardRefuted => {
                        ls.verified += 1;
                        shard_pruned += 1;
                    }
                }
                if valid {
                    let minimal = if self.opts.use_opt2 {
                        // Lemma 5.3: A ∈ C⁺(X) already certifies minimality.
                        true
                    } else {
                        !sigma
                            .iter()
                            .any(|d| d.ofd.rhs == a && d.ofd.lhs.is_proper_subset(lhs))
                    };
                    if minimal {
                        sigma.push(DiscoveredOfd {
                            ofd: Ofd {
                                lhs,
                                rhs: a,
                                kind: self.opts.kind,
                            },
                            support,
                            level,
                        });
                        ls.found += 1;
                    }
                    if self.opts.use_opt2 {
                        current[ni].c_plus.remove(a);
                    }
                }
            }

            // Opt-2 node pruning: a node with an empty candidate set cannot
            // contribute candidates at any descendant.
            let before = current.len();
            if self.opts.use_opt2 {
                current.retain(|n| !n.c_plus.is_empty());
            }
            ls.pruned_nodes = before - current.len();

            prev_index = current
                .iter()
                .enumerate()
                .map(|(i, n)| (n.attrs.bits(), i))
                .collect();
            prev = current;
            ls.elapsed = level_started.elapsed();
            // Per-level counters are emitted here, after the sequential
            // emission pass, so their totals are identical for any worker
            // thread count (the metrics-invariance contract).
            if obs.is_enabled() {
                obs.inc("discovery.levels");
                obs.add(&format!("discovery.level.{level}.nodes"), ls.nodes as u64);
                obs.add(
                    &format!("discovery.level.{level}.candidates"),
                    ls.candidates as u64,
                );
                obs.add(
                    &format!("discovery.level.{level}.verified"),
                    ls.verified as u64,
                );
                obs.add(&format!("discovery.level.{level}.found"), ls.found as u64);
                obs.add("discovery.nodes", ls.nodes as u64);
                obs.add("discovery.candidates", ls.candidates as u64);
                obs.add("discovery.verified", ls.verified as u64);
                obs.add("discovery.found", ls.found as u64);
                obs.add("discovery.prune.opt1.trivial_skipped", opt1_trivial_skipped);
                obs.add(
                    "discovery.prune.opt2.candidates_pruned",
                    opt2_candidates_pruned,
                );
                obs.add("discovery.prune.opt2.nodes_deleted", ls.pruned_nodes as u64);
                obs.add("discovery.prune.opt3.key_shortcuts", ls.key_shortcuts as u64);
                obs.add("discovery.prune.opt4.fd_shortcuts", ls.fd_shortcuts as u64);
                obs.add("discovery.sample.candidates_pruned", sample_pruned);
                obs.add("discovery.shard.candidates_pruned", shard_pruned);
                obs.add("discovery.shard.union_validated", union_validated);
            }
            stats.levels.push(ls);
            // Level-boundary checkpoint. Written only when no interrupt
            // is pending: a tripped run processed this level partially,
            // and recording it as completed would make resume unsound.
            // This also models a hard kill — on-disk state only ever
            // describes fully completed levels.
            if let Some(ck) = &self.opts.checkpoint {
                if guard.interrupt().is_none() {
                    let frontier: Vec<(u64, u64)> = prev
                        .iter()
                        .map(|node| (node.attrs.bits(), node.c_plus.bits()))
                        .collect();
                    let body = checkpoint::snapshot_body(
                        fp.expect("fp set"),
                        level,
                        &sigma,
                        &frontier,
                        &stats.levels,
                        guard.work_done(),
                        obs,
                    );
                    match ck.store.save(checkpoint::STREAM, level as u64, &body) {
                        Ok(_) => {
                            snapshots_written += 1;
                            obs.inc("discovery.checkpoint.written");
                        }
                        Err(_) => {
                            snapshot_errors += 1;
                            obs.inc("discovery.checkpoint.error");
                        }
                    }
                }
            }
            if prev.is_empty() {
                break;
            }
        }

        sigma.sort_by_key(|d| (d.level, d.ofd.lhs.bits(), d.ofd.rhs));
        stats.elapsed = started.elapsed();
        if let Some(c) = &cache {
            c.flush_obs(obs);
            stats.cache = Some(c.stats());
        }
        let interrupt = guard.interrupt();
        if obs.is_enabled() {
            if capacity_us > 0 {
                obs.set_gauge(
                    "discovery.verify.utilization",
                    busy_us as f64 / capacity_us as f64,
                );
            }
            obs.set_gauge("discovery.elapsed_ms", stats.elapsed.as_secs_f64() * 1e3);
            if let Some(i) = interrupt {
                obs.inc(&format!("guard.interrupt.{}", i.label()));
            }
        }
        Discovery {
            ofds: sigma,
            stats,
            complete: interrupt.is_none(),
            interrupt,
            resumed_from_level,
            snapshots_written,
            snapshot_errors,
        }
    }

    fn attr_partition(&self, attr: AttrId) -> StrippedPartition {
        StrippedPartition::of_attr(self.rel, attr)
    }

    /// Joins prefix blocks of the previous level into the next one.
    fn next_level(
        &self,
        prev: &[Node],
        prev_index: &FxHashMap<u64, usize>,
        scratch: &mut ProductScratch,
        cache: &mut Option<PartitionCache>,
        lazy: bool,
    ) -> Vec<Node> {
        // Sort node indices by attribute list; nodes sharing all but the
        // last attribute form a block.
        let obs = &self.opts.obs;
        let _span = obs.span("fastofd.next_level");
        let mut products: u64 = 0;
        let mut products_skipped: u64 = 0;
        let mut order: Vec<usize> = (0..prev.len()).collect();
        order.sort_by_key(|&i| {
            let attrs: Vec<u16> = prev[i].attrs.iter().map(|a| a.index() as u16).collect();
            attrs
        });
        let mut out = Vec::new();
        let all = self.rel.schema().all();
        let mut block_start = 0;
        while block_start < order.len() {
            let head = prev[order[block_start]].attrs;
            let head_prefix = head.without(last_attr(head));
            let mut block_end = block_start + 1;
            while block_end < order.len() {
                let cur = prev[order[block_end]].attrs;
                if cur.without(last_attr(cur)) != head_prefix {
                    break;
                }
                block_end += 1;
            }
            for i in block_start..block_end {
                for j in (i + 1)..block_end {
                    let a = &prev[order[i]];
                    let b = &prev[order[j]];
                    let attrs = a.attrs.union(b.attrs);
                    // All parents must exist for the C⁺ intersection (and,
                    // with Opt-2, a missing parent means the child is dead).
                    let parents_ok = attrs
                        .parents()
                        .all(|(_, p)| prev_index.contains_key(&p.bits()));
                    if !parents_ok {
                        continue;
                    }
                    if self.opts.use_opt3 && (a.superkey || b.superkey) {
                        // Opt-3: supersets of superkeys are superkeys; skip
                        // the product entirely.
                        products_skipped += 1;
                        out.push(Node {
                            attrs,
                            c_plus: all,
                            superkey: true,
                            partition: cache
                                .is_none()
                                .then(|| Arc::new(StrippedPartition::empty(self.rel.n_rows()))),
                        });
                        continue;
                    }
                    if lazy {
                        // Hybrid mode: defer the product. Π*_X is produced
                        // through the cache only if a surviving candidate
                        // ever needs it; `superkey: false` just means
                        // "unknown" — the data path re-checks on the
                        // materialized partition, so Opt-3 attribution is
                        // unchanged.
                        out.push(Node {
                            attrs,
                            c_plus: all,
                            superkey: false,
                            partition: None,
                        });
                        continue;
                    }
                    products += 1;
                    let (p, partition) = match cache.as_mut() {
                        Some(c) => {
                            // First sight of X this run: the cache picks the
                            // cheapest resident operand pair.
                            (c.produce(self.rel, attrs, scratch), None)
                        }
                        None => {
                            let left =
                                a.partition.as_ref().expect("resident when cache off");
                            let right =
                                b.partition.as_ref().expect("resident when cache off");
                            let p = Arc::new(left.product_with_scratch(right, scratch));
                            (Arc::clone(&p), Some(p))
                        }
                    };
                    obs.observe(
                        "discovery.partition.class_count",
                        CLASS_COUNT_BOUNDS,
                        p.class_count() as f64,
                    );
                    out.push(Node {
                        attrs,
                        c_plus: all,
                        superkey: p.is_superkey(),
                        partition,
                    });
                }
            }
            block_start = block_end;
        }
        obs.add("discovery.partition.products", products);
        obs.add("discovery.prune.opt3.products_skipped", products_skipped);
        out
    }

    /// Decides a candidate without touching any partition, when possible:
    /// Opt-4 logic subsumption first, then the hybrid refutation oracles.
    ///
    /// Runs before partition resolution so that, in lazy mode, a
    /// pre-decided candidate never forces a materialization. Ordering
    /// Opt-4 ahead of the oracles keeps Σ byte-identical with the phases
    /// off even when `known_fds` do not actually hold on the instance (an
    /// FD-implied candidate is emitted either way, as Opt-4's contract
    /// dictates, instead of being data-refuted by an oracle first).
    fn precheck(
        &self,
        ofd: &Ofd,
        known: &[Dependency],
        exact: bool,
        evidence: Option<&EvidenceSet>,
        shards: Option<&ShardCovers>,
    ) -> Option<(bool, f64, Decision)> {
        // Opt-4: FD subsumption — an OFD implied by FDs that hold exactly
        // needs no data verification.
        if self.opts.use_opt4 && !known.is_empty() {
            let dep = Dependency::from(*ofd);
            if implies(known, &dep) {
                return Some((true, 1.0, Decision::FdShortcut));
            }
        }
        if exact {
            // Hybrid pre-filter oracles, consulted strictly before the
            // full-relation scan they exist to avoid. Either refutation is
            // sound on the full relation, and the `(false, 1.0, _)` shape
            // matches what the exact check would have returned for the
            // same candidate.
            if let Some(ev) = evidence {
                if ev.refutes(ofd.lhs, ofd.rhs) {
                    return Some((false, 1.0, Decision::SampleRefuted));
                }
            }
            if let Some(sc) = shards {
                if sc.refutes(ofd.lhs, ofd.rhs) {
                    return Some((false, 1.0, Decision::ShardRefuted));
                }
            }
        }
        None
    }

    /// Decides one candidate against the data: (valid?, support, how).
    fn decide_data(
        &self,
        index: &SenseIndex,
        ofd: &Ofd,
        lhs_partition: &StrippedPartition,
        exact: bool,
    ) -> (bool, f64, Decision) {
        // Opt-3: a superkey antecedent has no non-singleton classes.
        if self.opts.use_opt3 && lhs_partition.is_superkey() {
            return (true, 1.0, Decision::KeyShortcut);
        }
        if exact {
            // Early-exit on the first violating class — the hot path, since
            // most lattice candidates fail.
            let ok = check_ofd_exact(self.rel, index, ofd, lhs_partition);
            (ok, 1.0, Decision::Verified)
        } else {
            // The κ comparison is exact integer arithmetic shared with the
            // brute-force oracle ([`ofd_core::meets_support`]); the f64
            // support is carried for display only.
            let validation = check_ofd_with_index(self.rel, index, ofd, lhs_partition);
            (
                validation.meets_support(self.opts.min_support),
                validation.support(),
                Decision::Verified,
            )
        }
    }
}

/// How one candidate was decided (stats bookkeeping).
///
/// The two refutation variants are data-decided negatives, so they count
/// into [`LevelStats::verified`] exactly like [`Decision::Verified`] — the
/// per-level stats are part of the result-neutrality contract. They exist
/// as distinct variants only for the prune-attribution counters.
#[derive(Debug, Clone, Copy)]
enum Decision {
    KeyShortcut,
    FdShortcut,
    Verified,
    /// Refuted by a sampled evidence pair (no full scan).
    SampleRefuted,
    /// Refuted by a completed shard's minimal cover (no full scan).
    ShardRefuted,
}

/// Raw-pointer wrapper so disjoint slots can be written from scoped worker
/// threads (each index claimed once through an atomic counter).
struct SlotWriter<T>(*mut Option<T>);
unsafe impl<T: Send> Sync for SlotWriter<T> {}

/// Bucket boundaries for the partition class-count histogram
/// (`discovery.partition.class_count`).
const CLASS_COUNT_BOUNDS: &[f64] = &[
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0, 16384.0,
];

fn last_attr(set: AttrSet) -> AttrId {
    set.iter().last().expect("non-empty lattice node")
}
