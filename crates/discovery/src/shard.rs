//! Shard-and-merge pre-filtering: per-row-range discovery as a sound
//! refutation oracle for the global lattice.
//!
//! An exact OFD that holds on the full relation holds on every subset of
//! its rows (each subset class is contained in a full class, and a common
//! sense restricts). The contrapositive is the oracle: a candidate that
//! *fails on any row shard* is globally refuted without touching the full
//! relation. The phase splits the rows into contiguous chunks, runs a
//! self-contained lattice pass per chunk on the existing worker threads
//! (no rayon), and keeps each completed shard's **complete minimal cover**
//! Σ_s over its range. `X → A` then holds on shard `s` iff some `X' ⊆ X`
//! with `X' → A` is in Σ_s — completeness of Σ_s is what makes a negative
//! answer a sound refutation.
//!
//! Merging is deliberately *not* "union the covers and emit": a shard-
//! minimal antecedent can fail globally while a superset holds, so the
//! union is neither sound nor complete as an answer. Instead the global
//! traversal keeps its exact structure and consults the covers per
//! candidate; survivors are validated against the full relation with the
//! normal CSR/partition-cache machinery (`validate the union globally`).
//! A shard interrupted by the guard is discarded whole — a *partial*
//! cover would refute candidates it merely failed to reach.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ofd_core::{
    check_ofd_exact, AttrId, AttrSet, ExecGuard, FxHashMap, FxHashSet, Ofd, OfdKind,
    ProductScratch, Relation, SenseIndex, StrippedPartition,
};

/// The complete minimal cover of one completed shard, indexed for subset
/// queries: `per_rhs[a]` holds the antecedent bit-sets of every minimal
/// shard-OFD with consequent `a`.
#[derive(Debug)]
pub(crate) struct ShardCover {
    per_rhs: Vec<Vec<u64>>,
}

impl ShardCover {
    fn new(n_attrs: usize) -> ShardCover {
        ShardCover {
            per_rhs: vec![Vec::new(); n_attrs],
        }
    }

    /// Whether `lhs → rhs` holds on this shard: some minimal cover entry
    /// is contained in `lhs`.
    #[inline]
    fn holds(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        let bits = lhs.bits();
        // Subset test: entry ⊆ lhs ⟺ entry ∪ lhs = lhs.
        self.per_rhs[rhs.index()]
            .iter()
            .any(|&entry| entry | bits == bits)
    }
}

/// The per-shard covers of a completed pre-filter phase.
#[derive(Debug, Default)]
pub(crate) struct ShardCovers {
    covers: Vec<ShardCover>,
    /// Shards whose mini-run completed (only these may refute).
    pub completed: usize,
}

impl ShardCovers {
    /// Sound refutation: true iff some completed shard's cover proves the
    /// candidate fails on that shard.
    #[inline]
    pub fn refutes(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        self.covers.iter().any(|c| !c.holds(lhs, rhs))
    }

    /// Distinct `(lhs, rhs)` entries across all completed shard covers —
    /// the size of the merged candidate union.
    pub fn merged_candidates(&self) -> u64 {
        let mut distinct: FxHashSet<(u64, u32)> = FxHashSet::default();
        for c in &self.covers {
            for (rhs, entries) in c.per_rhs.iter().enumerate() {
                for &lhs in entries {
                    distinct.insert((lhs, rhs as u32));
                }
            }
        }
        distinct.len() as u64
    }
}

/// Configuration of the shard phase, mirroring the result-affecting knobs
/// of the owning discovery run (the covers must be complete for exactly
/// the candidate space the global traversal will query).
pub(crate) struct ShardPlan {
    pub n_shards: usize,
    pub threads: usize,
    pub max_level: usize,
    pub target_rhs: Option<AttrSet>,
    pub kind: OfdKind,
}

/// Splits `n_rows` into `n_shards` contiguous, near-even, non-empty ranges.
fn ranges(n_rows: usize, n_shards: usize) -> Vec<Range<usize>> {
    let base = n_rows / n_shards;
    let rem = n_rows % n_shards;
    let mut out = Vec::with_capacity(n_shards);
    let mut start = 0;
    for i in 0..n_shards {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs the shard phase: per-range mini discovery on up to `threads`
/// scoped workers, discarding any shard the guard interrupted.
pub(crate) fn discover_shards(
    rel: &Relation,
    index: &SenseIndex,
    plan: &ShardPlan,
    guard: &ExecGuard,
) -> ShardCovers {
    let n_shards = plan.n_shards.min(rel.n_rows());
    if n_shards == 0 {
        return ShardCovers::default();
    }
    let ranges = ranges(rel.n_rows(), n_shards);
    let slots: Mutex<Vec<ShardCover>> = Mutex::new(Vec::new());
    let workers = plan.threads.clamp(1, n_shards);
    if workers <= 1 {
        let mut done = slots.lock().expect("no poisoned lock");
        for range in &ranges {
            if let Some(cover) = shard_cover(rel, index, range.clone(), plan, guard) {
                done.push(cover);
            }
        }
        drop(done);
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let ranges = &ranges;
                let slots = &slots;
                scope.spawn(move || loop {
                    if guard.check().is_err() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(range) = ranges.get(i) else {
                        break;
                    };
                    if let Some(cover) = shard_cover(rel, index, range.clone(), plan, guard)
                    {
                        slots.lock().expect("no poisoned lock").push(cover);
                    }
                });
            }
        });
    }
    let covers = slots.into_inner().expect("no poisoned lock");
    ShardCovers {
        completed: covers.len(),
        covers,
    }
}

/// One node of a shard's mini lattice: partitions are node-owned (no
/// cache — shard partitions are range-sized and short-lived).
struct MiniNode {
    attrs: AttrSet,
    c_plus: AttrSet,
    partition: Arc<StrippedPartition>,
    superkey: bool,
}

/// Level-wise exact discovery over one row range, mirroring the main
/// engine's candidate logic (Opt-1/2/3) so the returned cover is the
/// complete minimal Σ_s of the sub-relation, truncated at `max_level` and
/// restricted to `target_rhs` — exactly the candidate space the global
/// run queries. Returns `None` when the guard trips: an incomplete cover
/// must never refute.
fn shard_cover(
    rel: &Relation,
    index: &SenseIndex,
    range: Range<usize>,
    plan: &ShardPlan,
    guard: &ExecGuard,
) -> Option<ShardCover> {
    let schema = rel.schema();
    let all = schema.all();
    let mut cover = ShardCover::new(schema.len());
    let mut scratch = ProductScratch::default();
    let level0 = Arc::new(StrippedPartition::of_range(rel, AttrSet::empty(), range.clone()));
    let mut prev: Vec<MiniNode> = vec![MiniNode {
        attrs: AttrSet::empty(),
        c_plus: all,
        superkey: level0.is_superkey(),
        partition: level0,
    }];
    let mut prev_index: FxHashMap<u64, usize> =
        std::iter::once((AttrSet::empty().bits(), 0)).collect();
    let max_level = plan.max_level.min(schema.len());

    for level in 1..=max_level {
        guard.check().ok()?;
        let mut current: Vec<MiniNode> = if level == 1 {
            schema
                .attrs()
                .map(|a| {
                    let sp = Arc::new(StrippedPartition::of_range(
                        rel,
                        AttrSet::single(a),
                        range.clone(),
                    ));
                    MiniNode {
                        attrs: AttrSet::single(a),
                        c_plus: all,
                        superkey: sp.is_superkey(),
                        partition: sp,
                    }
                })
                .collect()
        } else {
            next_mini_level(rel, &prev, &prev_index, &mut scratch)
        };
        for node in &mut current {
            let mut cp = all;
            for (_, parent) in node.attrs.parents() {
                match prev_index.get(&parent.bits()) {
                    Some(&pi) => cp = cp.intersect(prev[pi].c_plus),
                    None => cp = AttrSet::empty(),
                }
            }
            node.c_plus = cp;
        }
        // Candidate verification — sequential within the shard (the phase
        // parallelizes across shards, one worker each).
        let mut emitted: Vec<(usize, AttrId, AttrSet)> = Vec::new();
        for (ni, node) in current.iter().enumerate() {
            let mut cands = node.attrs.intersect(node.c_plus);
            if let Some(target) = plan.target_rhs {
                cands = cands.intersect(target);
            }
            for a in cands.iter() {
                guard.check().ok()?;
                let lhs = node.attrs.without(a);
                let Some(&pi) = prev_index.get(&lhs.bits()) else {
                    continue;
                };
                let parent = &prev[pi];
                let valid = parent.superkey
                    || check_ofd_exact(
                        rel,
                        index,
                        &Ofd {
                            lhs,
                            rhs: a,
                            kind: plan.kind,
                        },
                        &parent.partition,
                    );
                if valid {
                    emitted.push((ni, a, lhs));
                }
            }
        }
        for &(ni, a, lhs) in &emitted {
            cover.per_rhs[a.index()].push(lhs.bits());
            current[ni].c_plus.remove(a);
        }
        current.retain(|n| !n.c_plus.is_empty());
        prev_index = current
            .iter()
            .enumerate()
            .map(|(i, n)| (n.attrs.bits(), i))
            .collect();
        prev = current;
        if prev.is_empty() {
            break;
        }
    }
    Some(cover)
}

/// Prefix-block join of the previous mini level (the cache-off analogue of
/// the main engine's `next_level`, over range partitions).
fn next_mini_level(
    rel: &Relation,
    prev: &[MiniNode],
    prev_index: &FxHashMap<u64, usize>,
    scratch: &mut ProductScratch,
) -> Vec<MiniNode> {
    let all = rel.schema().all();
    let mut order: Vec<usize> = (0..prev.len()).collect();
    order.sort_by_key(|&i| {
        let attrs: Vec<u16> = prev[i].attrs.iter().map(|a| a.index() as u16).collect();
        attrs
    });
    let mut out = Vec::new();
    let mut block_start = 0;
    while block_start < order.len() {
        let head = prev[order[block_start]].attrs;
        let head_prefix = head.without(last_attr(head));
        let mut block_end = block_start + 1;
        while block_end < order.len() {
            let cur = prev[order[block_end]].attrs;
            if cur.without(last_attr(cur)) != head_prefix {
                break;
            }
            block_end += 1;
        }
        for i in block_start..block_end {
            for j in (i + 1)..block_end {
                let a = &prev[order[i]];
                let b = &prev[order[j]];
                let attrs = a.attrs.union(b.attrs);
                let parents_ok = attrs
                    .parents()
                    .all(|(_, p)| prev_index.contains_key(&p.bits()));
                if !parents_ok {
                    continue;
                }
                if a.superkey || b.superkey {
                    // Range-superkeys propagate to supersets; skip the
                    // product (Opt-3, restricted to the shard).
                    out.push(MiniNode {
                        attrs,
                        c_plus: all,
                        superkey: true,
                        partition: Arc::new(StrippedPartition::empty(rel.n_rows())),
                    });
                    continue;
                }
                let p = Arc::new(a.partition.product_with_scratch(&b.partition, scratch));
                out.push(MiniNode {
                    attrs,
                    c_plus: all,
                    superkey: p.is_superkey(),
                    partition: p,
                });
            }
        }
        block_start = block_end;
    }
    out
}

fn last_attr(set: AttrSet) -> AttrId {
    set.iter().last().expect("non-empty lattice node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiscoveryOptions, FastOfd};
    use ofd_core::table1;
    use ofd_ontology::samples;

    fn plan(n_shards: usize, max_level: usize) -> ShardPlan {
        ShardPlan {
            n_shards,
            threads: 1,
            max_level,
            target_rhs: None,
            kind: OfdKind::Synonym,
        }
    }

    #[test]
    fn ranges_are_contiguous_even_and_exhaustive() {
        for (n, k) in [(10usize, 3usize), (7, 7), (100, 4), (5, 1)] {
            let rs = ranges(n, k);
            assert_eq!(rs.len(), k);
            assert_eq!(rs[0].start, 0);
            assert_eq!(rs[k - 1].end, n);
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let (min, max) = rs
                .iter()
                .map(|r| r.len())
                .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
            assert!(max - min <= 1, "near-even split for n={n} k={k}");
            assert!(min >= 1, "no empty shard for n={n} k={k}");
        }
    }

    #[test]
    fn single_shard_cover_equals_full_engine_sigma() {
        // With one shard spanning all rows, the mini engine must compute
        // exactly the complete minimal cover the main engine finds.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let n = rel.schema().len();
        let cover = shard_cover(
            &rel,
            &index,
            0..rel.n_rows(),
            &plan(1, n),
            &ExecGuard::unlimited(),
        )
        .expect("unguarded run completes");
        let reference = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().sample_rounds(0))
            .run();
        let mut want: Vec<(u64, usize)> = reference
            .ofds()
            .map(|o| (o.lhs.bits(), o.rhs.index()))
            .collect();
        want.sort_unstable();
        let mut got: Vec<(u64, usize)> = cover
            .per_rhs
            .iter()
            .enumerate()
            .flat_map(|(rhs, entries)| entries.iter().map(move |&l| (l, rhs)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn shard_refutation_is_sound_for_global_ofds() {
        // Everything in the full-relation Σ holds on every shard, so the
        // oracle must never refute it — at any shard count.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let sigma = FastOfd::new(&rel, &onto).run();
        for n_shards in [1usize, 2, 3, 5, 11] {
            let covers = discover_shards(
                &rel,
                &index,
                &plan(n_shards, rel.schema().len()),
                &ExecGuard::unlimited(),
            );
            assert_eq!(covers.completed, n_shards.min(rel.n_rows()));
            assert!(covers.merged_candidates() > 0);
            for d in sigma.ofds() {
                assert!(
                    !covers.refutes(d.lhs, d.rhs),
                    "n_shards={n_shards}: refuted the valid OFD {}",
                    d.display(rel.schema())
                );
            }
        }
    }

    #[test]
    fn tripped_guard_discards_shards_instead_of_refuting() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let guard = ExecGuard::unlimited();
        guard.cancel();
        let covers = discover_shards(&rel, &index, &plan(3, 4), &guard);
        assert_eq!(covers.completed, 0, "no partial cover survives a trip");
        // And an oracle with no completed shards refutes nothing.
        let schema = rel.schema();
        for a in schema.attrs() {
            assert!(!covers.refutes(AttrSet::empty(), a));
        }
    }
}
