//! Checkpoint/resume for the FastOFD lattice traversal.
//!
//! At each completed level boundary the driver serializes its whole
//! resumable state — verified Σ, the post-prune frontier with its C⁺
//! candidate sets, per-level stats and guard/obs accumulators — into a
//! snapshot (see [`ofd_core::snapshot`] for the envelope and crash
//! model). A resumed run restores Σ and the frontier, rebuilds the
//! frontier's stripped partitions directly from the relation
//! ([`StrippedPartition::of`] is semantically equal to the
//! product-computed partition, so every later decision is unchanged),
//! and continues at `completed_level + 1`.
//!
//! Snapshots embed a fingerprint of everything that determines the
//! result: relation contents, ontology, and the result-affecting options
//! (semantics, κ, level cap, optimization toggles, target consequents,
//! known FDs). A snapshot whose fingerprint does not match the current
//! inputs is ignored — resuming against different data must recompute,
//! never splice.

use ofd_core::snapshot::{hash_ontology, hash_relation};
use ofd_core::{AttrSet, Fingerprint, Obs, OfdKind, Relation};
use ofd_ontology::Ontology;
use serde_json::{json, Value};

use crate::fastofd::DiscoveredOfd;
use crate::options::DiscoveryOptions;
use crate::stats::LevelStats;

/// Snapshot stream name inside the checkpoint directory.
pub(crate) const STREAM: &str = "discovery";

pub use ofd_core::CheckpointOptions;

/// Hash of everything that determines the discovery result.
pub(crate) fn fingerprint(rel: &Relation, onto: &Ontology, opts: &DiscoveryOptions) -> u64 {
    let mut fp = Fingerprint::new();
    hash_relation(&mut fp, rel);
    hash_ontology(&mut fp, onto);
    match opts.kind {
        OfdKind::Synonym => {
            fp.update_u64(1);
        }
        OfdKind::Inheritance { theta } => {
            fp.update_u64(2).update_u64(theta as u64);
        }
    }
    fp.update_u64(opts.min_support.to_bits());
    fp.update_u64(opts.max_level.map_or(u64::MAX, |l| l as u64));
    fp.update_u64(opts.use_opt2 as u64);
    fp.update_u64(opts.use_opt3 as u64);
    fp.update_u64(opts.use_opt4 as u64);
    fp.update_u64(opts.target_rhs.map_or(u64::MAX, |t| t.bits()));
    fp.update_u64(opts.known_fds.len() as u64);
    for fd in &opts.known_fds {
        fp.update_u64(fd.lhs.bits()).update_u64(fd.rhs.index() as u64);
    }
    fp.finish()
}

/// Serializes the resumable state after `completed_level`. Floating-point
/// supports are stored as raw `f64` bits so resumed values are
/// *byte-identical* to the uninterrupted run's.
pub(crate) fn snapshot_body(
    fp: u64,
    completed_level: usize,
    sigma: &[DiscoveredOfd],
    frontier: &[(u64, u64)],
    levels: &[LevelStats],
    work_done: u64,
    obs: &Obs,
) -> Value {
    let sigma_json: Vec<Value> = sigma
        .iter()
        .map(|d| {
            json!({
                "lhs": d.ofd.lhs.bits(),
                "rhs": d.ofd.rhs.index() as u64,
                "support_bits": d.support.to_bits(),
                "level": d.level as u64,
            })
        })
        .collect();
    let frontier_json: Vec<Value> = frontier
        .iter()
        .map(|&(attrs, c_plus)| json!({"attrs": attrs, "c_plus": c_plus}))
        .collect();
    let levels_json: Vec<Value> = levels.iter().map(level_to_json).collect();
    let counters: Vec<Value> = obs
        .snapshot()
        .counters
        .into_iter()
        .map(|(name, v)| json!([name, v]))
        .collect();
    json!({
        "version": 1u64,
        "kind": "discovery",
        "fingerprint": fp,
        "completed_level": completed_level as u64,
        "sigma": sigma_json,
        "frontier": frontier_json,
        "levels": levels_json,
        "work_done": work_done,
        "counters": counters,
    })
}

fn level_to_json(ls: &LevelStats) -> Value {
    json!({
        "level": ls.level as u64,
        "nodes": ls.nodes as u64,
        "candidates": ls.candidates as u64,
        "verified": ls.verified as u64,
        "key_shortcuts": ls.key_shortcuts as u64,
        "fd_shortcuts": ls.fd_shortcuts as u64,
        "found": ls.found as u64,
        "pruned_nodes": ls.pruned_nodes as u64,
        "elapsed_us": ls.elapsed.as_micros() as u64,
    })
}

fn level_from_json(v: &Value) -> Option<LevelStats> {
    Some(LevelStats {
        level: v.get("level")?.as_u64()? as usize,
        nodes: v.get("nodes")?.as_u64()? as usize,
        candidates: v.get("candidates")?.as_u64()? as usize,
        verified: v.get("verified")?.as_u64()? as usize,
        key_shortcuts: v.get("key_shortcuts")?.as_u64()? as usize,
        fd_shortcuts: v.get("fd_shortcuts")?.as_u64()? as usize,
        found: v.get("found")?.as_u64()? as usize,
        pruned_nodes: v.get("pruned_nodes")?.as_u64()? as usize,
        elapsed: std::time::Duration::from_micros(v.get("elapsed_us")?.as_u64()?),
    })
}

/// State restored from a snapshot body.
pub(crate) struct ResumeState {
    pub completed_level: usize,
    pub sigma: Vec<DiscoveredOfd>,
    /// Post-prune frontier as `(attrs, c_plus)` bitsets.
    pub frontier: Vec<(AttrSet, AttrSet)>,
    pub levels: Vec<LevelStats>,
    /// Checkpoints the interrupted run had passed (informational).
    #[allow(dead_code)]
    pub work_done: u64,
    /// Obs counter accumulators at snapshot time, to be re-seeded.
    pub counters: Vec<(String, u64)>,
}

/// Validates and decodes a snapshot body against the current inputs'
/// fingerprint; `None` means the snapshot is unusable (wrong kind,
/// version, fingerprint, or malformed fields) and the run starts fresh.
pub(crate) fn restore(body: &Value, fp: u64, kind: OfdKind) -> Option<ResumeState> {
    if body.get("version")?.as_u64()? != 1 || body.get("kind")?.as_str()? != "discovery" {
        return None;
    }
    if body.get("fingerprint")?.as_u64()? != fp {
        return None;
    }
    let completed_level = body.get("completed_level")?.as_u64()? as usize;
    let mut sigma = Vec::new();
    for d in body.get("sigma")?.as_array()? {
        sigma.push(DiscoveredOfd {
            ofd: ofd_core::Ofd {
                lhs: AttrSet::from_bits(d.get("lhs")?.as_u64()?),
                rhs: ofd_core::AttrId::from_index(d.get("rhs")?.as_u64()? as usize),
                kind,
            },
            support: f64::from_bits(d.get("support_bits")?.as_u64()?),
            level: d.get("level")?.as_u64()? as usize,
        });
    }
    let mut frontier = Vec::new();
    for n in body.get("frontier")?.as_array()? {
        frontier.push((
            AttrSet::from_bits(n.get("attrs")?.as_u64()?),
            AttrSet::from_bits(n.get("c_plus")?.as_u64()?),
        ));
    }
    let mut levels = Vec::new();
    for l in body.get("levels")?.as_array()? {
        levels.push(level_from_json(l)?);
    }
    let mut counters = Vec::new();
    for c in body.get("counters")?.as_array()? {
        let pair = c.as_array()?;
        counters.push((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_u64()?));
    }
    Some(ResumeState {
        completed_level,
        sigma,
        frontier,
        levels,
        work_done: body.get("work_done")?.as_u64()?,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::table1;
    use ofd_ontology::samples;

    #[test]
    fn fingerprint_tracks_inputs_and_options() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let base = fingerprint(&rel, &onto, &DiscoveryOptions::default());
        assert_eq!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::default()),
            "deterministic"
        );
        // Thread count and guards do not affect the result → same print.
        assert_eq!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::default().threads(8))
        );
        // The partition cache is result-neutral, so its budget is excluded:
        // a snapshot written cache-on resumes cache-off and vice versa.
        assert_eq!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::default().partition_cache_mib(0))
        );
        // The hybrid sampling/sharding pipeline is result-neutral too: a
        // snapshot written by a sequential run resumes under any sampling
        // depth or shard layout and vice versa.
        assert_eq!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::default().sample_rounds(0))
        );
        assert_eq!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::default().sample_rounds(9).shards(4))
        );
        assert_eq!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::default().shard_rows(1000))
        );
        // Result-affecting options change the print.
        assert_ne!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::new().min_support(0.8))
        );
        assert_ne!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::new().max_level(2))
        );
        assert_ne!(
            base,
            fingerprint(&rel, &onto, &DiscoveryOptions::new().no_optimizations())
        );
        // Different data changes the print.
        let other = ofd_core::table1_updated();
        assert_ne!(base, fingerprint(&other, &onto, &DiscoveryOptions::default()));
        // Different ontology changes the print.
        assert_ne!(
            base,
            fingerprint(&rel, &Ontology::empty(), &DiscoveryOptions::default())
        );
    }

    #[test]
    fn snapshot_body_round_trips_exactly() {
        let rel = table1();
        let schema = rel.schema();
        let sigma = vec![DiscoveredOfd {
            ofd: ofd_core::Ofd::synonym_named(schema, &["CC"], "CTRY").unwrap(),
            // A support value with no short decimal representation: only
            // bit-level serialization round-trips it.
            support: 0.1 + 0.2,
            level: 2,
        }];
        let frontier = vec![(0b011u64, 0b111u64)];
        let levels = vec![LevelStats {
            level: 1,
            nodes: 7,
            candidates: 5,
            found: 1,
            elapsed: std::time::Duration::from_micros(1234),
            ..LevelStats::default()
        }];
        let body = snapshot_body(42, 1, &sigma, &frontier, &levels, 99, &Obs::disabled());
        // Survive an actual serialize/parse cycle, as on disk.
        let text = serde_json::to_string(&body).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let rs = restore(&parsed, 42, OfdKind::Synonym).expect("restores");
        assert_eq!(rs.completed_level, 1);
        assert_eq!(rs.sigma.len(), 1);
        assert_eq!(rs.sigma[0].ofd, sigma[0].ofd);
        assert_eq!(
            rs.sigma[0].support.to_bits(),
            sigma[0].support.to_bits(),
            "support must be byte-identical"
        );
        assert_eq!(rs.frontier, vec![(AttrSet::from_bits(3), AttrSet::from_bits(7))]);
        assert_eq!(rs.levels.len(), 1);
        assert_eq!(rs.levels[0].nodes, 7);
        assert_eq!(rs.levels[0].elapsed, std::time::Duration::from_micros(1234));
        assert_eq!(rs.work_done, 99);
    }

    #[test]
    fn restore_rejects_wrong_fingerprint_and_kind() {
        let body = snapshot_body(42, 1, &[], &[], &[], 0, &Obs::disabled());
        assert!(restore(&body, 42, OfdKind::Synonym).is_some());
        assert!(restore(&body, 43, OfdKind::Synonym).is_none());
        let mut not_discovery = body.clone();
        if let Value::Object(fields) = &mut not_discovery {
            for (k, v) in fields.iter_mut() {
                if k.as_str() == "kind" {
                    *v = Value::String("clean".into());
                }
            }
        }
        assert!(restore(&not_discovery, 42, OfdKind::Synonym).is_none());
    }
}
