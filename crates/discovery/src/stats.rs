//! Per-level and aggregate statistics of a discovery run (Exp-3/Exp-4
//! instrumentation).

use std::time::Duration;

/// Counters for one lattice level.
#[derive(Debug, Clone, Default)]
pub struct LevelStats {
    /// Lattice level `l` (antecedents have `l − 1` attributes since the
    /// candidate at a size-`l` node is `X\A → A`).
    pub level: usize,
    /// Nodes materialized at this level.
    pub nodes: usize,
    /// Candidates whose validity was decided (verified or short-circuited).
    pub candidates: usize,
    /// Candidates decided by scanning partitions (full verification).
    pub verified: usize,
    /// Candidates short-circuited because the antecedent was a superkey
    /// (Opt-3).
    pub key_shortcuts: usize,
    /// Candidates short-circuited because a known FD implied them (Opt-4).
    pub fd_shortcuts: usize,
    /// Minimal OFDs emitted at this level.
    pub found: usize,
    /// Nodes deleted after processing (Opt-2's `C⁺(X) = ∅` pruning).
    pub pruned_nodes: usize,
    /// Wall-clock time spent on this level.
    pub elapsed: Duration,
}

/// Aggregate statistics for a run.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryStats {
    /// One entry per traversed level, in order.
    pub levels: Vec<LevelStats>,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Partition-cache counters (`None` when the cache is disabled).
    /// Cache behaviour is result-neutral, so these are excluded from the
    /// byte-identical-Σ contract — only Σ and the per-level counters are.
    pub cache: Option<crate::cache::CacheStats>,
}

impl DiscoveryStats {
    /// Total candidates decided across levels.
    pub fn total_candidates(&self) -> usize {
        self.levels.iter().map(|l| l.candidates).sum()
    }

    /// Total minimal OFDs found.
    pub fn total_found(&self) -> usize {
        self.levels.iter().map(|l| l.found).sum()
    }

    /// Total candidates that needed full verification.
    pub fn total_verified(&self) -> usize {
        self.levels.iter().map(|l| l.verified).sum()
    }

    /// Fraction of OFDs found in the first `k` levels — the Exp-4
    /// compactness measure.
    pub fn found_in_first_levels(&self, k: usize) -> f64 {
        let total = self.total_found();
        if total == 0 {
            return 0.0;
        }
        let early: usize = self
            .levels
            .iter()
            .filter(|l| l.level <= k)
            .map(|l| l.found)
            .sum();
        early as f64 / total as f64
    }

    /// Fraction of time spent in the first `k` levels (Exp-4).
    pub fn time_in_first_levels(&self, k: usize) -> f64 {
        let total: Duration = self.levels.iter().map(|l| l.elapsed).sum();
        if total.is_zero() {
            return 0.0;
        }
        let early: Duration = self
            .levels
            .iter()
            .filter(|l| l.level <= k)
            .map(|l| l.elapsed)
            .sum();
        early.as_secs_f64() / total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(level: usize, found: usize, ms: u64) -> LevelStats {
        LevelStats {
            level,
            found,
            elapsed: Duration::from_millis(ms),
            ..LevelStats::default()
        }
    }

    #[test]
    fn aggregates_sum_levels() {
        let stats = DiscoveryStats {
            levels: vec![level(1, 2, 10), level(2, 3, 30), level(3, 5, 60)],
            elapsed: Duration::from_millis(100),
            cache: None,
        };
        assert_eq!(stats.total_found(), 10);
        assert!((stats.found_in_first_levels(2) - 0.5).abs() < 1e-12);
        assert!((stats.time_in_first_levels(2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn verified_and_shortcut_counters_sum() {
        let stats = DiscoveryStats {
            levels: vec![
                LevelStats {
                    level: 1,
                    candidates: 10,
                    verified: 6,
                    key_shortcuts: 3,
                    fd_shortcuts: 1,
                    ..LevelStats::default()
                },
                LevelStats {
                    level: 2,
                    candidates: 4,
                    verified: 4,
                    ..LevelStats::default()
                },
            ],
            elapsed: Duration::from_millis(5),
            cache: None,
        };
        assert_eq!(stats.total_candidates(), 14);
        assert_eq!(stats.total_verified(), 10);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = DiscoveryStats::default();
        assert_eq!(stats.total_found(), 0);
        assert_eq!(stats.found_in_first_levels(3), 0.0);
        assert_eq!(stats.time_in_first_levels(3), 0.0);
    }
}
