//! Configuration for the FastOFD discovery run.

use ofd_core::{ExecGuard, FaultPlan, Fd, Obs, OfdKind};

use crate::checkpoint::CheckpointOptions;

/// Options controlling a [`crate::FastOfd`] run.
///
/// The three optimization toggles correspond to §3.2 / Exp-3:
///
/// * **Opt-2** (augmentation pruning): maintain candidate sets `C⁺(X)` and
///   delete exhausted lattice nodes; disabling it verifies every non-trivial
///   candidate and filters non-minimal results post hoc (same output,
///   more verification work).
/// * **Opt-3** (key pruning): when an antecedent is a superkey its stripped
///   partition is empty — verification short-circuits and partition products
///   under superkey nodes are skipped.
/// * **Opt-4** (FD shortcut): candidates implied by the caller-supplied
///   [`DiscoveryOptions::known_fds`] are valid by subsumption (FD ⊆ OFD) and
///   skip data verification. The per-class equality fast path inside the
///   validator is always on; this toggle controls the *dependency-level*
///   shortcut.
///
/// Opt-1 (skipping trivial candidates `A ∈ X`) is structural: the candidate
/// generator never emits them.
#[derive(Debug, Clone)]
pub struct DiscoveryOptions {
    /// Dependency semantics to discover (synonym by default).
    pub kind: OfdKind,
    /// Minimum support κ ∈ (0, 1]; `1.0` discovers exact OFDs, lower values
    /// discover κ-approximate OFDs.
    pub min_support: f64,
    /// Stop after this lattice level (Exp-4's compactness pruning);
    /// `None` traverses all `n` levels.
    pub max_level: Option<usize>,
    /// Opt-2: candidate-set pruning.
    pub use_opt2: bool,
    /// Opt-3: superkey short-circuits.
    pub use_opt3: bool,
    /// Opt-4: known-FD subsumption shortcut.
    pub use_opt4: bool,
    /// FDs known to hold over the instance, consumed by Opt-4.
    pub known_fds: Vec<Fd>,
    /// Number of worker threads for candidate verification (1 = fully
    /// sequential). Verification within one lattice level is
    /// order-independent, so parallelism never changes the output.
    pub threads: usize,
    /// Restrict discovery to OFDs whose consequent lies in this set
    /// (`None` = all attributes). The result equals the full output
    /// filtered by consequent — minimality is per-consequent, so the
    /// restriction is lossless and much cheaper.
    pub target_rhs: Option<ofd_core::AttrSet>,
    /// Execution guard probed once per lattice level and once per
    /// candidate decision. The default guard is unlimited; set a guard
    /// with limits to get a sound-but-possibly-incomplete Σ (see
    /// [`crate::Discovery::complete`]).
    pub guard: ExecGuard,
    /// Observability handle recording per-level counters, prune attribution
    /// (Opt-1..4), partition-product work and verification spans. The
    /// default handle is disabled (all recording is a no-op); counter
    /// totals are independent of [`DiscoveryOptions::threads`].
    pub obs: Obs,
    /// Crash-safety checkpointing: when set, a snapshot of the resumable
    /// state is written after every completed lattice level, and (with
    /// [`CheckpointOptions::resume`]) the run restarts from the newest
    /// valid snapshot instead of recomputing. `None` disables.
    pub checkpoint: Option<CheckpointOptions>,
    /// Seeded fault injection probed at every candidate decision (worker
    /// panics, delays). The default plan is inert. Snapshot-write faults
    /// are installed on the checkpoint store instead
    /// ([`ofd_core::SnapshotStore::with_faults`]).
    pub faults: FaultPlan,
    /// Evidence-sampling rounds run before the lattice traversal (exact
    /// discovery only; ignored for κ < 1). Round `r` compares rows at
    /// sorted-neighbourhood distance `r + 1` within every attribute's value
    /// order; pairs whose consequent values share no sense become sound
    /// refutation witnesses consulted before any full-relation scan.
    /// Result-neutral: a sample violation is a violation on the full
    /// relation, so Σ, supports and per-level stats are byte-identical at
    /// any round count (and the knob is excluded from the checkpoint
    /// fingerprint). `0` disables sampling.
    pub sample_rounds: usize,
    /// Rows per discovery shard; the shard count is derived as
    /// `ceil(n_rows / shard_rows)` when [`DiscoveryOptions::shards`] is 0.
    /// Both 0 (the default) disables sharding.
    pub shard_rows: usize,
    /// Number of row shards for the pre-filter discovery phase (exact
    /// discovery only). Each shard's complete minimal cover is computed on
    /// its row range by the worker pool; a candidate failing on any shard
    /// is refuted without a full-relation scan, and survivors are still
    /// verified against the full relation. Result-neutral and excluded from
    /// the checkpoint fingerprint, like
    /// [`DiscoveryOptions::partition_cache_mib`]. Takes precedence over
    /// [`DiscoveryOptions::shard_rows`] when non-zero; `0` defers to it.
    pub shards: usize,
    /// Byte budget (MiB) of the partition cache retaining computed Π*_X
    /// across lattice levels with LRU eviction; `0` disables the cache and
    /// restores node-owned partitions with fixed parent-pair products.
    /// Like [`DiscoveryOptions::threads`], this is result-neutral —
    /// partitions are canonical however they are produced, so Σ and the
    /// per-level stats are byte-identical at any budget (and the setting is
    /// deliberately excluded from the checkpoint fingerprint).
    pub partition_cache_mib: usize,
}

/// Default [`DiscoveryOptions::partition_cache_mib`].
pub const DEFAULT_PARTITION_CACHE_MIB: usize = 256;

/// Default [`DiscoveryOptions::sample_rounds`]: two sorted-neighbourhood
/// passes prune the bulk of failing candidates at a cost linear in the
/// relation, so sampling is on by default (sharding stays opt-in — its
/// payoff needs either multiple worker threads or very wide instances).
pub const DEFAULT_SAMPLE_ROUNDS: usize = 2;

impl Default for DiscoveryOptions {
    fn default() -> Self {
        DiscoveryOptions {
            kind: OfdKind::Synonym,
            min_support: 1.0,
            max_level: None,
            use_opt2: true,
            use_opt3: true,
            use_opt4: true,
            known_fds: Vec::new(),
            threads: 1,
            target_rhs: None,
            guard: ExecGuard::unlimited(),
            obs: Obs::disabled(),
            checkpoint: None,
            faults: FaultPlan::none(),
            sample_rounds: DEFAULT_SAMPLE_ROUNDS,
            shard_rows: 0,
            shards: 0,
            partition_cache_mib: DEFAULT_PARTITION_CACHE_MIB,
        }
    }
}

impl DiscoveryOptions {
    /// Exact synonym-OFD discovery with all optimizations (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dependency semantics.
    pub fn kind(mut self, kind: OfdKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the approximate-discovery support threshold κ.
    pub fn min_support(mut self, kappa: f64) -> Self {
        assert!((0.0..=1.0).contains(&kappa), "κ must be in (0, 1]");
        self.min_support = kappa;
        self
    }

    /// Caps the lattice traversal at `level`.
    pub fn max_level(mut self, level: usize) -> Self {
        self.max_level = Some(level);
        self
    }

    /// Toggles Opt-2.
    pub fn opt2(mut self, on: bool) -> Self {
        self.use_opt2 = on;
        self
    }

    /// Toggles Opt-3.
    pub fn opt3(mut self, on: bool) -> Self {
        self.use_opt3 = on;
        self
    }

    /// Toggles Opt-4, optionally supplying the known FDs.
    pub fn opt4(mut self, on: bool) -> Self {
        self.use_opt4 = on;
        self
    }

    /// Supplies FDs known to hold (used by Opt-4).
    pub fn known_fds(mut self, fds: Vec<Fd>) -> Self {
        self.known_fds = fds;
        self
    }

    /// Restricts discovery to consequents in `rhs`.
    pub fn target_rhs(mut self, rhs: ofd_core::AttrSet) -> Self {
        self.target_rhs = Some(rhs);
        self
    }

    /// Installs an execution guard (deadline / budget / cancellation).
    pub fn guard(mut self, guard: ExecGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Installs an observability handle (metrics / tracing).
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Enables crash-safety checkpointing (and, optionally, resume).
    pub fn checkpoint(mut self, ck: CheckpointOptions) -> Self {
        self.checkpoint = Some(ck);
        self
    }

    /// Installs a seeded fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the partition-cache byte budget in MiB (`0` disables the
    /// cache). Result-neutral: any budget yields byte-identical Σ.
    pub fn partition_cache_mib(mut self, mib: usize) -> Self {
        self.partition_cache_mib = mib;
        self
    }

    /// Sets the evidence-sampling round count (`0` disables sampling).
    /// Result-neutral: any value yields byte-identical Σ and stats.
    pub fn sample_rounds(mut self, rounds: usize) -> Self {
        self.sample_rounds = rounds;
        self
    }

    /// Sets the rows-per-shard target for the pre-filter discovery phase
    /// (used when [`DiscoveryOptions::shards`] is 0). Result-neutral.
    pub fn shard_rows(mut self, rows: usize) -> Self {
        self.shard_rows = rows;
        self
    }

    /// Sets the shard count for the pre-filter discovery phase (`0` derives
    /// it from [`DiscoveryOptions::shard_rows`]; both 0 disables sharding).
    /// Result-neutral.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// The shard count this configuration resolves to over `n_rows` tuples:
    /// `shards` when set, else derived from `shard_rows`, clamped so every
    /// shard holds at least one row.
    pub(crate) fn effective_shards(&self, n_rows: usize) -> usize {
        let k = if self.shards > 0 {
            self.shards
        } else if self.shard_rows > 0 {
            n_rows.div_ceil(self.shard_rows)
        } else {
            0
        };
        k.min(n_rows)
    }

    /// Sets the verification thread count.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one thread");
        self.threads = n;
        self
    }

    /// Disables every optimization (the Exp-3 baseline).
    pub fn no_optimizations(mut self) -> Self {
        self.use_opt2 = false;
        self.use_opt3 = false;
        self.use_opt4 = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let o = DiscoveryOptions::default();
        assert!(o.use_opt2 && o.use_opt3 && o.use_opt4);
        assert_eq!(o.min_support, 1.0);
        assert_eq!(o.kind, OfdKind::Synonym);
        assert!(o.max_level.is_none());
        assert_eq!(o.threads, 1);
        assert_eq!(o.partition_cache_mib, DEFAULT_PARTITION_CACHE_MIB);
        assert_eq!(o.sample_rounds, DEFAULT_SAMPLE_ROUNDS);
        assert_eq!((o.shard_rows, o.shards), (0, 0), "sharding is opt-in");
    }

    #[test]
    fn effective_shards_resolves_and_clamps() {
        let o = DiscoveryOptions::new();
        assert_eq!(o.effective_shards(1_000), 0, "off by default");
        assert_eq!(DiscoveryOptions::new().shards(4).effective_shards(1_000), 4);
        assert_eq!(
            DiscoveryOptions::new().shard_rows(300).effective_shards(1_000),
            4,
            "ceil(1000/300)"
        );
        // `shards` wins over `shard_rows` when both are set.
        let both = DiscoveryOptions::new().shards(2).shard_rows(10);
        assert_eq!(both.effective_shards(1_000), 2);
        // Never more shards than rows.
        assert_eq!(DiscoveryOptions::new().shards(64).effective_shards(3), 3);
        assert_eq!(DiscoveryOptions::new().shards(4).effective_shards(0), 0);
    }

    #[test]
    fn cache_budget_is_configurable() {
        assert_eq!(DiscoveryOptions::new().partition_cache_mib(0).partition_cache_mib, 0);
        assert_eq!(DiscoveryOptions::new().partition_cache_mib(8).partition_cache_mib, 8);
    }

    #[test]
    fn builder_chains() {
        let o = DiscoveryOptions::new()
            .kind(OfdKind::Inheritance { theta: 2 })
            .min_support(0.8)
            .max_level(6)
            .no_optimizations();
        assert_eq!(o.kind, OfdKind::Inheritance { theta: 2 });
        assert_eq!(o.min_support, 0.8);
        assert_eq!(o.max_level, Some(6));
        assert!(!o.use_opt2 && !o.use_opt3 && !o.use_opt4);
    }

    #[test]
    #[should_panic(expected = "κ must be in")]
    fn rejects_bad_support() {
        let _ = DiscoveryOptions::new().min_support(1.5);
    }
}
