//! Brute-force reference discovery: enumerate every candidate, verify each,
//! keep the minimal ones. Exponential in everything — used only to validate
//! [`crate::FastOfd`] on small instances (property tests and the bench
//! harness's self-checks).

use ofd_core::{AttrSet, ExecGuard, Ofd, OfdKind, Partial, Relation, Validator};
use ofd_ontology::Ontology;

/// Discovers all minimal OFDs of `kind` with support ≥ `min_support` by
/// exhaustive enumeration. Output is sorted by (|X|, X, A).
pub fn brute_force(
    rel: &Relation,
    onto: &Ontology,
    kind: OfdKind,
    min_support: f64,
) -> Vec<Ofd> {
    brute_force_guarded(rel, onto, kind, min_support, &ExecGuard::unlimited()).value
}

/// [`brute_force`] with an execution guard, probed once per antecedent.
///
/// On interrupt the result is a *sound subset* of the full output:
/// antecedents are enumerated in ascending bit order, and a proper subset
/// of a set always has a strictly smaller bit pattern — so every subset of
/// an enumerated antecedent was itself enumerated, which makes each
/// minimality verdict over the prefix identical to the verdict the full
/// run would reach.
pub fn brute_force_guarded(
    rel: &Relation,
    onto: &Ontology,
    kind: OfdKind,
    min_support: f64,
    guard: &ExecGuard,
) -> Partial<Vec<Ofd>> {
    let n = rel.schema().len();
    assert!(n <= 20, "brute force is for small schemas only");
    let validator = Validator::new(rel, onto);

    // All valid non-trivial dependencies, grouped by consequent.
    let mut valid: Vec<Vec<AttrSet>> = vec![Vec::new(); n];
    let masks = 1u64 << n;
    for bits in 0..masks {
        if guard.check().is_err() {
            break;
        }
        let lhs = AttrSet::from_bits(bits);
        for a in rel.schema().attrs() {
            if lhs.contains(a) {
                continue;
            }
            let ofd = Ofd { lhs, rhs: a, kind };
            let v = validator.check(&ofd);
            // The single exact integer κ comparison shared with FastOFD;
            // at κ = 1 it degenerates to `satisfied()` (zero violations).
            if v.meets_support(min_support) {
                valid[a.index()].push(lhs);
            }
        }
    }

    // Keep only minimal antecedents per consequent.
    let mut out = Vec::new();
    for a in rel.schema().attrs() {
        let sets = &valid[a.index()];
        for &lhs in sets {
            let minimal = !sets
                .iter()
                .any(|&other| other.is_proper_subset(lhs));
            if minimal {
                out.push(Ofd { lhs, rhs: a, kind });
            }
        }
    }
    out.sort_by_key(|o| (o.lhs.len(), o.lhs.bits(), o.rhs));
    Partial::from_outcome(out, guard.interrupt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::table1;
    use ofd_ontology::samples;

    #[test]
    fn finds_cc_to_ctry_on_table1() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let found = brute_force(&rel, &onto, OfdKind::Synonym, 1.0);
        let schema = rel.schema();
        let target = Ofd::synonym_named(schema, &["CC"], "CTRY").unwrap();
        assert!(
            found.contains(&target),
            "expected {} in:\n{}",
            target.display(schema),
            found
                .iter()
                .map(|o| o.display(schema))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn minimality_no_subset_pairs() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let found = brute_force(&rel, &onto, OfdKind::Synonym, 1.0);
        for a in &found {
            for b in &found {
                if a.rhs == b.rhs {
                    assert!(
                        !a.lhs.is_proper_subset(b.lhs),
                        "{} subsumes {}",
                        a.display(rel.schema()),
                        b.display(rel.schema())
                    );
                }
            }
        }
    }

    #[test]
    fn lower_support_finds_superset_of_exact() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let exact = brute_force(&rel, &onto, OfdKind::Synonym, 1.0);
        let approx = brute_force(&rel, &onto, OfdKind::Synonym, 0.8);
        // Every exact OFD is approximately valid; minimality can shift
        // antecedents downward, so compare via coverage: each exact OFD has
        // an approximate OFD with an antecedent ⊆ its own and same rhs.
        for e in &exact {
            assert!(
                approx
                    .iter()
                    .any(|a| a.rhs == e.rhs && a.lhs.is_subset(e.lhs)),
                "{} lost at κ=0.8",
                e.display(rel.schema())
            );
        }
    }
}
