//! Graphviz (DOT) exports for the paper's three graph structures: the
//! ontology forest (Figure 1), the dependency graph over equivalence
//! classes (Figure 6), and the conflict graph (Figure 7) — for debugging
//! and for regenerating the paper's figures visually.

use std::fmt::Write as _;

use ofd_core::Relation;
use ofd_ontology::Ontology;

use crate::classes::OfdClasses;
use crate::conflict::Conflict;
use crate::graph::DepGraph;
use crate::sense::SenseAssignment;

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Renders the ontology forest as DOT: concepts as boxes labelled with
/// their synonym sets, is-a edges downward, interpretation labels as
/// annotations (the shape of the paper's Figure 1).
pub fn ontology_to_dot(onto: &Ontology) -> String {
    let mut out = String::from("digraph ontology {\n  rankdir=BT;\n  node [shape=box];\n");
    for c in onto.concepts() {
        let interps: Vec<&str> = c
            .interpretations()
            .iter()
            .map(|&i| onto.interpretation_label(i).unwrap_or("?"))
            .collect();
        let mut label = escape(c.label());
        if !c.synonyms().is_empty() {
            let syns: Vec<String> = c.synonyms().iter().map(|s| escape(s)).collect();
            let _ = write!(label, "\\n{{{}}}", syns.join(", "));
        }
        if !interps.is_empty() {
            let _ = write!(label, "\\n[{}]", interps.join(","));
        }
        let _ = writeln!(out, "  n{} [label=\"{label}\"];", c.id().index());
    }
    for c in onto.concepts() {
        if let Some(p) = c.parent() {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"is-a\"];",
                c.id().index(),
                p.index()
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the dependency graph as DOT: nodes are `(OFD, class)` pairs
/// labelled with their assigned sense, edges weighted by EMD (Figure 6).
pub fn depgraph_to_dot(
    graph: &DepGraph,
    onto: &Ontology,
    assignment: &SenseAssignment,
) -> String {
    let mut out = String::from("graph dependency {\n  node [shape=circle];\n");
    for (i, n) in graph.nodes.iter().enumerate() {
        let sense = assignment
            .get(n.ofd_idx, n.class_idx)
            .and_then(|s| onto.concept(s).ok())
            .map(|c| c.label().to_owned())
            .unwrap_or_else(|| "∅".to_owned());
        let _ = writeln!(
            out,
            "  u{i} [label=\"φ{} x{}\\n{}\"];",
            n.ofd_idx,
            n.class_idx,
            escape(&sense)
        );
    }
    for e in &graph.edges {
        let _ = writeln!(out, "  u{} -- u{} [label=\"{:.1}\"];", e.u, e.v, e.weight);
    }
    out.push_str("}\n");
    out
}

/// Renders a conflict graph as DOT: tuples as nodes, conflicting pairs as
/// edges annotated with the violated OFD (Figure 7).
pub fn conflicts_to_dot(rel: &Relation, classes: &[OfdClasses], conflicts: &[Conflict]) -> String {
    let mut out = String::from("graph conflicts {\n  node [shape=circle];\n");
    let mut seen = std::collections::BTreeSet::new();
    for c in conflicts {
        seen.insert(c.t1);
        seen.insert(c.t2);
    }
    for t in seen {
        let _ = writeln!(out, "  t{t} [label=\"t{}\"];", t + 1);
    }
    for c in conflicts {
        let ofd_label = classes
            .iter()
            .find(|oc| oc.ofd_idx == c.ofd_idx)
            .map(|oc| oc.ofd.display(rel.schema()))
            .unwrap_or_else(|| format!("φ{}", c.ofd_idx));
        let _ = writeln!(
            out,
            "  t{} -- t{} [label=\"{}\"];",
            c.t1,
            c.t2,
            escape(&ofd_label)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::build_classes;
    use crate::conflict::conflict_graph;
    use crate::graph::build_graph;
    use crate::sense::{assign_all, SenseView};
    use ofd_core::{table1_updated, Ofd, SenseIndex};
    use ofd_ontology::samples;
    use std::collections::HashSet;

    #[test]
    fn ontology_dot_contains_figure1_structure() {
        let onto = samples::medical_drug_ontology();
        let dot = ontology_to_dot(&onto);
        assert!(dot.starts_with("digraph ontology {"));
        assert!(dot.contains("continuant drug"));
        assert!(dot.contains("cartia, tiazac"));
        assert!(dot.contains("[FDA]"));
        assert!(dot.contains("is-a"));
        assert!(dot.trim_end().ends_with('}'));
        // One is-a edge per non-root concept.
        let edges = dot.matches(" -> ").count();
        assert_eq!(edges, onto.len() - onto.roots().len());
    }

    #[test]
    fn conflict_dot_reproduces_figure7() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap()];
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let conflicts = conflict_graph(&rel, &classes, &assignment, view);
        let dot = conflicts_to_dot(&rel, &classes, &conflicts);
        // The headache tuples appear with the paper's 1-based labels.
        assert!(dot.contains("\"t8\""));
        assert!(dot.contains("\"t11\""));
        assert!(dot.contains("MED"));
        assert_eq!(dot.matches(" -- ").count(), conflicts.len());
    }

    #[test]
    fn depgraph_dot_renders_assigned_senses() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP"], "CTRY").unwrap(),
        ];
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let graph = build_graph(&rel, &onto, &classes, &assignment, view);
        let dot = depgraph_to_dot(&graph, &onto, &assignment);
        assert!(dot.starts_with("graph dependency {"));
        assert!(dot.contains("United States of America"));
        assert_eq!(dot.matches(" -- ").count(), graph.edges.len());
    }
}
