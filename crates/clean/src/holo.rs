//! A HoloClean-style comparator (Exp-14 substitute — see DESIGN.md,
//! substitution 3): holistic repair from three signals — denial constraints
//! derived from the FDs, an external dictionary (the ontology used *flat*,
//! without sense reasoning), and attribute value statistics — combined by a
//! naive-Bayes-style scorer over candidate repairs.
//!
//! The deliberate difference from OFDClean is the missing sense machinery:
//! cells that merely use a different synonym are flagged by the FD-shaped
//! constraints and "repaired" toward the class majority, which is exactly
//! the false-positive behaviour the paper measures OFDClean against
//! (+7.4% precision / +4.4% recall for OFDClean).

use std::collections::HashMap;

use ofd_core::{Ofd, Relation, ValueId};
use ofd_ontology::Ontology;

use crate::classes::build_classes;
use crate::conflict::CellRepair;

/// Configuration of the holistic baseline.
#[derive(Debug, Clone)]
pub struct HoloConfig {
    /// Score weight of in-class frequency evidence.
    pub w_freq: f64,
    /// Score bonus for candidates found in the external dictionary.
    pub w_dict: f64,
    /// Minimum score margin over the current value before a cell is
    /// repaired.
    pub margin: f64,
}

impl Default for HoloConfig {
    fn default() -> Self {
        HoloConfig {
            w_freq: 1.0,
            w_dict: 0.5,
            margin: 0.25,
        }
    }
}

/// Result of the baseline run.
#[derive(Debug, Clone)]
pub struct HoloResult {
    /// The repaired relation.
    pub repaired: Relation,
    /// Applied cell repairs.
    pub repairs: Vec<CellRepair>,
}

/// Runs the holistic baseline: every class violating the *FD shape* of a
/// dependency has its minority cells repaired to the best-scoring candidate
/// value.
pub fn holo_clean(
    rel: &Relation,
    onto: &Ontology,
    sigma: &[Ofd],
    config: &HoloConfig,
) -> HoloResult {
    let mut working = rel.clone();
    let mut repairs = Vec::new();
    let classes = build_classes(&working, sigma);

    // Plan all repairs on the original snapshot, then apply (HoloClean's
    // inference is joint, not sequential).
    let mut planned: HashMap<(usize, ofd_core::AttrId), String> = HashMap::new();
    for oc in &classes {
        for class in &oc.classes {
            if class.value_counts.len() <= 1 {
                continue; // FD-consistent class
            }
            // Candidate scoring: frequency (statistics signal) plus
            // dictionary membership (external-data signal).
            let score = |v: ValueId, count: u32| -> f64 {
                let freq = count as f64 / class.size() as f64;
                let dict = if onto.contains_value(working.pool().resolve(v)) {
                    1.0
                } else {
                    0.0
                };
                config.w_freq * freq + config.w_dict * dict
            };
            let (best_value, best_score) = class
                .value_counts
                .iter()
                .map(|&(v, c)| (v, score(v, c)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty class");
            let target = working.pool().resolve(best_value).to_owned();
            for &t in &class.tuples {
                let current = working.value(t as usize, oc.ofd.rhs);
                if current == best_value {
                    continue;
                }
                let cur_count = class.count(current);
                if best_score - score(current, cur_count) > config.margin {
                    planned
                        .entry((t as usize, oc.ofd.rhs))
                        .or_insert_with(|| target.clone());
                }
            }
        }
    }

    let mut cells: Vec<((usize, ofd_core::AttrId), String)> = planned.into_iter().collect();
    cells.sort_by_key(|((row, attr), _)| (*row, *attr));
    for ((row, attr), new) in cells {
        let old = working.text(row, attr).to_owned();
        if old == new {
            continue;
        }
        working.set(row, attr, &new).expect("planned repair in bounds");
        repairs.push(CellRepair {
            row,
            attr,
            old,
            new,
        });
    }

    HoloResult {
        repaired: working,
        repairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::repair_quality;
    use crate::ofdclean::{ofd_clean, OfdCleanConfig};
    use ofd_core::table1;
    use ofd_ontology::samples;

    #[test]
    fn holo_mis_repairs_legitimate_synonyms() {
        // Table 1 is CLEAN under OFD semantics, yet the baseline rewrites
        // synonym variation (America → USA etc.) — the false positives the
        // paper's Exp-5/Exp-14 measure.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ];
        let holo = holo_clean(&rel, &onto, &sigma, &HoloConfig::default());
        assert!(
            !holo.repairs.is_empty(),
            "the FD-shaped baseline must flag synonym variation"
        );
        // OFDClean touches far fewer cells: only the nausea class actually
        // violates the synonym OFD (tylenol is-a analgesic, not a synonym);
        // the CC→CTRY synonym variation is left alone.
        let ofd = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(
            ofd.data_dist() + ofd.ontology_dist() < holo.repairs.len(),
            "OFDClean {}+{} vs holo {}",
            ofd.data_dist(),
            ofd.ontology_dist(),
            holo.repairs.len()
        );

        // Quality vs ground truth (the table itself is the clean instance):
        // every holo repair is a false positive.
        let q = repair_quality(&rel, &holo.repaired, &rel, &[], &onto);
        assert_eq!(q.precision, 0.0);
    }

    #[test]
    fn holo_repairs_true_errors_toward_majority() {
        // Corrupt one cell of an FD-consistent class; the baseline should
        // restore the majority value.
        let mut rel = table1();
        let med = rel.schema().attr("MED").unwrap();
        // headache class rows 7..10 all 'tiazac' except row 7 'cartia' in
        // table1; make them uniform first, then corrupt row 9.
        rel.set(7, med, "tiazac").unwrap();
        let clean = rel.clone();
        rel.set(9, med, "zzz_bogus").unwrap();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap()];
        let holo = holo_clean(&rel, &onto, &sigma, &HoloConfig::default());
        assert_eq!(holo.repaired.text(9, med), "tiazac");
        let q = repair_quality(&rel, &holo.repaired, &clean, &[(9, med)], &onto);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn margin_suppresses_low_confidence_repairs() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        let strict = HoloConfig {
            margin: 10.0,
            ..HoloConfig::default()
        };
        let holo = holo_clean(&rel, &onto, &sigma, &strict);
        assert!(holo.repairs.is_empty());
        assert_eq!(holo.repaired.cell_distance(&rel).unwrap(), 0);
    }
}
