#![warn(missing_docs)]
//! # ofd-clean
//!
//! **OFDClean** (§4.2–§6): contextual data cleaning with Ontology
//! Functional Dependencies. Given `(I, S, Σ)` with `I ⊭ Σ`, computes a
//! repaired `(I′, S′)` with `I′ ⊨ Σ` w.r.t. `S′` while keeping `dist(I, I′)`
//! and `dist(S, S′)` small (Pareto-minimal in the explored frontier):
//!
//! * [`sense`] — sense assignment per equivalence class: MAD-guided initial
//!   assignment (Algorithm 5) over an `sset` index;
//! * [`graph`] — the dependency graph between classes of OFDs sharing a
//!   consequent, EMD edge weights, and local refinement (Algorithm 6);
//! * [`ontrepair`] — beam search over candidate ontology insertions with the
//!   secretary-rule beam width (Algorithm 7);
//! * [`conflict`] — conflict graphs, the ≤2-approximate vertex cover, and
//!   the Beskales-style data-repair loop (§6.2);
//! * [`ofdclean`] — the orchestrator;
//! * [`holo`] — the HoloClean-style holistic comparator (Exp-14);
//! * [`metrics`] — precision/recall against generator ground truth.
//!
//! ```
//! use ofd_clean::{ofd_clean, OfdCleanConfig};
//! use ofd_core::{table1_updated, Ofd};
//! use ofd_ontology::samples;
//!
//! let rel = table1_updated(); // Example 1.2's inconsistent instance
//! let onto = samples::combined_paper_ontology();
//! let sigma = vec![Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap()];
//! let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
//! assert!(result.satisfied);
//! ```

pub mod approx;
pub mod checkpoint;
pub mod classes;
pub mod conflict;
pub mod dot;
pub mod emd;
pub mod explain;
pub mod graph;
pub mod holo;
pub mod metrics;
pub mod ofdclean;
pub mod ontrepair;
pub mod report;
pub mod sense;

pub use approx::{enforce_approximate, EnforceResult};
pub use classes::{build_classes, ClassData, OfdClasses};
pub use conflict::{
    conflict_graph, delta_p, repair_data, repair_data_guarded, vertex_cover, CellRepair, Conflict,
};
pub use dot::{conflicts_to_dot, depgraph_to_dot, ontology_to_dot};
pub use emd::{emd, Histogram};
pub use explain::{explain_violations, Explanation};
pub use graph::{build_graph, local_refinement, local_refinement_guarded, DepGraph, Edge, NodeRef};
pub use holo::{holo_clean, HoloConfig, HoloResult};
pub use metrics::{ontology_quality, repair_quality, semantically_equal, sense_quality, PrecisionRecall};
pub use ofdclean::{ofd_clean, CleanResult, OfdCleanConfig};
pub use ontrepair::{
    beam_search, beam_search_guarded, candidates, secretary_beam, OntologyRepairPlan, ParetoPoint,
};
pub use report::render_report;
pub use sense::{assign_all, initial_assignment, mad_ranking, SenseAssignment, SenseView};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use ofd_datagen::{clinical, PresetConfig};

    #[test]
    fn end_to_end_on_synthetic_clinical_data() {
        let mut ds = clinical(&PresetConfig {
            n_rows: 250,
            n_ofds: 6,
            ..PresetConfig::default()
        });
        ds.inject_errors(0.03, 11);
        ds.degrade_ontology(0.04, 12);
        let result = ofd_clean(
            &ds.relation,
            &ds.ontology,
            &ds.ofds,
            &OfdCleanConfig::default(),
        );
        assert!(result.satisfied, "OFDClean must reach I′ ⊨ Σ");

        // Recall is measured against *detectable* errors: errors in
        // singleton classes violate nothing and cannot be repaired by any
        // constraint-based cleaner.
        let detectable: Vec<(usize, ofd_core::AttrId)> = ds
            .detectable_errors()
            .iter()
            .map(|e| (e.row, e.attr))
            .collect();
        assert!(!detectable.is_empty());
        let q = repair_quality(
            &ds.relation,
            &result.repaired,
            &ds.clean,
            &detectable,
            &ds.full_ontology,
        );
        assert!(q.precision > 0.5, "precision {} too low", q.precision);
        assert!(q.recall > 0.5, "recall {} too low", q.recall);
    }

    #[test]
    fn sense_assignment_recovers_generating_senses() {
        let ds = clinical(&PresetConfig {
            n_rows: 300,
            n_senses: 4,
            n_ofds: 6,
            ..PresetConfig::default()
        });
        let classes = build_classes(&ds.relation, &ds.ofds);
        let index = ofd_core::SenseIndex::synonym(&ds.relation, &ds.ontology);
        let overlay = std::collections::HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let q = sense_quality(&ds.relation, &classes, &assignment, &ds.truth_senses);
        assert!(q.recall >= 0.999, "every truth class gets a sense");
        assert!(q.precision > 0.7, "precision {} too low", q.precision);
    }

    #[test]
    fn repairs_converge_across_seeds_and_rates() {
        // Property-style sweep: for any corruption level, OFDClean must end
        // with I′ ⊨ Σ w.r.t. S′ and never exceed the τ budget.
        for seed in [1u64, 2, 3] {
            for err in [0.02f64, 0.08] {
                let mut ds = clinical(&PresetConfig {
                    n_rows: 220,
                    n_ofds: 6,
                    seed,
                    ..PresetConfig::default()
                });
                ds.degrade_ontology(0.05, seed);
                ds.inject_errors(err, seed);
                let config = OfdCleanConfig::default();
                let result = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &config);
                assert!(result.satisfied, "seed {seed} err {err}");
                let tau_max =
                    (config.tau * ds.relation.n_rows() as f64).floor() as usize;
                assert!(result.data_dist() <= tau_max);
                // Consequents only: antecedent cells never change.
                for r in &result.data_repairs {
                    assert!(
                        ds.ofds.iter().any(|o| o.rhs == r.attr),
                        "repair touched a non-consequent attribute"
                    );
                }
            }
        }
    }

    #[test]
    fn ofdclean_beats_holo_on_synonym_heavy_data() {
        let mut ds = clinical(&PresetConfig {
            n_rows: 250,
            n_ofds: 6,
            seed: 5,
            ..PresetConfig::default()
        });
        ds.inject_errors(0.05, 21);
        let injected: Vec<(usize, ofd_core::AttrId)> =
            ds.injected.iter().map(|e| (e.row, e.attr)).collect();

        let ofd = ofd_clean(
            &ds.relation,
            &ds.ontology,
            &ds.ofds,
            &OfdCleanConfig::default(),
        );
        let q_ofd = repair_quality(&ds.relation, &ofd.repaired, &ds.clean, &injected, &ds.full_ontology);

        let holo = holo_clean(&ds.relation, &ds.ontology, &ds.ofds, &HoloConfig::default());
        let q_holo = repair_quality(&ds.relation, &holo.repaired, &ds.clean, &injected, &ds.full_ontology);

        assert!(
            q_ofd.precision > q_holo.precision,
            "OFDClean precision {} must beat holo {}",
            q_ofd.precision,
            q_holo.precision
        );
    }
}
