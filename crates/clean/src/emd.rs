//! Earth Mover's Distance between categorical histograms (§5.2.2).
//!
//! The paper measures the work needed to transform the value distribution of
//! an overlap under one sense into the distribution under another. For
//! categorical values with unit ground distance, EMD reduces to half the L1
//! distance between the histograms (plus any mass imbalance); we work on raw
//! counts so edge weights read as "number of tuples to move", matching the
//! paper's Figure 6 weights.

use std::collections::HashMap;
use std::hash::Hash;

/// A histogram over arbitrary categorical tokens.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram<T: Eq + Hash> {
    counts: HashMap<T, f64>,
}

impl<T: Eq + Hash + Clone> Histogram<T> {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: HashMap::new(),
        }
    }

    /// Adds `weight` mass to `token`.
    pub fn add(&mut self, token: T, weight: f64) {
        *self.counts.entry(token).or_insert(0.0) += weight;
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Mass at one token.
    pub fn get(&self, token: &T) -> f64 {
        self.counts.get(token).copied().unwrap_or(0.0)
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(token, mass)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&T, f64)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Whether the token has an entry (possibly zero mass).
    pub fn contains(&self, token: &T) -> bool {
        self.counts.contains_key(token)
    }
}

/// EMD between two categorical histograms with unit ground distance:
/// `(Σ_t |p(t) − q(t)|) / 2 + |‖p‖ − ‖q‖| / 2` — the minimum mass that must
/// move (or appear/vanish) to turn `p` into `q`.
pub fn emd<T: Eq + Hash + Clone>(p: &Histogram<T>, q: &Histogram<T>) -> f64 {
    let mut l1 = 0.0;
    for (t, mass) in p.iter() {
        l1 += (mass - q.get(t)).abs();
    }
    for (t, mass) in q.iter() {
        if !p.contains(t) {
            l1 += mass;
        }
    }
    l1 / 2.0 + (p.total() - q.total()).abs() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn h(pairs: &[(&str, f64)]) -> Histogram<String> {
        let mut out = Histogram::new();
        for (t, w) in pairs {
            out.add((*t).to_owned(), *w);
        }
        out
    }

    #[test]
    fn identical_histograms_have_zero_distance() {
        let a = h(&[("x", 3.0), ("y", 1.0)]);
        assert_eq!(emd(&a, &a), 0.0);
    }

    #[test]
    fn moving_one_tuple_costs_one() {
        let a = h(&[("x", 3.0), ("y", 1.0)]);
        let b = h(&[("x", 2.0), ("y", 2.0)]);
        assert_eq!(emd(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_support_moves_everything() {
        let a = h(&[("x", 4.0)]);
        let b = h(&[("y", 4.0)]);
        assert_eq!(emd(&a, &b), 4.0);
    }

    #[test]
    fn mass_imbalance_is_charged() {
        let a = h(&[("x", 4.0)]);
        let b = h(&[("x", 1.0)]);
        assert_eq!(emd(&a, &b), 3.0);
    }

    #[test]
    fn paper_style_outlier_distance() {
        // Ω under λ1: canonical c2 covers 3 tuples, outlier c4 ×1.
        // Ω under λ2: canonical c2 covers 2 tuples, outliers c1, c3.
        // Minimum transport: move one c2-excess unit and the c4 unit.
        let p = h(&[("c2", 3.0), ("c4", 1.0)]);
        let q = h(&[("c2", 2.0), ("c1", 1.0), ("c3", 1.0)]);
        assert_eq!(emd(&p, &q), 2.0);
    }

    proptest! {
        #[test]
        fn emd_is_a_metric(
            xs in prop::collection::vec((0u8..5, 0u32..10), 0..8),
            ys in prop::collection::vec((0u8..5, 0u32..10), 0..8),
            zs in prop::collection::vec((0u8..5, 0u32..10), 0..8),
        ) {
            let build = |v: &Vec<(u8, u32)>| {
                let mut out: Histogram<u8> = Histogram::new();
                for (t, w) in v {
                    out.add(*t, *w as f64);
                }
                out
            };
            let (p, q, r) = (build(&xs), build(&ys), build(&zs));
            // Symmetry.
            prop_assert!((emd(&p, &q) - emd(&q, &p)).abs() < 1e-9);
            // Identity of indiscernibles (same counts ⇒ zero).
            prop_assert_eq!(emd(&p, &p), 0.0);
            // Non-negativity and triangle inequality.
            prop_assert!(emd(&p, &q) >= 0.0);
            prop_assert!(emd(&p, &r) <= emd(&p, &q) + emd(&q, &r) + 1e-9);
        }
    }
}
