//! Ontology repair via beam search over the candidate lattice
//! (Algorithm 7, §6.1).
//!
//! Candidates are `(value, sense)` pairs: data values absent from the
//! ontology, proposed for insertion under their class's assigned sense.
//! Level `k` of the lattice holds repairs of size `k`; each level keeps the
//! top-`b` nodes by the data-repair bound `δ_P`, with the secretary-rule
//! default `b = ⌊|Cand(S)| / e⌋`. The result is the Pareto frontier of
//! `(ontology repairs, data repairs)` plus the selected repair.

use std::collections::HashSet;

use ofd_core::{Ofd, Relation, SenseIndex, ValueId};
use ofd_ontology::SenseId;

use crate::classes::OfdClasses;

use crate::sense::{SenseAssignment, SenseView};

/// One point of the (dist(S,S'), dist(I,I')-bound) trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Number of ontology insertions `k = dist(S, S')`.
    pub k: usize,
    /// `δ_P` data-repair upper bound under this ontology repair
    /// (`α × |C_2opt|`, the paper's Table 6 column).
    pub delta_p: usize,
    /// Raw conflict-cover size `|C_2opt|` — the unscaled estimate of the
    /// data repairs still needed.
    pub cover: usize,
    /// The insertions themselves.
    pub adds: Vec<(ValueId, SenseId)>,
}

/// Output of the beam search.
#[derive(Debug, Clone)]
pub struct OntologyRepairPlan {
    /// All candidate `(value, sense)` insertions considered.
    pub candidates: Vec<(ValueId, SenseId)>,
    /// Beam width used.
    pub beam: usize,
    /// Best point found at each explored `k` (including `k = 0`).
    pub frontier: Vec<ParetoPoint>,
    /// The Pareto-minimal subset of `frontier`.
    pub pareto: Vec<ParetoPoint>,
}

impl OntologyRepairPlan {
    /// Selects the repair minimizing total modifications `k + |C_2opt|`
    /// (ties: fewer ontology insertions, so injected noise is fixed in the
    /// data rather than legitimized in the ontology), respecting a
    /// data-repair budget `tau_max` when any point satisfies it.
    pub fn select(&self, tau_max: usize) -> &ParetoPoint {
        let within: Vec<&ParetoPoint> = self
            .pareto
            .iter()
            .filter(|p| p.cover <= tau_max)
            .collect();
        let pool: Vec<&ParetoPoint> = if within.is_empty() {
            self.pareto.iter().collect()
        } else {
            within
        };
        pool.into_iter()
            .min_by_key(|p| (p.k + p.cover, p.k))
            .expect("frontier contains at least k = 0")
    }
}

/// The secretary-rule beam width `⌊w / e⌋`, clamped to `[1, 32]` — the
/// rule's optimality argument concerns *selection quality*, not runtime;
/// uncapped, a large candidate set would make each lattice level
/// `b × |Cand|` evaluations (the paper's Table 5 sweeps b only up to 5).
pub fn secretary_beam(w: usize) -> usize {
    (((w as f64) / std::f64::consts::E).floor() as usize).clamp(1, 32)
}

/// Collects `Cand(S)`: distinct consequent values of assigned classes that
/// the ontology does not know, paired with the class's sense.
pub fn candidates(
    classes: &[OfdClasses],
    assignment: &SenseAssignment,
    index: &SenseIndex,
) -> Vec<(ValueId, SenseId)> {
    let mut seen: HashSet<(ValueId, SenseId)> = HashSet::new();
    let mut out: Vec<(ValueId, SenseId)> = Vec::new();
    for oc in classes {
        for (ci, class) in oc.classes.iter().enumerate() {
            let Some(sense) = assignment.get(oc.ofd_idx, ci) else {
                continue;
            };
            for &(v, _) in &class.value_counts {
                if index.senses(v).is_empty() && seen.insert((v, sense)) {
                    out.push((v, sense));
                }
            }
        }
    }
    out
}

/// Runs the beam search (Algorithm 7). `beam = None` applies the secretary
/// rule; `max_k` bounds the explored repair size (defaults to all
/// candidates).
pub fn beam_search(
    rel: &Relation,
    sigma: &[Ofd],
    classes: &[OfdClasses],
    assignment: &SenseAssignment,
    index: &SenseIndex,
    beam: Option<usize>,
    max_k: Option<usize>,
) -> OntologyRepairPlan {
    beam_search_guarded(
        rel,
        sigma,
        classes,
        assignment,
        index,
        beam,
        max_k,
        &ofd_core::ExecGuard::unlimited(),
    )
}

/// [`beam_search`] with an execution guard, probed once per candidate
/// evaluation and per beam expansion.
///
/// The frontier always contains the `k = 0` (no ontology repair) point, so
/// an interrupted search still yields a usable plan — `select` falls back
/// to the best fully evaluated point, in the worst case pure data repair.
/// Every frontier entry was completely evaluated before the interrupt, so
/// no partially costed point can be selected.
#[allow(clippy::too_many_arguments)]
pub fn beam_search_guarded(
    rel: &Relation,
    sigma: &[Ofd],
    classes: &[OfdClasses],
    assignment: &SenseAssignment,
    index: &SenseIndex,
    beam: Option<usize>,
    max_k: Option<usize>,
    guard: &ofd_core::ExecGuard,
) -> OntologyRepairPlan {
    let cands = candidates(classes, assignment, index);
    let w = cands.len();
    let b = beam.unwrap_or_else(|| secretary_beam(w));
    let max_k = max_k.unwrap_or(w).min(w);

    let alpha = {
        let distinct: HashSet<_> = sigma.iter().map(|o| o.rhs).collect();
        distinct.len().min(sigma.len())
    };

    // Repair-cost objective: the number of *distinct tuples* that are
    // outliers in at least one class — the tuple-level analogue of the
    // conflict graph's vertex cover (a tuple conflicting for several OFDs
    // is covered once), evaluated incrementally: a candidate insertion
    // only affects the classes containing its value. The union semantics
    // makes the objective subadditive, which is exactly why a wider beam
    // can beat pure greedy (Exp-9).
    struct ClassSlot<'c> {
        sense: Option<SenseId>,
        value_counts: &'c [(ValueId, u32)],
        tuples: &'c [u32],
        rhs: ofd_core::AttrId,
        base_cost: usize,
    }
    let empty_overlay: HashSet<(ValueId, SenseId)> = HashSet::new();
    let base_view = SenseView {
        base: index,
        overlay: &empty_overlay,
    };
    let cost_of = |slot_sense: Option<SenseId>,
                   counts: &[(ValueId, u32)],
                   view: SenseView<'_>| -> usize {
        if counts.len() <= 1 {
            return 0; // a single distinct value satisfies any OFD
        }
        let total: usize = counts.iter().map(|&(_, c)| c as usize).sum();
        let majority = counts.first().map(|&(_, c)| c as usize).unwrap_or(0);
        match slot_sense {
            Some(s) => {
                let outliers: usize = counts
                    .iter()
                    .filter(|&&(v, _)| !view.in_sense(v, s))
                    .map(|&(_, c)| c as usize)
                    .sum();
                if outliers == total {
                    // No class value inside the sense: fall back to a
                    // majority repair.
                    total - majority
                } else {
                    outliers
                }
            }
            // No sense: all tuples except the majority value must move.
            None => total - majority,
        }
    };
    // Outlier tuples of one class under a view.
    let outliers_of = |slot: &ClassSlot<'_>, view: SenseView<'_>| -> Vec<u32> {
        if slot.value_counts.len() <= 1 {
            return Vec::new();
        }
        match slot.sense {
            Some(sense) => {
                let any_in = slot
                    .value_counts
                    .iter()
                    .any(|&(v, _)| view.in_sense(v, sense));
                if any_in {
                    slot.tuples
                        .iter()
                        .copied()
                        .filter(|&t| !view.in_sense(rel.value(t as usize, slot.rhs), sense))
                        .collect()
                } else {
                    // Majority repair: everything but the majority value.
                    let majority = slot.value_counts[0].0;
                    slot.tuples
                        .iter()
                        .copied()
                        .filter(|&t| rel.value(t as usize, slot.rhs) != majority)
                        .collect()
                }
            }
            None => {
                let majority = slot.value_counts[0].0;
                slot.tuples
                    .iter()
                    .copied()
                    .filter(|&t| rel.value(t as usize, slot.rhs) != majority)
                    .collect()
            }
        }
    };
    let _ = &cost_of; // cost_of retained for per-class bookkeeping below

    let cand_values: HashSet<ValueId> = cands.iter().map(|&(v, _)| v).collect();
    let mut slots: Vec<ClassSlot<'_>> = Vec::new();
    let mut value_to_slots: std::collections::HashMap<ValueId, Vec<usize>> =
        std::collections::HashMap::new();
    for oc in classes {
        for (ci, class) in oc.classes.iter().enumerate() {
            let sense = assignment.get(oc.ofd_idx, ci);
            let mut slot = ClassSlot {
                sense,
                value_counts: &class.value_counts,
                tuples: &class.tuples,
                rhs: oc.ofd.rhs,
                base_cost: 0,
            };
            slot.base_cost = cost_of(slot.sense, slot.value_counts, base_view);
            let idx = slots.len();
            for &(v, _) in &class.value_counts {
                if cand_values.contains(&v) {
                    value_to_slots.entry(v).or_default().push(idx);
                }
            }
            slots.push(slot);
        }
    }
    // base outlier multiplicity per tuple.
    let mut base_counts: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::new();
    let mut base_outliers_per_slot: Vec<Vec<u32>> = Vec::with_capacity(slots.len());
    for slot in &slots {
        let outs = outliers_of(slot, base_view);
        for &t in &outs {
            *base_counts.entry(t).or_insert(0) += 1;
        }
        base_outliers_per_slot.push(outs);
    }
    let base_total = base_counts.len();

    // Per-slot candidate values (to identify which adds touch a slot) and
    // a memo of post-insertion outlier sets: the outliers of a slot depend
    // only on the adds whose value the slot contains, so repeated beam
    // evaluations become hash lookups.
    let slot_cand_values: Vec<Vec<ValueId>> = slots
        .iter()
        .map(|slot| {
            slot.value_counts
                .iter()
                .map(|&(v, _)| v)
                .filter(|v| cand_values.contains(v))
                .collect()
        })
        .collect();
    type OutlierMemo = std::collections::HashMap<(usize, Vec<(ValueId, SenseId)>), Vec<u32>>;
    let mut outlier_memo: OutlierMemo = std::collections::HashMap::new();
    let mut eval_with_touched = |adds: &[(ValueId, SenseId)]| -> (usize, Vec<u32>) {
        let mut affected: Vec<usize> = adds
            .iter()
            .filter_map(|(v, _)| value_to_slots.get(v))
            .flatten()
            .copied()
            .collect();
        affected.sort_unstable();
        affected.dedup();
        if affected.is_empty() {
            return (base_total, Vec::new());
        }
        // Delta counting over the touched tuples only.
        let mut deltas: std::collections::HashMap<u32, i64> =
            std::collections::HashMap::new();
        for i in affected {
            let mut relevant: Vec<(ValueId, SenseId)> = adds
                .iter()
                .copied()
                .filter(|(v, _)| slot_cand_values[i].contains(v))
                .collect();
            relevant.sort_unstable();
            let outs = outlier_memo.entry((i, relevant.clone())).or_insert_with(|| {
                let overlay: HashSet<(ValueId, SenseId)> = relevant.into_iter().collect();
                let view = SenseView {
                    base: index,
                    overlay: &overlay,
                };
                outliers_of(&slots[i], view)
            });
            for &t in &base_outliers_per_slot[i] {
                *deltas.entry(t).or_insert(0) -= 1;
            }
            for &t in outs.iter() {
                *deltas.entry(t).or_insert(0) += 1;
            }
        }
        let mut total = base_total as i64;
        let mut touched: Vec<u32> = Vec::with_capacity(deltas.len());
        for (t, d) in deltas {
            if d != 0 {
                touched.push(t);
            }
            let base = base_counts.get(&t).copied().unwrap_or(0) as i64;
            let was = (base > 0) as i64;
            let now = (base + d > 0) as i64;
            total += now - was;
        }
        touched.sort_unstable();
        (total as usize, touched)
    };


    let base_cover = base_total;
    let mut frontier = vec![ParetoPoint {
        k: 0,
        delta_p: alpha * base_cover,
        cover: base_cover,
        adds: Vec::new(),
    }];

    // Level-1 gains and touched-tuple sets per candidate: a candidate
    // whose touched tuples are disjoint from everything a node already
    // touches contributes its standalone gain exactly (the union objective
    // is additive over disjoint tuple deltas).
    let mut gain1: Vec<usize> = Vec::with_capacity(cands.len());
    let mut touched1: Vec<Vec<u32>> = Vec::with_capacity(cands.len());
    for &cand in &cands {
        if guard.check().is_err() {
            break;
        }
        let (cover, touched) = eval_with_touched(&[cand]);
        gain1.push(base_cover.saturating_sub(cover));
        touched1.push(touched);
    }
    // The beam loop indexes gain1/touched1 by candidate; a truncated
    // level-1 scan means no lattice level can be explored soundly, leaving
    // the k = 0 fallback.
    let max_k = if gain1.len() == cands.len() { max_k } else { 0 };

    // Beam over the candidate lattice; stop on plateau (an extra insertion
    // that buys no data repairs cannot be part of a Pareto improvement).
    let mut level: Vec<ParetoPoint> = vec![frontier[0].clone()];
    let mut best_so_far = base_cover;
    'beam: for k in 1..=max_k {
        let mut next: Vec<ParetoPoint> = Vec::new();
        let mut seen: HashSet<Vec<(ValueId, SenseId)>> = HashSet::new();
        let cand_index: std::collections::HashMap<(ValueId, SenseId), usize> =
            cands.iter().copied().enumerate().map(|(i, c)| (c, i)).collect();
        for node in &level {
            if guard.check().is_err() {
                break 'beam;
            }
            let node_touched: HashSet<u32> = node
                .adds
                .iter()
                .filter_map(|c| cand_index.get(c))
                .flat_map(|&i| touched1[i].iter().copied())
                .collect();
            for (ci, &cand) in cands.iter().enumerate() {
                if node.adds.contains(&cand) {
                    continue;
                }
                let mut adds = node.adds.clone();
                adds.push(cand);
                adds.sort_unstable();
                if !seen.insert(adds.clone()) {
                    continue;
                }
                let independent = touched1[ci]
                    .iter()
                    .all(|t| !node_touched.contains(t));
                let cover = if independent {
                    node.cover.saturating_sub(gain1[ci])
                } else {
                    eval_with_touched(&adds).0
                };
                next.push(ParetoPoint {
                    k,
                    delta_p: alpha * cover,
                    cover,
                    adds,
                });
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_by_key(|p| (p.cover, p.adds.clone()));
        next.truncate(b);
        frontier.push(next[0].clone());
        // Stop when the marginal gain per insertion drops to ≤ 1: such an
        // insertion can never beat the corresponding data repair in the
        // Pareto selection (k + cover stays constant, and ties prefer
        // smaller k), so deeper levels cannot change the outcome.
        if next[0].cover == 0 || best_so_far.saturating_sub(next[0].cover) <= 1 {
            break;
        }
        best_so_far = next[0].cover;
        level = next;
    }

    // Pareto filter over (k, δ_P).
    let mut pareto: Vec<ParetoPoint> = Vec::new();
    for p in &frontier {
        let dominated = frontier
            .iter()
            .any(|q| q.k <= p.k && q.delta_p <= p.delta_p && (q.k, q.delta_p) != (p.k, p.delta_p));
        if !dominated && !pareto.iter().any(|q| (q.k, q.delta_p) == (p.k, p.delta_p)) {
            pareto.push(p.clone());
        }
    }

    OntologyRepairPlan {
        candidates: cands,
        beam: b,
        frontier,
        pareto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::build_classes;
    use crate::sense::assign_all;
    use ofd_core::table1_updated;
    use ofd_ontology::samples;

    fn setup() -> (
        Relation,
        ofd_ontology::Ontology,
        Vec<Ofd>,
        SenseIndex,
    ) {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ];
        let index = SenseIndex::synonym(&rel, &onto);
        (rel, onto, sigma, index)
    }

    #[test]
    fn secretary_rule_values() {
        assert_eq!(secretary_beam(0), 1);
        assert_eq!(secretary_beam(3), 1);
        assert_eq!(secretary_beam(6), 2);
        assert_eq!(secretary_beam(10), 3);
    }

    #[test]
    fn adizem_is_the_repair_candidate() {
        // Example 1.2: adizem is absent from Figure 1's ontology.
        let (rel, _onto, sigma, index) = setup();
        let classes = build_classes(&rel, &sigma);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let cands = candidates(&classes, &assignment, &index);
        let adizem = rel.pool().get("adizem").unwrap();
        assert!(cands.iter().any(|&(v, _)| v == adizem));
        // Every candidate value is genuinely unknown to the ontology.
        for &(v, _) in &cands {
            assert!(index.senses(v).is_empty());
        }
    }

    #[test]
    fn beam_search_improves_delta_with_k() {
        let (rel, _onto, sigma, index) = setup();
        let classes = build_classes(&rel, &sigma);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let plan = beam_search(&rel, &sigma, &classes, &assignment, &index, Some(3), None);
        assert!(plan.frontier.len() >= 2, "at least k=0 and k=1 explored");
        let base = plan.frontier[0].delta_p;
        assert!(base > 0, "the updated table has violations");
        let best = plan.frontier.iter().map(|p| p.delta_p).min().unwrap();
        assert!(best < base, "ontology repair reduces the repair bound");
        // Frontier entries are indexed by k.
        for (i, p) in plan.frontier.iter().enumerate() {
            assert_eq!(p.k, i);
            assert_eq!(p.adds.len(), i);
        }
    }

    #[test]
    fn pareto_points_are_mutually_nondominated() {
        let (rel, _onto, sigma, index) = setup();
        let classes = build_classes(&rel, &sigma);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let plan = beam_search(&rel, &sigma, &classes, &assignment, &index, None, None);
        for p in &plan.pareto {
            for q in &plan.pareto {
                if (p.k, p.delta_p) != (q.k, q.delta_p) {
                    assert!(
                        !(q.k <= p.k && q.delta_p <= p.delta_p),
                        "({},{}) dominates ({},{})",
                        q.k,
                        q.delta_p,
                        p.k,
                        p.delta_p
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_eval_matches_from_scratch() {
        // The memoized / delta-counted / independence-shortcut evaluation
        // must equal a naive recomputation for arbitrary candidate subsets.
        use ofd_datagen::{clinical, PresetConfig};
        let mut ds = clinical(&PresetConfig {
            n_rows: 400,
            n_ofds: 6,
            seed: 41,
            ..PresetConfig::default()
        });
        ds.degrade_ontology(0.06, 42);
        ds.inject_errors(0.05, 42);
        let classes = build_classes(&ds.relation, &ds.ofds);
        let index = SenseIndex::synonym(&ds.relation, &ds.ontology);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let cands = candidates(&classes, &assignment, &index);
        assert!(cands.len() >= 4, "need candidates to exercise subsets");

        // Naive recomputation of the union-of-outliers objective.
        let naive = |adds: &[(ofd_core::ValueId, ofd_ontology::SenseId)]| -> usize {
            let ov: HashSet<_> = adds.iter().copied().collect();
            let v = SenseView {
                base: &index,
                overlay: &ov,
            };
            let mut outliers: HashSet<u32> = HashSet::new();
            for oc in &classes {
                for (ci, class) in oc.classes.iter().enumerate() {
                    let sense = assignment.get(oc.ofd_idx, ci);
                    if class.value_counts.len() <= 1 {
                        continue;
                    }
                    let total: u32 = class.value_counts.iter().map(|&(_, c)| c).sum();
                    match sense {
                        Some(s) => {
                            let covered: u32 = class
                                .value_counts
                                .iter()
                                .filter(|&&(val, _)| v.in_sense(val, s))
                                .map(|&(_, c)| c)
                                .sum();
                            if covered == total {
                                continue;
                            }
                            if covered > 0 {
                                for &t in &class.tuples {
                                    let val =
                                        ds.relation.value(t as usize, oc.ofd.rhs);
                                    if !v.in_sense(val, s) {
                                        outliers.insert(t);
                                    }
                                }
                            } else {
                                let majority = class.value_counts[0].0;
                                for &t in &class.tuples {
                                    if ds.relation.value(t as usize, oc.ofd.rhs)
                                        != majority
                                    {
                                        outliers.insert(t);
                                    }
                                }
                            }
                        }
                        None => {
                            let majority = class.value_counts[0].0;
                            for &t in &class.tuples {
                                if ds.relation.value(t as usize, oc.ofd.rhs) != majority {
                                    outliers.insert(t);
                                }
                            }
                        }
                    }
                }
            }
            outliers.len()
        };

        // The beam search reports frontiers whose covers must match the
        // naive objective for the chosen add-sets.
        let plan = beam_search(
            &ds.relation,
            &ds.ofds,
            &classes,
            &assignment,
            &index,
            Some(4),
            Some(5),
        );
        for point in &plan.frontier {
            assert_eq!(
                point.cover,
                naive(&point.adds),
                "k={} adds={:?}",
                point.k,
                point.adds
            );
        }
    }

    #[test]
    fn select_minimizes_total_changes() {
        let (rel, _onto, sigma, index) = setup();
        let classes = build_classes(&rel, &sigma);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let plan = beam_search(&rel, &sigma, &classes, &assignment, &index, Some(4), None);
        let chosen = plan.select(usize::MAX);
        for p in &plan.pareto {
            assert!(chosen.k + chosen.cover <= p.k + p.cover);
        }
        // A tight τ prefers points with fewer data repairs when available.
        let tight = plan.select(0);
        if plan.pareto.iter().any(|p| p.cover == 0) {
            assert_eq!(tight.cover, 0);
        }
    }
}
