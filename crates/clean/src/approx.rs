//! The §5 workflow: "for approximate OFDs defined over a dirty instance
//! `I`, violating values in `I` can be repaired, thereby transforming
//! approximate OFDs to OFDs that are satisfied over all tuples."
//!
//! [`enforce_approximate`] discovers the κ-approximate synonym OFDs of a
//! (possibly dirty) instance, then runs OFDClean with the discovered set as
//! Σ — so the rules come *from* the data, and the repair makes them exact.

use ofd_core::{Ofd, Relation, Validator};
use ofd_discovery::{DiscoveryOptions, FastOfd};
use ofd_ontology::Ontology;

use crate::ofdclean::{ofd_clean, CleanResult, OfdCleanConfig};

/// Outcome of [`enforce_approximate`].
#[derive(Debug, Clone)]
pub struct EnforceResult {
    /// The κ-approximate OFDs discovered on the dirty instance, used as Σ.
    pub sigma: Vec<Ofd>,
    /// The cleaning result (its `repaired` instance satisfies `sigma`
    /// exactly when `satisfied` is true).
    pub clean: CleanResult,
}

/// Discovers the minimal κ-approximate synonym OFDs of `rel` (optionally
/// capped at `max_level` — compact rules are the interesting ones, §7.2),
/// then repairs `rel` so the discovered set holds exactly.
pub fn enforce_approximate(
    rel: &Relation,
    onto: &Ontology,
    kappa: f64,
    max_level: Option<usize>,
    config: &OfdCleanConfig,
) -> EnforceResult {
    // The discovery phase shares the cleaning guard: an interrupt mid-
    // discovery yields a smaller (still sound) Σ and the subsequent
    // cleaning phases fail their first checkpoint, so `clean.complete`
    // reports the truncation.
    let mut opts = DiscoveryOptions::new()
        .min_support(kappa)
        .guard(config.guard.clone())
        .obs(config.obs.clone());
    if let Some(level) = max_level {
        opts = opts.max_level(level);
    }
    let discovered = FastOfd::new(rel, onto).options(opts).run();
    // Restrict to the paper's repairable fragment (§5.1): no attribute may
    // be the consequent of one kept rule and an antecedent of another —
    // otherwise repairing one rule re-partitions the other — and no two
    // kept rules may share a consequent — their classes prescribe
    // conflicting repair targets for the same cells, so the repair loop
    // oscillates instead of converging. Rules are considered compact-first
    // (discovery order is by level), and the vacuous ∅ → A constants are
    // skipped.
    let mut lhs_used = ofd_core::AttrSet::empty();
    let mut rhs_used = ofd_core::AttrSet::empty();
    let mut sigma: Vec<Ofd> = Vec::new();
    for o in discovered.ofds() {
        if o.lhs.is_empty() {
            continue;
        }
        // Superkey antecedents hold vacuously (every class is a singleton)
        // and make useless quality rules — skip them so meaningful rules
        // are not crowded out of the repairable fragment.
        if ofd_core::StrippedPartition::of(rel, o.lhs).is_superkey() {
            continue;
        }
        if !o.lhs.is_disjoint(rhs_used) || lhs_used.contains(o.rhs) || rhs_used.contains(o.rhs) {
            continue;
        }
        lhs_used = lhs_used.union(o.lhs);
        rhs_used.insert(o.rhs);
        sigma.push(*o);
    }
    let clean = ofd_clean(rel, onto, &sigma, config);
    EnforceResult { sigma, clean }
}

impl EnforceResult {
    /// Verifies that every discovered rule holds *exactly* on the repaired
    /// instance w.r.t. the repaired ontology.
    pub fn all_exact(&self) -> bool {
        let v = Validator::new(&self.clean.repaired, &self.clean.repaired_ontology);
        self.sigma.iter().all(|o| v.check(o).satisfied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_datagen::{clinical, PresetConfig};

    #[test]
    fn approximate_rules_become_exact_after_repair() {
        let mut ds = clinical(&PresetConfig {
            n_rows: 300,
            n_attrs: 6,
            n_ofds: 2,
            seed: 17,
            ..PresetConfig::default()
        });
        ds.inject_errors(0.04, 18);

        let result = enforce_approximate(
            &ds.relation,
            &ds.ontology,
            0.9,
            Some(3),
            &OfdCleanConfig::default(),
        );
        assert!(!result.sigma.is_empty(), "rules discovered at κ = 0.9");
        // The planted CC → CTRY must be among (or subsumed by) them.
        let schema = ds.relation.schema();
        let ctry = schema.attr("CTRY").unwrap();
        assert!(result.sigma.iter().any(|o| o.rhs == ctry));
        // And after cleaning, every rule holds exactly.
        assert!(result.clean.satisfied);
        assert!(result.all_exact());
    }

    #[test]
    fn exact_input_discovers_and_needs_no_repairs() {
        let ds = clinical(&PresetConfig {
            n_rows: 200,
            n_attrs: 6,
            n_ofds: 2,
            seed: 19,
            ..PresetConfig::default()
        });
        let result = enforce_approximate(
            &ds.clean,
            &ds.full_ontology,
            1.0,
            Some(2),
            &OfdCleanConfig::default(),
        );
        assert!(result.all_exact());
        assert_eq!(result.clean.data_dist(), 0, "exact rules need no repairs");
        assert_eq!(result.clean.ontology_dist(), 0);
    }

    #[test]
    fn kappa_trades_rule_count_for_support() {
        let mut ds = clinical(&PresetConfig {
            n_rows: 300,
            n_attrs: 6,
            n_ofds: 2,
            seed: 23,
            ..PresetConfig::default()
        });
        ds.inject_errors(0.05, 24);
        let strict = enforce_approximate(
            &ds.relation,
            &ds.ontology,
            1.0,
            Some(2),
            &OfdCleanConfig::default(),
        );
        let relaxed = enforce_approximate(
            &ds.relation,
            &ds.ontology,
            0.85,
            Some(2),
            &OfdCleanConfig::default(),
        );
        // Lower κ accepts rules the errors broke, so the relaxed run sees at
        // least as many level-≤2 rules and generally repairs more cells.
        assert!(relaxed.sigma.len() >= strict.sigma.len());
        assert!(relaxed.all_exact());
    }
}
