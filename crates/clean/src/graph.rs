//! The dependency graph over equivalence classes (§5.2) and local
//! refinement of the sense assignment (Algorithm 6).
//!
//! Nodes are `(OFD, class)` pairs; an edge connects classes of *different*
//! OFDs that share a consequent attribute and overlap in tuples. Edge
//! weights are the EMD between the overlap's value distributions under the
//! two assigned senses. Refinement visits heavy nodes first and considers
//! three ways to align a heavy edge — ontology repair, data repair, or
//! sense reassignment — applying a reassignment only when it actually
//! lowers the edge weight.

use std::collections::{HashMap, HashSet};

use ofd_core::{Relation, ValueId};
use ofd_ontology::{Ontology, SenseId};

use crate::classes::{ClassData, OfdClasses};
use crate::emd::{emd, Histogram};
use crate::sense::{SenseAssignment, SenseView};

/// A node of the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    /// OFD index in Σ.
    pub ofd_idx: usize,
    /// Class index within that OFD.
    pub class_idx: usize,
}

/// An undirected weighted edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Endpoint node indices into [`DepGraph::nodes`].
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Overlapping tuple ids.
    pub overlap: Vec<u32>,
    /// EMD between the overlap's distributions under the endpoints' senses.
    pub weight: f64,
}

/// The dependency graph.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Nodes (classes participating in at least one edge are meaningful;
    /// isolated classes are included for completeness).
    pub nodes: Vec<NodeRef>,
    /// Edges.
    pub edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Edge indices incident to node `n`.
    pub fn incident(&self, n: usize) -> &[usize] {
        &self.adj[n]
    }

    /// Sum of incident edge weights — the BFS priority of Algorithm 8.
    pub fn node_weight(&self, n: usize) -> f64 {
        self.adj[n].iter().map(|&e| self.edges[e].weight).sum()
    }
}

/// Distribution of the overlap's consequent values under `sense`: values
/// inside the sense collapse to the sense's canonical value, outliers stay
/// themselves (§5.2.1).
pub fn overlap_histogram(
    rel: &Relation,
    onto: &Ontology,
    view: SenseView<'_>,
    overlap: &[u32],
    rhs: ofd_core::AttrId,
    sense: Option<SenseId>,
) -> Histogram<String> {
    let mut h = Histogram::new();
    for &t in overlap {
        let v = rel.value(t as usize, rhs);
        let token = match sense {
            Some(s) if view.in_sense(v, s) => onto
                .canonical(s)
                .expect("assigned sense exists")
                .to_owned(),
            _ => rel.pool().resolve(v).to_owned(),
        };
        h.add(token, 1.0);
    }
    h
}

/// Builds the dependency graph for the current assignment.
pub fn build_graph(
    rel: &Relation,
    onto: &Ontology,
    classes: &[OfdClasses],
    assignment: &SenseAssignment,
    view: SenseView<'_>,
) -> DepGraph {
    let mut nodes: Vec<NodeRef> = Vec::new();
    let mut node_index: HashMap<NodeRef, usize> = HashMap::new();
    for oc in classes {
        for ci in 0..oc.classes.len() {
            let n = NodeRef {
                ofd_idx: oc.ofd_idx,
                class_idx: ci,
            };
            node_index.insert(n, nodes.len());
            nodes.push(n);
        }
    }
    let mut g = DepGraph {
        adj: vec![Vec::new(); nodes.len()],
        nodes,
        edges: Vec::new(),
    };

    // Edges: pairs of OFDs sharing the consequent attribute.
    for (i, a) in classes.iter().enumerate() {
        for b in classes.iter().skip(i + 1) {
            if a.ofd.rhs != b.ofd.rhs {
                continue;
            }
            // tuple -> class index of OFD a.
            let mut owner: HashMap<u32, usize> = HashMap::new();
            for (ci, class) in a.classes.iter().enumerate() {
                for &t in &class.tuples {
                    owner.insert(t, ci);
                }
            }
            let mut overlaps: HashMap<(usize, usize), Vec<u32>> = HashMap::new();
            for (cj, class) in b.classes.iter().enumerate() {
                for &t in &class.tuples {
                    if let Some(&ci) = owner.get(&t) {
                        overlaps.entry((ci, cj)).or_default().push(t);
                    }
                }
            }
            let mut keys: Vec<(usize, usize)> = overlaps.keys().copied().collect();
            keys.sort_unstable();
            for (ci, cj) in keys {
                let overlap = overlaps.remove(&(ci, cj)).expect("key exists");
                let u = node_index[&NodeRef {
                    ofd_idx: a.ofd_idx,
                    class_idx: ci,
                }];
                let v = node_index[&NodeRef {
                    ofd_idx: b.ofd_idx,
                    class_idx: cj,
                }];
                let weight = edge_weight(
                    rel,
                    onto,
                    view,
                    &overlap,
                    a.ofd.rhs,
                    assignment.get(a.ofd_idx, ci),
                    assignment.get(b.ofd_idx, cj),
                );
                let e = g.edges.len();
                g.edges.push(Edge {
                    u,
                    v,
                    overlap,
                    weight,
                });
                g.adj[u].push(e);
                g.adj[v].push(e);
            }
        }
    }
    g
}

fn edge_weight(
    rel: &Relation,
    onto: &Ontology,
    view: SenseView<'_>,
    overlap: &[u32],
    rhs: ofd_core::AttrId,
    su: Option<SenseId>,
    sv: Option<SenseId>,
) -> f64 {
    let hu = overlap_histogram(rel, onto, view, overlap, rhs, su);
    let hv = overlap_histogram(rel, onto, view, overlap, rhs, sv);
    emd(&hu, &hv)
}

/// Outlier values of an overlap w.r.t. a sense: `ρ_{Ω,λ}` (§5.2.1).
fn outlier_values(
    rel: &Relation,
    view: SenseView<'_>,
    overlap: &[u32],
    rhs: ofd_core::AttrId,
    sense: Option<SenseId>,
) -> HashSet<ValueId> {
    overlap
        .iter()
        .map(|&t| rel.value(t as usize, rhs))
        .filter(|&v| match sense {
            Some(s) => !view.in_sense(v, s),
            None => true,
        })
        .collect()
}

/// Tuples of a class not covered by a sense: `R(x_λ)`.
fn uncovered_tuples(class: &ClassData, view: SenseView<'_>, sense: Option<SenseId>) -> usize {
    match sense {
        Some(s) => class.size() - view.coverage(class, s),
        None => class.size(),
    }
}

/// One pass of Algorithm 6 over the whole graph: visits nodes in descending
/// summed-EMD order and, for each incident edge heavier than `theta`,
/// evaluates the three alignment options, applying the cheapest when it is
/// a sense reassignment that reduces the edge weight. Returns the number of
/// reassignments performed.
pub fn local_refinement(
    rel: &Relation,
    onto: &Ontology,
    classes: &[OfdClasses],
    assignment: &mut SenseAssignment,
    view: SenseView<'_>,
    theta: f64,
) -> usize {
    local_refinement_guarded(
        rel,
        onto,
        classes,
        assignment,
        view,
        theta,
        &ofd_core::ExecGuard::unlimited(),
    )
}

/// [`local_refinement`] with an execution guard, probed once per visited
/// node and per heavy edge.
///
/// Interrupting mid-pass is safe: each applied reassignment was already
/// individually validated to reduce its edge's weight, so a truncated pass
/// leaves the assignment strictly no worse than it started.
pub fn local_refinement_guarded(
    rel: &Relation,
    onto: &Ontology,
    classes: &[OfdClasses],
    assignment: &mut SenseAssignment,
    view: SenseView<'_>,
    theta: f64,
    guard: &ofd_core::ExecGuard,
) -> usize {
    let graph = build_graph(rel, onto, classes, assignment, view);
    let mut order: Vec<usize> = (0..graph.nodes.len()).collect();
    order.sort_by(|&a, &b| {
        graph
            .node_weight(b)
            .total_cmp(&graph.node_weight(a))
            .then(a.cmp(&b))
    });

    let class_of = |n: NodeRef| -> &ClassData {
        let oc = classes
            .iter()
            .find(|oc| oc.ofd_idx == n.ofd_idx)
            .expect("node references a known OFD");
        &oc.classes[n.class_idx]
    };

    let mut reassigned = 0usize;
    'nodes: for &u in &order {
        if guard.check().is_err() {
            break;
        }
        if graph.node_weight(u) <= theta {
            continue;
        }
        for &ei in graph.incident(u) {
            if guard.check().is_err() {
                break 'nodes;
            }
            let edge = &graph.edges[ei];
            if edge.weight <= theta {
                continue;
            }
            let (nu, nv) = (graph.nodes[edge.u], graph.nodes[edge.v]);
            let su = assignment.get(nu.ofd_idx, nu.class_idx);
            let sv = assignment.get(nv.ofd_idx, nv.class_idx);
            let rhs = classes
                .iter()
                .find(|oc| oc.ofd_idx == nu.ofd_idx)
                .expect("ofd exists")
                .ofd
                .rhs;

            let rho_u = outlier_values(rel, view, &edge.overlap, rhs, su);
            let rho_v = outlier_values(rel, view, &edge.overlap, rhs, sv);

            // Option (i): ontology repair — add each outlier to S.
            let cost_onto = (rho_u.len() + rho_v.len()) as f64;
            // Option (ii): data repair — update tuples carrying outliers.
            let count_tuples = |rho: &HashSet<ValueId>| {
                edge.overlap
                    .iter()
                    .filter(|&&t| rho.contains(&rel.value(t as usize, rhs)))
                    .count()
            };
            let cost_data = (count_tuples(&rho_u) + count_tuples(&rho_v)) as f64;

            // Option (iii): sense reassignment of either endpoint to a
            // candidate sense touching the outliers.
            let mut best_reassign: Option<(usize, SenseId, f64)> = None;
            for (node_pos, node, cur, rho) in
                [(edge.u, nu, su, &rho_u), (edge.v, nv, sv, &rho_v)]
            {
                let class = class_of(node);
                let mut candidates: Vec<SenseId> = Vec::new();
                for &val in rho.iter() {
                    for s in view.senses(val) {
                        if Some(s) != cur && !candidates.contains(&s) {
                            candidates.push(s);
                        }
                    }
                }
                if let Some(other) = if node_pos == edge.u { sv } else { su } {
                    if Some(other) != cur && !candidates.contains(&other) {
                        candidates.push(other);
                    }
                }
                candidates.sort_unstable();
                for cand in candidates {
                    let delta = uncovered_tuples(class, view, Some(cand)) as f64
                        - uncovered_tuples(class, view, cur) as f64;
                    let cost = delta.max(0.0);
                    if best_reassign.is_none_or(|(_, _, c)| cost < c) {
                        best_reassign = Some((node_pos, cand, cost));
                    }
                }
            }

            // Apply a reassignment only when it is the cheapest option and
            // actually reduces the edge weight.
            if let Some((node_pos, cand, cost)) = best_reassign {
                if cost <= cost_onto && cost <= cost_data {
                    let node = graph.nodes[node_pos];
                    let old = assignment.get(node.ofd_idx, node.class_idx);
                    assignment.set(node.ofd_idx, node.class_idx, Some(cand));
                    let new_weight = edge_weight(
                        rel,
                        onto,
                        view,
                        &edge.overlap,
                        rhs,
                        assignment.get(nu.ofd_idx, nu.class_idx),
                        assignment.get(nv.ofd_idx, nv.class_idx),
                    );
                    if new_weight < edge.weight {
                        reassigned += 1;
                    } else {
                        assignment.set(node.ofd_idx, node.class_idx, old);
                    }
                }
            }
        }
    }
    reassigned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::build_classes;
    use crate::sense::assign_all;
    use ofd_core::{Ofd, Relation, SenseIndex};
    use ofd_ontology::OntologyBuilder;

    /// The Figure 5 setting: two OFDs A→C and B→C over a shared consequent,
    /// with senses λ1 = {c2,c1,c3} and λ2 = {c2,c4} (canonical c2).
    fn figure5() -> (Relation, ofd_ontology::Ontology, Vec<Ofd>) {
        let rel = Relation::from_rows(
            ["A", "B", "C"],
            [
                &["a1", "b1", "c1"] as &[&str],
                &["a1", "b1", "c2"],
                &["a1", "b2", "c2"],
                &["a1", "b2", "c2"],
                &["a1", "b2", "c1"],
                &["a1", "b2", "c4"],
                &["a2", "b2", "c3"],
                &["a2", "b3", "c5"],
                &["a2", "b3", "c5"],
            ],
        )
        .unwrap();
        let mut b = OntologyBuilder::new();
        b.concept("λ1").synonyms(["c2", "c1", "c3"]).build().unwrap();
        b.concept("λ2").synonyms(["c2", "c4"]).build().unwrap();
        b.concept("λ3").synonyms(["c5"]).build().unwrap();
        let onto = b.finish().unwrap();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["A"], "C").unwrap(),
            Ofd::synonym_named(rel.schema(), &["B"], "C").unwrap(),
        ];
        (rel, onto, sigma)
    }

    #[test]
    fn graph_edges_connect_overlapping_classes_of_shared_consequent() {
        let (rel, onto, sigma) = figure5();
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let g = build_graph(&rel, &onto, &classes, &assignment, view);
        assert!(!g.edges.is_empty());
        for e in &g.edges {
            let (nu, nv) = (g.nodes[e.u], g.nodes[e.v]);
            assert_ne!(nu.ofd_idx, nv.ofd_idx, "edges span different OFDs");
            assert!(!e.overlap.is_empty());
            assert!(e.weight >= 0.0);
        }
    }

    #[test]
    fn same_sense_on_both_ends_gives_zero_weight() {
        let (rel, onto, sigma) = figure5();
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let mut assignment = SenseAssignment::empty(&classes);
        let lambda1 = onto.names("c1")[0];
        for oc in &classes {
            for ci in 0..oc.classes.len() {
                assignment.set(oc.ofd_idx, ci, Some(lambda1));
            }
        }
        let g = build_graph(&rel, &onto, &classes, &assignment, view);
        for e in &g.edges {
            assert_eq!(e.weight, 0.0, "identical senses align distributions");
        }
    }

    #[test]
    fn refinement_reduces_or_preserves_total_weight() {
        let (rel, onto, sigma) = figure5();
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let mut assignment = assign_all(&classes, view);
        let before: f64 = build_graph(&rel, &onto, &classes, &assignment, view)
            .edges
            .iter()
            .map(|e| e.weight)
            .sum();
        local_refinement(&rel, &onto, &classes, &mut assignment, view, 0.0);
        let after: f64 = build_graph(&rel, &onto, &classes, &assignment, view)
            .edges
            .iter()
            .map(|e| e.weight)
            .sum();
        assert!(after <= before + 1e-9, "refinement must not worsen ({before} -> {after})");
    }

    #[test]
    fn high_theta_means_no_refinement() {
        let (rel, onto, sigma) = figure5();
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let mut assignment = assign_all(&classes, view);
        let snapshot = assignment.clone();
        let n = local_refinement(&rel, &onto, &classes, &mut assignment, view, 1e12);
        assert_eq!(n, 0);
        assert_eq!(assignment, snapshot);
    }

    #[test]
    fn refinement_reassigns_to_align_interpretations() {
        // Example 5.4's dynamics: two overlapping classes start on
        // different senses; a sense reassignment is the cheapest of the
        // three options and reduces the edge weight, so it is applied.
        let rel = Relation::from_rows(
            ["A", "B", "C"],
            [
                &["a1", "b1", "c1"] as &[&str],
                &["a1", "b1", "c2"],
                &["a1", "b1", "c2"],
                &["a1", "b2", "c2"],
                &["a1", "b2", "c4"],
                &["a1", "b2", "c4"],
                &["a1", "b2", "c4"],
            ],
        )
        .unwrap();
        let mut b = OntologyBuilder::new();
        let l1 = b.concept("λ1").synonyms(["c2", "c1"]).build().unwrap();
        let l2 = b.concept("λ2").synonyms(["c2", "c4"]).build().unwrap();
        let onto = b.finish().unwrap();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["A"], "C").unwrap(),
            Ofd::synonym_named(rel.schema(), &["B"], "C").unwrap(),
        ];
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let mut assignment = assign_all(&classes, view);
        // Initial: the A-class {c1,c2×3,c4×3} is covered best by λ2
        // (6 of 7 tuples); the B=b1 class {c1,c2,c2} fully by λ1.
        assert_eq!(assignment.get(0, 0), Some(l2));
        assert_eq!(assignment.get(1, 0), Some(l1));
        let before: f64 = build_graph(&rel, &onto, &classes, &assignment, view)
            .edges
            .iter()
            .map(|e| e.weight)
            .sum();
        assert!(before > 0.0, "misaligned senses must weigh something");
        let n = local_refinement(&rel, &onto, &classes, &mut assignment, view, 0.0);
        assert!(n >= 1, "a reassignment must fire");
        let after: f64 = build_graph(&rel, &onto, &classes, &assignment, view)
            .edges
            .iter()
            .map(|e| e.weight)
            .sum();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn node_weight_sums_incident_edges() {
        let (rel, onto, sigma) = figure5();
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let g = build_graph(&rel, &onto, &classes, &assignment, view);
        for n in 0..g.nodes.len() {
            let direct: f64 = g.incident(n).iter().map(|&e| g.edges[e].weight).sum();
            assert!((g.node_weight(n) - direct).abs() < 1e-12);
        }
    }
}
