//! Conflict graphs and data repair (§6.2): violating tuple pairs, the
//! 2-approximate minimum vertex cover, and the Beskales-style `RepairData`
//! loop that repairs covered tuples and regenerates the graph.

use std::collections::{HashMap, HashSet};

use ofd_core::{Ofd, Relation, SenseIndex, ValueId};
use ofd_ontology::Ontology;

use crate::classes::{build_classes, OfdClasses};
use crate::sense::{SenseAssignment, SenseView};

/// One conflicting tuple pair w.r.t. an OFD under the class's assigned
/// sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// First tuple (smaller id).
    pub t1: u32,
    /// Second tuple.
    pub t2: u32,
    /// Index of the violated OFD in Σ.
    pub ofd_idx: usize,
    /// Class index within that OFD.
    pub class_idx: usize,
}

/// One applied cell repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRepair {
    /// Row repaired.
    pub row: usize,
    /// Attribute repaired.
    pub attr: ofd_core::AttrId,
    /// Previous cell text.
    pub old: String,
    /// New cell text.
    pub new: String,
}

/// Builds the conflict graph: tuples `t_i, t_j` of the same class conflict
/// when their consequent values differ and are not both inside the class's
/// assigned sense (reproducing Figure 7 / Table 6 on the running example).
pub fn conflict_graph(
    rel: &Relation,
    classes: &[OfdClasses],
    assignment: &SenseAssignment,
    view: SenseView<'_>,
) -> Vec<Conflict> {
    let mut out = Vec::new();
    for oc in classes {
        let col = rel.column(oc.ofd.rhs);
        for (ci, class) in oc.classes.iter().enumerate() {
            let sense = assignment.get(oc.ofd_idx, ci);
            let compatible = |a: ValueId, b: ValueId| -> bool {
                a == b
                    || match sense {
                        Some(s) => view.in_sense(a, s) && view.in_sense(b, s),
                        None => false,
                    }
            };
            for (i, &t1) in class.tuples.iter().enumerate() {
                for &t2 in &class.tuples[i + 1..] {
                    let (v1, v2) = (col[t1 as usize], col[t2 as usize]);
                    if !compatible(v1, v2) {
                        out.push(Conflict {
                            t1,
                            t2,
                            ofd_idx: oc.ofd_idx,
                            class_idx: ci,
                        });
                    }
                }
            }
        }
    }
    out
}

/// A vertex cover of the conflict graph, at most twice the optimum: the
/// smaller of a maximal-matching cover (the classical 2-approximation) and
/// a greedy max-degree cover (which reproduces Table 6's single-vertex
/// covers on stars).
pub fn vertex_cover(conflicts: &[Conflict]) -> Vec<u32> {
    if conflicts.is_empty() {
        return Vec::new();
    }
    // Maximal matching cover.
    let mut matched: HashSet<u32> = HashSet::new();
    for c in conflicts {
        if !matched.contains(&c.t1) && !matched.contains(&c.t2) {
            matched.insert(c.t1);
            matched.insert(c.t2);
        }
    }

    // Greedy max-degree cover.
    let mut degree: HashMap<u32, usize> = HashMap::new();
    for c in conflicts {
        *degree.entry(c.t1).or_insert(0) += 1;
        *degree.entry(c.t2).or_insert(0) += 1;
    }
    let mut uncovered: Vec<&Conflict> = conflicts.iter().collect();
    let mut greedy: HashSet<u32> = HashSet::new();
    while !uncovered.is_empty() {
        let (&best, _) = degree
            .iter()
            .max_by_key(|&(t, d)| (*d, std::cmp::Reverse(*t)))
            .expect("non-empty degree map");
        greedy.insert(best);
        uncovered.retain(|c| {
            let covered = c.t1 == best || c.t2 == best;
            if covered {
                *degree.get_mut(&c.t1).expect("endpoint tracked") -= 1;
                *degree.get_mut(&c.t2).expect("endpoint tracked") -= 1;
            }
            !covered
        });
        degree.remove(&best);
    }

    let mut cover: Vec<u32> = if greedy.len() <= matched.len() {
        greedy.into_iter().collect()
    } else {
        matched.into_iter().collect()
    };
    cover.sort_unstable();
    cover
}

/// `δ_P`: the paper's upper bound on the data repairs needed —
/// `α × |C_2opt|` with `α = min{|Z|, |Σ|}` (§6.2).
pub fn delta_p(conflicts: &[Conflict], sigma: &[Ofd]) -> usize {
    let distinct_consequents: HashSet<_> = sigma.iter().map(|o| o.rhs).collect();
    let alpha = distinct_consequents.len().min(sigma.len());
    alpha * vertex_cover(conflicts).len()
}

/// Repairs the relation until no conflicts remain (or `max_rounds` /
/// `max_repairs` is hit). Each round rewrites the *outlier* tuples of every
/// violating class — the tuples whose consequent lies outside the class's
/// assigned sense (resp. differs from the majority when no sense is
/// assigned). These are exactly the vertices a minimum cover of the class's
/// conflict graph must contain (every edge has an outlier endpoint), and
/// all of them must change for the class to satisfy the OFD. Repairing for
/// one OFD can disturb another that shares the consequent, so the loop
/// regenerates the conflict graph between rounds.
#[allow(clippy::too_many_arguments)]
pub fn repair_data(
    rel: &mut Relation,
    onto: &Ontology,
    sigma: &[Ofd],
    assignment: &SenseAssignment,
    base_index: &mut SenseIndex,
    overlay: &HashSet<(ValueId, ofd_ontology::SenseId)>,
    max_repairs: usize,
    max_rounds: usize,
) -> (Vec<CellRepair>, bool) {
    repair_data_guarded(
        rel,
        onto,
        sigma,
        assignment,
        base_index,
        overlay,
        max_repairs,
        max_rounds,
        &ofd_core::ExecGuard::unlimited(),
    )
}

/// [`repair_data`] with an execution guard, probed once per round and once
/// per violating class.
///
/// Every repair already applied when the guard trips is individually sound
/// — it rewrote an outlier cell to its class's repair target — so an
/// interrupted run leaves the relation partially repaired, never corrupted;
/// the `bool` is `false` because the remaining violations were not resolved.
#[allow(clippy::too_many_arguments)]
pub fn repair_data_guarded(
    rel: &mut Relation,
    onto: &Ontology,
    sigma: &[Ofd],
    assignment: &SenseAssignment,
    base_index: &mut SenseIndex,
    overlay: &HashSet<(ValueId, ofd_ontology::SenseId)>,
    max_repairs: usize,
    max_rounds: usize,
    guard: &ofd_core::ExecGuard,
) -> (Vec<CellRepair>, bool) {
    let mut repairs: Vec<CellRepair> = Vec::new();
    for _round in 0..max_rounds {
        if guard.check().is_err() {
            return (repairs, false);
        }
        let classes = build_classes(rel, sigma);
        let view = SenseView {
            base: base_index,
            overlay,
        };
        let mut any_violation = false;
        let mut progressed = false;
        for oc in &classes {
            for (ci, class) in oc.classes.iter().enumerate() {
                if guard.check().is_err() {
                    return (repairs, false);
                }
                let sense = assignment.get(oc.ofd_idx, ci);
                let Some(plan) = class_repair_plan(class, sense, view) else {
                    continue;
                };
                any_violation = true;
                let RepairTarget::Value(target_value) = plan;
                let target = rel.pool().resolve(target_value).to_owned();
                for &t in &class.tuples {
                    let v = rel.value(t as usize, oc.ofd.rhs);
                    let is_outlier = match sense {
                        Some(s) if view.in_sense(target_value, s) => {
                            !view.in_sense(v, s)
                        }
                        // Majority-style repair: everything except the
                        // target value moves.
                        _ => v != target_value,
                    };
                    if !is_outlier {
                        continue;
                    }
                    if repairs.len() >= max_repairs {
                        return (repairs, false);
                    }
                    let old = rel.text(t as usize, oc.ofd.rhs).to_owned();
                    if old == target {
                        continue;
                    }
                    rel.set(t as usize, oc.ofd.rhs, &target)
                        .expect("repair in bounds");
                    progressed = true;
                    repairs.push(CellRepair {
                        row: t as usize,
                        attr: oc.ofd.rhs,
                        old,
                        new: target.clone(),
                    });
                }
            }
        }
        base_index.extend_synonym(rel, onto);
        if !any_violation {
            return (repairs, true);
        }
        if !progressed {
            break;
        }
    }
    // Out of rounds: report whether we ended clean.
    let classes = build_classes(rel, sigma);
    let view = SenseView {
        base: base_index,
        overlay,
    };
    let clean = classes.iter().all(|oc| {
        oc.classes.iter().enumerate().all(|(ci, class)| {
            class_repair_plan(class, assignment.get(oc.ofd_idx, ci), view).is_none()
        })
    });
    (repairs, clean)
}

/// What a violating class should be rewritten toward: an existing class
/// value — the most frequent in-sense value, or the majority value for
/// majority-style repairs (§6.2's candidate-set rule restricted to
/// dom(A), which always suffices since violating classes have ≥2 values).
enum RepairTarget {
    /// The repair value.
    Value(ValueId),
}

/// Returns `None` when the class satisfies its OFD under the assigned
/// sense; otherwise the repair target (§6.2's candidate-set rule).
fn class_repair_plan(
    class: &crate::classes::ClassData,
    sense: Option<ofd_ontology::SenseId>,
    view: SenseView<'_>,
) -> Option<RepairTarget> {
    if class.value_counts.len() <= 1 {
        return None; // single distinct value: satisfied
    }
    match sense {
        Some(s) => {
            let in_sense: Vec<&(ValueId, u32)> = class
                .value_counts
                .iter()
                .filter(|&&(v, _)| view.in_sense(v, s))
                .collect();
            let total: u32 = class.value_counts.iter().map(|&(_, c)| c).sum();
            let covered: u32 = in_sense.iter().map(|&&(_, c)| c).sum();
            if covered == total {
                return None; // every value inside the sense: satisfied
            }
            match in_sense.first() {
                // Most frequent in-sense value (value_counts are sorted).
                Some(&&(v, _)) => Some(RepairTarget::Value(v)),
                // Nothing in the sense: majority repair.
                None => Some(RepairTarget::Value(class.value_counts[0].0)),
            }
        }
        None => Some(RepairTarget::Value(class.value_counts[0].0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sense::assign_all;
    use ofd_core::table1_updated;
    use ofd_ontology::samples;

    fn paper_setup() -> (
        Relation,
        Ontology,
        Vec<Ofd>,
        SenseIndex,
    ) {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ];
        let index = SenseIndex::synonym(&rel, &onto);
        (rel, onto, sigma, index)
    }

    #[test]
    fn reproduces_figure7_conflict_graph() {
        // Table 6, first row: under the FDA sense, the headache class
        // {t8:cartia, t9:ASA, t10:tiazac, t11:adizem} has exactly the edges
        // (t8,t9), (t8,t11), (t9,t10), (t9,t11), (t10,t11).
        let (rel, onto, sigma, index) = paper_setup();
        let classes = build_classes(&rel, &sigma);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let mut assignment = SenseAssignment::empty(&classes);
        // Force the FDA diltiazem sense on the headache class (index 2).
        let dilt = onto.names("tiazac")[0];
        assignment.set(1, 2, Some(dilt));
        let conflicts: Vec<(u32, u32)> = conflict_graph(&rel, &classes, &assignment, view)
            .into_iter()
            .filter(|c| c.ofd_idx == 1 && c.class_idx == 2)
            .map(|c| (c.t1, c.t2))
            .collect();
        // Tuples t8..t11 are rows 7..10.
        assert_eq!(
            conflicts,
            vec![(7, 8), (7, 10), (8, 9), (8, 10), (9, 10)],
            "paper's five conflict edges"
        );
    }

    #[test]
    fn table6_asa_repair_leaves_a_star_covered_by_t11() {
        // Adding ASA under FDA leaves edges (t8,t11), (t9,t11), (t10,t11);
        // the cover is the single vertex t11 and δ_P = 2.
        let (rel, onto, sigma, index) = paper_setup();
        let classes = build_classes(&rel, &sigma);
        let dilt = onto.names("tiazac")[0];
        let asa = rel.pool().get("ASA").unwrap();
        let mut overlay = HashSet::new();
        overlay.insert((asa, dilt));
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let mut assignment = SenseAssignment::empty(&classes);
        assignment.set(1, 2, Some(dilt));
        let conflicts: Vec<Conflict> = conflict_graph(&rel, &classes, &assignment, view)
            .into_iter()
            .filter(|c| c.ofd_idx == 1 && c.class_idx == 2)
            .collect();
        let pairs: Vec<(u32, u32)> = conflicts.iter().map(|c| (c.t1, c.t2)).collect();
        assert_eq!(pairs, vec![(7, 10), (8, 10), (9, 10)]);
        let cover = vertex_cover(&conflicts);
        assert_eq!(cover, vec![10], "the star center t11");
        assert_eq!(delta_p(&conflicts, &sigma), 2, "α=2 × |cover|=1");
    }

    #[test]
    fn vertex_cover_is_a_cover_and_small() {
        let conflicts = vec![
            Conflict { t1: 0, t2: 1, ofd_idx: 0, class_idx: 0 },
            Conflict { t1: 1, t2: 2, ofd_idx: 0, class_idx: 0 },
            Conflict { t1: 2, t2: 3, ofd_idx: 0, class_idx: 0 },
        ];
        let cover = vertex_cover(&conflicts);
        for c in &conflicts {
            assert!(cover.contains(&c.t1) || cover.contains(&c.t2));
        }
        // Optimum is 2 ({1, 2}); 2-approximation allows at most 4.
        assert!(cover.len() <= 4);
        assert!(cover.len() >= 2);
    }

    #[test]
    fn repair_data_fixes_the_paper_example() {
        let (mut rel, onto, sigma, mut index) = paper_setup();
        let classes = build_classes(&rel, &sigma);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let (repairs, ok) = repair_data(
            &mut rel,
            &onto,
            &sigma,
            &assignment,
            &mut index,
            &overlay,
            usize::MAX,
            10,
        );
        assert!(ok, "repair must converge");
        assert!(!repairs.is_empty());
        // All OFDs satisfied afterwards.
        let v = ofd_core::Validator::new(&rel, &onto);
        for ofd in &sigma {
            assert!(v.check(ofd).satisfied(), "{}", ofd.display(rel.schema()));
        }
    }

    #[test]
    fn repair_budget_is_respected() {
        let (mut rel, onto, sigma, mut index) = paper_setup();
        let classes = build_classes(&rel, &sigma);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let (repairs, ok) = repair_data(
            &mut rel,
            &onto,
            &sigma,
            &assignment,
            &mut index,
            &overlay,
            1,
            10,
        );
        assert!(repairs.len() <= 1);
        assert!(!ok, "budget of one repair cannot clean the example");
    }

    mod cover_properties {
        use super::*;
        use proptest::prelude::*;

        /// Minimum vertex cover by exhaustive search (≤ 10 vertices).
        fn optimal_cover_size(conflicts: &[Conflict]) -> usize {
            let mut vertices: Vec<u32> = conflicts
                .iter()
                .flat_map(|c| [c.t1, c.t2])
                .collect();
            vertices.sort_unstable();
            vertices.dedup();
            let n = vertices.len();
            assert!(n <= 12, "exhaustive cover only for tiny graphs");
            (0u32..(1 << n))
                .filter(|mask| {
                    conflicts.iter().all(|c| {
                        let i = vertices.binary_search(&c.t1).expect("tracked") as u32;
                        let j = vertices.binary_search(&c.t2).expect("tracked") as u32;
                        mask & (1 << i) != 0 || mask & (1 << j) != 0
                    })
                })
                .map(|mask| mask.count_ones() as usize)
                .min()
                .unwrap_or(0)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The cover is valid and at most twice the optimum.
            #[test]
            fn cover_is_valid_and_2_approximate(
                edges in prop::collection::vec((0u32..8, 0u32..8), 0..14),
            ) {
                let conflicts: Vec<Conflict> = edges
                    .into_iter()
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| Conflict {
                        t1: a.min(b),
                        t2: a.max(b),
                        ofd_idx: 0,
                        class_idx: 0,
                    })
                    .collect();
                let cover = vertex_cover(&conflicts);
                for c in &conflicts {
                    prop_assert!(
                        cover.contains(&c.t1) || cover.contains(&c.t2),
                        "edge ({}, {}) uncovered",
                        c.t1,
                        c.t2
                    );
                }
                let opt = optimal_cover_size(&conflicts);
                prop_assert!(cover.len() <= 2 * opt || conflicts.is_empty());
            }
        }
    }

    #[test]
    fn empty_conflicts_mean_no_repairs() {
        let rel = ofd_core::table1();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        let mut index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let classes = build_classes(&rel, &sigma);
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let mut working = rel.clone();
        let (repairs, ok) = repair_data(
            &mut working,
            &onto,
            &sigma,
            &assignment,
            &mut index,
            &overlay,
            usize::MAX,
            5,
        );
        assert!(ok);
        assert!(repairs.is_empty());
        assert_eq!(working.cell_distance(&rel).unwrap(), 0);
    }
}
