//! Checkpoint/resume for the OFDClean pipeline.
//!
//! The orchestrator's phases — sense assignment + refinement, ontology
//! beam search, data repair — each end with a snapshot of the cumulative
//! state (stream `clean`, sequence = completed phase number). A resumed
//! run restores the newest valid snapshot and skips the phases it
//! covers; the final verification always re-runs against the actual
//! materialized state, so `satisfied` is never stale.
//!
//! Serialized state is ontology/relation-relative: senses go by index
//! (stable because the fingerprint pins the exact ontology) and values
//! go by their string, re-interned on load. Data repairs carry the full
//! `(row, attr, old, new)` record, so replaying them on the input
//! relation reproduces the repaired instance byte-for-byte.

use ofd_core::snapshot::{hash_ontology, hash_relation};
use ofd_core::{AttrId, Fingerprint, Obs, OfdKind, Relation, ValueId};
use ofd_ontology::{Ontology, SenseId};
use serde_json::{json, Value};

use crate::conflict::CellRepair;
use crate::ofdclean::OfdCleanConfig;
use crate::ontrepair::{OntologyRepairPlan, ParetoPoint};
use crate::sense::SenseAssignment;

pub use ofd_core::CheckpointOptions;

/// Snapshot stream name inside the checkpoint directory.
pub(crate) const STREAM: &str = "clean";

/// Hash of everything that determines the cleaning result: the instance,
/// the (possibly θ-expanded) ontology, Σ, and the result-affecting knobs.
pub(crate) fn fingerprint(
    rel: &Relation,
    onto: &Ontology,
    sigma: &[ofd_core::Ofd],
    config: &OfdCleanConfig,
) -> u64 {
    let mut fp = Fingerprint::new();
    hash_relation(&mut fp, rel);
    hash_ontology(&mut fp, onto);
    fp.update_u64(sigma.len() as u64);
    for ofd in sigma {
        fp.update_u64(ofd.lhs.bits());
        fp.update_u64(ofd.rhs.index() as u64);
        match ofd.kind {
            OfdKind::Synonym => {
                fp.update_u64(1);
            }
            OfdKind::Inheritance { theta } => {
                fp.update_u64(2).update_u64(theta as u64);
            }
        }
    }
    fp.update_u64(config.theta.to_bits());
    fp.update_u64(config.beam.map_or(u64::MAX, |b| b as u64));
    fp.update_u64(config.tau.to_bits());
    fp.update_u64(config.max_ontology_repairs.map_or(u64::MAX, |m| m as u64));
    fp.update_u64(config.max_rounds as u64);
    fp.update_u64(config.refinement_passes as u64);
    fp.finish()
}

fn adds_to_json(rel: &Relation, adds: &[(ValueId, SenseId)]) -> Value {
    Value::Array(
        adds.iter()
            .map(|&(v, s)| json!([rel.pool().resolve(v), s.index() as u64]))
            .collect(),
    )
}

fn adds_from_json(rel: &Relation, v: &Value) -> Option<Vec<(ValueId, SenseId)>> {
    let mut out = Vec::new();
    for pair in v.as_array()? {
        let pair = pair.as_array()?;
        let value = rel.pool().get(pair.first()?.as_str()?)?;
        out.push((value, SenseId::from_index(pair.get(1)?.as_u64()? as usize)));
    }
    Some(out)
}

fn point_to_json(rel: &Relation, p: &ParetoPoint) -> Value {
    json!({
        "k": p.k as u64,
        "delta_p": p.delta_p as u64,
        "cover": p.cover as u64,
        "adds": adds_to_json(rel, &p.adds),
    })
}

fn point_from_json(rel: &Relation, v: &Value) -> Option<ParetoPoint> {
    Some(ParetoPoint {
        k: v.get("k")?.as_u64()? as usize,
        delta_p: v.get("delta_p")?.as_u64()? as usize,
        cover: v.get("cover")?.as_u64()? as usize,
        adds: adds_from_json(rel, v.get("adds")?)?,
    })
}

/// Serializes the cumulative state after `phase` (1 = refine, 2 = beam
/// search, 3 = data repair).
#[allow(clippy::too_many_arguments)]
pub(crate) fn snapshot_body(
    fp: u64,
    phase: u64,
    rel: &Relation,
    assignment: &SenseAssignment,
    reassignments: usize,
    plan: Option<&OntologyRepairPlan>,
    repairs: Option<&[CellRepair]>,
    obs: &Obs,
) -> Value {
    let table: Vec<Value> = assignment
        .table()
        .iter()
        .map(|row| {
            Value::Array(
                row.iter()
                    .map(|s| match s {
                        Some(id) => Value::from(id.index() as u64),
                        None => Value::Null,
                    })
                    .collect(),
            )
        })
        .collect();
    let plan_json = match plan {
        Some(p) => json!({
            "candidates": adds_to_json(rel, &p.candidates),
            "beam": p.beam as u64,
            "frontier": Value::Array(p.frontier.iter().map(|pt| point_to_json(rel, pt)).collect()),
            "pareto": Value::Array(p.pareto.iter().map(|pt| point_to_json(rel, pt)).collect()),
        }),
        None => Value::Null,
    };
    let repairs_json = match repairs {
        Some(rs) => Value::Array(
            rs.iter()
                .map(|r| {
                    json!({
                        "row": r.row as u64,
                        "attr": r.attr.index() as u64,
                        "old": r.old.as_str(),
                        "new": r.new.as_str(),
                    })
                })
                .collect(),
        ),
        None => Value::Null,
    };
    let counters: Vec<Value> = obs
        .snapshot()
        .counters
        .into_iter()
        .map(|(name, v)| json!([name, v]))
        .collect();
    json!({
        "version": 1u64,
        "kind": "clean",
        "fingerprint": fp,
        "phase": phase,
        "assignment": table,
        "reassignments": reassignments as u64,
        "plan": plan_json,
        "repairs": repairs_json,
        "counters": counters,
    })
}

/// State restored from a clean snapshot.
pub(crate) struct CleanResume {
    /// Last completed phase (1..=3).
    pub phase: u64,
    pub assignment: SenseAssignment,
    pub reassignments: usize,
    /// Present when `phase >= 2`.
    pub plan: Option<OntologyRepairPlan>,
    /// Present when `phase >= 3`; replay on the input to reproduce `I′`.
    pub repairs: Option<Vec<CellRepair>>,
    /// Obs counter accumulators at snapshot time.
    pub counters: Vec<(String, u64)>,
}

/// Validates and decodes a clean snapshot body; `None` falls back to a
/// fresh run.
pub(crate) fn restore(body: &Value, fp: u64, rel: &Relation) -> Option<CleanResume> {
    if body.get("version")?.as_u64()? != 1 || body.get("kind")?.as_str()? != "clean" {
        return None;
    }
    if body.get("fingerprint")?.as_u64()? != fp {
        return None;
    }
    let phase = body.get("phase")?.as_u64()?;
    if !(1..=3).contains(&phase) {
        return None;
    }
    let mut table = Vec::new();
    for row in body.get("assignment")?.as_array()? {
        let mut senses = Vec::new();
        for cell in row.as_array()? {
            senses.push(match cell {
                Value::Null => None,
                other => Some(SenseId::from_index(other.as_u64()? as usize)),
            });
        }
        table.push(senses);
    }
    let plan = match body.get("plan")? {
        Value::Null => None,
        p => Some(OntologyRepairPlan {
            candidates: adds_from_json(rel, p.get("candidates")?)?,
            beam: p.get("beam")?.as_u64()? as usize,
            frontier: p
                .get("frontier")?
                .as_array()?
                .iter()
                .map(|pt| point_from_json(rel, pt))
                .collect::<Option<Vec<_>>>()?,
            pareto: p
                .get("pareto")?
                .as_array()?
                .iter()
                .map(|pt| point_from_json(rel, pt))
                .collect::<Option<Vec<_>>>()?,
        }),
    };
    let repairs = match body.get("repairs")? {
        Value::Null => None,
        rs => {
            let mut out = Vec::new();
            for r in rs.as_array()? {
                let row = r.get("row")?.as_u64()? as usize;
                let attr_idx = r.get("attr")?.as_u64()? as usize;
                if row >= rel.n_rows() || attr_idx >= rel.n_attrs() {
                    return None;
                }
                out.push(CellRepair {
                    row,
                    attr: AttrId::from_index(attr_idx),
                    old: r.get("old")?.as_str()?.to_string(),
                    new: r.get("new")?.as_str()?.to_string(),
                });
            }
            Some(out)
        }
    };
    // Cross-field consistency: the phase implies which sections exist.
    if (phase >= 2) != plan.is_some() || (phase >= 3) != repairs.is_some() {
        return None;
    }
    let mut counters = Vec::new();
    for c in body.get("counters")?.as_array()? {
        let pair = c.as_array()?;
        counters.push((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_u64()?));
    }
    Some(CleanResume {
        phase,
        assignment: SenseAssignment::from_table(table),
        reassignments: body.get("reassignments")?.as_u64()? as usize,
        plan,
        repairs,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1_updated, Ofd};
    use ofd_ontology::samples;

    #[test]
    fn fingerprint_tracks_sigma_and_config() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        let base = fingerprint(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert_eq!(
            base,
            fingerprint(&rel, &onto, &sigma, &OfdCleanConfig::default())
        );
        let other_sigma =
            vec![Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap()];
        assert_ne!(
            base,
            fingerprint(&rel, &onto, &other_sigma, &OfdCleanConfig::default())
        );
        let tau0 = OfdCleanConfig {
            tau: 0.0,
            ..OfdCleanConfig::default()
        };
        assert_ne!(base, fingerprint(&rel, &onto, &sigma, &tau0));
    }

    #[test]
    fn phase_bodies_round_trip() {
        let rel = table1_updated();
        let assignment = SenseAssignment::from_table(vec![
            vec![Some(SenseId::from_index(2)), None],
            vec![None],
        ]);
        let plan = OntologyRepairPlan {
            candidates: vec![(rel.pool().get("ASA").unwrap(), SenseId::from_index(1))],
            beam: 3,
            frontier: vec![ParetoPoint {
                k: 0,
                delta_p: 2,
                cover: 5,
                adds: vec![],
            }],
            pareto: vec![ParetoPoint {
                k: 1,
                delta_p: 0,
                cover: 7,
                adds: vec![(rel.pool().get("ASA").unwrap(), SenseId::from_index(1))],
            }],
        };
        let repairs = vec![CellRepair {
            row: 3,
            attr: AttrId::from_index(1),
            old: "USA".into(),
            new: "America".into(),
        }];
        let body = snapshot_body(
            9,
            3,
            &rel,
            &assignment,
            4,
            Some(&plan),
            Some(&repairs),
            &Obs::disabled(),
        );
        let text = serde_json::to_string(&body).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let rs = restore(&parsed, 9, &rel).expect("restores");
        assert_eq!(rs.phase, 3);
        assert_eq!(rs.assignment, assignment);
        assert_eq!(rs.reassignments, 4);
        let got_plan = rs.plan.unwrap();
        assert_eq!(got_plan.candidates, plan.candidates);
        assert_eq!(got_plan.beam, 3);
        assert_eq!(got_plan.pareto[0].adds, plan.pareto[0].adds);
        assert_eq!(rs.repairs.unwrap(), repairs);
        // Wrong fingerprint is rejected.
        assert!(restore(&parsed, 10, &rel).is_none());
    }

    #[test]
    fn phase_and_sections_must_agree() {
        let rel = table1_updated();
        let assignment = SenseAssignment::from_table(vec![vec![None]]);
        // Claims phase 2 but has no plan section.
        let body = snapshot_body(1, 2, &rel, &assignment, 0, None, None, &Obs::disabled());
        assert!(restore(&body, 1, &rel).is_none());
        let body1 = snapshot_body(1, 1, &rel, &assignment, 0, None, None, &Obs::disabled());
        assert!(restore(&body1, 1, &rel).is_some());
    }
}
