//! Precision / recall metrics for repairs, sense assignment and ontology
//! repair, computed against the generator's ground truth (all inputs are
//! plain core/ontology types, so the crate stays independent of
//! `ofd-datagen`).

use std::collections::HashMap;

use ofd_core::{AttrId, Relation, ValueId};
use ofd_ontology::{Ontology, SenseId};

use crate::classes::OfdClasses;
use crate::sense::SenseAssignment;

/// A precision/recall pair with its F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of produced items that are correct.
    pub precision: f64,
    /// Fraction of expected items that were produced.
    pub recall: f64,
}

impl PrecisionRecall {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Whether two cell texts are *semantically* equal under the reference
/// ontology: identical strings or synonyms under some shared sense.
pub fn semantically_equal(onto: &Ontology, a: &str, b: &str) -> bool {
    a == b || !onto.common_sense([a, b]).is_empty()
}

/// Repair quality against the clean instance and reference ontology.
///
/// A changed cell counts as **correct** only when it was genuinely dirty
/// (differed semantically from the clean instance) and is now semantically
/// equal to the clean value — repairing a clean cell to another synonym is
/// a false positive (the wasted updates traditional-FD cleaners pay,
/// Exp-5/Exp-14). Recall is the fraction of injected errors restored
/// (semantically).
pub fn repair_quality(
    dirty: &Relation,
    repaired: &Relation,
    clean: &Relation,
    injected: &[(usize, AttrId)],
    onto: &Ontology,
) -> PrecisionRecall {
    let mut changed = 0usize;
    let mut correct = 0usize;
    for attr in dirty.schema().attrs() {
        for row in 0..dirty.n_rows() {
            if repaired.text(row, attr) != dirty.text(row, attr) {
                changed += 1;
                let was_dirty =
                    !semantically_equal(onto, dirty.text(row, attr), clean.text(row, attr));
                let now_clean =
                    semantically_equal(onto, repaired.text(row, attr), clean.text(row, attr));
                if was_dirty && now_clean {
                    correct += 1;
                }
            }
        }
    }
    let mut restored = 0usize;
    for &(row, attr) in injected {
        if semantically_equal(onto, repaired.text(row, attr), clean.text(row, attr)) {
            restored += 1;
        }
    }
    PrecisionRecall {
        precision: if changed == 0 { 1.0 } else { correct as f64 / changed as f64 },
        recall: if injected.is_empty() {
            1.0
        } else {
            restored as f64 / injected.len() as f64
        },
    }
}

/// Sense-assignment quality against the generator's true senses, keyed by
/// `(OFD index, antecedent value signature)`. Recall is the fraction of
/// truth-covered classes that received *any* sense (the paper reports 100%);
/// precision is the fraction of those whose sense matches the truth.
pub fn sense_quality(
    rel: &Relation,
    classes: &[OfdClasses],
    assignment: &SenseAssignment,
    truth: &HashMap<(usize, Vec<ValueId>), SenseId>,
) -> PrecisionRecall {
    let mut with_truth = 0usize;
    let mut assigned = 0usize;
    let mut correct = 0usize;
    for oc in classes {
        for (ci, class) in oc.classes.iter().enumerate() {
            let sig = class.lhs_signature(rel, &oc.ofd);
            let Some(&expected) = truth.get(&(oc.ofd_idx, sig)) else {
                continue;
            };
            with_truth += 1;
            if let Some(s) = assignment.get(oc.ofd_idx, ci) {
                assigned += 1;
                if s == expected {
                    correct += 1;
                }
            }
        }
    }
    PrecisionRecall {
        precision: if assigned == 0 {
            1.0
        } else {
            correct as f64 / assigned as f64
        },
        recall: if with_truth == 0 {
            1.0
        } else {
            assigned as f64 / with_truth as f64
        },
    }
}

/// Ontology-repair quality against the degradation ground truth: the
/// `(sense, value)` pairs removed from the full ontology.
pub fn ontology_quality(
    rel: &Relation,
    adds: &[(ValueId, SenseId)],
    removed: &[(SenseId, String)],
) -> PrecisionRecall {
    let mut correct = 0usize;
    for &(v, s) in adds {
        let text = rel.pool().resolve(v);
        if removed.iter().any(|(rs, rv)| *rs == s && rv == text) {
            correct += 1;
        }
    }
    PrecisionRecall {
        precision: if adds.is_empty() {
            1.0
        } else {
            correct as f64 / adds.len() as f64
        },
        recall: if removed.is_empty() {
            1.0
        } else {
            correct as f64 / removed.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1, table1_updated};

    #[test]
    fn f1_of_perfect_scores() {
        let pr = PrecisionRecall {
            precision: 1.0,
            recall: 1.0,
        };
        assert_eq!(pr.f1(), 1.0);
        let zero = PrecisionRecall {
            precision: 0.0,
            recall: 0.0,
        };
        assert_eq!(zero.f1(), 0.0);
    }

    #[test]
    fn repair_quality_counts_restorations() {
        let clean = table1();
        let dirty = table1_updated();
        let onto = ofd_ontology::samples::combined_paper_ontology();
        let med = clean.schema().attr("MED").unwrap();
        let injected = vec![(8usize, med), (10usize, med)];

        // Perfect repair: restore both cells.
        let mut repaired = dirty.clone();
        repaired.set(8, med, "tiazac").unwrap();
        repaired.set(10, med, "tiazac").unwrap();
        let q = repair_quality(&dirty, &repaired, &clean, &injected, &onto);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);

        // Restoring a *synonym* of the clean value also counts.
        let mut syn = dirty.clone();
        syn.set(8, med, "cartia").unwrap(); // clean is tiazac; FDA synonyms
        syn.set(10, med, "cartia").unwrap();
        let qs = repair_quality(&dirty, &syn, &clean, &injected, &onto);
        assert_eq!(qs.precision, 1.0);
        assert_eq!(qs.recall, 1.0);

        // Half repair: restore one, corrupt an unrelated clean cell.
        let mut half = dirty.clone();
        half.set(8, med, "tiazac").unwrap();
        half.set(0, med, "wrong").unwrap();
        let q2 = repair_quality(&dirty, &half, &clean, &injected, &onto);
        assert_eq!(q2.precision, 0.5);
        assert_eq!(q2.recall, 0.5);

        // No changes at all: vacuous precision, zero recall.
        let q3 = repair_quality(&dirty, &dirty, &clean, &injected, &onto);
        assert_eq!(q3.precision, 1.0);
        assert_eq!(q3.recall, 0.0);
    }

    #[test]
    fn changing_a_clean_cell_is_a_false_positive_even_to_a_synonym() {
        let clean = table1();
        let onto = ofd_ontology::samples::combined_paper_ontology();
        let ctry = clean.schema().attr("CTRY").unwrap();
        let mut repaired = clean.clone();
        repaired.set(4, ctry, "USA").unwrap(); // America -> USA: synonyms!
        let q = repair_quality(&clean, &repaired, &clean, &[], &onto);
        assert_eq!(q.precision, 0.0, "spurious modification of a clean cell");
    }

    #[test]
    fn ontology_quality_matches_pairs() {
        let rel = table1_updated();
        let adizem = rel.pool().get("adizem").unwrap();
        let asa = rel.pool().get("ASA").unwrap();
        let s0 = SenseId::from_index(0);
        let s1 = SenseId::from_index(1);
        let removed = vec![(s0, "adizem".to_owned())];
        let q = ontology_quality(&rel, &[(adizem, s0), (asa, s1)], &removed);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 1.0);
        let empty = ontology_quality(&rel, &[], &removed);
        assert_eq!(empty.precision, 1.0);
        assert_eq!(empty.recall, 0.0);
    }
}
