//! Sense assignment: the MAD-guided initial assignment (Algorithm 5) and
//! the overlay view used to evaluate candidate ontology repairs.

use std::collections::HashSet;

use ofd_core::{SenseIndex, ValueId};
use ofd_ontology::SenseId;

use crate::classes::{ClassData, OfdClasses};

/// A sense per (OFD, equivalence class): `Λ(Σ)` in the paper.
///
/// `None` marks classes none of whose consequent values are known to the
/// ontology — they behave like plain-FD classes.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseAssignment {
    senses: Vec<Vec<Option<SenseId>>>,
}

impl SenseAssignment {
    /// Creates an all-unassigned table shaped like `classes`.
    pub fn empty(classes: &[OfdClasses]) -> Self {
        SenseAssignment {
            senses: classes.iter().map(|c| vec![None; c.classes.len()]).collect(),
        }
    }

    /// The assigned sense of one class.
    pub fn get(&self, ofd_idx: usize, class_idx: usize) -> Option<SenseId> {
        self.senses[ofd_idx][class_idx]
    }

    /// Reassigns one class.
    pub fn set(&mut self, ofd_idx: usize, class_idx: usize, sense: Option<SenseId>) {
        self.senses[ofd_idx][class_idx] = sense;
    }

    /// The full table, for checkpoint serialization.
    pub fn table(&self) -> &[Vec<Option<SenseId>>] {
        &self.senses
    }

    /// Rebuilds an assignment from a serialized table.
    pub fn from_table(senses: Vec<Vec<Option<SenseId>>>) -> Self {
        SenseAssignment { senses }
    }

    /// Number of assigned (non-`None`) classes.
    pub fn assigned_count(&self) -> usize {
        self.senses
            .iter()
            .flat_map(|v| v.iter())
            .filter(|s| s.is_some())
            .count()
    }

    /// Total classes.
    pub fn total(&self) -> usize {
        self.senses.iter().map(Vec::len).sum()
    }
}

/// A sense index with a candidate-ontology-repair overlay: membership tests
/// consult the overlay first, so beam-search candidates never clone the
/// base index.
#[derive(Debug, Clone, Copy)]
pub struct SenseView<'a> {
    /// The base (possibly degraded) index.
    pub base: &'a SenseIndex,
    /// Candidate additions `(value, sense)`.
    pub overlay: &'a HashSet<(ValueId, SenseId)>,
}

impl SenseView<'_> {
    /// Whether `value` belongs to `sense` under base ∪ overlay.
    pub fn in_sense(&self, value: ValueId, sense: SenseId) -> bool {
        self.base.in_sense(value, sense) || self.overlay.contains(&(value, sense))
    }

    /// All senses of `value` under base ∪ overlay, sorted.
    pub fn senses(&self, value: ValueId) -> Vec<SenseId> {
        let mut out: Vec<SenseId> = self.base.senses(value).to_vec();
        for (v, s) in self.overlay.iter() {
            if *v == value && !out.contains(s) {
                out.push(*s);
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of tuples of `class` whose consequent value lies in `sense`.
    pub fn coverage(&self, class: &ClassData, sense: SenseId) -> usize {
        class
            .value_counts
            .iter()
            .filter(|&&(v, _)| self.in_sense(v, sense))
            .map(|&(_, c)| c as usize)
            .sum()
    }
}

/// Ranks the distinct values of a class by decreasing MAD score
/// (|f(v) − median(f)|), breaking ties by frequency then value id — the
/// outlier-robust ordering of Algorithm 5.
pub fn mad_ranking(class: &ClassData) -> Vec<ValueId> {
    let mut freqs: Vec<u32> = class.value_counts.iter().map(|&(_, c)| c).collect();
    freqs.sort_unstable();
    let median = if freqs.is_empty() {
        0.0
    } else if freqs.len() % 2 == 1 {
        freqs[freqs.len() / 2] as f64
    } else {
        (freqs[freqs.len() / 2 - 1] as f64 + freqs[freqs.len() / 2] as f64) / 2.0
    };
    let mut ranked: Vec<(f64, u32, ValueId)> = class
        .value_counts
        .iter()
        .map(|&(v, c)| ((c as f64 - median).abs(), c, v))
        .collect();
    ranked.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then(b.1.cmp(&a.1))
            .then(a.2.cmp(&b.2))
    });
    ranked.into_iter().map(|(_, _, v)| v).collect()
}

/// Algorithm 5: the initial sense for one equivalence class — the sense
/// covering as many of the highest-MAD values as possible, tie-broken by
/// tuple coverage. Returns `None` when no consequent value is known to the
/// ontology.
pub fn initial_assignment(class: &ClassData, view: SenseView<'_>) -> Option<SenseId> {
    let ranked = mad_ranking(class);
    let n = ranked.len();
    for k in (1..=n).rev() {
        // Consider every contiguous window of k ranked values; collect the
        // senses shared by a whole window.
        let mut potential: Vec<SenseId> = Vec::new();
        for start in 0..=(n - k) {
            let window = &ranked[start..start + k];
            let mut iter = window.iter();
            let first = iter.next().expect("k ≥ 1");
            let mut acc = view.senses(*first);
            for v in iter {
                if acc.is_empty() {
                    break;
                }
                let senses = view.senses(*v);
                acc.retain(|s| senses.binary_search(s).is_ok());
            }
            for s in acc {
                if !potential.contains(&s) {
                    potential.push(s);
                }
            }
        }
        if !potential.is_empty() {
            // Maximal tuple coverage; ties by smaller sense id.
            return potential
                .into_iter()
                .map(|s| (s, view.coverage(class, s)))
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(s, _)| s);
        }
    }
    None
}

/// Computes the initial assignment for every class of every OFD
/// (lines 2–8 of Algorithm 8).
pub fn assign_all(classes: &[OfdClasses], view: SenseView<'_>) -> SenseAssignment {
    let mut out = SenseAssignment::empty(classes);
    for oc in classes {
        for (ci, class) in oc.classes.iter().enumerate() {
            out.set(oc.ofd_idx, ci, initial_assignment(class, view));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::build_classes;
    use ofd_core::{table1_updated, Ofd, SenseIndex};
    use ofd_ontology::samples;

    fn setup() -> (
        ofd_core::Relation,
        ofd_ontology::Ontology,
        Vec<OfdClasses>,
        SenseIndex,
    ) {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ];
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        (rel, onto, classes, index)
    }

    #[test]
    fn us_class_gets_the_usa_sense() {
        let (_rel, onto, classes, index) = setup();
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let us_class = &classes[0].classes[0];
        let sense = initial_assignment(us_class, view).expect("assigned");
        assert_eq!(
            onto.concept(sense).unwrap().label(),
            "United States of America"
        );
    }

    #[test]
    fn headache_class_picks_a_maximal_cover_sense() {
        // {cartia, ASA, tiazac, adizem}: FDA-diltiazem and MoH-ASA both
        // cover two tuples; the tie breaks deterministically.
        let (_rel, onto, classes, index) = setup();
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let headache = &classes[1].classes[2];
        assert_eq!(headache.rep, 7);
        let sense = initial_assignment(headache, view).expect("assigned");
        let label = onto.concept(sense).unwrap().label().to_owned();
        assert!(
            label == "diltiazem hydrochloride" || label == "acetylsalicylic acid",
            "unexpected sense {label}"
        );
        assert_eq!(view.coverage(headache, sense), 2);
    }

    #[test]
    fn unknown_values_yield_none() {
        let rel = ofd_core::Relation::from_rows(
            ["X", "Y"],
            [&["a", "p"] as &[&str], &["a", "q"]],
        )
        .unwrap();
        let onto = ofd_ontology::Ontology::empty();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["X"], "Y").unwrap()];
        let classes = build_classes(&rel, &sigma);
        let index = SenseIndex::synonym(&rel, &onto);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        assert_eq!(initial_assignment(&classes[0].classes[0], view), None);
    }

    #[test]
    fn overlay_extends_membership() {
        let (rel, onto, classes, index) = setup();
        let headache = &classes[1].classes[2];
        let dilt = onto.names("tiazac")[0];
        let adizem = rel.pool().get("adizem").unwrap();
        let asa = rel.pool().get("ASA").unwrap();
        let mut overlay = HashSet::new();
        overlay.insert((adizem, dilt));
        overlay.insert((asa, dilt));
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        // With the Example 1.2 repair, the FDA sense covers all four tuples.
        assert_eq!(view.coverage(headache, dilt), 4);
        assert_eq!(initial_assignment(headache, view), Some(dilt));
        assert!(view.senses(adizem).contains(&dilt));
    }

    #[test]
    fn mad_ranking_is_deterministic_and_complete() {
        let (_, _, classes, _) = setup();
        for oc in &classes {
            for class in &oc.classes {
                let ranked = mad_ranking(class);
                assert_eq!(ranked.len(), class.value_counts.len());
                let again = mad_ranking(class);
                assert_eq!(ranked, again);
            }
        }
    }

    #[test]
    fn assign_all_covers_every_class() {
        let (_, _, classes, index) = setup();
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        assert_eq!(assignment.total(), 5);
        // Every class in the paper example has at least one known value.
        assert_eq!(assignment.assigned_count(), 5);
    }

    #[test]
    fn mad_ranking_prefers_outlying_frequencies() {
        // Frequencies 5,1,1,1: median 1 → value with f=5 ranks first.
        let class = ClassData {
            tuples: (0..8).collect(),
            rep: 0,
            value_counts: vec![
                (ValueId::from_index(0), 5),
                (ValueId::from_index(1), 1),
                (ValueId::from_index(2), 1),
                (ValueId::from_index(3), 1),
            ],
        };
        let ranked = mad_ranking(&class);
        assert_eq!(ranked[0], ValueId::from_index(0));
    }
}
