//! Human-readable violation explanations: for each violating equivalence
//! class, what the class looks like, which interpretations were considered,
//! and the candidate resolutions (§1's "multiple options to resolve
//! violations" made explicit for a user).

use std::collections::HashSet;

use ofd_core::{Ofd, Relation, SenseIndex, Validator};
use ofd_ontology::Ontology;

use crate::classes::build_classes;
use crate::sense::{initial_assignment, SenseView};

/// One explained violation.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The violated OFD, rendered with attribute names.
    pub ofd: String,
    /// The antecedent values identifying the class.
    pub class_key: Vec<String>,
    /// Tuple ids in the class.
    pub tuples: Vec<u32>,
    /// Distinct consequent values with counts, most frequent first.
    pub values: Vec<(String, u32)>,
    /// The best sense found for the class (label), if any.
    pub best_sense: Option<String>,
    /// Values the best sense does not cover — the outliers to resolve.
    pub outliers: Vec<String>,
    /// Candidate resolutions, one line each.
    pub options: Vec<String>,
}

impl Explanation {
    /// Renders the explanation as indented text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} violated for class [{}] ({} tuples)\n",
            self.ofd,
            self.class_key.join(", "),
            self.tuples.len()
        );
        let values: Vec<String> = self
            .values
            .iter()
            .map(|(v, c)| format!("{v:?}×{c}"))
            .collect();
        out.push_str(&format!("  consequent values: {}\n", values.join(", ")));
        match &self.best_sense {
            Some(s) => out.push_str(&format!(
                "  best interpretation: {s:?}; outliers: {}\n",
                self.outliers
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
            None => out.push_str("  no interpretation covers any value\n"),
        }
        for (i, opt) in self.options.iter().enumerate() {
            out.push_str(&format!("  option {}: {opt}\n", i + 1));
        }
        out
    }
}

/// Explains every violating class of `sigma` over `(rel, onto)`.
pub fn explain_violations(rel: &Relation, onto: &Ontology, sigma: &[Ofd]) -> Vec<Explanation> {
    let validator = Validator::new(rel, onto);
    let index = SenseIndex::synonym(rel, onto);
    let overlay = HashSet::new();
    let view = SenseView {
        base: &index,
        overlay: &overlay,
    };
    let classes = build_classes(rel, sigma);
    let mut out = Vec::new();

    for oc in &classes {
        let validation = validator.check(&oc.ofd);
        if validation.satisfied() {
            continue;
        }
        for class in &oc.classes {
            let sense = initial_assignment(class, view);
            // A class is violated when no sense covers it entirely.
            let covered = sense
                .map(|s| view.coverage(class, s) == class.size())
                .unwrap_or(class.value_counts.len() <= 1);
            if covered {
                continue;
            }
            let class_key: Vec<String> = class
                .lhs_signature(rel, &oc.ofd)
                .into_iter()
                .map(|v| rel.pool().resolve(v).to_owned())
                .collect();
            let values: Vec<(String, u32)> = class
                .value_counts
                .iter()
                .map(|&(v, c)| (rel.pool().resolve(v).to_owned(), c))
                .collect();
            let best_sense =
                sense.map(|s| onto.concept(s).expect("assigned sense").label().to_owned());
            let outliers: Vec<String> = match sense {
                Some(s) => class
                    .value_counts
                    .iter()
                    .filter(|&&(v, _)| !view.in_sense(v, s))
                    .map(|&(v, _)| rel.pool().resolve(v).to_owned())
                    .collect(),
                None => values.iter().map(|(v, _)| v.clone()).collect(),
            };

            let mut options = Vec::new();
            if let Some(s) = sense {
                let label = onto.concept(s).expect("sense").label().to_owned();
                let unknown: Vec<&String> = outliers
                    .iter()
                    .filter(|v| !onto.contains_value(v))
                    .collect();
                if !unknown.is_empty() {
                    options.push(format!(
                        "ontology repair: add {} to sense {label:?} ({} insertion(s))",
                        unknown
                            .iter()
                            .map(|v| format!("{v:?}"))
                            .collect::<Vec<_>>()
                            .join(", "),
                        unknown.len()
                    ));
                }
                let target = class
                    .value_counts
                    .iter()
                    .find(|&&(v, _)| view.in_sense(v, s))
                    .map(|&(v, _)| rel.pool().resolve(v).to_owned());
                if let Some(target) = target {
                    let n_updates: u32 = class
                        .value_counts
                        .iter()
                        .filter(|&&(v, _)| !view.in_sense(v, s))
                        .map(|&(_, c)| c)
                        .sum();
                    options.push(format!(
                        "data repair: update {n_updates} cell(s) to {target:?} (sense {label:?})"
                    ));
                }
            } else {
                let (majority, c) = &values[0];
                let rest: u32 = values.iter().skip(1).map(|(_, c)| *c).sum();
                options.push(format!(
                    "data repair: update {rest} cell(s) to the majority value {majority:?} (×{c})"
                ));
            }

            out.push(Explanation {
                ofd: oc.ofd.display(rel.schema()),
                class_key,
                tuples: class.tuples.clone(),
                values,
                best_sense,
                outliers,
                options,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1, table1_updated};
    use ofd_ontology::samples;

    #[test]
    fn explains_the_example_1_2_violation() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap()];
        let explanations = explain_violations(&rel, &onto, &sigma);
        // Two violating classes: nausea (synonym reading) and headache.
        assert_eq!(explanations.len(), 2);
        let headache = explanations
            .iter()
            .find(|e| e.class_key.contains(&"headache".to_owned()))
            .expect("headache class explained");
        assert_eq!(headache.tuples, vec![7, 8, 9, 10]);
        assert!(headache.outliers.contains(&"adizem".to_owned()));
        // adizem is unknown to the ontology, so an ontology-repair option
        // must be offered.
        assert!(
            headache.options.iter().any(|o| o.contains("ontology repair")),
            "{:?}",
            headache.options
        );
        assert!(headache.options.iter().any(|o| o.contains("data repair")));
        let text = headache.render();
        assert!(text.contains("violated for class"));
        assert!(text.contains("option 1"));
    }

    #[test]
    fn clean_instance_needs_no_explanations() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        assert!(explain_violations(&rel, &onto, &sigma).is_empty());
    }

    #[test]
    fn senseless_class_offers_majority_repair() {
        let rel = Relation::from_rows(
            ["X", "Y"],
            [
                &["a", "p"] as &[&str],
                &["a", "p"],
                &["a", "q"],
            ],
        )
        .unwrap();
        let onto = Ontology::empty();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["X"], "Y").unwrap()];
        let explanations = explain_violations(&rel, &onto, &sigma);
        assert_eq!(explanations.len(), 1);
        let e = &explanations[0];
        assert!(e.best_sense.is_none());
        assert!(e.options[0].contains("majority value \"p\""), "{:?}", e.options);
    }
}
