//! The OFDClean orchestrator (§4.2, Figure 4): sense assignment → local
//! refinement → ontology repair → data repair, returning a repaired
//! `(S′, I′)` with `I′ ⊨ Σ` w.r.t. `S′` plus the Pareto frontier explored.

use std::collections::HashSet;

use ofd_core::{CheckpointOptions, ExecGuard, Interrupt, Obs, Ofd, Relation, SenseIndex, ValueId, Validator};
use ofd_ontology::{Ontology, OntologyRepair, SenseId};

use crate::checkpoint;
use crate::classes::build_classes;
use crate::conflict::{repair_data_guarded, CellRepair};
use crate::graph::local_refinement_guarded;
use crate::ontrepair::{beam_search_guarded, OntologyRepairPlan};
use crate::sense::{assign_all, SenseAssignment, SenseView};

/// Tunables of a cleaning run (defaults follow Table 5).
#[derive(Debug, Clone)]
pub struct OfdCleanConfig {
    /// EMD threshold θ above which an edge triggers refinement.
    pub theta: f64,
    /// Beam width `b`; `None` applies the secretary rule ⌊w/e⌋.
    pub beam: Option<usize>,
    /// Data-repair budget τ as a fraction of |I| (the paper uses 0.65).
    pub tau: f64,
    /// Maximum ontology-repair size explored; `None` = all candidates.
    pub max_ontology_repairs: Option<usize>,
    /// Maximum repair-regenerate rounds of the data-repair loop.
    pub max_rounds: usize,
    /// Number of refinement sweeps over the dependency graph.
    pub refinement_passes: usize,
    /// Execution guard probed throughout refinement, beam search and data
    /// repair. On interrupt the run stops at the next checkpoint and
    /// returns a sound partial result (see [`CleanResult::complete`]).
    pub guard: ExecGuard,
    /// Observability handle recording per-phase spans
    /// (`ofdclean.assign` / `refine` / `beam_search` / `repair_data` /
    /// `verify`) and the `clean.*` counters: `search_expansions` (ontology
    /// candidates explored by beam search), `repairs_applied` (cell
    /// rewrites), `ontology_adds` and `sense_reassignments`. Disabled by
    /// default; guard interrupts are labelled as
    /// `guard.interrupt.<reason>`.
    pub obs: Obs,
    /// Crash-safety checkpointing: when set, a cumulative snapshot is
    /// written after each completed phase (refine / beam search / data
    /// repair) and, with [`CheckpointOptions::resume`], the run restores
    /// the newest valid snapshot and skips the phases it covers. The
    /// final verification always re-runs. `None` disables.
    pub checkpoint: Option<CheckpointOptions>,
}

impl Default for OfdCleanConfig {
    fn default() -> Self {
        OfdCleanConfig {
            theta: 0.0,
            beam: None,
            tau: 0.65,
            max_ontology_repairs: None,
            max_rounds: 10,
            refinement_passes: 1,
            guard: ExecGuard::unlimited(),
            obs: Obs::disabled(),
            checkpoint: None,
        }
    }
}

/// Result of a cleaning run.
#[derive(Debug, Clone)]
pub struct CleanResult {
    /// The repaired instance `I′`.
    pub repaired: Relation,
    /// The repaired ontology `S′`.
    pub repaired_ontology: Ontology,
    /// The ontology delta applied.
    pub ontology_repair: OntologyRepair,
    /// The `(value, sense)` insertions (interned form).
    pub ontology_adds: Vec<(ValueId, SenseId)>,
    /// Cell updates applied.
    pub data_repairs: Vec<CellRepair>,
    /// Final sense assignment Λ(Σ).
    pub assignment: SenseAssignment,
    /// The explored ontology-repair frontier.
    pub plan: OntologyRepairPlan,
    /// Sense reassignments performed by local refinement.
    pub reassignments: usize,
    /// Whether `I′ ⊨ Σ` w.r.t. `S′`.
    pub satisfied: bool,
    /// Whether the run finished without the guard tripping. When `false`,
    /// everything reported is still sound — every applied repair is a
    /// valid cell rewrite / ontology insertion and `satisfied` reflects
    /// the actual final state — but further repairs may remain.
    pub complete: bool,
    /// Why the run stopped early, when it did.
    pub interrupt: Option<Interrupt>,
    /// The completed phase (1 = refine, 2 = beam search, 3 = data repair)
    /// a resumed run restarted after; `None` for a fresh run.
    pub resumed_from_phase: Option<u64>,
    /// Phase-boundary snapshots written by this run.
    pub snapshots_written: usize,
    /// Snapshot writes that failed (I/O or injected faults); the run
    /// continues regardless.
    pub snapshot_errors: usize,
}

impl CleanResult {
    /// `dist(I, I′)`: number of cells changed.
    pub fn data_dist(&self) -> usize {
        self.data_repairs.len()
    }

    /// `dist(S, S′)`: number of values inserted into the ontology.
    pub fn ontology_dist(&self) -> usize {
        self.ontology_repair.dist()
    }
}

/// Runs OFDClean on `(rel, onto)` w.r.t. `sigma`.
///
/// Σ must be of uniform kind. Synonym OFDs are cleaned directly;
/// inheritance OFDs (the paper's stated future work) are cleaned against
/// the θ-expansion `S↑θ` (see [`Ontology::inheritance_expansion`]) — a
/// value repair or concept insertion under the expansion maps one-to-one
/// onto the original ontology, and the final verification runs the real
/// inheritance semantics against the repaired original.
pub fn ofd_clean(
    rel: &Relation,
    onto: &Ontology,
    sigma: &[Ofd],
    config: &OfdCleanConfig,
) -> CleanResult {
    use ofd_core::OfdKind;
    let kinds: Vec<OfdKind> = sigma.iter().map(|o| o.kind).collect();
    assert!(
        kinds.windows(2).all(|w| w[0] == w[1]),
        "ofd_clean requires a uniform-kind Σ"
    );
    match kinds.first() {
        Some(OfdKind::Inheritance { theta }) => {
            let expanded = onto.inheritance_expansion(*theta);
            let sigma_syn: Vec<Ofd> = sigma
                .iter()
                .map(|o| Ofd::synonym(o.lhs, o.rhs))
                .collect();
            let mut result = clean_core(rel, &expanded, &sigma_syn, config);
            // Map the repairs back onto the original ontology (same sense
            // ids; candidate values are absent from S, hence from every
            // original concept).
            let repaired_original = onto
                .with_repair(&result.ontology_repair)
                .expect("expansion candidates are new to S");
            let validator = Validator::new(&result.repaired, &repaired_original);
            result.satisfied = sigma.iter().all(|o| validator.check(o).satisfied());
            result.repaired_ontology = repaired_original;
            result
        }
        _ => clean_core(rel, onto, sigma, config),
    }
}

/// Writes the cumulative snapshot for `phase`, if checkpointing is on and
/// no interrupt is pending (an interrupted phase is incomplete; recording
/// it as done would make resume unsound — this is also what makes the
/// on-disk state identical to a hard kill's).
#[allow(clippy::too_many_arguments)]
fn save_phase_snapshot(
    config: &OfdCleanConfig,
    fp: Option<u64>,
    phase: u64,
    rel: &Relation,
    assignment: &SenseAssignment,
    reassignments: usize,
    plan: Option<&OntologyRepairPlan>,
    repairs: Option<&[CellRepair]>,
    written: &mut usize,
    errors: &mut usize,
) {
    let Some(ck) = &config.checkpoint else {
        return;
    };
    if config.guard.interrupt().is_some() {
        return;
    }
    let body = checkpoint::snapshot_body(
        fp.expect("fingerprint is set whenever checkpointing is"),
        phase,
        rel,
        assignment,
        reassignments,
        plan,
        repairs,
        &config.obs,
    );
    match ck.store.save(checkpoint::STREAM, phase, &body) {
        Ok(_) => {
            *written += 1;
            config.obs.inc("clean.checkpoint.written");
        }
        Err(_) => {
            *errors += 1;
            config.obs.inc("clean.checkpoint.error");
        }
    }
}

fn clean_core(
    rel: &Relation,
    onto: &Ontology,
    sigma: &[Ofd],
    config: &OfdCleanConfig,
) -> CleanResult {
    let obs = &config.obs;
    let _run_span = obs.span("ofdclean.run");
    let mut working = rel.clone();
    let mut index = SenseIndex::synonym(&working, onto);
    let empty_overlay: HashSet<(ValueId, SenseId)> = HashSet::new();

    // Checkpoint/resume: load the newest valid snapshot, bound to exactly
    // these inputs by the fingerprint.
    let fp = config
        .checkpoint
        .as_ref()
        .map(|_| checkpoint::fingerprint(rel, onto, sigma, config));
    let mut snapshots_written = 0;
    let mut snapshot_errors = 0;
    let mut resume: Option<checkpoint::CleanResume> = None;
    if let Some(ck) = config.checkpoint.as_ref().filter(|c| c.resume) {
        if let Ok(Some(loaded)) = ck.store.load_latest(checkpoint::STREAM) {
            match checkpoint::restore(&loaded.body, fp.expect("fp set"), rel) {
                Some(rs) => resume = Some(rs),
                None => obs.inc("clean.resume.rejected"),
            }
        }
    }

    let classes = build_classes(&working, sigma);
    // A restored assignment must be shaped exactly like the class table
    // the current inputs produce; anything else is discarded wholesale.
    if let Some(rs) = &resume {
        let shape_ok = rs.assignment.table().len() == classes.len()
            && rs
                .assignment
                .table()
                .iter()
                .zip(classes.iter())
                .all(|(row, c)| row.len() == c.classes.len());
        if !shape_ok {
            resume = None;
            obs.inc("clean.resume.rejected");
        }
    }
    let restored_phase = resume.as_ref().map_or(0, |rs| rs.phase);
    let resumed_from_phase = resume.as_ref().map(|rs| rs.phase);
    if let Some(rs) = &resume {
        // Re-seed obs accumulators so final totals cover the whole
        // logical run, not just the tail.
        for (name, v) in &rs.counters {
            obs.add(name, *v);
        }
        if obs.is_enabled() {
            obs.inc("clean.resume");
            obs.set_gauge("clean.resumed_from_phase", rs.phase as f64);
        }
    }

    // 1. Sense assignment (Algorithm 8): initial + local refinement.
    let (assignment, reassignments) = if restored_phase >= 1 {
        let rs = resume.as_ref().expect("restored");
        (rs.assignment.clone(), rs.reassignments)
    } else {
        let assign_span = obs.span("ofdclean.assign");
        let view = SenseView {
            base: &index,
            overlay: &empty_overlay,
        };
        let mut assignment = assign_all(&classes, view);
        drop(assign_span);
        let refine_span = obs.span("ofdclean.refine");
        let mut reassignments = 0;
        for _ in 0..config.refinement_passes {
            if config.guard.check().is_err() {
                break;
            }
            let n = local_refinement_guarded(
                &working,
                onto,
                &classes,
                &mut assignment,
                view,
                config.theta,
                &config.guard,
            );
            reassignments += n;
            if n == 0 {
                break;
            }
        }
        drop(refine_span);
        obs.add("clean.sense_reassignments", reassignments as u64);
        save_phase_snapshot(
            config,
            fp,
            1,
            rel,
            &assignment,
            reassignments,
            None,
            None,
            &mut snapshots_written,
            &mut snapshot_errors,
        );
        (assignment, reassignments)
    };

    // 2. Ontology repair (Algorithm 7): beam search over Cand(S).
    let plan = if restored_phase >= 2 {
        resume
            .as_ref()
            .and_then(|rs| rs.plan.clone())
            .expect("phase ≥ 2 snapshots carry a plan")
    } else {
        let beam_span = obs.span("ofdclean.beam_search");
        let plan = beam_search_guarded(
            &working,
            sigma,
            &classes,
            &assignment,
            &index,
            config.beam,
            config.max_ontology_repairs,
            &config.guard,
        );
        drop(beam_span);
        obs.add("clean.search_expansions", plan.candidates.len() as u64);
        obs.add("clean.frontier_points", plan.frontier.len() as u64);
        save_phase_snapshot(
            config,
            fp,
            2,
            rel,
            &assignment,
            reassignments,
            Some(&plan),
            None,
            &mut snapshots_written,
            &mut snapshot_errors,
        );
        plan
    };
    let tau_max = (config.tau * working.n_rows() as f64).floor() as usize;
    let chosen = plan.select(tau_max).clone();

    // Apply the chosen ontology repair (recomputed deterministically from
    // the plan on resume).
    let mut ontology_repair = OntologyRepair::new();
    for &(v, s) in &chosen.adds {
        ontology_repair.add(s, working.pool().resolve(v));
    }
    let repaired_ontology = onto
        .with_repair(&ontology_repair)
        .expect("candidates are absent from S by construction");
    let overlay: HashSet<(ValueId, SenseId)> = chosen.adds.iter().copied().collect();

    // 3. Data repair to the remaining violations.
    let data_repairs = if restored_phase >= 3 {
        let repairs = resume
            .as_ref()
            .and_then(|rs| rs.repairs.clone())
            .expect("phase 3 snapshots carry the repairs");
        // Replay onto the input instance: reproduces I′ cell-for-cell
        // (bounds were validated during restore).
        for r in &repairs {
            working
                .set(r.row, r.attr, &r.new)
                .expect("bounds validated on restore");
        }
        repairs
    } else {
        let repair_span = obs.span("ofdclean.repair_data");
        let (data_repairs, _converged) = repair_data_guarded(
            &mut working,
            &repaired_ontology,
            sigma,
            &assignment,
            &mut index,
            &overlay,
            tau_max,
            config.max_rounds,
            &config.guard,
        );
        drop(repair_span);
        obs.add("clean.repairs_applied", data_repairs.len() as u64);
        obs.add("clean.ontology_adds", chosen.adds.len() as u64);
        save_phase_snapshot(
            config,
            fp,
            3,
            rel,
            &assignment,
            reassignments,
            Some(&plan),
            Some(&data_repairs),
            &mut snapshots_written,
            &mut snapshot_errors,
        );
        data_repairs
    };

    // 4. Verify I′ ⊨ Σ w.r.t. S′. Runs even after an interrupt — the
    // reported `satisfied` always reflects the actual final state.
    let verify_span = obs.span("ofdclean.verify");
    let validator = Validator::new(&working, &repaired_ontology);
    let satisfied = sigma.iter().all(|o| validator.check(o).satisfied());
    drop(verify_span);

    let interrupt = config.guard.interrupt();
    if let Some(i) = interrupt {
        obs.inc(&format!("guard.interrupt.{}", i.label()));
    }
    CleanResult {
        repaired: working,
        repaired_ontology,
        ontology_adds: chosen.adds,
        ontology_repair,
        data_repairs,
        assignment,
        plan,
        reassignments,
        satisfied,
        complete: interrupt.is_none(),
        interrupt,
        resumed_from_phase,
        snapshots_written,
        snapshot_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1, table1_updated};
    use ofd_ontology::samples;

    fn sigma_for(rel: &Relation) -> Vec<Ofd> {
        vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ]
    }

    #[test]
    fn cleans_the_example_1_2_instance() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(result.satisfied, "I′ ⊨ Σ w.r.t. S′");
        // The two resolution routes of Example 1.2: either the ontology
        // grew or tuples were updated — in a minimal repair, both a bit.
        assert!(result.ontology_dist() + result.data_dist() > 0);
        // Changes stay within the headache class + adizem candidates.
        assert!(result.data_dist() <= 4);
    }

    #[test]
    fn clean_input_is_a_fixpoint() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(result.satisfied);
        assert_eq!(result.data_dist(), 0);
        assert_eq!(result.ontology_dist(), 0);
        assert_eq!(result.repaired.cell_distance(&rel).unwrap(), 0);
    }

    #[test]
    fn tau_zero_forces_pure_ontology_repairs_when_possible() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let config = OfdCleanConfig {
            tau: 0.0,
            ..OfdCleanConfig::default()
        };
        let result = ofd_clean(&rel, &onto, &sigma, &config);
        // With zero data budget the plan prefers δ_P = 0 points if any;
        // data repairs are capped at τ·|I| = 0 either way.
        assert!(result.data_dist() == 0 || !result.satisfied);
    }

    #[test]
    fn repaired_ontology_contains_the_adds() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        for (v, s) in &result.ontology_adds {
            let text = result.repaired.pool().resolve(*v);
            assert!(result.repaired_ontology.contains_value(text));
            assert!(result
                .repaired_ontology
                .concept(*s)
                .unwrap()
                .has_synonym(text));
            assert!(!onto.concept(*s).unwrap().has_synonym(text), "new in S′");
        }
    }

    #[test]
    fn inheritance_cleaning_accepts_isa_variation() {
        // Table 1 satisfies [SYMP, DIAG] →inh(θ=1) MED (tylenol is-a
        // acetaminophen is-a analgesic), so inheritance cleaning is a
        // no-op where synonym cleaning would rewrite the nausea class.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let schema = rel.schema();
        let inh = Ofd::inheritance(
            schema.set(["SYMP", "DIAG"]).unwrap(),
            schema.attr("MED").unwrap(),
            1,
        );
        let result = ofd_clean(&rel, &onto, &[inh], &OfdCleanConfig::default());
        assert!(result.satisfied);
        assert_eq!(result.data_dist(), 0, "θ=1 already explains the data");
        assert_eq!(result.ontology_dist(), 0);

        let syn = Ofd::synonym(inh.lhs, inh.rhs);
        let syn_result = ofd_clean(&rel, &onto, &[syn], &OfdCleanConfig::default());
        assert!(syn_result.data_dist() + syn_result.ontology_dist() > 0);
    }

    #[test]
    fn inheritance_cleaning_repairs_genuine_violations() {
        // The Example 1.2 updates (ASA, adizem) violate even the
        // inheritance reading; cleaning must restore consistency under the
        // real inheritance semantics against the repaired ontology.
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let schema = rel.schema();
        let inh = Ofd::inheritance(
            schema.set(["SYMP", "DIAG"]).unwrap(),
            schema.attr("MED").unwrap(),
            1,
        );
        let v = Validator::new(&rel, &onto);
        assert!(!v.check(&inh).satisfied(), "dirty under inheritance too");
        let result = ofd_clean(&rel, &onto, &[inh], &OfdCleanConfig::default());
        assert!(result.satisfied);
        let v2 = Validator::new(&result.repaired, &result.repaired_ontology);
        assert!(v2.check(&inh).satisfied());
    }

    #[test]
    #[should_panic(expected = "uniform-kind")]
    fn mixed_kind_sigma_is_rejected() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let schema = rel.schema();
        let sigma = vec![
            Ofd::synonym_named(schema, &["CC"], "CTRY").unwrap(),
            Ofd::inheritance(schema.set(["SYMP"]).unwrap(), schema.attr("DIAG").unwrap(), 1),
        ];
        let _ = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
    }

    #[test]
    fn unlimited_guard_runs_to_completion() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(result.complete);
        assert!(result.interrupt.is_none());
    }

    /// Tripping the guard at every possible checkpoint must always yield a
    /// sound partial result: the repaired instance differs from the input
    /// exactly by the listed data repairs, the repaired ontology is S plus
    /// exactly the listed adds, and `satisfied` is truthful.
    #[test]
    fn interrupted_cleaning_is_sound_at_every_checkpoint() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let mut saw_incomplete = false;
        for n in 1..80 {
            let config = OfdCleanConfig::default();
            config.guard.fail_after(n);
            let result = ofd_clean(&rel, &onto, &sigma, &config);
            if result.complete {
                assert!(result.interrupt.is_none());
                // Past the last checkpoint the run is indistinguishable
                // from an unguarded one; no later n can differ either.
                break;
            }
            saw_incomplete = true;
            assert!(result.interrupt.is_some());
            // The repaired instance is the input plus the listed repairs.
            assert_eq!(
                result.repaired.cell_distance(&rel).unwrap(),
                result.data_repairs.len(),
                "n = {n}"
            );
            // The repaired ontology is S plus the listed adds.
            assert_eq!(result.ontology_repair.dist(), result.ontology_adds.len());
            for (v, s) in &result.ontology_adds {
                let text = result.repaired.pool().resolve(*v);
                assert!(result.repaired_ontology.concept(*s).unwrap().has_synonym(text));
            }
            // `satisfied` reflects the actual final state.
            let v = Validator::new(&result.repaired, &result.repaired_ontology);
            assert_eq!(
                result.satisfied,
                sigma.iter().all(|o| v.check(o).satisfied()),
                "n = {n}"
            );
        }
        assert!(saw_incomplete, "fail point 1 must interrupt the run");
    }

    #[test]
    fn instrumented_clean_records_phase_spans_and_counters() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let config = OfdCleanConfig {
            obs: Obs::enabled(),
            ..OfdCleanConfig::default()
        };
        let result = ofd_clean(&rel, &onto, &sigma, &config);
        let snap = config.obs.snapshot();
        assert_eq!(
            snap.counter("clean.search_expansions").unwrap_or(0),
            result.plan.candidates.len() as u64
        );
        assert_eq!(
            snap.counter("clean.repairs_applied").unwrap_or(0),
            result.data_repairs.len() as u64
        );
        assert_eq!(
            snap.counter("clean.sense_reassignments").unwrap_or(0),
            result.reassignments as u64
        );
        for phase in [
            "ofdclean.run",
            "ofdclean.assign",
            "ofdclean.refine",
            "ofdclean.beam_search",
            "ofdclean.repair_data",
            "ofdclean.verify",
        ] {
            assert!(
                snap.spans.iter().any(|s| s.name == phase),
                "missing span {phase}"
            );
        }
        assert_eq!(snap.counter_sum("guard.interrupt."), 0);
    }

    #[test]
    fn interrupted_clean_labels_the_interrupt() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let config = OfdCleanConfig {
            obs: Obs::enabled(),
            ..OfdCleanConfig::default()
        };
        config.guard.fail_after(3);
        let result = ofd_clean(&rel, &onto, &sigma, &config);
        assert!(!result.complete);
        assert_eq!(
            config.obs.snapshot().counter("guard.interrupt.fail_point"),
            Some(1)
        );
    }

    #[test]
    fn pareto_frontier_exposed_to_caller() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(!result.plan.pareto.is_empty());
        assert!(result.plan.frontier[0].k == 0);
    }

    fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ofd_clean_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Kill OFDClean at every reachable checkpoint, resume from disk, and
    /// demand the resumed run is indistinguishable from an uninterrupted
    /// one: same repaired instance (cell for cell), same ontology adds,
    /// same data repairs, same verdict.
    #[test]
    fn killed_and_resumed_clean_equals_uninterrupted_run() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let reference = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(reference.complete);

        let mut resumed_at_least_once = false;
        for n in 1..80 {
            let dir = temp_ckpt_dir(&format!("kill{n}"));
            let killed = OfdCleanConfig {
                checkpoint: Some(CheckpointOptions::new(&dir)),
                ..OfdCleanConfig::default()
            };
            killed.guard.fail_after(n);
            let partial = ofd_clean(&rel, &onto, &sigma, &killed);
            if partial.complete {
                let _ = std::fs::remove_dir_all(&dir);
                break;
            }

            let resume = OfdCleanConfig {
                checkpoint: Some(CheckpointOptions::new(&dir).resume(true)),
                ..OfdCleanConfig::default()
            };
            let result = ofd_clean(&rel, &onto, &sigma, &resume);
            assert!(result.complete, "n = {n}");
            resumed_at_least_once |= result.resumed_from_phase.is_some();
            assert_eq!(
                result.repaired.cell_distance(&reference.repaired).unwrap(),
                0,
                "n = {n}: repaired instance must match uninterrupted run"
            );
            assert_eq!(result.ontology_adds, reference.ontology_adds, "n = {n}");
            assert_eq!(result.data_repairs, reference.data_repairs, "n = {n}");
            assert_eq!(result.satisfied, reference.satisfied, "n = {n}");
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert!(resumed_at_least_once, "no kill point left a usable snapshot");
    }

    #[test]
    fn full_checkpointed_clean_writes_one_snapshot_per_phase() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let dir = temp_ckpt_dir("phases");
        let config = OfdCleanConfig {
            checkpoint: Some(CheckpointOptions::new(&dir)),
            ..OfdCleanConfig::default()
        };
        let result = ofd_clean(&rel, &onto, &sigma, &config);
        assert!(result.complete);
        assert_eq!(result.snapshots_written, 3);
        assert_eq!(result.snapshot_errors, 0);
        assert_eq!(result.resumed_from_phase, None);

        // Resuming from the final snapshot replays everything and agrees.
        let resume = OfdCleanConfig {
            checkpoint: Some(CheckpointOptions::new(&dir).resume(true)),
            ..OfdCleanConfig::default()
        };
        let replay = ofd_clean(&rel, &onto, &sigma, &resume);
        assert_eq!(replay.resumed_from_phase, Some(3));
        assert_eq!(replay.snapshots_written, 0, "no phase re-ran");
        assert_eq!(replay.repaired.cell_distance(&result.repaired).unwrap(), 0);
        assert_eq!(replay.data_repairs, result.data_repairs);
        assert_eq!(replay.satisfied, result.satisfied);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A snapshot taken under different inputs or result-affecting config
    /// must be ignored, not spliced into the wrong run.
    #[test]
    fn clean_resume_with_mismatched_inputs_recomputes_fresh() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let dir = temp_ckpt_dir("mismatch");
        let config = OfdCleanConfig {
            checkpoint: Some(CheckpointOptions::new(&dir)),
            ..OfdCleanConfig::default()
        };
        let _ = ofd_clean(&rel, &onto, &sigma, &config);

        // Same directory, different τ → different fingerprint.
        let other = OfdCleanConfig {
            checkpoint: Some(CheckpointOptions::new(&dir).resume(true)),
            tau: 0.5,
            obs: Obs::enabled(),
            ..OfdCleanConfig::default()
        };
        let result = ofd_clean(&rel, &onto, &sigma, &other);
        assert!(result.complete);
        assert_eq!(result.resumed_from_phase, None);
        assert_eq!(
            other.obs.snapshot().counter("clean.resume.rejected"),
            Some(1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
