//! The OFDClean orchestrator (§4.2, Figure 4): sense assignment → local
//! refinement → ontology repair → data repair, returning a repaired
//! `(S′, I′)` with `I′ ⊨ Σ` w.r.t. `S′` plus the Pareto frontier explored.

use std::collections::HashSet;

use ofd_core::{ExecGuard, Interrupt, Obs, Ofd, Relation, SenseIndex, ValueId, Validator};
use ofd_ontology::{Ontology, OntologyRepair, SenseId};

use crate::classes::build_classes;
use crate::conflict::{repair_data_guarded, CellRepair};
use crate::graph::local_refinement_guarded;
use crate::ontrepair::{beam_search_guarded, OntologyRepairPlan};
use crate::sense::{assign_all, SenseAssignment, SenseView};

/// Tunables of a cleaning run (defaults follow Table 5).
#[derive(Debug, Clone)]
pub struct OfdCleanConfig {
    /// EMD threshold θ above which an edge triggers refinement.
    pub theta: f64,
    /// Beam width `b`; `None` applies the secretary rule ⌊w/e⌋.
    pub beam: Option<usize>,
    /// Data-repair budget τ as a fraction of |I| (the paper uses 0.65).
    pub tau: f64,
    /// Maximum ontology-repair size explored; `None` = all candidates.
    pub max_ontology_repairs: Option<usize>,
    /// Maximum repair-regenerate rounds of the data-repair loop.
    pub max_rounds: usize,
    /// Number of refinement sweeps over the dependency graph.
    pub refinement_passes: usize,
    /// Execution guard probed throughout refinement, beam search and data
    /// repair. On interrupt the run stops at the next checkpoint and
    /// returns a sound partial result (see [`CleanResult::complete`]).
    pub guard: ExecGuard,
    /// Observability handle recording per-phase spans
    /// (`ofdclean.assign` / `refine` / `beam_search` / `repair_data` /
    /// `verify`) and the `clean.*` counters: `search_expansions` (ontology
    /// candidates explored by beam search), `repairs_applied` (cell
    /// rewrites), `ontology_adds` and `sense_reassignments`. Disabled by
    /// default; guard interrupts are labelled as
    /// `guard.interrupt.<reason>`.
    pub obs: Obs,
}

impl Default for OfdCleanConfig {
    fn default() -> Self {
        OfdCleanConfig {
            theta: 0.0,
            beam: None,
            tau: 0.65,
            max_ontology_repairs: None,
            max_rounds: 10,
            refinement_passes: 1,
            guard: ExecGuard::unlimited(),
            obs: Obs::disabled(),
        }
    }
}

/// Result of a cleaning run.
#[derive(Debug, Clone)]
pub struct CleanResult {
    /// The repaired instance `I′`.
    pub repaired: Relation,
    /// The repaired ontology `S′`.
    pub repaired_ontology: Ontology,
    /// The ontology delta applied.
    pub ontology_repair: OntologyRepair,
    /// The `(value, sense)` insertions (interned form).
    pub ontology_adds: Vec<(ValueId, SenseId)>,
    /// Cell updates applied.
    pub data_repairs: Vec<CellRepair>,
    /// Final sense assignment Λ(Σ).
    pub assignment: SenseAssignment,
    /// The explored ontology-repair frontier.
    pub plan: OntologyRepairPlan,
    /// Sense reassignments performed by local refinement.
    pub reassignments: usize,
    /// Whether `I′ ⊨ Σ` w.r.t. `S′`.
    pub satisfied: bool,
    /// Whether the run finished without the guard tripping. When `false`,
    /// everything reported is still sound — every applied repair is a
    /// valid cell rewrite / ontology insertion and `satisfied` reflects
    /// the actual final state — but further repairs may remain.
    pub complete: bool,
    /// Why the run stopped early, when it did.
    pub interrupt: Option<Interrupt>,
}

impl CleanResult {
    /// `dist(I, I′)`: number of cells changed.
    pub fn data_dist(&self) -> usize {
        self.data_repairs.len()
    }

    /// `dist(S, S′)`: number of values inserted into the ontology.
    pub fn ontology_dist(&self) -> usize {
        self.ontology_repair.dist()
    }
}

/// Runs OFDClean on `(rel, onto)` w.r.t. `sigma`.
///
/// Σ must be of uniform kind. Synonym OFDs are cleaned directly;
/// inheritance OFDs (the paper's stated future work) are cleaned against
/// the θ-expansion `S↑θ` (see [`Ontology::inheritance_expansion`]) — a
/// value repair or concept insertion under the expansion maps one-to-one
/// onto the original ontology, and the final verification runs the real
/// inheritance semantics against the repaired original.
pub fn ofd_clean(
    rel: &Relation,
    onto: &Ontology,
    sigma: &[Ofd],
    config: &OfdCleanConfig,
) -> CleanResult {
    use ofd_core::OfdKind;
    let kinds: Vec<OfdKind> = sigma.iter().map(|o| o.kind).collect();
    assert!(
        kinds.windows(2).all(|w| w[0] == w[1]),
        "ofd_clean requires a uniform-kind Σ"
    );
    match kinds.first() {
        Some(OfdKind::Inheritance { theta }) => {
            let expanded = onto.inheritance_expansion(*theta);
            let sigma_syn: Vec<Ofd> = sigma
                .iter()
                .map(|o| Ofd::synonym(o.lhs, o.rhs))
                .collect();
            let mut result = clean_core(rel, &expanded, &sigma_syn, config);
            // Map the repairs back onto the original ontology (same sense
            // ids; candidate values are absent from S, hence from every
            // original concept).
            let repaired_original = onto
                .with_repair(&result.ontology_repair)
                .expect("expansion candidates are new to S");
            let validator = Validator::new(&result.repaired, &repaired_original);
            result.satisfied = sigma.iter().all(|o| validator.check(o).satisfied());
            result.repaired_ontology = repaired_original;
            result
        }
        _ => clean_core(rel, onto, sigma, config),
    }
}

fn clean_core(
    rel: &Relation,
    onto: &Ontology,
    sigma: &[Ofd],
    config: &OfdCleanConfig,
) -> CleanResult {
    let obs = &config.obs;
    let _run_span = obs.span("ofdclean.run");
    let mut working = rel.clone();
    let mut index = SenseIndex::synonym(&working, onto);
    let empty_overlay: HashSet<(ValueId, SenseId)> = HashSet::new();

    // 1. Sense assignment (Algorithm 8): initial + local refinement.
    let assign_span = obs.span("ofdclean.assign");
    let classes = build_classes(&working, sigma);
    let view = SenseView {
        base: &index,
        overlay: &empty_overlay,
    };
    let mut assignment = assign_all(&classes, view);
    drop(assign_span);
    let refine_span = obs.span("ofdclean.refine");
    let mut reassignments = 0;
    for _ in 0..config.refinement_passes {
        if config.guard.check().is_err() {
            break;
        }
        let n = local_refinement_guarded(
            &working,
            onto,
            &classes,
            &mut assignment,
            view,
            config.theta,
            &config.guard,
        );
        reassignments += n;
        if n == 0 {
            break;
        }
    }
    drop(refine_span);
    obs.add("clean.sense_reassignments", reassignments as u64);

    // 2. Ontology repair (Algorithm 7): beam search over Cand(S).
    let beam_span = obs.span("ofdclean.beam_search");
    let plan = beam_search_guarded(
        &working,
        sigma,
        &classes,
        &assignment,
        &index,
        config.beam,
        config.max_ontology_repairs,
        &config.guard,
    );
    drop(beam_span);
    obs.add("clean.search_expansions", plan.candidates.len() as u64);
    obs.add("clean.frontier_points", plan.frontier.len() as u64);
    let tau_max = (config.tau * working.n_rows() as f64).floor() as usize;
    let chosen = plan.select(tau_max).clone();

    // Apply the chosen ontology repair.
    let mut ontology_repair = OntologyRepair::new();
    for &(v, s) in &chosen.adds {
        ontology_repair.add(s, working.pool().resolve(v));
    }
    let repaired_ontology = onto
        .with_repair(&ontology_repair)
        .expect("candidates are absent from S by construction");
    let overlay: HashSet<(ValueId, SenseId)> = chosen.adds.iter().copied().collect();

    // 3. Data repair to the remaining violations.
    let repair_span = obs.span("ofdclean.repair_data");
    let (data_repairs, _converged) = repair_data_guarded(
        &mut working,
        &repaired_ontology,
        sigma,
        &assignment,
        &mut index,
        &overlay,
        tau_max,
        config.max_rounds,
        &config.guard,
    );
    drop(repair_span);
    obs.add("clean.repairs_applied", data_repairs.len() as u64);
    obs.add("clean.ontology_adds", chosen.adds.len() as u64);

    // 4. Verify I′ ⊨ Σ w.r.t. S′. Runs even after an interrupt — the
    // reported `satisfied` always reflects the actual final state.
    let verify_span = obs.span("ofdclean.verify");
    let validator = Validator::new(&working, &repaired_ontology);
    let satisfied = sigma.iter().all(|o| validator.check(o).satisfied());
    drop(verify_span);

    let interrupt = config.guard.interrupt();
    if let Some(i) = interrupt {
        obs.inc(&format!("guard.interrupt.{}", i.label()));
    }
    CleanResult {
        repaired: working,
        repaired_ontology,
        ontology_adds: chosen.adds,
        ontology_repair,
        data_repairs,
        assignment,
        plan,
        reassignments,
        satisfied,
        complete: interrupt.is_none(),
        interrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1, table1_updated};
    use ofd_ontology::samples;

    fn sigma_for(rel: &Relation) -> Vec<Ofd> {
        vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ]
    }

    #[test]
    fn cleans_the_example_1_2_instance() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(result.satisfied, "I′ ⊨ Σ w.r.t. S′");
        // The two resolution routes of Example 1.2: either the ontology
        // grew or tuples were updated — in a minimal repair, both a bit.
        assert!(result.ontology_dist() + result.data_dist() > 0);
        // Changes stay within the headache class + adizem candidates.
        assert!(result.data_dist() <= 4);
    }

    #[test]
    fn clean_input_is_a_fixpoint() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(result.satisfied);
        assert_eq!(result.data_dist(), 0);
        assert_eq!(result.ontology_dist(), 0);
        assert_eq!(result.repaired.cell_distance(&rel).unwrap(), 0);
    }

    #[test]
    fn tau_zero_forces_pure_ontology_repairs_when_possible() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let config = OfdCleanConfig {
            tau: 0.0,
            ..OfdCleanConfig::default()
        };
        let result = ofd_clean(&rel, &onto, &sigma, &config);
        // With zero data budget the plan prefers δ_P = 0 points if any;
        // data repairs are capped at τ·|I| = 0 either way.
        assert!(result.data_dist() == 0 || !result.satisfied);
    }

    #[test]
    fn repaired_ontology_contains_the_adds() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        for (v, s) in &result.ontology_adds {
            let text = result.repaired.pool().resolve(*v);
            assert!(result.repaired_ontology.contains_value(text));
            assert!(result
                .repaired_ontology
                .concept(*s)
                .unwrap()
                .has_synonym(text));
            assert!(!onto.concept(*s).unwrap().has_synonym(text), "new in S′");
        }
    }

    #[test]
    fn inheritance_cleaning_accepts_isa_variation() {
        // Table 1 satisfies [SYMP, DIAG] →inh(θ=1) MED (tylenol is-a
        // acetaminophen is-a analgesic), so inheritance cleaning is a
        // no-op where synonym cleaning would rewrite the nausea class.
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let schema = rel.schema();
        let inh = Ofd::inheritance(
            schema.set(["SYMP", "DIAG"]).unwrap(),
            schema.attr("MED").unwrap(),
            1,
        );
        let result = ofd_clean(&rel, &onto, &[inh], &OfdCleanConfig::default());
        assert!(result.satisfied);
        assert_eq!(result.data_dist(), 0, "θ=1 already explains the data");
        assert_eq!(result.ontology_dist(), 0);

        let syn = Ofd::synonym(inh.lhs, inh.rhs);
        let syn_result = ofd_clean(&rel, &onto, &[syn], &OfdCleanConfig::default());
        assert!(syn_result.data_dist() + syn_result.ontology_dist() > 0);
    }

    #[test]
    fn inheritance_cleaning_repairs_genuine_violations() {
        // The Example 1.2 updates (ASA, adizem) violate even the
        // inheritance reading; cleaning must restore consistency under the
        // real inheritance semantics against the repaired ontology.
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let schema = rel.schema();
        let inh = Ofd::inheritance(
            schema.set(["SYMP", "DIAG"]).unwrap(),
            schema.attr("MED").unwrap(),
            1,
        );
        let v = Validator::new(&rel, &onto);
        assert!(!v.check(&inh).satisfied(), "dirty under inheritance too");
        let result = ofd_clean(&rel, &onto, &[inh], &OfdCleanConfig::default());
        assert!(result.satisfied);
        let v2 = Validator::new(&result.repaired, &result.repaired_ontology);
        assert!(v2.check(&inh).satisfied());
    }

    #[test]
    #[should_panic(expected = "uniform-kind")]
    fn mixed_kind_sigma_is_rejected() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let schema = rel.schema();
        let sigma = vec![
            Ofd::synonym_named(schema, &["CC"], "CTRY").unwrap(),
            Ofd::inheritance(schema.set(["SYMP"]).unwrap(), schema.attr("DIAG").unwrap(), 1),
        ];
        let _ = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
    }

    #[test]
    fn unlimited_guard_runs_to_completion() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(result.complete);
        assert!(result.interrupt.is_none());
    }

    /// Tripping the guard at every possible checkpoint must always yield a
    /// sound partial result: the repaired instance differs from the input
    /// exactly by the listed data repairs, the repaired ontology is S plus
    /// exactly the listed adds, and `satisfied` is truthful.
    #[test]
    fn interrupted_cleaning_is_sound_at_every_checkpoint() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let mut saw_incomplete = false;
        for n in 1..80 {
            let config = OfdCleanConfig::default();
            config.guard.fail_after(n);
            let result = ofd_clean(&rel, &onto, &sigma, &config);
            if result.complete {
                assert!(result.interrupt.is_none());
                // Past the last checkpoint the run is indistinguishable
                // from an unguarded one; no later n can differ either.
                break;
            }
            saw_incomplete = true;
            assert!(result.interrupt.is_some());
            // The repaired instance is the input plus the listed repairs.
            assert_eq!(
                result.repaired.cell_distance(&rel).unwrap(),
                result.data_repairs.len(),
                "n = {n}"
            );
            // The repaired ontology is S plus the listed adds.
            assert_eq!(result.ontology_repair.dist(), result.ontology_adds.len());
            for (v, s) in &result.ontology_adds {
                let text = result.repaired.pool().resolve(*v);
                assert!(result.repaired_ontology.concept(*s).unwrap().has_synonym(text));
            }
            // `satisfied` reflects the actual final state.
            let v = Validator::new(&result.repaired, &result.repaired_ontology);
            assert_eq!(
                result.satisfied,
                sigma.iter().all(|o| v.check(o).satisfied()),
                "n = {n}"
            );
        }
        assert!(saw_incomplete, "fail point 1 must interrupt the run");
    }

    #[test]
    fn instrumented_clean_records_phase_spans_and_counters() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let config = OfdCleanConfig {
            obs: Obs::enabled(),
            ..OfdCleanConfig::default()
        };
        let result = ofd_clean(&rel, &onto, &sigma, &config);
        let snap = config.obs.snapshot();
        assert_eq!(
            snap.counter("clean.search_expansions").unwrap_or(0),
            result.plan.candidates.len() as u64
        );
        assert_eq!(
            snap.counter("clean.repairs_applied").unwrap_or(0),
            result.data_repairs.len() as u64
        );
        assert_eq!(
            snap.counter("clean.sense_reassignments").unwrap_or(0),
            result.reassignments as u64
        );
        for phase in [
            "ofdclean.run",
            "ofdclean.assign",
            "ofdclean.refine",
            "ofdclean.beam_search",
            "ofdclean.repair_data",
            "ofdclean.verify",
        ] {
            assert!(
                snap.spans.iter().any(|s| s.name == phase),
                "missing span {phase}"
            );
        }
        assert_eq!(snap.counter_sum("guard.interrupt."), 0);
    }

    #[test]
    fn interrupted_clean_labels_the_interrupt() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let config = OfdCleanConfig {
            obs: Obs::enabled(),
            ..OfdCleanConfig::default()
        };
        config.guard.fail_after(3);
        let result = ofd_clean(&rel, &onto, &sigma, &config);
        assert!(!result.complete);
        assert_eq!(
            config.obs.snapshot().counter("guard.interrupt.fail_point"),
            Some(1)
        );
    }

    #[test]
    fn pareto_frontier_exposed_to_caller() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = sigma_for(&rel);
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        assert!(!result.plan.pareto.is_empty());
        assert!(result.plan.frontier[0].k == 0);
    }
}
