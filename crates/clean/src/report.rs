//! Markdown repair reports: a human-readable account of what OFDClean did
//! and why — the artifact a data steward reviews before accepting `(S′, I′)`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ofd_core::{Ofd, Relation};
use ofd_ontology::Ontology;

use crate::ofdclean::CleanResult;

/// Renders a markdown report for a cleaning run.
///
/// `rel` is the *dirty* input instance and `onto` the original ontology
/// (used for labels); the result carries the repaired artifacts.
pub fn render_report(
    rel: &Relation,
    onto: &Ontology,
    sigma: &[Ofd],
    result: &CleanResult,
) -> String {
    let mut out = String::from("# OFDClean repair report\n\n");
    let _ = writeln!(
        out,
        "- instance: {} tuples × {} attributes",
        rel.n_rows(),
        rel.n_attrs()
    );
    let _ = writeln!(out, "- |Σ| = {} dependencies", sigma.len());
    let _ = writeln!(
        out,
        "- outcome: **{}** — dist(S, S′) = {}, dist(I, I′) = {}, {} sense reassignment(s)",
        if result.satisfied {
            "I′ ⊨ Σ w.r.t. S′"
        } else {
            "NOT satisfied (budget exhausted)"
        },
        result.ontology_dist(),
        result.data_dist(),
        result.reassignments
    );

    out.push_str("\n## Dependencies\n\n");
    for ofd in sigma {
        let _ = writeln!(out, "- `{}`", ofd.display(rel.schema()));
    }

    out.push_str("\n## Explored repair frontier (k insertions → repairs still needed)\n\n");
    for p in &result.plan.pareto {
        let _ = writeln!(out, "- k = {}: {} (δ_P = {})", p.k, p.cover, p.delta_p);
    }

    if !result.ontology_adds.is_empty() {
        out.push_str("\n## Ontology insertions\n\n");
        for (v, s) in &result.ontology_adds {
            let label = onto
                .concept(*s)
                .map(|c| c.label().to_owned())
                .unwrap_or_else(|_| s.to_string());
            let _ = writeln!(
                out,
                "- `{}` → sense **{label}**",
                result.repaired.pool().resolve(*v)
            );
        }
    }

    if !result.data_repairs.is_empty() {
        out.push_str("\n## Cell repairs by attribute\n\n");
        let mut by_attr: BTreeMap<&str, Vec<&crate::conflict::CellRepair>> = BTreeMap::new();
        for r in &result.data_repairs {
            by_attr
                .entry(result.repaired.schema().name(r.attr))
                .or_default()
                .push(r);
        }
        for (attr, repairs) in by_attr {
            let _ = writeln!(out, "### {attr} ({} repairs)\n", repairs.len());
            for r in repairs.iter().take(10) {
                let _ = writeln!(out, "- row {}: `{}` → `{}`", r.row, r.old, r.new);
            }
            if repairs.len() > 10 {
                let _ = writeln!(out, "- … {} more", repairs.len() - 10);
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdclean::{ofd_clean, OfdCleanConfig};
    use ofd_core::table1_updated;
    use ofd_ontology::samples;

    #[test]
    fn report_covers_every_section() {
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ];
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        let report = render_report(&rel, &onto, &sigma, &result);
        assert!(report.contains("# OFDClean repair report"));
        assert!(report.contains("I′ ⊨ Σ"));
        assert!(report.contains("[SYMP, DIAG] ->syn MED"));
        assert!(report.contains("repair frontier"));
        assert!(report.contains("Cell repairs") || result.data_dist() == 0);
        // The headline distances match the structured result.
        assert!(report.contains(&format!("dist(I, I′) = {}", result.data_dist())));
    }

    #[test]
    fn clean_input_report_is_minimal() {
        let rel = ofd_core::table1();
        let onto = samples::combined_paper_ontology();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        let result = ofd_clean(&rel, &onto, &sigma, &OfdCleanConfig::default());
        let report = render_report(&rel, &onto, &sigma, &result);
        assert!(report.contains("dist(S, S′) = 0, dist(I, I′) = 0"));
        assert!(!report.contains("## Cell repairs"));
        assert!(!report.contains("## Ontology insertions"));
    }
}
