//! Equivalence-class extraction shared by sense assignment and repair.

use ofd_core::FxHashMap;

use ofd_core::{Ofd, Relation, StrippedPartition, ValueId};

/// One non-singleton equivalence class of an OFD's antecedent partition,
/// with its consequent value statistics.
#[derive(Debug, Clone)]
pub struct ClassData {
    /// Tuple ids in the class, ascending.
    pub tuples: Vec<u32>,
    /// Representative (smallest tuple id).
    pub rep: u32,
    /// Distinct consequent values with their tuple counts, by descending
    /// count then ascending value (deterministic).
    pub value_counts: Vec<(ValueId, u32)>,
}

impl ClassData {
    /// Number of tuples.
    pub fn size(&self) -> usize {
        self.tuples.len()
    }

    /// The count for one value (0 if absent).
    pub fn count(&self, v: ValueId) -> u32 {
        self.value_counts
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// The antecedent signature of this class: its lhs values at the
    /// representative tuple.
    pub fn lhs_signature(&self, rel: &Relation, ofd: &Ofd) -> Vec<ValueId> {
        ofd.lhs
            .iter()
            .map(|a| rel.value(self.rep as usize, a))
            .collect()
    }
}

/// All non-singleton classes of one OFD.
#[derive(Debug, Clone)]
pub struct OfdClasses {
    /// Index of the OFD in Σ.
    pub ofd_idx: usize,
    /// The dependency.
    pub ofd: Ofd,
    /// The classes, ordered by representative.
    pub classes: Vec<ClassData>,
}

/// Extracts the non-singleton equivalence classes of every OFD in Σ.
/// Singleton classes can never violate an OFD (Lemma 3.10), so they play no
/// role in sense assignment or repair.
pub fn build_classes(rel: &Relation, sigma: &[Ofd]) -> Vec<OfdClasses> {
    sigma
        .iter()
        .enumerate()
        .map(|(ofd_idx, ofd)| {
            let sp = StrippedPartition::of(rel, ofd.lhs);
            let col = rel.column(ofd.rhs);
            let classes = sp
                .classes()
                .map(|tuples| {
                    let mut counts: FxHashMap<ValueId, u32> = FxHashMap::default();
                    for &t in tuples {
                        *counts.entry(col[t as usize]).or_insert(0) += 1;
                    }
                    let mut value_counts: Vec<(ValueId, u32)> = counts.into_iter().collect();
                    value_counts.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
                    ClassData {
                        rep: tuples[0],
                        tuples: tuples.to_vec(),
                        value_counts,
                    }
                })
                .collect();
            OfdClasses {
                ofd_idx,
                ofd: *ofd,
                classes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::table1_updated;

    #[test]
    fn extracts_headache_class_with_counts() {
        let rel = table1_updated();
        let sigma = vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ];
        let all = build_classes(&rel, &sigma);
        assert_eq!(all.len(), 2);
        // [SYMP,DIAG] classes: joint-pain(3), nausea(3), headache(4);
        // chest-pain is a stripped singleton.
        let med_classes = &all[1];
        assert_eq!(med_classes.classes.len(), 3);
        let headache = &med_classes.classes[2];
        assert_eq!(headache.rep, 7);
        assert_eq!(headache.size(), 4);
        // Four distinct MED values, each once.
        assert_eq!(headache.value_counts.len(), 4);
        assert!(headache.value_counts.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn lhs_signature_identifies_the_class() {
        let rel = table1_updated();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        let all = build_classes(&rel, &sigma);
        let us_class = &all[0].classes[0];
        let sig = us_class.lhs_signature(&rel, &sigma[0]);
        assert_eq!(sig.len(), 1);
        assert_eq!(rel.pool().resolve(sig[0]), "US");
    }

    #[test]
    fn count_lookups() {
        let rel = table1_updated();
        let sigma = vec![Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap()];
        let all = build_classes(&rel, &sigma);
        let us = &all[0].classes[0];
        let usa = rel.pool().get("USA").unwrap();
        assert_eq!(us.count(usa), 5);
        let missing = rel.pool().get("Canada").unwrap();
        assert_eq!(us.count(missing), 0);
    }
}
