//! Partitions Π_X and stripped partitions Π*_X (§2, §3.2).
//!
//! A partition groups tuple ids by their values over an attribute set `X`;
//! the *stripped* partition drops singleton classes, which can never violate
//! an OFD (Lemma 3.10). Products of stripped partitions are computed in
//! linear time with the classic TANE probe-table scheme, which is what makes
//! level-wise lattice discovery linear in the number of tuples.

use std::collections::HashMap;

use crate::relation::Relation;
use crate::schema::{AttrId, AttrSet};
use crate::value::ValueId;

/// A full partition Π_X: every equivalence class, including singletons.
///
/// Classes and their members are sorted ascending, and classes are ordered by
/// representative (smallest member), so partitions compare deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    classes: Vec<Vec<u32>>,
    n_rows: usize,
}

impl Partition {
    /// Computes Π_X for `attrs` over `rel`.
    pub fn of(rel: &Relation, attrs: AttrSet) -> Partition {
        let n = rel.n_rows();
        let attr_list: Vec<AttrId> = attrs.iter().collect();
        let mut classes: Vec<Vec<u32>> = match attr_list.as_slice() {
            [] => {
                if n == 0 {
                    Vec::new()
                } else {
                    vec![(0..n as u32).collect()]
                }
            }
            [single] => {
                let mut groups: HashMap<ValueId, Vec<u32>> = HashMap::new();
                for (t, &v) in rel.column(*single).iter().enumerate() {
                    groups.entry(v).or_default().push(t as u32);
                }
                groups.into_values().collect()
            }
            many => {
                // Two-pass refinement instead of Vec-keyed hashing: group
                // by the first attribute, then refine group ids attribute
                // by attribute — one (u32, ValueId) key per row per
                // attribute, no per-row Vec allocation.
                let mut group_of: Vec<u32> = {
                    let mut ids: HashMap<ValueId, u32> = HashMap::new();
                    rel.column(many[0])
                        .iter()
                        .map(|v| {
                            let next = ids.len() as u32;
                            *ids.entry(*v).or_insert(next)
                        })
                        .collect()
                };
                for a in &many[1..] {
                    let col = rel.column(*a);
                    let mut ids: HashMap<(u32, ValueId), u32> = HashMap::new();
                    for t in 0..n {
                        let next = ids.len() as u32;
                        group_of[t] = *ids.entry((group_of[t], col[t])).or_insert(next);
                    }
                }
                let n_groups = group_of.iter().copied().max().map_or(0, |m| m as usize + 1);
                let mut classes: Vec<Vec<u32>> = vec![Vec::new(); n_groups];
                for (t, &g) in group_of.iter().enumerate() {
                    classes[g as usize].push(t as u32);
                }
                classes.retain(|c| !c.is_empty());
                classes
            }
        };
        classes.sort_unstable_by_key(|c| c[0]);
        Partition { classes, n_rows: n }
    }

    /// The equivalence classes.
    #[inline]
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Number of classes (including singletons).
    #[inline]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of tuples partitioned.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Drops singleton classes, yielding Π*_X.
    pub fn strip(&self) -> StrippedPartition {
        StrippedPartition {
            classes: self
                .classes
                .iter()
                .filter(|c| c.len() >= 2)
                .cloned()
                .collect(),
            n_rows: self.n_rows,
        }
    }
}

/// A stripped partition Π*_X: only classes with at least two tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    classes: Vec<Vec<u32>>,
    n_rows: usize,
}

/// Reusable scratch buffers for [`StrippedPartition::product_with_scratch`],
/// so repeated products during lattice traversal do not reallocate.
#[derive(Debug, Default)]
pub struct ProductScratch {
    probe: Vec<usize>,
    bins: Vec<Vec<u32>>,
    touched: Vec<usize>,
}

const UNASSIGNED: usize = usize::MAX;

impl StrippedPartition {
    /// Computes Π*_X directly.
    pub fn of(rel: &Relation, attrs: AttrSet) -> StrippedPartition {
        Partition::of(rel, attrs).strip()
    }

    /// The empty stripped partition over `n_rows` tuples — the partition of
    /// any superkey. Used by Opt-3 to skip partition products below keys.
    pub fn empty(n_rows: usize) -> StrippedPartition {
        StrippedPartition {
            classes: Vec::new(),
            n_rows,
        }
    }

    /// Computes the single-attribute stripped partition — the level-1 inputs
    /// of the discovery lattice.
    pub fn of_attr(rel: &Relation, attr: AttrId) -> StrippedPartition {
        StrippedPartition::of(rel, AttrSet::single(attr))
    }

    /// The equivalence classes, each of size ≥ 2.
    #[inline]
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Number of non-singleton classes.
    #[inline]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of tuples in the underlying relation.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Total tuples across all retained classes (`||Π*||`).
    pub fn tuple_count(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// TANE's error measure `e(X) = (||Π*|| − |Π*|) / n`: the fraction of
    /// tuples that must be removed for `X` to become a key.
    pub fn error(&self) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        (self.tuple_count() - self.class_count()) as f64 / self.n_rows as f64
    }

    /// Whether `X` is a superkey: the stripped partition is empty
    /// (Optimization 3 / Lemma "Keys").
    #[inline]
    pub fn is_superkey(&self) -> bool {
        self.classes.is_empty()
    }

    /// Linear-time product Π*_X · Π*_Y = Π*_{X ∪ Y}.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        let mut scratch = ProductScratch::default();
        self.product_with_scratch(other, &mut scratch)
    }

    /// Product reusing caller-provided scratch buffers.
    pub fn product_with_scratch(
        &self,
        other: &StrippedPartition,
        scratch: &mut ProductScratch,
    ) -> StrippedPartition {
        debug_assert_eq!(self.n_rows, other.n_rows);
        // Probe table: tuple -> index of its class in `self` (or UNASSIGNED).
        scratch.probe.clear();
        scratch.probe.resize(self.n_rows, UNASSIGNED);
        if scratch.bins.len() < self.classes.len() {
            scratch.bins.resize_with(self.classes.len(), Vec::new);
        }
        for (i, class) in self.classes.iter().enumerate() {
            for &t in class {
                scratch.probe[t as usize] = i;
            }
        }
        let mut out: Vec<Vec<u32>> = Vec::new();
        for class in &other.classes {
            scratch.touched.clear();
            for &t in class {
                let p = scratch.probe[t as usize];
                if p != UNASSIGNED {
                    if scratch.bins[p].is_empty() {
                        scratch.touched.push(p);
                    }
                    scratch.bins[p].push(t);
                }
            }
            for &p in &scratch.touched {
                if scratch.bins[p].len() >= 2 {
                    out.push(std::mem::take(&mut scratch.bins[p]));
                } else {
                    scratch.bins[p].clear();
                }
            }
        }
        out.sort_unstable_by_key(|c| c[0]);
        StrippedPartition {
            classes: out,
            n_rows: self.n_rows,
        }
    }

    /// Whether this partition refines `other`: every class here is contained
    /// in a single class of `other` (treating stripped-away tuples as
    /// singletons). Π*_{X∪Y} always refines Π*_X.
    pub fn refines(&self, other: &StrippedPartition) -> bool {
        let mut probe = vec![UNASSIGNED; self.n_rows];
        for (i, class) in other.classes.iter().enumerate() {
            for &t in class {
                probe[t as usize] = i;
            }
        }
        self.classes.iter().all(|class| {
            let first = probe[class[0] as usize];
            first != UNASSIGNED && class.iter().all(|&t| probe[t as usize] == first)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::table1;

    fn cc_partition() -> (Relation, StrippedPartition) {
        let rel = table1();
        let cc = rel.schema().attr("CC").unwrap();
        let p = StrippedPartition::of_attr(&rel, cc);
        (rel, p)
    }

    #[test]
    fn paper_example_pi_cc() {
        // §2: Π_CC = {{t1,t5,t6,t8..t11},{t2,t4,t7},{t3}} (1-indexed in the
        // paper; the extended Table 1 has 11 tuples so the US class grows).
        let rel = table1();
        let cc = rel.schema().attr("CC").unwrap();
        let p = Partition::of(&rel, AttrSet::single(cc));
        assert_eq!(p.class_count(), 3);
        assert_eq!(p.classes()[0], vec![0, 4, 5, 7, 8, 9, 10]); // US
        assert_eq!(p.classes()[1], vec![1, 3, 6]); // IN
        assert_eq!(p.classes()[2], vec![2]); // CA
    }

    #[test]
    fn strip_drops_singletons() {
        let (_, p) = cc_partition();
        assert_eq!(p.class_count(), 2, "the CA singleton is stripped");
        assert_eq!(p.tuple_count(), 10);
        assert!(!p.is_superkey());
    }

    #[test]
    fn empty_attrset_partition_is_one_class() {
        let rel = table1();
        let p = Partition::of(&rel, AttrSet::empty());
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.classes()[0].len(), 11);
    }

    #[test]
    fn multi_attribute_partition_groups_by_tuple() {
        let rel = table1();
        let set = rel.schema().set(["SYMP", "DIAG"]).unwrap();
        let p = Partition::of(&rel, set);
        // joint pain/osteo ×3, nausea/migrane ×3, chest pain/hyp ×1, headache/hyp ×4
        assert_eq!(p.class_count(), 4);
        let sizes: Vec<usize> = p.classes().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 1, 4]);
    }

    #[test]
    fn product_equals_direct_computation() {
        let rel = table1();
        let schema = rel.schema();
        for (a, b) in [("CC", "SYMP"), ("SYMP", "DIAG"), ("TEST", "DIAG"), ("CC", "TEST")] {
            let pa = StrippedPartition::of(&rel, schema.set([a]).unwrap());
            let pb = StrippedPartition::of(&rel, schema.set([b]).unwrap());
            let direct = StrippedPartition::of(&rel, schema.set([a, b]).unwrap());
            assert_eq!(pa.product(&pb), direct, "{a}·{b}");
            assert_eq!(pb.product(&pa), direct, "{b}·{a} (commutativity)");
        }
    }

    #[test]
    fn product_of_key_is_empty() {
        let rel = table1();
        // (CC, CTRY, SYMP, TEST, DIAG, MED) all together: is it a key?
        let all = rel.schema().all();
        let p = StrippedPartition::of(&rel, all);
        // t9 (idx 8) and t11 (idx 10)? rows 8 and 10 differ in TEST. Full
        // tuples in table1: rows 8,9 differ in CTRY; all rows distinct.
        assert!(p.is_superkey());
        assert_eq!(p.error(), 0.0);
    }

    #[test]
    fn error_measures_key_violations() {
        let (_, p) = cc_partition();
        // ||Π*|| = 10, |Π*| = 2, n = 11.
        assert!((p.error() - 8.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn product_refines_both_factors() {
        let rel = table1();
        let schema = rel.schema();
        let pa = StrippedPartition::of(&rel, schema.set(["CC"]).unwrap());
        let pb = StrippedPartition::of(&rel, schema.set(["DIAG"]).unwrap());
        let prod = pa.product(&pb);
        assert!(prod.refines(&pa));
        assert!(prod.refines(&pb));
        assert!(!pa.refines(&prod) || pa == prod);
    }

    #[test]
    fn scratch_reuse_matches_fresh_product() {
        let rel = table1();
        let schema = rel.schema();
        let pa = StrippedPartition::of(&rel, schema.set(["CC"]).unwrap());
        let pb = StrippedPartition::of(&rel, schema.set(["SYMP"]).unwrap());
        let pc = StrippedPartition::of(&rel, schema.set(["DIAG"]).unwrap());
        let mut scratch = ProductScratch::default();
        let r1 = pa.product_with_scratch(&pb, &mut scratch);
        let r2 = pa.product_with_scratch(&pc, &mut scratch);
        assert_eq!(r1, pa.product(&pb));
        assert_eq!(r2, pa.product(&pc));
    }

    mod properties {
        use super::*;
        use crate::schema::Schema;
        use proptest::prelude::*;

        fn arb_relation() -> impl Strategy<Value = Relation> {
            prop::collection::vec(prop::collection::vec(0u8..4, 4), 1..24).prop_map(|rows| {
                let mut b = Relation::builder(
                    Schema::new(["A", "B", "C", "D"]).expect("schema"),
                );
                for row in &rows {
                    let cells: Vec<String> = row.iter().map(|v| format!("v{v}")).collect();
                    b.push_row(cells.iter().map(String::as_str)).expect("row");
                }
                b.finish()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Product equals direct computation for random attribute pairs.
            #[test]
            fn product_equals_direct(rel in arb_relation(), a in 0usize..4, b in 0usize..4) {
                let pa = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(a)));
                let pb = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(b)));
                let direct = StrippedPartition::of(
                    &rel,
                    AttrSet::single(AttrId::from_index(a)).with(AttrId::from_index(b)),
                );
                prop_assert_eq!(pa.product(&pb), direct);
            }

            /// Product is commutative and associative.
            #[test]
            fn product_is_commutative_and_associative(rel in arb_relation()) {
                let ps: Vec<StrippedPartition> = (0..3)
                    .map(|i| StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(i))))
                    .collect();
                prop_assert_eq!(ps[0].product(&ps[1]), ps[1].product(&ps[0]));
                let left = ps[0].product(&ps[1]).product(&ps[2]);
                let right = ps[0].product(&ps[1].product(&ps[2]));
                prop_assert_eq!(left, right);
            }

            /// A product refines both factors, and the error measure never
            /// increases under refinement.
            #[test]
            fn product_refines_and_error_shrinks(rel in arb_relation()) {
                let pa = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(0)));
                let pb = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(1)));
                let prod = pa.product(&pb);
                prop_assert!(prod.refines(&pa));
                prop_assert!(prod.refines(&pb));
                prop_assert!(prod.error() <= pa.error() + 1e-12);
                prop_assert!(prod.error() <= pb.error() + 1e-12);
            }
        }
    }

    #[test]
    fn classes_are_sorted_canonically() {
        let (_, p) = cc_partition();
        for c in p.classes() {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "members ascending");
        }
        assert!(
            p.classes().windows(2).all(|w| w[0][0] < w[1][0]),
            "classes ordered by representative"
        );
    }
}
