//! Partitions Π_X and stripped partitions Π*_X (§2, §3.2).
//!
//! A partition groups tuple ids by their values over an attribute set `X`;
//! the *stripped* partition drops singleton classes, which can never violate
//! an OFD (Lemma 3.10). Products of stripped partitions are computed in
//! linear time with the classic TANE probe-table scheme, which is what makes
//! level-wise lattice discovery linear in the number of tuples.
//!
//! ## Memory layout
//!
//! Both partition types use a flat CSR (compressed sparse row) layout:
//! one `tuples` array holding every member, and an `offsets` array of
//! `class_count + 1` entries delimiting classes — class `i` is
//! `tuples[offsets[i]..offsets[i+1]]`. Two allocations per partition
//! regardless of class count, cache-linear iteration, and byte accounting
//! ([`StrippedPartition::approx_bytes`]) in O(1).
//!
//! The layout is **canonical by construction**: members ascend within a
//! class and classes are ordered by representative (smallest member), so
//! `==` on the flat arrays is semantic partition equality. Group ids are
//! assigned in first-occurrence order during refinement, which already
//! orders groups by representative — a counting-sort scatter in row order
//! therefore emits canonical CSR without any final sort.

use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use crate::schema::{AttrId, AttrSet};
use crate::value::ValueId;

/// Iterator over the classes of a CSR partition, yielding `&[u32]` slices.
#[derive(Debug, Clone)]
pub struct Classes<'a> {
    tuples: &'a [u32],
    offsets: &'a [u32],
}

impl<'a> Iterator for Classes<'a> {
    type Item = &'a [u32];

    #[inline]
    fn next(&mut self) -> Option<&'a [u32]> {
        match self.offsets {
            [start, rest @ ..] if !rest.is_empty() => {
                self.offsets = rest;
                Some(&self.tuples[*start as usize..rest[0] as usize])
            }
            _ => None,
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.offsets.len().saturating_sub(1);
        (n, Some(n))
    }
}

impl ExactSizeIterator for Classes<'_> {}

/// Builds canonical CSR arrays from per-row group ids, where group ids were
/// assigned in first-occurrence order (id 0 appears before id 1, …). A
/// counting-sort scatter in row order then yields members ascending within
/// each class and classes ordered by representative — no sort needed.
fn csr_from_group_ids(group_of: &[u32], n_groups: usize) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32; n_groups + 1];
    for &g in group_of {
        offsets[g as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor: Vec<u32> = offsets[..n_groups].to_vec();
    let mut tuples = vec![0u32; group_of.len()];
    for (t, &g) in group_of.iter().enumerate() {
        let c = &mut cursor[g as usize];
        tuples[*c as usize] = t as u32;
        *c += 1;
    }
    (tuples, offsets)
}

/// A full partition Π_X: every equivalence class, including singletons.
///
/// Classes and their members are sorted ascending, and classes are ordered by
/// representative (smallest member), so partitions compare deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    tuples: Vec<u32>,
    offsets: Vec<u32>,
    n_rows: usize,
}

impl Partition {
    /// Computes Π_X for `attrs` over `rel`.
    pub fn of(rel: &Relation, attrs: AttrSet) -> Partition {
        let n = rel.n_rows();
        let attr_list: Vec<AttrId> = attrs.iter().collect();
        let (tuples, offsets) = match attr_list.as_slice() {
            [] => {
                if n == 0 {
                    (Vec::new(), vec![0])
                } else {
                    ((0..n as u32).collect(), vec![0, n as u32])
                }
            }
            many => {
                // Two-pass refinement instead of Vec-keyed hashing: group
                // by the first attribute, then refine group ids attribute
                // by attribute — one (u32, ValueId) key per row per
                // attribute, no per-row Vec allocation. Group ids are
                // assigned densely in first-occurrence order.
                let mut n_groups;
                let mut group_of: Vec<u32> = {
                    let mut ids: FxHashMap<ValueId, u32> = FxHashMap::default();
                    let col = rel.column(many[0]);
                    let out = col
                        .iter()
                        .map(|v| {
                            let next = ids.len() as u32;
                            *ids.entry(*v).or_insert(next)
                        })
                        .collect();
                    n_groups = ids.len();
                    out
                };
                for a in &many[1..] {
                    let col = rel.column(*a);
                    let mut ids: FxHashMap<(u32, ValueId), u32> = FxHashMap::default();
                    for t in 0..n {
                        let next = ids.len() as u32;
                        group_of[t] = *ids.entry((group_of[t], col[t])).or_insert(next);
                    }
                    n_groups = ids.len();
                }
                csr_from_group_ids(&group_of, n_groups)
            }
        };
        Partition {
            tuples,
            offsets,
            n_rows: n,
        }
    }

    /// Iterates the equivalence classes as slices, in canonical order.
    #[inline]
    pub fn classes(&self) -> Classes<'_> {
        Classes {
            tuples: &self.tuples,
            offsets: &self.offsets,
        }
    }

    /// The `i`-th equivalence class in canonical order.
    #[inline]
    pub fn class(&self, i: usize) -> &[u32] {
        &self.tuples[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of classes (including singletons).
    #[inline]
    pub fn class_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of tuples partitioned.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Drops singleton classes, yielding Π*_X (copying; prefer
    /// [`Partition::into_stripped`] when the full partition is no longer
    /// needed).
    pub fn strip(&self) -> StrippedPartition {
        self.clone().into_stripped()
    }

    /// Drops singleton classes in place, yielding Π*_X without copying the
    /// retained tuple data to a fresh allocation.
    pub fn into_stripped(self) -> StrippedPartition {
        let Partition {
            mut tuples,
            offsets,
            n_rows,
        } = self;
        let mut kept = vec![0u32];
        let mut w = 0usize;
        for i in 0..offsets.len() - 1 {
            let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
            if e - s >= 2 {
                tuples.copy_within(s..e, w);
                w += e - s;
                kept.push(w as u32);
            }
        }
        tuples.truncate(w);
        StrippedPartition {
            tuples,
            offsets: kept,
            n_rows,
        }
    }
}

/// A stripped partition Π*_X: only classes with at least two tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    tuples: Vec<u32>,
    offsets: Vec<u32>,
    n_rows: usize,
}

/// Reusable scratch buffers for [`StrippedPartition::product_with_scratch`],
/// so repeated products during lattice traversal do not reallocate.
///
/// Invariant between calls: every `probe` entry is `UNASSIGNED` and every
/// `counts` entry is zero — each product resets exactly the entries it
/// touched (O(‖Π*‖), not O(n)) before returning.
#[derive(Debug, Default)]
pub struct ProductScratch {
    probe: Vec<u32>,
    counts: Vec<u32>,
    cursor: Vec<u32>,
    touched: Vec<u32>,
    out_tuples: Vec<u32>,
    metas: Vec<ClassMeta>,
}

/// Per-output-class bookkeeping during a product: representative (smallest
/// member) plus the class's region in the staging buffer.
#[derive(Debug, Clone, Copy)]
struct ClassMeta {
    first: u32,
    start: u32,
    len: u32,
}

const UNASSIGNED: u32 = u32::MAX;
const SKIP: u32 = u32::MAX;

impl StrippedPartition {
    /// Computes Π*_X directly.
    pub fn of(rel: &Relation, attrs: AttrSet) -> StrippedPartition {
        Partition::of(rel, attrs).into_stripped()
    }

    /// The empty stripped partition over `n_rows` tuples — the partition of
    /// any superkey. Used by Opt-3 to skip partition products below keys.
    pub fn empty(n_rows: usize) -> StrippedPartition {
        StrippedPartition {
            tuples: Vec::new(),
            offsets: vec![0],
            n_rows,
        }
    }

    /// Computes the single-attribute stripped partition — the level-1 inputs
    /// of the discovery lattice.
    pub fn of_attr(rel: &Relation, attr: AttrId) -> StrippedPartition {
        StrippedPartition::of(rel, AttrSet::single(attr))
    }

    /// Computes Π*_X restricted to the contiguous tuple range `rows` — the
    /// per-shard inputs of sharded discovery. Tuple ids stay **global**, so
    /// consequent columns index directly and range partitions compose with
    /// [`StrippedPartition::product_with_scratch`] exactly like full ones
    /// (out-of-range tuples behave as stripped singletons). `n_rows` remains
    /// the full relation size; the range is clamped to it.
    pub fn of_range(
        rel: &Relation,
        attrs: AttrSet,
        rows: std::ops::Range<usize>,
    ) -> StrippedPartition {
        let n = rel.n_rows();
        let rows = rows.start.min(n)..rows.end.min(n);
        let len = rows.end.saturating_sub(rows.start);
        let attr_list: Vec<AttrId> = attrs.iter().collect();
        if attr_list.is_empty() {
            // Π*_∅ over the range: one class holding every in-range tuple.
            if len < 2 {
                return StrippedPartition::empty(n);
            }
            return StrippedPartition {
                tuples: (rows.start as u32..rows.end as u32).collect(),
                offsets: vec![0, len as u32],
                n_rows: n,
            };
        }
        // Same dense group-id refinement as `Partition::of`, over the range
        // only; positions are range-relative until the final offset shift.
        let mut n_groups;
        let mut group_of: Vec<u32> = {
            let mut ids: FxHashMap<ValueId, u32> = FxHashMap::default();
            let col = rel.column(attr_list[0]);
            let out = col[rows.clone()]
                .iter()
                .map(|v| {
                    let next = ids.len() as u32;
                    *ids.entry(*v).or_insert(next)
                })
                .collect();
            n_groups = ids.len();
            out
        };
        for a in &attr_list[1..] {
            let col = rel.column(*a);
            let mut ids: FxHashMap<(u32, ValueId), u32> = FxHashMap::default();
            for (t, g) in group_of.iter_mut().enumerate() {
                let next = ids.len() as u32;
                *g = *ids.entry((*g, col[rows.start + t])).or_insert(next);
            }
            n_groups = ids.len();
        }
        let (mut tuples, offsets) = csr_from_group_ids(&group_of, n_groups);
        // Back to global tuple ids; ascending order within classes and the
        // representative ordering across classes survive the uniform shift.
        for t in &mut tuples {
            *t += rows.start as u32;
        }
        Partition {
            tuples,
            offsets,
            n_rows: n,
        }
        .into_stripped()
    }

    /// Builds Π* from explicit classes (used by lhs-synonym merging, which
    /// coarsens a partition outside any attribute set). Classes are
    /// canonicalized: members sorted ascending, singletons dropped, classes
    /// ordered by representative. Members must be distinct and `< n_rows`.
    pub fn from_classes(
        n_rows: usize,
        classes: impl IntoIterator<Item = Vec<u32>>,
    ) -> StrippedPartition {
        let mut sorted: Vec<Vec<u32>> = classes
            .into_iter()
            .filter(|c| c.len() >= 2)
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        sorted.sort_unstable_by_key(|c| c[0]);
        let mut tuples = Vec::with_capacity(sorted.iter().map(Vec::len).sum());
        let mut offsets = Vec::with_capacity(sorted.len() + 1);
        offsets.push(0u32);
        for c in &sorted {
            debug_assert!(c.iter().all(|&t| (t as usize) < n_rows));
            tuples.extend_from_slice(c);
            offsets.push(tuples.len() as u32);
        }
        StrippedPartition {
            tuples,
            offsets,
            n_rows,
        }
    }

    /// Iterates the equivalence classes (each of size ≥ 2) as slices, in
    /// canonical order.
    #[inline]
    pub fn classes(&self) -> Classes<'_> {
        Classes {
            tuples: &self.tuples,
            offsets: &self.offsets,
        }
    }

    /// The `i`-th equivalence class in canonical order.
    #[inline]
    pub fn class(&self, i: usize) -> &[u32] {
        &self.tuples[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of non-singleton classes.
    #[inline]
    pub fn class_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of tuples in the underlying relation.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Total tuples across all retained classes (`||Π*||`).
    #[inline]
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Approximate heap + inline footprint in bytes, used for cache byte
    /// accounting. Exact for the CSR arrays (4 bytes per entry); allocator
    /// overhead is not modelled.
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<StrippedPartition>()
            + (self.tuples.capacity() + self.offsets.capacity()) * std::mem::size_of::<u32>()
    }

    /// TANE's error measure `e(X) = (||Π*|| − |Π*|) / n`: the fraction of
    /// tuples that must be removed for `X` to become a key.
    pub fn error(&self) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        (self.tuple_count() - self.class_count()) as f64 / self.n_rows as f64
    }

    /// Whether `X` is a superkey: the stripped partition is empty
    /// (Optimization 3 / Lemma "Keys").
    #[inline]
    pub fn is_superkey(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Linear-time product Π*_X · Π*_Y = Π*_{X ∪ Y}.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        let mut scratch = ProductScratch::default();
        self.product_with_scratch(other, &mut scratch)
    }

    /// Product reusing caller-provided scratch buffers. The hot path does
    /// not allocate per class: intersections are counted, staged into one
    /// flat buffer, and emitted as CSR; only the two output arrays are
    /// freshly allocated.
    pub fn product_with_scratch(
        &self,
        other: &StrippedPartition,
        scratch: &mut ProductScratch,
    ) -> StrippedPartition {
        debug_assert_eq!(self.n_rows, other.n_rows);
        // Probe table: tuple -> class index in `self` (or UNASSIGNED). Grown
        // lazily; entries outside a call are UNASSIGNED by invariant, so
        // only `self`'s tuples need resetting afterwards.
        if scratch.probe.len() < self.n_rows {
            scratch.probe.resize(self.n_rows, UNASSIGNED);
        }
        let nc = self.class_count();
        if scratch.counts.len() < nc {
            scratch.counts.resize(nc, 0);
            scratch.cursor.resize(nc, 0);
        }
        for (i, class) in self.classes().enumerate() {
            for &t in class {
                scratch.probe[t as usize] = i as u32;
            }
        }
        scratch.out_tuples.clear();
        scratch.metas.clear();
        for class in other.classes() {
            // Count pass: size of each intersection with `self`'s classes.
            scratch.touched.clear();
            for &t in class {
                let p = scratch.probe[t as usize];
                if p != UNASSIGNED {
                    if scratch.counts[p as usize] == 0 {
                        scratch.touched.push(p);
                    }
                    scratch.counts[p as usize] += 1;
                }
            }
            // Reserve a staging region per intersection of size ≥ 2.
            for &p in &scratch.touched {
                let c = scratch.counts[p as usize];
                scratch.cursor[p as usize] = if c >= 2 {
                    let start = scratch.out_tuples.len() as u32;
                    scratch.metas.push(ClassMeta {
                        first: 0,
                        start,
                        len: c,
                    });
                    scratch
                        .out_tuples
                        .resize(scratch.out_tuples.len() + c as usize, 0);
                    start
                } else {
                    SKIP
                };
            }
            // Scatter pass: members arrive in ascending order because the
            // source class is ascending.
            for &t in class {
                let p = scratch.probe[t as usize];
                if p != UNASSIGNED {
                    let cur = scratch.cursor[p as usize];
                    if cur != SKIP {
                        scratch.out_tuples[cur as usize] = t;
                        scratch.cursor[p as usize] = cur + 1;
                    }
                }
            }
            for &p in &scratch.touched {
                scratch.counts[p as usize] = 0;
            }
        }
        // Canonical class order: sort by representative (distinct keys).
        for m in &mut scratch.metas {
            m.first = scratch.out_tuples[m.start as usize];
        }
        scratch.metas.sort_unstable_by_key(|m| m.first);
        let mut tuples = Vec::with_capacity(scratch.out_tuples.len());
        let mut offsets = Vec::with_capacity(scratch.metas.len() + 1);
        offsets.push(0u32);
        for m in &scratch.metas {
            tuples.extend_from_slice(
                &scratch.out_tuples[m.start as usize..(m.start + m.len) as usize],
            );
            offsets.push(tuples.len() as u32);
        }
        // Restore the probe invariant in O(||self||).
        for &t in &self.tuples {
            scratch.probe[t as usize] = UNASSIGNED;
        }
        StrippedPartition {
            tuples,
            offsets,
            n_rows: self.n_rows,
        }
    }

    /// Whether this partition refines `other`: every class here is contained
    /// in a single class of `other` (treating stripped-away tuples as
    /// singletons). Π*_{X∪Y} always refines Π*_X.
    pub fn refines(&self, other: &StrippedPartition) -> bool {
        let mut probe = vec![UNASSIGNED; self.n_rows];
        for (i, class) in other.classes().enumerate() {
            for &t in class {
                probe[t as usize] = i as u32;
            }
        }
        self.classes().all(|class| {
            let first = probe[class[0] as usize];
            first != UNASSIGNED && class.iter().all(|&t| probe[t as usize] == first)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::table1;

    fn cc_partition() -> (Relation, StrippedPartition) {
        let rel = table1();
        let cc = rel.schema().attr("CC").unwrap();
        let p = StrippedPartition::of_attr(&rel, cc);
        (rel, p)
    }

    #[test]
    fn of_range_full_range_equals_of() {
        let rel = table1();
        let n = rel.schema().len();
        for bits in 0..(1u64 << n.min(4)) {
            let attrs = AttrSet::from_bits(bits);
            assert_eq!(
                StrippedPartition::of_range(&rel, attrs, 0..rel.n_rows()),
                StrippedPartition::of(&rel, attrs),
                "attrs bits {bits:#b}"
            );
        }
    }

    #[test]
    fn of_range_keeps_global_tuple_ids_and_clamps() {
        let rel = table1();
        let cc = AttrSet::single(rel.schema().attr("CC").unwrap());
        let sp = StrippedPartition::of_range(&rel, cc, 3..rel.n_rows());
        for class in sp.classes() {
            assert!(class.iter().all(|&t| (3..rel.n_rows() as u32).contains(&t)));
            assert!(class.windows(2).all(|w| w[0] < w[1]), "ascending members");
        }
        // Out-of-bounds and degenerate ranges behave like empty partitions.
        let far = StrippedPartition::of_range(&rel, cc, rel.n_rows()..rel.n_rows() + 5);
        assert!(far.is_superkey());
        assert_eq!(far.n_rows(), rel.n_rows());
        let empty_attrs = StrippedPartition::of_range(&rel, AttrSet::empty(), 2..3);
        assert!(empty_attrs.is_superkey(), "a 1-row range strips to nothing");
    }

    #[test]
    fn of_range_products_compose_like_full_partitions() {
        // Π*_X|range · Π*_Y|range must equal Π*_{X∪Y}|range: out-of-range
        // tuples are absent from both operands, exactly as stripped
        // singletons are, so the TANE product stays closed over ranges.
        let rel = table1();
        let schema = rel.schema();
        let ranges = [0..5usize, 2..9, 5..rel.n_rows(), 0..rel.n_rows()];
        let pairs = [
            (["CC"].as_slice(), ["SYMP"].as_slice()),
            (&["SYMP"], &["DIAG"]),
            (&["CC", "SYMP"], &["TEST"]),
        ];
        let mut scratch = ProductScratch::default();
        for range in &ranges {
            for (xs, ys) in &pairs {
                let x = schema.set(xs.iter().copied()).unwrap();
                let y = schema.set(ys.iter().copied()).unwrap();
                let px = StrippedPartition::of_range(&rel, x, range.clone());
                let py = StrippedPartition::of_range(&rel, y, range.clone());
                assert_eq!(
                    px.product_with_scratch(&py, &mut scratch),
                    StrippedPartition::of_range(&rel, x.union(y), range.clone()),
                    "range {range:?}, X={xs:?}, Y={ys:?}"
                );
            }
        }
    }

    #[test]
    fn paper_example_pi_cc() {
        // §2: Π_CC = {{t1,t5,t6,t8..t11},{t2,t4,t7},{t3}} (1-indexed in the
        // paper; the extended Table 1 has 11 tuples so the US class grows).
        let rel = table1();
        let cc = rel.schema().attr("CC").unwrap();
        let p = Partition::of(&rel, AttrSet::single(cc));
        assert_eq!(p.class_count(), 3);
        assert_eq!(p.class(0), &[0, 4, 5, 7, 8, 9, 10]); // US
        assert_eq!(p.class(1), &[1, 3, 6]); // IN
        assert_eq!(p.class(2), &[2]); // CA
    }

    #[test]
    fn strip_drops_singletons() {
        let (_, p) = cc_partition();
        assert_eq!(p.class_count(), 2, "the CA singleton is stripped");
        assert_eq!(p.tuple_count(), 10);
        assert!(!p.is_superkey());
    }

    #[test]
    fn into_stripped_matches_strip() {
        let rel = table1();
        for name in ["CC", "SYMP", "DIAG", "TEST"] {
            let set = rel.schema().set([name]).unwrap();
            let full = Partition::of(&rel, set);
            assert_eq!(full.strip(), full.clone().into_stripped(), "{name}");
        }
    }

    #[test]
    fn empty_attrset_partition_is_one_class() {
        let rel = table1();
        let p = Partition::of(&rel, AttrSet::empty());
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.class(0).len(), 11);
    }

    #[test]
    fn multi_attribute_partition_groups_by_tuple() {
        let rel = table1();
        let set = rel.schema().set(["SYMP", "DIAG"]).unwrap();
        let p = Partition::of(&rel, set);
        // joint pain/osteo ×3, nausea/migrane ×3, chest pain/hyp ×1, headache/hyp ×4
        assert_eq!(p.class_count(), 4);
        let sizes: Vec<usize> = p.classes().map(<[u32]>::len).collect();
        assert_eq!(sizes, vec![3, 3, 1, 4]);
    }

    #[test]
    fn product_equals_direct_computation() {
        let rel = table1();
        let schema = rel.schema();
        for (a, b) in [("CC", "SYMP"), ("SYMP", "DIAG"), ("TEST", "DIAG"), ("CC", "TEST")] {
            let pa = StrippedPartition::of(&rel, schema.set([a]).unwrap());
            let pb = StrippedPartition::of(&rel, schema.set([b]).unwrap());
            let direct = StrippedPartition::of(&rel, schema.set([a, b]).unwrap());
            assert_eq!(pa.product(&pb), direct, "{a}·{b}");
            assert_eq!(pb.product(&pa), direct, "{b}·{a} (commutativity)");
        }
    }

    #[test]
    fn product_of_key_is_empty() {
        let rel = table1();
        // (CC, CTRY, SYMP, TEST, DIAG, MED) all together: is it a key?
        let all = rel.schema().all();
        let p = StrippedPartition::of(&rel, all);
        // t9 (idx 8) and t11 (idx 10)? rows 8 and 10 differ in TEST. Full
        // tuples in table1: rows 8,9 differ in CTRY; all rows distinct.
        assert!(p.is_superkey());
        assert_eq!(p.error(), 0.0);
    }

    #[test]
    fn error_measures_key_violations() {
        let (_, p) = cc_partition();
        // ||Π*|| = 10, |Π*| = 2, n = 11.
        assert!((p.error() - 8.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn product_refines_both_factors() {
        let rel = table1();
        let schema = rel.schema();
        let pa = StrippedPartition::of(&rel, schema.set(["CC"]).unwrap());
        let pb = StrippedPartition::of(&rel, schema.set(["DIAG"]).unwrap());
        let prod = pa.product(&pb);
        assert!(prod.refines(&pa));
        assert!(prod.refines(&pb));
        assert!(!pa.refines(&prod) || pa == prod);
    }

    #[test]
    fn scratch_reuse_matches_fresh_product() {
        let rel = table1();
        let schema = rel.schema();
        let pa = StrippedPartition::of(&rel, schema.set(["CC"]).unwrap());
        let pb = StrippedPartition::of(&rel, schema.set(["SYMP"]).unwrap());
        let pc = StrippedPartition::of(&rel, schema.set(["DIAG"]).unwrap());
        let mut scratch = ProductScratch::default();
        let r1 = pa.product_with_scratch(&pb, &mut scratch);
        let r2 = pa.product_with_scratch(&pc, &mut scratch);
        assert_eq!(r1, pa.product(&pb));
        assert_eq!(r2, pa.product(&pc));
    }

    #[test]
    fn from_classes_canonicalizes() {
        // Unsorted members, unordered classes, and a singleton to drop.
        let sp = StrippedPartition::from_classes(
            8,
            vec![vec![5, 3], vec![7], vec![2, 0, 4]],
        );
        assert_eq!(sp.class_count(), 2);
        assert_eq!(sp.class(0), &[0, 2, 4]);
        assert_eq!(sp.class(1), &[3, 5]);
        assert_eq!(sp.n_rows(), 8);
    }

    #[test]
    fn approx_bytes_tracks_csr_arrays() {
        let (_, p) = cc_partition();
        let base = std::mem::size_of::<StrippedPartition>();
        assert!(p.approx_bytes() >= base + (p.tuple_count() + p.class_count() + 1) * 4);
        assert!(StrippedPartition::empty(100).approx_bytes() >= base);
    }

    mod properties {
        use super::*;
        use crate::schema::Schema;
        use proptest::prelude::*;

        fn arb_relation() -> impl Strategy<Value = Relation> {
            prop::collection::vec(prop::collection::vec(0u8..4, 4), 1..24).prop_map(|rows| {
                let mut b = Relation::builder(
                    Schema::new(["A", "B", "C", "D"]).expect("schema"),
                );
                for row in &rows {
                    let cells: Vec<String> = row.iter().map(|v| format!("v{v}")).collect();
                    b.push_row(cells.iter().map(String::as_str)).expect("row");
                }
                b.finish()
            })
        }

        /// The pre-CSR nested product, kept as a differential reference: the
        /// classic probe-table scheme building `Vec<Vec<u32>>` bins.
        fn nested_reference_product(
            a: &StrippedPartition,
            b: &StrippedPartition,
        ) -> Vec<Vec<u32>> {
            const FREE: usize = usize::MAX;
            let mut probe = vec![FREE; a.n_rows()];
            for (i, class) in a.classes().enumerate() {
                for &t in class {
                    probe[t as usize] = i;
                }
            }
            let mut bins: Vec<Vec<u32>> = vec![Vec::new(); a.class_count()];
            let mut out: Vec<Vec<u32>> = Vec::new();
            for class in b.classes() {
                let mut touched = Vec::new();
                for &t in class {
                    let p = probe[t as usize];
                    if p != FREE {
                        if bins[p].is_empty() {
                            touched.push(p);
                        }
                        bins[p].push(t);
                    }
                }
                for p in touched {
                    if bins[p].len() >= 2 {
                        out.push(std::mem::take(&mut bins[p]));
                    } else {
                        bins[p].clear();
                    }
                }
            }
            out.sort_unstable_by_key(|c| c[0]);
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Product equals direct computation for random attribute pairs.
            #[test]
            fn product_equals_direct(rel in arb_relation(), a in 0usize..4, b in 0usize..4) {
                let pa = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(a)));
                let pb = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(b)));
                let direct = StrippedPartition::of(
                    &rel,
                    AttrSet::single(AttrId::from_index(a)).with(AttrId::from_index(b)),
                );
                prop_assert_eq!(pa.product(&pb), direct);
            }

            /// Differential test: the CSR product agrees class-for-class
            /// with the legacy nested-Vec probe-table product, including
            /// over multi-attribute operands.
            #[test]
            fn csr_product_matches_nested_reference(
                rel in arb_relation(),
                a in 0usize..4,
                b in 0usize..4,
                c in 0usize..4,
            ) {
                let pa = StrippedPartition::of(
                    &rel,
                    AttrSet::single(AttrId::from_index(a)).with(AttrId::from_index(c)),
                );
                let pb = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(b)));
                let csr = pa.product(&pb);
                let reference = nested_reference_product(&pa, &pb);
                let got: Vec<Vec<u32>> = csr.classes().map(<[u32]>::to_vec).collect();
                prop_assert_eq!(got, reference);
            }

            /// Product is commutative and associative.
            #[test]
            fn product_is_commutative_and_associative(rel in arb_relation()) {
                let ps: Vec<StrippedPartition> = (0..3)
                    .map(|i| StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(i))))
                    .collect();
                prop_assert_eq!(ps[0].product(&ps[1]), ps[1].product(&ps[0]));
                let left = ps[0].product(&ps[1]).product(&ps[2]);
                let right = ps[0].product(&ps[1].product(&ps[2]));
                prop_assert_eq!(left, right);
            }

            /// A product refines both factors, and the error measure never
            /// increases under refinement.
            #[test]
            fn product_refines_and_error_shrinks(rel in arb_relation()) {
                let pa = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(0)));
                let pb = StrippedPartition::of(&rel, AttrSet::single(AttrId::from_index(1)));
                let prod = pa.product(&pb);
                prop_assert!(prod.refines(&pa));
                prop_assert!(prod.refines(&pb));
                prop_assert!(prod.error() <= pa.error() + 1e-12);
                prop_assert!(prod.error() <= pb.error() + 1e-12);
            }

            /// into_stripped is strip without the copy.
            #[test]
            fn into_stripped_equals_strip(rel in arb_relation(), a in 0usize..4, b in 0usize..4) {
                let set = AttrSet::single(AttrId::from_index(a)).with(AttrId::from_index(b));
                let full = Partition::of(&rel, set);
                prop_assert_eq!(full.strip(), full.into_stripped());
            }
        }
    }

    #[test]
    fn classes_are_sorted_canonically() {
        let (_, p) = cc_partition();
        for c in p.classes() {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "members ascending");
        }
        let reps: Vec<u32> = p.classes().map(|c| c[0]).collect();
        assert!(
            reps.windows(2).all(|w| w[0] < w[1]),
            "classes ordered by representative"
        );
    }
}
