//! String interning: every distinct cell value is stored once and referred
//! to by a dense [`ValueId`], so equality checks and hash keys on the hot
//! paths are integer-sized.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned value within one [`ValuePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// The dense index of this value (0-based, interning order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a value id from a dense index previously obtained from
    /// [`ValueId::index`] against the same pool.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ValueId(u32::try_from(index).expect("value index exceeds u32"))
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An append-only interner mapping strings to dense [`ValueId`]s.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    strings: Vec<String>,
    lookup: HashMap<String, ValueId>,
}

impl ValuePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, value: &str) -> ValueId {
        if let Some(&id) = self.lookup.get(value) {
            return id;
        }
        let id = ValueId::from_index(self.strings.len());
        self.strings.push(value.to_owned());
        self.lookup.insert(value.to_owned(), id);
        id
    }

    /// Looks up the id of an already-interned value.
    #[inline]
    pub fn get(&self, value: &str) -> Option<ValueId> {
        self.lookup.get(value).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this pool.
    #[inline]
    pub fn resolve(&self, id: ValueId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of distinct values interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the pool is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(id, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (ValueId::from_index(i), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut p = ValuePool::new();
        let a = p.intern("USA");
        let b = p.intern("America");
        let a2 = p.intern("USA");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.resolve(a), "USA");
        assert_eq!(p.resolve(b), "America");
    }

    #[test]
    fn get_does_not_intern() {
        let mut p = ValuePool::new();
        assert_eq!(p.get("x"), None);
        let id = p.intern("x");
        assert_eq!(p.get("x"), Some(id));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn iter_preserves_order() {
        let mut p = ValuePool::new();
        for v in ["c", "a", "b"] {
            p.intern(v);
        }
        let got: Vec<&str> = p.iter().map(|(_, s)| s).collect();
        assert_eq!(got, vec!["c", "a", "b"]);
        for (id, s) in p.iter() {
            assert_eq!(p.resolve(id), s);
        }
    }

    #[test]
    fn ids_round_trip_through_index() {
        let id = ValueId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "v5");
    }
}
