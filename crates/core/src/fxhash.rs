//! A zero-dependency FxHash-style hasher for hot-path maps keyed by small
//! integers (`ValueId`, group ids, attribute-set bits).
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! collision-resistant against adversarial inputs, which matters where map
//! keys are attacker-controlled strings — but it costs tens of cycles per
//! key. Partition refinement and OFD verification hash millions of *dense
//! interned integers* per run; for those, the Firefox `FxHasher` mixing step
//! (`rotate ⊕ multiply` per word) is 3–5× cheaper and entirely adequate.
//!
//! Safety argument for untrusted CSV input: raw strings never reach an
//! Fx-keyed map. CSV cells are interned through [`crate::ValuePool`], whose
//! string → id lookup keeps the std SipHash map; everything downstream keys
//! on the resulting dense `u32`/`u64` ids. An adversary controls which ids
//! *exist* but not their numeric values (assigned first-come, densely), so
//! they cannot craft multi-collision key sets against the fixed Fx
//! multiplier any more precisely than random data would.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier: a 64-bit constant with good bit dispersion
/// (`0x51_7c_c1_b7_27_22_0a_95`), as used by the Firefox and rustc hashers.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher (FxHash). Not collision-resistant;
/// use only for maps keyed by interned ids or other non-adversarial data.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (word, tail) = rest.split_at(8);
            self.add(u64::from_le_bytes(word.try_into().expect("8-byte chunk")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; deterministic (no per-map random seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — for interned-id keys on hot paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`] — for interned-id keys on hot paths.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&(7u32, 9u64)), hash_of(&(7u32, 9u64)));
    }

    #[test]
    fn disperses_small_integers() {
        // Dense ids must not collapse to a few buckets: all distinct inputs
        // hash distinctly and differ in their high bits (hashbrown uses the
        // top 7 bits for its control bytes).
        let hashes: Vec<u64> = (0u32..1024).map(|v| hash_of(&v)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "no collisions on dense ids");
        let top: std::collections::HashSet<u8> =
            hashes.iter().map(|h| (h >> 57) as u8).collect();
        assert!(top.len() > 64, "high bits vary ({} distinct)", top.len());
    }

    #[test]
    fn byte_stream_matches_word_writes() {
        // Equal-length byte inputs produce stable output irrespective of
        // chunking internals.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(99));
        assert!(s.contains(&99));
    }
}
