//! Violation evidence from sampled tuple pairs (HyFD-style pre-filtering).
//!
//! A single tuple pair is a sound *refutation* witness for exact OFDs: if
//! `t1` and `t2` agree on every attribute of `X` and their values on `A`
//! are distinct with no common sense, then the class of `Π_X` containing
//! the pair has no covering interpretation — `X → A` fails on *any*
//! relation containing both tuples. The converse never holds (the Table 2
//! counterexample: pairwise compatibility does not imply a class-wide
//! witness), so evidence only ever answers "refuted", never "satisfied".
//!
//! Discovery gathers evidence from focused row samples and consults it
//! before paying for a full-relation scan; see
//! `ofd-discovery`'s sampling module for the gathering policy.

use crate::fxhash::FxHashSet;
use crate::relation::Relation;
use crate::schema::{AttrId, AttrSet};
use crate::sense_index::SenseIndex;

/// Refutation evidence for exact OFD candidates, deduplicated.
///
/// Per consequent attribute `A`, stores the agree-sets (as [`AttrSet`]
/// bits) of observed pairs whose `A`-values are *incompatible* (distinct
/// and sharing no sense). A candidate `X → A` is refuted iff some stored
/// agree-set contains `X`.
#[derive(Debug, Default, Clone)]
pub struct EvidenceSet {
    per_rhs: Vec<Vec<u64>>,
    seen: FxHashSet<(u64, u32)>,
    pairs: u64,
}

impl EvidenceSet {
    /// An empty evidence set over a schema of `n_attrs` attributes.
    pub fn new(n_attrs: usize) -> EvidenceSet {
        EvidenceSet {
            per_rhs: vec![Vec::new(); n_attrs],
            seen: FxHashSet::default(),
            pairs: 0,
        }
    }

    /// Records the evidence of one tuple pair: computes the agree-set and,
    /// for every attribute where the pair is incompatible, stores a
    /// refutation witness. Returns how many *new* (agree-set, consequent)
    /// entries the pair contributed.
    pub fn observe_pair(
        &mut self,
        rel: &Relation,
        index: &SenseIndex,
        t1: usize,
        t2: usize,
    ) -> usize {
        let mut agree = AttrSet::empty();
        let mut incompat = AttrSet::empty();
        for a in rel.schema().attrs() {
            let (v1, v2) = (rel.value(t1, a), rel.value(t2, a));
            if v1 == v2 {
                agree.insert(a);
            } else if !shares_sense(index.senses(v1), index.senses(v2)) {
                incompat.insert(a);
            }
        }
        if incompat.is_empty() {
            return 0;
        }
        self.pairs += 1;
        let mut added = 0;
        for a in incompat.iter() {
            if self.seen.insert((agree.bits(), a.index() as u32)) {
                self.per_rhs[a.index()].push(agree.bits());
                added += 1;
            }
        }
        added
    }

    /// Records a raw witness: pairs agreeing exactly on `agree` refute any
    /// exact `X → rhs` with `X ⊆ agree`. (Test/tool entry point; discovery
    /// uses [`EvidenceSet::observe_pair`].)
    pub fn observe_agree(&mut self, agree: AttrSet, rhs: AttrId) {
        if self.seen.insert((agree.bits(), rhs.index() as u32)) {
            self.per_rhs[rhs.index()].push(agree.bits());
        }
    }

    /// Whether the recorded evidence refutes the exact OFD `lhs → rhs`.
    #[inline]
    pub fn refutes(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        let need = lhs.bits();
        self.per_rhs
            .get(rhs.index())
            .is_some_and(|w| w.iter().any(|&agree| agree & need == need))
    }

    /// Number of distinct (agree-set, consequent) witnesses stored.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no witness has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Number of observed pairs that contributed at least one incompatible
    /// consequent (before witness deduplication).
    pub fn pair_count(&self) -> u64 {
        self.pairs
    }
}

/// Whether two sorted sense lists intersect (merge scan; sense lists are
/// short in practice).
fn shares_sense(a: &[ofd_ontology::SenseId], b: &[ofd_ontology::SenseId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::table1;
    use ofd_ontology::samples;

    #[test]
    fn pair_evidence_refutes_subset_antecedents_only() {
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let schema = rel.schema();
        let mut ev = EvidenceSet::new(schema.len());
        // Rows 3 and 4 of Table 1: same CC ("IN"), different CTRY texts
        // ("India" vs "Bharat") — but those are synonyms, so CTRY is NOT
        // incompatible; scan all pairs and check agreement semantics on
        // whatever evidence falls out.
        for t1 in 0..rel.n_rows() {
            for t2 in (t1 + 1)..rel.n_rows() {
                ev.observe_pair(&rel, &index, t1, t2);
            }
        }
        assert!(!ev.is_empty(), "Table 1 has incompatible pairs");
        // CC → CTRY is a valid synonym OFD on Table 1, so no evidence may
        // refute it (soundness).
        let cc = schema.set(["CC"]).unwrap();
        let ctry = schema.attr("CTRY").unwrap();
        assert!(!ev.refutes(cc, ctry));
        // SYMP,DIAG → MED fails as a synonym OFD (the nausea class), and
        // full pair enumeration must surface a witness for it.
        let sd = schema.set(["SYMP", "DIAG"]).unwrap();
        let med = schema.attr("MED").unwrap();
        assert!(ev.refutes(sd, med));
        // Soundness over every small antecedent: whenever the evidence
        // refutes X → A, the exact check over the full relation must fail
        // too (never the other way a refutation gets invented).
        let v = crate::validate::Validator::new(&rel, &onto);
        for a in schema.attrs() {
            for bits in 0..(1u64 << schema.len()) {
                let lhs = AttrSet::from_bits(bits);
                if lhs.len() > 2 || lhs.contains(a) {
                    continue;
                }
                if ev.refutes(lhs, a) {
                    let ofd = crate::ofd::Ofd::synonym(lhs, a);
                    assert!(
                        !v.check(&ofd).satisfied(),
                        "evidence refuted a valid OFD {}",
                        ofd.display(schema)
                    );
                }
            }
        }
    }

    #[test]
    fn observe_agree_dedups_and_matches_refutes() {
        let rel = table1();
        let schema = rel.schema();
        let mut ev = EvidenceSet::new(schema.len());
        let x = schema.set(["CC", "SYMP"]).unwrap();
        let rhs = schema.attr("MED").unwrap();
        ev.observe_agree(x, rhs);
        ev.observe_agree(x, rhs);
        assert_eq!(ev.len(), 1);
        assert!(ev.refutes(schema.set(["CC"]).unwrap(), rhs));
        assert!(ev.refutes(x, rhs));
        assert!(!ev.refutes(schema.set(["CC", "TEST"]).unwrap(), rhs));
        assert!(!ev.refutes(x, schema.attr("CTRY").unwrap()));
    }
}
