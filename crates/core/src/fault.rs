//! Seeded, deterministic fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] generalizes the guard's single test-only fail point into
//! a schedule of injectable faults, shared (cheaply, via `Arc`) between the
//! caller, the engines and the snapshot store:
//!
//! * **snapshot-io** — a snapshot write returns an I/O error before any
//!   byte reaches disk (the atomic writer guarantees the previous snapshot
//!   survives);
//! * **snapshot-torn** — a snapshot write crashes mid-write, leaving a
//!   truncated file at the final path (exercising the loader's checksum
//!   validation; this simulates a *non-atomic* writer dying, the worst
//!   case the store must tolerate);
//! * **panic** — a verification worker panics mid-candidate
//!   ([`FaultPlan::worker_panic`] fires inside the engine's
//!   `catch_unwind` region and surfaces as
//!   [`Interrupt::WorkerPanic`](crate::Interrupt::WorkerPanic));
//! * **delay** — a worker sleeps briefly, perturbing thread interleaving.
//!
//! The **network sites** extend the same machinery to the TCP paths of
//! the multi-host fleet. They are probed by the in-process chaos proxy
//! (`ofd-serve`'s `netfault` module), once per accepted connection, in
//! severity order — the first site to fire decides the connection's
//! toxic:
//!
//! * **net-refuse** — the connection is closed before any byte is
//!   relayed (a refused/reset dial);
//! * **net-blackhole** — the connection is accepted and the request
//!   read, but no reply byte is ever written (the client's read
//!   timeout is the only way out);
//! * **net-reset** — the upstream reply is relayed up to a point
//!   *inside the body*, then the connection closes (a torn reply);
//! * **net-partial** — a prefix of the reply is written, then the
//!   connection stalls open without closing;
//! * **net-delay** — the whole exchange is relayed intact after a
//!   `delay-ms` sleep.
//!
//! Each site fires either **scheduled** (`site@N`: exactly the `N`-th
//! occurrence, 1-based) or **probabilistic** (`site%P`: each occurrence
//! independently with probability `P`, decided by a hash of
//! `(seed, site, occurrence)`). Both are deterministic functions of the
//! seed and the per-site occurrence counter, so a schedule replays
//! identically across runs — occurrence counts, not thread identity,
//! decide what fires.
//!
//! Plans parse from a compact spec (CLI `--faults` / `FASTOFD_FAULTS`):
//!
//! ```text
//! seed=42,snapshot-io%0.2,panic@17,delay%0.05,delay-ms=2
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Payload of an injected worker panic; the filtering panic hook installed
/// by [`silence_injected_panics`] recognizes it.
pub const INJECTED_PANIC: &str = "injected worker panic (fault plan)";

/// The injectable fault sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Snapshot write fails cleanly (I/O error, nothing written).
    SnapshotIo,
    /// Snapshot write dies mid-write (truncated file at the final path).
    SnapshotTorn,
    /// Verification worker panics.
    WorkerPanic,
    /// Worker sleeps for the plan's delay duration.
    Delay,
    /// Proxy relays the connection intact after a `delay-ms` sleep.
    NetDelay,
    /// Proxy closes the connection mid-reply-body (torn reply).
    NetReset,
    /// Proxy writes a prefix of the reply, then stalls without closing.
    NetPartial,
    /// Proxy accepts and reads the request but never replies.
    NetBlackhole,
    /// Proxy closes the connection before relaying anything.
    NetRefuse,
}

const N_SITES: usize = 9;

/// The network fault sites, in the severity order the proxy probes them.
pub const NET_SITES: [FaultSite; 5] = [
    FaultSite::NetRefuse,
    FaultSite::NetBlackhole,
    FaultSite::NetReset,
    FaultSite::NetPartial,
    FaultSite::NetDelay,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::SnapshotIo => 0,
            FaultSite::SnapshotTorn => 1,
            FaultSite::WorkerPanic => 2,
            FaultSite::Delay => 3,
            FaultSite::NetDelay => 4,
            FaultSite::NetReset => 5,
            FaultSite::NetPartial => 6,
            FaultSite::NetBlackhole => 7,
            FaultSite::NetRefuse => 8,
        }
    }

    /// The spec-file name of the site.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SnapshotIo => "snapshot-io",
            FaultSite::SnapshotTorn => "snapshot-torn",
            FaultSite::WorkerPanic => "panic",
            FaultSite::Delay => "delay",
            FaultSite::NetDelay => "net-delay",
            FaultSite::NetReset => "net-reset",
            FaultSite::NetPartial => "net-partial",
            FaultSite::NetBlackhole => "net-blackhole",
            FaultSite::NetRefuse => "net-refuse",
        }
    }
}

/// The toxic a chaos proxy applies to one connection, decided by
/// [`FaultPlan::net_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Relay intact after the plan's delay.
    Delay,
    /// Relay part of the reply body, then close.
    Reset,
    /// Write a prefix of the reply, then stall open.
    Partial,
    /// Never write a reply byte.
    Blackhole,
    /// Close before relaying anything.
    Refuse,
}

impl NetFault {
    /// The fault site this toxic was rolled from.
    pub fn site(self) -> FaultSite {
        match self {
            NetFault::Delay => FaultSite::NetDelay,
            NetFault::Reset => FaultSite::NetReset,
            NetFault::Partial => FaultSite::NetPartial,
            NetFault::Blackhole => FaultSite::NetBlackhole,
            NetFault::Refuse => FaultSite::NetRefuse,
        }
    }

    /// Short label for schedules and logs (the site name without the
    /// `net-` prefix).
    pub fn label(self) -> &'static str {
        match self {
            NetFault::Delay => "delay",
            NetFault::Reset => "reset",
            NetFault::Partial => "partial",
            NetFault::Blackhole => "blackhole",
            NetFault::Refuse => "refuse",
        }
    }
}

/// How one snapshot write should fail, per the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFault {
    /// Return an I/O error without writing.
    Error,
    /// Write a truncated file at the final path, then report the error.
    Torn,
}

#[derive(Debug, Default)]
struct SiteState {
    /// Scheduled firing: the 1-based occurrence that fires (0 = off).
    at: u64,
    /// Probabilistic firing threshold: occurrence fires when
    /// `hash(seed, site, n) < prob_bits` (0 = off).
    prob_bits: u64,
    /// Occurrences observed so far.
    hits: AtomicU64,
    /// Occurrences that fired.
    fired: AtomicU64,
}

#[derive(Debug)]
struct FaultState {
    seed: u64,
    delay: Duration,
    sites: [SiteState; N_SITES],
}

/// A cheap, cloneable fault-injection plan; the default plan injects
/// nothing and costs one pointer check per probe.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Option<Arc<FaultState>>,
}

/// SplitMix64: a well-mixed deterministic hash of the (seed, site,
/// occurrence) triple.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: never fires, near-zero probe cost.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan can fire at all.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// Parses a fault spec: comma-separated entries of `seed=N`,
    /// `delay-ms=N`, `<site>@N` (scheduled) or `<site>%P` (probabilistic)
    /// where `<site>` is one of `snapshot-io`, `snapshot-torn`, `panic`,
    /// `delay`, `net-delay`, `net-reset`, `net-partial`, `net-blackhole`,
    /// `net-refuse`. An empty spec yields the inert plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::none());
        }
        let mut seed: u64 = 0;
        let mut delay_ms: u64 = 1;
        let mut sites: [SiteState; N_SITES] = Default::default();
        let mut any = false;
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(v) = entry.strip_prefix("seed=") {
                seed = v
                    .parse()
                    .map_err(|_| FaultSpecError::bad(entry, "seed expects an integer"))?;
            } else if let Some(v) = entry.strip_prefix("delay-ms=") {
                delay_ms = v
                    .parse()
                    .map_err(|_| FaultSpecError::bad(entry, "delay-ms expects an integer"))?;
            } else if let Some((name, n)) = entry.split_once('@') {
                let site = site_by_name(name)
                    .ok_or_else(|| FaultSpecError::bad(entry, "unknown fault site"))?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| FaultSpecError::bad(entry, "@ expects an occurrence number"))?;
                if n == 0 {
                    return Err(FaultSpecError::bad(entry, "occurrences are 1-based"));
                }
                sites[site.index()].at = n;
                any = true;
            } else if let Some((name, p)) = entry.split_once('%') {
                let site = site_by_name(name)
                    .ok_or_else(|| FaultSpecError::bad(entry, "unknown fault site"))?;
                let p: f64 = p
                    .parse()
                    .map_err(|_| FaultSpecError::bad(entry, "% expects a probability"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(FaultSpecError::bad(entry, "probability must be in [0, 1]"));
                }
                sites[site.index()].prob_bits = (p * u64::MAX as f64) as u64;
                any = true;
            } else {
                return Err(FaultSpecError::bad(entry, "expected key=value, site@N or site%P"));
            }
        }
        if !any {
            return Ok(FaultPlan::none());
        }
        Ok(FaultPlan {
            state: Some(Arc::new(FaultState {
                seed,
                delay: Duration::from_millis(delay_ms),
                sites,
            })),
        })
    }

    /// A plan with exactly one scheduled fault: `site` fires at its `n`-th
    /// occurrence (1-based).
    pub fn scheduled(site: FaultSite, n: u64) -> FaultPlan {
        assert!(n >= 1, "occurrences are 1-based");
        let mut sites: [SiteState; N_SITES] = Default::default();
        sites[site.index()].at = n;
        FaultPlan {
            state: Some(Arc::new(FaultState {
                seed: 0,
                delay: Duration::from_millis(1),
                sites,
            })),
        }
    }

    /// Rolls one occurrence of `site`; `true` means the fault fires.
    fn roll(&self, site: FaultSite) -> bool {
        let Some(state) = &self.state else {
            return false;
        };
        let s = &state.sites[site.index()];
        if s.at == 0 && s.prob_bits == 0 {
            return false;
        }
        let n = s.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = (s.at != 0 && n == s.at)
            || (s.prob_bits != 0
                && mix64(state.seed ^ ((site.index() as u64) << 56) ^ n) < s.prob_bits);
        if fire {
            s.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Probes the snapshot-write sites; `Some` means this write must fail
    /// in the indicated way. Torn writes take precedence (they subsume the
    /// clean error).
    pub fn snapshot_write_fault(&self) -> Option<SnapshotFault> {
        if self.roll(FaultSite::SnapshotTorn) {
            return Some(SnapshotFault::Torn);
        }
        if self.roll(FaultSite::SnapshotIo) {
            return Some(SnapshotFault::Error);
        }
        None
    }

    /// Probes the worker-panic site; panics with [`INJECTED_PANIC`] when it
    /// fires. Engines call this *inside* their `catch_unwind` region so an
    /// injected panic travels the same path a genuine worker bug would.
    pub fn worker_panic(&self) {
        if self.roll(FaultSite::WorkerPanic) {
            panic!("{INJECTED_PANIC}");
        }
    }

    /// Probes the delay site; sleeps for the plan's delay when it fires.
    pub fn delay(&self) {
        if self.roll(FaultSite::Delay) {
            if let Some(state) = &self.state {
                std::thread::sleep(state.delay);
            }
        }
    }

    /// Probes the network sites, once per accepted connection: rolls each
    /// armed site in severity order ([`NET_SITES`] — refuse, blackhole,
    /// reset, partial, delay) and returns the first toxic that fires, or
    /// `None` for a clean relay. Short-circuiting keeps the per-site
    /// `fired` counters equal to the toxics a proxy actually *applied*,
    /// so `serve.net.*` counter attribution is exact.
    pub fn net_fault(&self) -> Option<NetFault> {
        self.state.as_ref()?;
        for site in NET_SITES {
            if self.roll(site) {
                return Some(match site {
                    FaultSite::NetDelay => NetFault::Delay,
                    FaultSite::NetReset => NetFault::Reset,
                    FaultSite::NetPartial => NetFault::Partial,
                    FaultSite::NetBlackhole => NetFault::Blackhole,
                    _ => NetFault::Refuse,
                });
            }
        }
        None
    }

    /// The plan's configured delay (`delay-ms=`), used by the `delay`
    /// worker site and the `net-delay` proxy toxic alike.
    pub fn delay_duration(&self) -> Duration {
        self.state
            .as_ref()
            .map(|s| s.delay)
            .unwrap_or(Duration::from_millis(1))
    }

    /// Faults fired so far at `site`.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.state
            .as_ref()
            .map(|s| s.sites[site.index()].fired.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        [
            FaultSite::SnapshotIo,
            FaultSite::SnapshotTorn,
            FaultSite::WorkerPanic,
            FaultSite::Delay,
            FaultSite::NetDelay,
            FaultSite::NetReset,
            FaultSite::NetPartial,
            FaultSite::NetBlackhole,
            FaultSite::NetRefuse,
        ]
        .iter()
        .map(|&s| self.fired(s))
        .sum()
    }

    /// Faults fired across the network sites only — what a chaos proxy
    /// injected, for reconciling against the `serve.net.*` counters.
    pub fn net_fired(&self) -> u64 {
        NET_SITES.iter().map(|&s| self.fired(s)).sum()
    }
}

fn site_by_name(name: &str) -> Option<FaultSite> {
    match name.trim() {
        "snapshot-io" => Some(FaultSite::SnapshotIo),
        "snapshot-torn" => Some(FaultSite::SnapshotTorn),
        "panic" => Some(FaultSite::WorkerPanic),
        "delay" => Some(FaultSite::Delay),
        "net-delay" => Some(FaultSite::NetDelay),
        "net-reset" => Some(FaultSite::NetReset),
        "net-partial" => Some(FaultSite::NetPartial),
        "net-blackhole" => Some(FaultSite::NetBlackhole),
        "net-refuse" => Some(FaultSite::NetRefuse),
        _ => None,
    }
}

/// A malformed `--faults` spec entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending entry.
    pub entry: String,
    /// What was wrong with it.
    pub message: &'static str,
}

impl FaultSpecError {
    fn bad(entry: &str, message: &'static str) -> FaultSpecError {
        FaultSpecError {
            entry: entry.to_owned(),
            message,
        }
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec entry {:?}: {}", self.entry, self.message)
    }
}

impl std::error::Error for FaultSpecError {}

/// Installs a process-wide panic hook that suppresses the backtrace spam of
/// *injected* worker panics (payload == [`INJECTED_PANIC`]) while passing
/// every genuine panic through to the previously installed hook.
/// Idempotent; used by the chaos probe and the fault-injection tests.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == INJECTED_PANIC)
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s == INJECTED_PANIC);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        for _ in 0..1000 {
            assert!(p.snapshot_write_fault().is_none());
            p.worker_panic(); // must not panic
            p.delay();
        }
        assert_eq!(p.total_fired(), 0);
    }

    #[test]
    fn scheduled_fault_fires_exactly_once_at_n() {
        let p = FaultPlan::scheduled(FaultSite::SnapshotIo, 3);
        assert_eq!(p.snapshot_write_fault(), None);
        assert_eq!(p.snapshot_write_fault(), None);
        assert_eq!(p.snapshot_write_fault(), Some(SnapshotFault::Error));
        assert_eq!(p.snapshot_write_fault(), None);
        assert_eq!(p.fired(FaultSite::SnapshotIo), 1);
    }

    #[test]
    fn probabilistic_faults_are_deterministic_per_seed() {
        let fires = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::parse(&format!("seed={seed},snapshot-io%0.5")).unwrap();
            (0..64).map(|_| p.snapshot_write_fault().is_some()).collect()
        };
        assert_eq!(fires(7), fires(7), "same seed, same schedule");
        assert_ne!(fires(7), fires(8), "different seed, different schedule");
        let count = fires(7).iter().filter(|&&b| b).count();
        assert!((8..=56).contains(&count), "p=0.5 fires roughly half: {count}");
    }

    #[test]
    fn parse_round_trips_every_site() {
        let p = FaultPlan::parse("seed=9,snapshot-io@1,snapshot-torn@2,panic@99,delay%1.0,delay-ms=0")
            .unwrap();
        assert!(p.is_active());
        assert_eq!(p.snapshot_write_fault(), Some(SnapshotFault::Error));
        // Occurrence 2 of the torn site (occurrence counters are per-site;
        // the first call above consumed occurrence 1 of both).
        assert_eq!(p.snapshot_write_fault(), Some(SnapshotFault::Torn));
        p.delay(); // p=1, fires and sleeps 0ms
        assert_eq!(p.fired(FaultSite::Delay), 1);
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("unknown@3").is_err());
        assert!(FaultPlan::parse("panic@0").is_err());
        assert!(FaultPlan::parse("panic%1.5").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(!FaultPlan::parse("").unwrap().is_active());
        assert!(!FaultPlan::parse("seed=3").unwrap().is_active());
    }

    #[test]
    fn injected_panic_is_catchable() {
        silence_injected_panics();
        let p = FaultPlan::scheduled(FaultSite::WorkerPanic, 1);
        let caught = std::panic::catch_unwind(|| p.worker_panic());
        assert!(caught.is_err());
        assert_eq!(p.fired(FaultSite::WorkerPanic), 1);
    }

    #[test]
    fn net_sites_parse_scheduled_and_probabilistic_forms() {
        // Every net site round-trips through the spec grammar in both
        // the scheduled (@N) and probabilistic (%P) forms.
        for site in NET_SITES {
            let p = FaultPlan::parse(&format!("{}@1", site.name())).unwrap();
            assert!(p.is_active(), "{} @N parses", site.name());
            let toxic = p.net_fault().expect("first occurrence fires");
            assert_eq!(toxic.site(), site);
            assert_eq!(p.net_fault(), None, "scheduled site fires exactly once");
            assert_eq!(p.fired(site), 1);

            let p = FaultPlan::parse(&format!("seed=5,{}%1.0", site.name())).unwrap();
            assert_eq!(p.net_fault().map(NetFault::site), Some(site), "{} %P parses", site.name());
        }
        // All five in one spec, each scheduled at its own occurrence 1.
        // Short-circuit probing means a site's occurrence counter only
        // advances when no more-severe site fired, so the five toxics
        // cascade out in severity order, one per connection.
        let p = FaultPlan::parse(
            "seed=1,net-refuse@1,net-blackhole@1,net-reset@1,net-partial@1,net-delay@1",
        )
        .unwrap();
        assert_eq!(p.net_fault(), Some(NetFault::Refuse));
        assert_eq!(p.net_fault(), Some(NetFault::Blackhole));
        assert_eq!(p.net_fault(), Some(NetFault::Reset));
        assert_eq!(p.net_fault(), Some(NetFault::Partial));
        assert_eq!(p.net_fault(), Some(NetFault::Delay));
        assert_eq!(p.net_fault(), None);
        assert_eq!(p.net_fired(), 5);
        assert_eq!(p.total_fired(), 5);
    }

    #[test]
    fn net_sites_reject_unknown_and_malformed_entries() {
        assert!(FaultPlan::parse("net-bogus@1").is_err(), "unknown net site");
        assert!(FaultPlan::parse("net-reset@0").is_err(), "occurrences are 1-based");
        assert!(FaultPlan::parse("net-delay%2.0").is_err(), "probability out of range");
        assert!(FaultPlan::parse("net-blackhole").is_err(), "missing @N / %P form");
    }

    #[test]
    fn same_seed_replays_the_same_toxic_schedule() {
        let spec = "seed=42,net-delay%0.3,net-reset%0.2,net-blackhole%0.1,net-refuse%0.1";
        let schedule = |spec: &str| -> Vec<Option<NetFault>> {
            let p = FaultPlan::parse(spec).unwrap();
            (0..128).map(|_| p.net_fault()).collect()
        };
        assert_eq!(schedule(spec), schedule(spec), "same seed, same schedule");
        assert_ne!(
            schedule(spec),
            schedule("seed=43,net-delay%0.3,net-reset%0.2,net-blackhole%0.1,net-refuse%0.1"),
            "different seed, different schedule"
        );
        let fired = schedule(spec).iter().filter(|t| t.is_some()).count();
        assert!(fired > 10, "the mixed spec actually injects: {fired}");
    }

    #[test]
    fn clones_share_occurrence_counters() {
        let p = FaultPlan::scheduled(FaultSite::SnapshotIo, 2);
        let q = p.clone();
        assert_eq!(p.snapshot_write_fault(), None);
        assert_eq!(q.snapshot_write_fault(), Some(SnapshotFault::Error));
    }
}
