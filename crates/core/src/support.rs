//! Exact κ-support arithmetic shared by discovery, the brute-force oracle
//! and the cleaning stack.
//!
//! Support is a ratio of integers — `covered_tuples / n_rows` — so the
//! threshold test `support ≥ κ` must not be decided in floating point on
//! the ratio side. Doing so invited the historical epsilon fudge
//! (`s + 1e-12 >= κ`), which could accept a candidate whose true support
//! is strictly below κ (e.g. 7999/10000 at κ = 0.8 when the division
//! rounds up) and let FastOFD disagree with the oracle at the boundary.
//!
//! The exact rule implemented here: a dependency meets support κ over
//! `n_rows` tuples iff its covered-tuple count reaches
//! [`support_threshold`] `= ceil(κ · n_rows)`, computed once and compared
//! in pure integer arithmetic. The f64 `support()` value remains available
//! for display only.

/// The minimum number of covered tuples required for support κ over
/// `n_rows` tuples: `ceil(κ · n_rows)`, clamped to `0..=n_rows`.
///
/// The product is evaluated once in f64 — for every κ that is a
/// representable ratio over `n_rows` (e.g. 0.8 × 10) the rounded product
/// is the exact integer, so boundary cases land exactly; all subsequent
/// comparisons are integer-only.
pub fn support_threshold(n_rows: usize, kappa: f64) -> usize {
    if n_rows == 0 {
        return 0;
    }
    let raw = (kappa * n_rows as f64).ceil();
    // NaN κ demands nothing, like κ ≤ 0.
    if raw.is_nan() || raw <= 0.0 {
        0
    } else if raw >= n_rows as f64 {
        n_rows
    } else {
        raw as usize
    }
}

/// Whether a dependency with `violations` uncovered tuples over `n_rows`
/// meets support κ: `n_rows − violations ≥ ceil(κ · n_rows)`.
///
/// This is the single κ-threshold comparison in the codebase; FastOFD, the
/// brute-force oracle and approximate cleaning all route through it, so
/// they cannot disagree at the boundary.
pub fn meets_support(violations: usize, n_rows: usize, kappa: f64) -> bool {
    n_rows.saturating_sub(violations) >= support_threshold(n_rows, kappa)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_exact_at_representable_boundaries() {
        assert_eq!(support_threshold(10, 0.8), 8);
        assert_eq!(support_threshold(10, 1.0), 10);
        assert_eq!(support_threshold(10, 0.5), 5);
        assert_eq!(support_threshold(4, 0.75), 3);
        assert_eq!(support_threshold(10_000, 0.8), 8_000);
    }

    #[test]
    fn threshold_rounds_up_for_unrepresentable_ratios() {
        // 0.95 × 10 = 9.5 → 10: κ = 0.95 over 10 rows demands full support.
        assert_eq!(support_threshold(10, 0.95), 10);
        assert_eq!(support_threshold(3, 0.5), 2);
        assert_eq!(support_threshold(7, 0.8), 6);
    }

    #[test]
    fn threshold_edge_cases() {
        assert_eq!(support_threshold(0, 0.8), 0);
        assert_eq!(support_threshold(0, 1.0), 0);
        assert_eq!(support_threshold(5, 0.0), 0);
        assert_eq!(support_threshold(1, 1.0), 1);
        // Tiny positive κ still demands at least one covered tuple.
        assert_eq!(support_threshold(100, 1e-9), 1);
    }

    #[test]
    fn meets_support_at_the_boundary() {
        // Exactly 8/10 at κ = 0.8: accepted.
        assert!(meets_support(2, 10, 0.8));
        // 7/10 at κ = 0.8: rejected.
        assert!(!meets_support(3, 10, 0.8));
        // κ infinitesimally above 0.8 pushes the threshold to 9: the same
        // 8/10 candidate is now rejected — where the old epsilon comparison
        // (s + 1e-12 ≥ κ) wrongly accepted it.
        let kappa = 0.8 + 1e-13;
        assert!(kappa > 0.8, "test premise: κ is strictly above 0.8");
        assert_eq!(support_threshold(10, kappa), 9);
        assert!(!meets_support(2, 10, kappa));
        let old_epsilon_accepts = 0.8 + 1e-12 >= kappa;
        assert!(old_epsilon_accepts, "the bug this module fixes");
    }

    #[test]
    fn meets_support_exact_mode() {
        // κ = 1.0 ⇔ zero violations.
        assert!(meets_support(0, 10, 1.0));
        assert!(!meets_support(1, 10, 1.0));
        // Empty relation: vacuously satisfied at any κ.
        assert!(meets_support(0, 0, 1.0));
        assert!(meets_support(0, 0, 0.5));
    }

    #[test]
    fn meets_support_saturates_on_degenerate_violation_counts() {
        assert!(!meets_support(11, 10, 0.5));
    }

    #[test]
    fn threshold_matches_integer_ceil_across_a_sweep() {
        // For κ = p/q ratios representable in f64 within the sweep, the
        // threshold equals the integer ceil of p·n/q.
        for q in 1usize..=16 {
            for p in 0..=q {
                let kappa = p as f64 / q as f64;
                for n in 0usize..=64 {
                    let expect = (p * n).div_ceil(q).min(n);
                    let got = support_threshold(n, kappa);
                    // f64 rounding of p/q may land the product a hair above
                    // or below the exact rational; accept the documented
                    // semantics (ceil of the f64 product) but require it to
                    // stay within one of the rational ceil.
                    assert!(
                        got == expect || got == expect + 1,
                        "n={n} κ={p}/{q}: got {got}, rational ceil {expect}"
                    );
                    if (kappa * n as f64).fract() == 0.0 {
                        assert_eq!(got, expect, "exact product must be exact");
                    }
                }
            }
        }
    }
}
