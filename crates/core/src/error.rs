//! Error type shared by the core data-model operations.

use std::error::Error;
use std::fmt;

/// Errors raised by relation and OFD operations in `ofd-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Schemas are capped at 64 attributes because attribute sets are u64
    /// bitsets (the paper's datasets have 15).
    SchemaTooWide(usize),
    /// An attribute name not present in the schema.
    UnknownAttribute(String),
    /// An attribute id out of range for the schema.
    AttributeOutOfBounds {
        /// The offending attribute index.
        attr: usize,
        /// The schema's width.
        width: usize,
    },
    /// A row whose arity does not match the schema.
    ArityMismatch {
        /// The offending row index.
        row: usize,
        /// The schema's width.
        expected: usize,
        /// The row's cell count.
        got: usize,
    },
    /// A row index past the end of the relation.
    RowOutOfBounds {
        /// The offending row index.
        row: usize,
        /// The relation's row count.
        rows: usize,
    },
    /// An OFD whose consequent also appears in the antecedent where that is
    /// not allowed, or other malformed dependency shapes.
    MalformedDependency(String),
    /// A duplicate attribute name in a schema.
    DuplicateAttribute(String),
    /// Malformed external input (CSV or ontology text): empty payload,
    /// invalid encoding, unbalanced quoting and similar parse-level faults.
    MalformedInput(String),
    /// An incremental maintenance call whose view of the relation is out of
    /// sync with the checker's tracked state — e.g. the caller's `old` value
    /// for a cell is not the value the checker has for it. The edit was not
    /// applied; the checker state is unchanged and still usable.
    StaleUpdate {
        /// The row of the stale edit.
        row: usize,
        /// The attribute index of the stale edit.
        attr: usize,
    },
    /// A guarded operation stopped early (deadline, budget or
    /// cancellation); see [`crate::guard`].
    Interrupted(crate::guard::Interrupt),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SchemaTooWide(n) => {
                write!(f, "schema has {n} attributes; at most 64 are supported")
            }
            CoreError::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
            CoreError::AttributeOutOfBounds { attr, width } => {
                write!(f, "attribute #{attr} out of bounds for schema of width {width}")
            }
            CoreError::ArityMismatch { row, expected, got } => write!(
                f,
                "row {row} has {got} values but the schema has {expected} attributes"
            ),
            CoreError::RowOutOfBounds { row, rows } => {
                write!(f, "row {row} out of bounds for relation with {rows} rows")
            }
            CoreError::MalformedDependency(msg) => write!(f, "malformed dependency: {msg}"),
            CoreError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name {name:?}")
            }
            CoreError::MalformedInput(msg) => write!(f, "malformed input: {msg}"),
            CoreError::StaleUpdate { row, attr } => write!(
                f,
                "stale update at row {row}, attribute #{attr}: caller state is out of sync with the tracked relation"
            ),
            CoreError::Interrupted(i) => write!(f, "interrupted: {i}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CoreError::SchemaTooWide(80).to_string().contains("80"));
        assert!(CoreError::UnknownAttribute("X".into()).to_string().contains("X"));
        let e = CoreError::ArityMismatch {
            row: 3,
            expected: 5,
            got: 4,
        };
        assert!(e.to_string().contains("row 3"));
        let e = CoreError::Interrupted(crate::guard::Interrupt::DeadlineExceeded);
        assert!(e.to_string().contains("deadline"));
        let e = CoreError::StaleUpdate { row: 7, attr: 2 };
        assert!(e.to_string().contains("row 7"));
        assert!(e.to_string().contains("#2"));
    }

    #[test]
    fn implements_std_error() {
        fn takes(_: &dyn Error) {}
        takes(&CoreError::DuplicateAttribute("A".into()));
    }
}
