//! Incremental OFD violation tracking: after a cell update, only the
//! equivalence classes containing that cell need re-checking.
//!
//! The paper's repair scope (§5.1) fixes antecedent attributes, so class
//! *membership* never changes during cleaning — only the consequent value
//! multiset of the touched classes. [`IncrementalChecker`] exploits that:
//! construction costs one pass per OFD, and each update costs
//! O(distinct values of the touched classes), independent of |I|.

use std::collections::BTreeSet;

use crate::fxhash::FxHashMap;

use ofd_ontology::SenseId;

use crate::ofd::Ofd;
use crate::partition::StrippedPartition;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::sense_index::SenseIndex;
use crate::value::ValueId;

/// Per-class bookkeeping: the consequent value multiset.
#[derive(Debug, Clone)]
struct ClassState {
    size: u32,
    counts: FxHashMap<ValueId, u32>,
}

impl ClassState {
    /// Whether some single interpretation covers the whole class.
    fn satisfied(&self, index: &SenseIndex) -> bool {
        if self.counts.len() <= 1 {
            return true;
        }
        let mut sense_counts: FxHashMap<SenseId, u32> = FxHashMap::default();
        for (&v, &c) in &self.counts {
            let senses = index.senses(v);
            if senses.is_empty() {
                return false;
            }
            for &s in senses {
                let entry = sense_counts.entry(s).or_insert(0);
                *entry += c;
                if *entry == self.size {
                    return true;
                }
            }
        }
        false
    }
}

/// Tracks which `(OFD, class)` pairs violate Σ, updating in O(class) time
/// per consequent-cell change.
#[derive(Debug)]
pub struct IncrementalChecker {
    sigma: Vec<Ofd>,
    /// Per OFD: tuple → class index (only tuples in non-singleton classes).
    membership: Vec<FxHashMap<u32, u32>>,
    /// Per OFD: per class state.
    classes: Vec<Vec<ClassState>>,
    /// Currently violating (ofd, class) pairs, deterministic order.
    violated: BTreeSet<(usize, usize)>,
    /// OFD indexes per consequent attribute.
    by_rhs: FxHashMap<AttrId, Vec<usize>>,
}

impl IncrementalChecker {
    /// Builds the checker from the current instance (the `index` must stay
    /// in sync with the pool — see [`IncrementalChecker::apply_update`]).
    pub fn new(rel: &Relation, index: &SenseIndex, sigma: &[Ofd]) -> IncrementalChecker {
        let mut membership = Vec::with_capacity(sigma.len());
        let mut classes = Vec::with_capacity(sigma.len());
        let mut violated = BTreeSet::new();
        let mut by_rhs: FxHashMap<AttrId, Vec<usize>> = FxHashMap::default();
        for (oi, ofd) in sigma.iter().enumerate() {
            by_rhs.entry(ofd.rhs).or_default().push(oi);
            let sp = StrippedPartition::of(rel, ofd.lhs);
            let col = rel.column(ofd.rhs);
            let mut member: FxHashMap<u32, u32> = FxHashMap::default();
            let mut states: Vec<ClassState> = Vec::with_capacity(sp.class_count());
            for (ci, class) in sp.classes().enumerate() {
                let mut counts: FxHashMap<ValueId, u32> = FxHashMap::default();
                for &t in class {
                    member.insert(t, ci as u32);
                    *counts.entry(col[t as usize]).or_insert(0) += 1;
                }
                let state = ClassState {
                    size: class.len() as u32,
                    counts,
                };
                if !state.satisfied(index) {
                    violated.insert((oi, ci));
                }
                states.push(state);
            }
            membership.push(member);
            classes.push(states);
        }
        IncrementalChecker {
            sigma: sigma.to_vec(),
            membership,
            classes,
            violated,
            by_rhs,
        }
    }

    /// Applies one consequent-cell update: tuple `row`'s value for `attr`
    /// changed `old → new`. The caller must have already updated the
    /// relation and extended the sense index for any newly interned value.
    ///
    /// Updates to attributes that are no OFD's consequent are ignored
    /// (antecedents are immutable under the §5.1 repair scope — changing
    /// one invalidates the checker).
    pub fn apply_update(
        &mut self,
        index: &SenseIndex,
        row: usize,
        attr: AttrId,
        old: ValueId,
        new: ValueId,
    ) {
        if old == new {
            return;
        }
        let Some(ofds) = self.by_rhs.get(&attr) else {
            return;
        };
        for &oi in ofds {
            let Some(&ci) = self.membership[oi].get(&(row as u32)) else {
                continue; // singleton class: can never violate
            };
            let state = &mut self.classes[oi][ci as usize];
            let old_count = state
                .counts
                .get_mut(&old)
                .expect("old value tracked in its class");
            *old_count -= 1;
            if *old_count == 0 {
                state.counts.remove(&old);
            }
            *state.counts.entry(new).or_insert(0) += 1;
            if state.satisfied(index) {
                self.violated.remove(&(oi, ci as usize));
            } else {
                self.violated.insert((oi, ci as usize));
            }
        }
    }

    /// Whether every OFD currently holds.
    pub fn is_satisfied(&self) -> bool {
        self.violated.is_empty()
    }

    /// The violating `(OFD index, class index)` pairs, ascending.
    pub fn violations(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.violated.iter().copied()
    }

    /// Number of violating classes.
    pub fn violation_count(&self) -> usize {
        self.violated.len()
    }

    /// The Σ this checker tracks.
    pub fn sigma(&self) -> &[Ofd] {
        &self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{table1, table1_updated};
    use crate::validate::Validator;
    use ofd_ontology::samples;

    fn sigma_for(rel: &Relation) -> Vec<Ofd> {
        vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ]
    }

    #[test]
    fn initial_state_matches_full_validation() {
        let onto = samples::combined_paper_ontology();
        for rel in [table1(), table1_updated()] {
            let sigma = sigma_for(&rel);
            let index = SenseIndex::synonym(&rel, &onto);
            let checker = IncrementalChecker::new(&rel, &index, &sigma);
            let validator = Validator::new(&rel, &onto);
            let full: usize = sigma
                .iter()
                .map(|o| validator.check(o).violation_count())
                .sum();
            assert_eq!(checker.violation_count(), full);
            assert_eq!(
                checker.is_satisfied(),
                sigma.iter().all(|o| validator.check(o).satisfied())
            );
        }
    }

    #[test]
    fn updates_track_repairs_and_corruptions() {
        let onto = samples::combined_paper_ontology();
        let mut rel = table1_updated();
        let sigma = sigma_for(&rel);
        let mut index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        assert!(!checker.is_satisfied(), "Example 1.2 is dirty");

        // Repair the two updated cells back to tiazac.
        let med = rel.schema().attr("MED").unwrap();
        for row in [8usize, 10] {
            let old = rel.value(row, med);
            let new = rel.set(row, med, "tiazac").unwrap();
            index.extend_synonym(&rel, &onto);
            checker.apply_update(&index, row, med, old, new);
        }
        // MED class fixed; but the nausea class still violates the synonym
        // reading of F2, as in the paper (tylenol is-a analgesic).
        assert_eq!(checker.violation_count(), 1);

        // Fix the nausea class too.
        let old = rel.value(3, med);
        let new = rel.set(3, med, "tylenol").unwrap();
        index.extend_synonym(&rel, &onto);
        checker.apply_update(&index, 3, med, old, new);
        assert!(checker.is_satisfied());

        // Corrupt a CTRY cell; the checker notices immediately.
        let ctry = rel.schema().attr("CTRY").unwrap();
        let old = rel.value(0, ctry);
        let new = rel.set(0, ctry, "Atlantis").unwrap();
        index.extend_synonym(&rel, &onto);
        checker.apply_update(&index, 0, ctry, old, new);
        assert_eq!(checker.violation_count(), 1);
        assert_eq!(checker.violations().next(), Some((0, 0)));
    }

    #[test]
    fn random_update_sequences_agree_with_full_revalidation() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let onto = samples::combined_paper_ontology();
        let mut rel = table1();
        let sigma = sigma_for(&rel);
        let mut index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        let med = rel.schema().attr("MED").unwrap();
        let ctry = rel.schema().attr("CTRY").unwrap();
        let vocab = [
            "tiazac", "cartia", "ASA", "ibuprofen", "bogus1", "USA", "America", "Bharat",
        ];
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..200 {
            let row = rng.random_range(0..rel.n_rows());
            let attr = if rng.random_bool(0.5) { med } else { ctry };
            let value = vocab[rng.random_range(0..vocab.len())];
            let old = rel.value(row, attr);
            let new = rel.set(row, attr, value).unwrap();
            index.extend_synonym(&rel, &onto);
            checker.apply_update(&index, row, attr, old, new);

            let validator = Validator::new(&rel, &onto);
            let full: usize = sigma
                .iter()
                .map(|o| validator.check(o).violation_count())
                .sum();
            assert_eq!(checker.violation_count(), full, "diverged at step {step}");
        }
    }

    #[test]
    fn non_consequent_updates_are_ignored() {
        let onto = samples::combined_paper_ontology();
        let rel = table1();
        let sigma = sigma_for(&rel);
        let index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        let before = checker.violation_count();
        let test_attr = rel.schema().attr("TEST").unwrap();
        // TEST is no OFD's consequent; the update is a no-op for tracking.
        checker.apply_update(
            &index,
            0,
            test_attr,
            ValueId::from_index(0),
            ValueId::from_index(1),
        );
        assert_eq!(checker.violation_count(), before);
    }
}
