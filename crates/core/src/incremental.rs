//! Incremental OFD maintenance: delta-maintained stripped partitions.
//!
//! The paper's repair scope (§5.1) observes that OFD violations are local to
//! equivalence classes of the antecedent partition Π*_X, so an edit only
//! needs the touched classes re-checked. [`IncrementalChecker`] grows that
//! observation into a full delta-maintenance engine over a tuple stream:
//!
//! * **updates** to a consequent cell adjust the value multiset of the
//!   containing class and re-verify just that class — O(distinct values of
//!   the class), independent of |I|;
//! * **inserts** ([`IncrementalChecker::apply_insert`]) route the new tuple
//!   to its antecedent group per OFD: an unseen antecedent becomes a
//!   stripped singleton (never violating, zero verification work), a
//!   singleton is promoted to a two-tuple class, and an existing class
//!   absorbs the tuple — in every case only the one affected `(OFD, class)`
//!   pair is re-verified;
//! * **deletes** ([`IncrementalChecker::apply_retract`]) reverse the same
//!   moves — membership removal, demotion back to a stripped singleton when
//!   a class shrinks to one tuple (its slot is recycled), and a tuple-id
//!   rename mirroring the relation's O(attrs) swap-remove.
//!
//! Because the checker tracks a whole candidate set Σ at once and
//! re-verifies only the classes whose antecedent groups an edit touched, it
//! also maintains the discovered Σ frontier under edits: after any edit
//! sequence, [`IncrementalChecker::satisfied_sigma`] is exactly the subset
//! of tracked candidates that a from-scratch [`crate::Validator`] pass
//! would report as holding — without recomputing any untouched partition.
//!
//! Desynchronised callers get a typed [`CoreError::StaleUpdate`] instead of
//! a panic; failed calls leave the checker state untouched.

use std::collections::BTreeSet;

use crate::fxhash::FxHashMap;

use ofd_ontology::SenseId;

use crate::error::CoreError;
use crate::ofd::Ofd;
use crate::partition::StrippedPartition;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::sense_index::SenseIndex;
use crate::value::ValueId;

/// Per-class bookkeeping: members and the consequent value multiset.
#[derive(Debug, Clone, Default)]
struct ClassState {
    /// Tuple ids of the class, unordered (swap-removed on retract).
    members: Vec<u32>,
    counts: FxHashMap<ValueId, u32>,
}

impl ClassState {
    fn size(&self) -> u32 {
        self.members.len() as u32
    }

    /// Whether some single interpretation covers the whole class.
    fn satisfied(&self, index: &SenseIndex) -> bool {
        if self.counts.len() <= 1 {
            return true;
        }
        let size = self.size();
        let mut sense_counts: FxHashMap<SenseId, u32> = FxHashMap::default();
        for (&v, &c) in &self.counts {
            let senses = index.senses(v);
            if senses.is_empty() {
                return false;
            }
            for &s in senses {
                let entry = sense_counts.entry(s).or_insert(0);
                *entry += c;
                if *entry == size {
                    return true;
                }
            }
        }
        false
    }
}

/// Where an antecedent value combination currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Exactly one tuple has this antecedent: stripped away, never violates.
    Singleton(u32),
    /// Two or more tuples: a tracked class at this index.
    Class(u32),
}

/// Per-OFD delta-partition state.
#[derive(Debug)]
struct OfdState {
    /// Antecedent attributes, ascending (the group-key layout).
    lhs: Vec<AttrId>,
    /// Antecedent value combination → current slot.
    groups: FxHashMap<Vec<ValueId>, Slot>,
    /// Class states, slot-indexed; demoted slots sit in `free` with cleared
    /// members/counts until a promotion recycles them.
    classes: Vec<ClassState>,
    free: Vec<u32>,
    /// Tuple → class index (tuples in non-singleton classes only).
    membership: FxHashMap<u32, u32>,
}

impl OfdState {
    fn key_of(&self, rel: &Relation, row: usize) -> Vec<ValueId> {
        self.lhs.iter().map(|&a| rel.value(row, a)).collect()
    }
}

/// Outcome of a retract: how much re-verification it cost and which tuple
/// id was renamed by the relation's swap-remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetractOutcome {
    /// `(OFD, class)` pairs re-verified by this edit.
    pub reverified: usize,
    /// The former index of the row moved into the freed slot, if any.
    pub moved_from: Option<usize>,
}

/// Tracks which `(OFD, class)` pairs violate Σ under a stream of updates,
/// inserts and deletes, re-verifying only the touched classes.
#[derive(Debug)]
pub struct IncrementalChecker {
    sigma: Vec<Ofd>,
    states: Vec<OfdState>,
    /// Currently violating (ofd, class) pairs, deterministic order.
    violated: BTreeSet<(usize, usize)>,
    /// OFD indexes per consequent attribute.
    by_rhs: FxHashMap<AttrId, Vec<usize>>,
}

impl IncrementalChecker {
    /// Builds the checker from the current instance (the `index` must stay
    /// in sync with the pool — see [`IncrementalChecker::apply_update`]).
    pub fn new(rel: &Relation, index: &SenseIndex, sigma: &[Ofd]) -> IncrementalChecker {
        let mut states = Vec::with_capacity(sigma.len());
        let mut violated = BTreeSet::new();
        let mut by_rhs: FxHashMap<AttrId, Vec<usize>> = FxHashMap::default();
        for (oi, ofd) in sigma.iter().enumerate() {
            by_rhs.entry(ofd.rhs).or_default().push(oi);
            let sp = StrippedPartition::of(rel, ofd.lhs);
            let col = rel.column(ofd.rhs);
            let mut st = OfdState {
                lhs: ofd.lhs.iter().collect(),
                groups: FxHashMap::default(),
                classes: Vec::with_capacity(sp.class_count()),
                free: Vec::new(),
                membership: FxHashMap::default(),
            };
            for (ci, class) in sp.classes().enumerate() {
                let mut counts: FxHashMap<ValueId, u32> = FxHashMap::default();
                let mut members = Vec::with_capacity(class.len());
                for &t in class {
                    st.membership.insert(t, ci as u32);
                    members.push(t);
                    *counts.entry(col[t as usize]).or_insert(0) += 1;
                }
                let state = ClassState { members, counts };
                if !state.satisfied(index) {
                    violated.insert((oi, ci));
                }
                st.classes.push(state);
            }
            // Register every antecedent group: class representatives and the
            // stripped singletons the partition dropped.
            for row in 0..rel.n_rows() {
                let t = row as u32;
                let key = st.key_of(rel, row);
                match st.membership.get(&t).copied() {
                    Some(ci) => {
                        st.groups.insert(key, Slot::Class(ci));
                    }
                    None => {
                        st.groups.insert(key, Slot::Singleton(t));
                    }
                }
            }
            states.push(st);
        }
        IncrementalChecker {
            sigma: sigma.to_vec(),
            states,
            violated,
            by_rhs,
        }
    }

    /// Applies one consequent-cell update: tuple `row`'s value for `attr`
    /// changed `old → new`. The caller must have already updated the
    /// relation and extended the sense index for any newly interned value.
    ///
    /// Updates to attributes that are no OFD's consequent are ignored
    /// (antecedents are immutable under the §5.1 repair scope — changing
    /// one requires a retract + insert). Returns the number of classes
    /// re-verified.
    ///
    /// When `old` is not the value the checker tracks for that cell in
    /// every affected class, no class is mutated and
    /// [`CoreError::StaleUpdate`] is returned — the checker stays valid.
    pub fn apply_update(
        &mut self,
        index: &SenseIndex,
        row: usize,
        attr: AttrId,
        old: ValueId,
        new: ValueId,
    ) -> Result<usize, CoreError> {
        if old == new {
            return Ok(0);
        }
        let Some(ofds) = self.by_rhs.get(&attr) else {
            return Ok(0);
        };
        // First pass: detect desync before touching any class, so a stale
        // call is atomic — all affected classes mutate or none do.
        for &oi in ofds {
            if let Some(&ci) = self.states[oi].membership.get(&(row as u32)) {
                if !self.states[oi].classes[ci as usize].counts.contains_key(&old) {
                    return Err(CoreError::StaleUpdate {
                        row,
                        attr: attr.index(),
                    });
                }
            }
        }
        let mut reverified = 0;
        for &oi in ofds {
            let st = &mut self.states[oi];
            let Some(&ci) = st.membership.get(&(row as u32)) else {
                continue; // singleton class: can never violate
            };
            let state = &mut st.classes[ci as usize];
            let old_count = state
                .counts
                .get_mut(&old)
                .expect("pre-checked in the stale pass");
            *old_count -= 1;
            if *old_count == 0 {
                state.counts.remove(&old);
            }
            *state.counts.entry(new).or_insert(0) += 1;
            let sat = state.satisfied(index);
            Self::record(&mut self.violated, oi, ci, sat);
            reverified += 1;
        }
        Ok(reverified)
    }

    /// Registers a freshly appended tuple. The caller must have already
    /// pushed `row` to `rel` (it must be the index of an existing row) and
    /// extended the sense index for any newly interned values.
    ///
    /// Returns the number of classes re-verified: 0 when the antecedent was
    /// unseen (the tuple becomes a stripped singleton), 1 per OFD whose
    /// partition gained or grew a class.
    pub fn apply_insert(
        &mut self,
        rel: &Relation,
        index: &SenseIndex,
        row: usize,
    ) -> Result<usize, CoreError> {
        if row >= rel.n_rows() {
            return Err(CoreError::RowOutOfBounds {
                row,
                rows: rel.n_rows(),
            });
        }
        let t = row as u32;
        let mut reverified = 0;
        for oi in 0..self.sigma.len() {
            let rhs = self.sigma[oi].rhs;
            let col = rel.column(rhs);
            let st = &mut self.states[oi];
            let key = st.key_of(rel, row);
            match st.groups.get(&key).copied() {
                None => {
                    st.groups.insert(key, Slot::Singleton(t));
                }
                Some(Slot::Singleton(s)) => {
                    // Promote: the group graduates from stripped singleton
                    // to a two-tuple class (recycling a demoted slot).
                    let ci = st.free.pop().unwrap_or_else(|| {
                        st.classes.push(ClassState::default());
                        (st.classes.len() - 1) as u32
                    });
                    let state = &mut st.classes[ci as usize];
                    debug_assert!(state.members.is_empty() && state.counts.is_empty());
                    state.members.push(s);
                    state.members.push(t);
                    *state.counts.entry(col[s as usize]).or_insert(0) += 1;
                    *state.counts.entry(col[t as usize]).or_insert(0) += 1;
                    st.membership.insert(s, ci);
                    st.membership.insert(t, ci);
                    st.groups.insert(key, Slot::Class(ci));
                    let sat = st.classes[ci as usize].satisfied(index);
                    Self::record(&mut self.violated, oi, ci, sat);
                    reverified += 1;
                }
                Some(Slot::Class(ci)) => {
                    let state = &mut st.classes[ci as usize];
                    state.members.push(t);
                    *state.counts.entry(col[t as usize]).or_insert(0) += 1;
                    st.membership.insert(t, ci);
                    let sat = state.satisfied(index);
                    Self::record(&mut self.violated, oi, ci, sat);
                    reverified += 1;
                }
            }
        }
        Ok(reverified)
    }

    /// Removes tuple `row` from both the relation and the checker, keeping
    /// the two in sync through the relation's swap-remove: the last row is
    /// renamed to `row` in every membership map and group slot.
    ///
    /// Classes that shrink to one tuple are demoted back to stripped
    /// singletons and their slots recycled. On error nothing is removed.
    pub fn apply_retract(
        &mut self,
        rel: &mut Relation,
        index: &SenseIndex,
        row: usize,
    ) -> Result<RetractOutcome, CoreError> {
        if row >= rel.n_rows() {
            return Err(CoreError::RowOutOfBounds {
                row,
                rows: rel.n_rows(),
            });
        }
        let t = row as u32;
        let mut reverified = 0;
        // Detach the tuple from every OFD's partition while the relation
        // still holds its values.
        for oi in 0..self.sigma.len() {
            let rhs = self.sigma[oi].rhs;
            let value = rel.value(row, rhs);
            let st = &mut self.states[oi];
            let key = st.key_of(rel, row);
            match st.groups.get(&key).copied() {
                Some(Slot::Singleton(s)) if s == t => {
                    st.groups.remove(&key);
                }
                Some(Slot::Class(ci)) => {
                    let state = &mut st.classes[ci as usize];
                    let pos = state
                        .members
                        .iter()
                        .position(|&m| m == t)
                        .ok_or(CoreError::StaleUpdate {
                            row,
                            attr: rhs.index(),
                        })?;
                    state.members.swap_remove(pos);
                    match state.counts.get_mut(&value) {
                        Some(c) if *c > 1 => *c -= 1,
                        Some(_) => {
                            state.counts.remove(&value);
                        }
                        None => {
                            return Err(CoreError::StaleUpdate {
                                row,
                                attr: rhs.index(),
                            })
                        }
                    }
                    st.membership.remove(&t);
                    if state.members.len() == 1 {
                        // Demote: one tuple left, back to a stripped
                        // singleton; the slot is recycled.
                        let rem = state.members[0];
                        state.members.clear();
                        state.counts.clear();
                        st.membership.remove(&rem);
                        st.free.push(ci);
                        st.groups.insert(key, Slot::Singleton(rem));
                        self.violated.remove(&(oi, ci as usize));
                    } else {
                        let sat = st.classes[ci as usize].satisfied(index);
                        Self::record(&mut self.violated, oi, ci, sat);
                        reverified += 1;
                    }
                }
                _ => {
                    return Err(CoreError::StaleUpdate {
                        row,
                        attr: rhs.index(),
                    })
                }
            }
        }
        let moved_from = rel.swap_remove_row(row)?;
        if let Some(from) = moved_from {
            self.rename(rel, from, row);
        }
        Ok(RetractOutcome {
            reverified,
            moved_from,
        })
    }

    /// Renames tuple id `from` to `to` after the relation swap-moved that
    /// row. Class membership is untouched — only the id changes.
    fn rename(&mut self, rel: &Relation, from: usize, to: usize) {
        let (from, to) = (from as u32, to as u32);
        for st in &mut self.states {
            if let Some(ci) = st.membership.remove(&from) {
                st.membership.insert(to, ci);
                let state = &mut st.classes[ci as usize];
                if let Some(m) = state.members.iter_mut().find(|m| **m == from) {
                    *m = to;
                }
            } else {
                // A stripped singleton: rewrite its slot in place. The key
                // reads the moved row's values at its new index.
                let key = st.key_of(rel, to as usize);
                if let Some(slot) = st.groups.get_mut(&key) {
                    if *slot == Slot::Singleton(from) {
                        *slot = Slot::Singleton(to);
                    }
                }
            }
        }
    }

    fn record(violated: &mut BTreeSet<(usize, usize)>, oi: usize, ci: u32, satisfied: bool) {
        if satisfied {
            violated.remove(&(oi, ci as usize));
        } else {
            violated.insert((oi, ci as usize));
        }
    }

    /// Whether every OFD currently holds.
    pub fn is_satisfied(&self) -> bool {
        self.violated.is_empty()
    }

    /// The violating `(OFD index, class index)` pairs, ascending.
    pub fn violations(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.violated.iter().copied()
    }

    /// Number of violating classes.
    pub fn violation_count(&self) -> usize {
        self.violated.len()
    }

    /// Violating class count per tracked OFD, in Σ order.
    pub fn per_ofd_violations(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.sigma.len()];
        for &(oi, _) in &self.violated {
            out[oi] += 1;
        }
        out
    }

    /// The maintained frontier: the tracked OFDs that currently hold (no
    /// violating class), in Σ order.
    pub fn satisfied_sigma(&self) -> Vec<Ofd> {
        let per = self.per_ofd_violations();
        self.sigma
            .iter()
            .zip(&per)
            .filter(|(_, &v)| v == 0)
            .map(|(o, _)| *o)
            .collect()
    }

    /// The Σ this checker tracks.
    pub fn sigma(&self) -> &[Ofd] {
        &self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{table1, table1_updated};
    use crate::validate::Validator;
    use ofd_ontology::samples;

    fn sigma_for(rel: &Relation) -> Vec<Ofd> {
        vec![
            Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap(),
            Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
        ]
    }

    fn full_violations(rel: &Relation, onto: &ofd_ontology::Ontology, sigma: &[Ofd]) -> usize {
        let validator = Validator::new(rel, onto);
        sigma
            .iter()
            .map(|o| validator.check(o).violation_count())
            .sum()
    }

    #[test]
    fn initial_state_matches_full_validation() {
        let onto = samples::combined_paper_ontology();
        for rel in [table1(), table1_updated()] {
            let sigma = sigma_for(&rel);
            let index = SenseIndex::synonym(&rel, &onto);
            let checker = IncrementalChecker::new(&rel, &index, &sigma);
            let validator = Validator::new(&rel, &onto);
            let full: usize = sigma
                .iter()
                .map(|o| validator.check(o).violation_count())
                .sum();
            assert_eq!(checker.violation_count(), full);
            assert_eq!(
                checker.is_satisfied(),
                sigma.iter().all(|o| validator.check(o).satisfied())
            );
        }
    }

    #[test]
    fn updates_track_repairs_and_corruptions() {
        let onto = samples::combined_paper_ontology();
        let mut rel = table1_updated();
        let sigma = sigma_for(&rel);
        let mut index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        assert!(!checker.is_satisfied(), "Example 1.2 is dirty");

        // Repair the two updated cells back to tiazac.
        let med = rel.schema().attr("MED").unwrap();
        for row in [8usize, 10] {
            let old = rel.value(row, med);
            let new = rel.set(row, med, "tiazac").unwrap();
            index.extend_synonym(&rel, &onto);
            checker.apply_update(&index, row, med, old, new).unwrap();
        }
        // MED class fixed; but the nausea class still violates the synonym
        // reading of F2, as in the paper (tylenol is-a analgesic).
        assert_eq!(checker.violation_count(), 1);

        // Fix the nausea class too.
        let old = rel.value(3, med);
        let new = rel.set(3, med, "tylenol").unwrap();
        index.extend_synonym(&rel, &onto);
        checker.apply_update(&index, 3, med, old, new).unwrap();
        assert!(checker.is_satisfied());

        // Corrupt a CTRY cell; the checker notices immediately.
        let ctry = rel.schema().attr("CTRY").unwrap();
        let old = rel.value(0, ctry);
        let new = rel.set(0, ctry, "Atlantis").unwrap();
        index.extend_synonym(&rel, &onto);
        checker.apply_update(&index, 0, ctry, old, new).unwrap();
        assert_eq!(checker.violation_count(), 1);
        assert_eq!(checker.violations().next(), Some((0, 0)));
    }

    #[test]
    fn random_update_sequences_agree_with_full_revalidation() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let onto = samples::combined_paper_ontology();
        let mut rel = table1();
        let sigma = sigma_for(&rel);
        let mut index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        let med = rel.schema().attr("MED").unwrap();
        let ctry = rel.schema().attr("CTRY").unwrap();
        let vocab = [
            "tiazac", "cartia", "ASA", "ibuprofen", "bogus1", "USA", "America", "Bharat",
        ];
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..200 {
            let row = rng.random_range(0..rel.n_rows());
            let attr = if rng.random_bool(0.5) { med } else { ctry };
            let value = vocab[rng.random_range(0..vocab.len())];
            let old = rel.value(row, attr);
            let new = rel.set(row, attr, value).unwrap();
            index.extend_synonym(&rel, &onto);
            checker.apply_update(&index, row, attr, old, new).unwrap();

            let full = full_violations(&rel, &onto, &sigma);
            assert_eq!(checker.violation_count(), full, "diverged at step {step}");
        }
    }

    #[test]
    fn non_consequent_updates_are_ignored() {
        let onto = samples::combined_paper_ontology();
        let rel = table1();
        let sigma = sigma_for(&rel);
        let index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        let before = checker.violation_count();
        let test_attr = rel.schema().attr("TEST").unwrap();
        // TEST is no OFD's consequent; the update is a no-op for tracking.
        checker
            .apply_update(
                &index,
                0,
                test_attr,
                ValueId::from_index(0),
                ValueId::from_index(1),
            )
            .unwrap();
        assert_eq!(checker.violation_count(), before);
    }

    #[test]
    fn stale_update_is_a_typed_error_and_leaves_state_intact() {
        let onto = samples::combined_paper_ontology();
        let mut rel = table1();
        let sigma = sigma_for(&rel);
        let mut index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        let before = checker.violation_count();
        let med = rel.schema().attr("MED").unwrap();
        // Row 0's MED is ibuprofen; claim it was tiazac.
        let bogus_old = rel.pool().get("tiazac").unwrap();
        let new = rel.pool().get("cartia").unwrap();
        let err = checker
            .apply_update(&index, 0, med, bogus_old, new)
            .unwrap_err();
        assert!(
            matches!(err, CoreError::StaleUpdate { row: 0, .. }),
            "expected StaleUpdate, got {err:?}"
        );
        assert_eq!(checker.violation_count(), before, "stale call mutated state");
        // The checker is still usable: a correct update applies cleanly and
        // agrees with from-scratch validation.
        let old = rel.value(0, med);
        let new = rel.set(0, med, "cartia").unwrap();
        index.extend_synonym(&rel, &onto);
        checker.apply_update(&index, 0, med, old, new).unwrap();
        assert_eq!(
            checker.violation_count(),
            full_violations(&rel, &onto, &sigma)
        );
    }

    #[test]
    fn inserts_promote_singletons_and_retracts_demote() {
        let onto = samples::combined_paper_ontology();
        let mut rel = table1();
        let sigma = sigma_for(&rel);
        let mut index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);

        // CA/Canada is a stripped singleton of CC → CTRY. A second CA tuple
        // promotes it to a class; a conflicting CTRY value violates.
        let row = rel
            .push_row(["CA", "Atlantis", "fever", "CT", "flu", "tylenol"])
            .unwrap();
        index.extend_synonym(&rel, &onto);
        let before = checker.violation_count();
        checker.apply_insert(&rel, &index, row).unwrap();
        assert_eq!(checker.violation_count(), full_violations(&rel, &onto, &sigma));
        assert!(checker.violation_count() > before, "CA class now violates");

        // Retracting the new tuple demotes the class back to a singleton
        // and restores the original violation count.
        checker.apply_retract(&mut rel, &index, row).unwrap();
        assert_eq!(rel.n_rows(), 11);
        assert_eq!(checker.violation_count(), before);
        assert_eq!(checker.violation_count(), full_violations(&rel, &onto, &sigma));
    }

    #[test]
    fn retract_renames_the_swapped_row() {
        let onto = samples::combined_paper_ontology();
        let mut rel = table1_updated();
        let sigma = sigma_for(&rel);
        let index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        // Remove row 0: the last row (10) moves into slot 0 and every
        // membership map must follow.
        let out = checker.apply_retract(&mut rel, &index, 0).unwrap();
        assert_eq!(out.moved_from, Some(10));
        assert_eq!(checker.violation_count(), full_violations(&rel, &onto, &sigma));
        // Updates addressed to the renamed row keep working.
        let med = rel.schema().attr("MED").unwrap();
        let old = rel.value(0, med);
        let new = rel.set(0, med, "tiazac").unwrap();
        checker.apply_update(&index, 0, med, old, new).unwrap();
        assert_eq!(checker.violation_count(), full_violations(&rel, &onto, &sigma));
    }

    #[test]
    fn retract_out_of_bounds_is_typed() {
        let onto = samples::combined_paper_ontology();
        let mut rel = table1();
        let sigma = sigma_for(&rel);
        let index = SenseIndex::synonym(&rel, &onto);
        let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
        assert!(matches!(
            checker.apply_retract(&mut rel, &index, 99),
            Err(CoreError::RowOutOfBounds { .. })
        ));
        assert!(matches!(
            checker.apply_insert(&rel, &index, 99),
            Err(CoreError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn random_edit_interleavings_agree_with_full_revalidation() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let onto = samples::combined_paper_ontology();
        for seed in [7u64, 41, 1234] {
            let mut rel = table1();
            let sigma = sigma_for(&rel);
            let mut index = SenseIndex::synonym(&rel, &onto);
            let mut checker = IncrementalChecker::new(&rel, &index, &sigma);
            let med = rel.schema().attr("MED").unwrap();
            let ctry = rel.schema().attr("CTRY").unwrap();
            let cc = ["US", "IN", "CA", "MX"];
            let vocab = [
                "tiazac", "cartia", "ASA", "ibuprofen", "bogus1", "USA", "America", "Bharat",
                "Atlantis", "fresh-value",
            ];
            let mut rng = StdRng::seed_from_u64(seed);
            for step in 0..300 {
                let dice = rng.random_range(0..10);
                if dice < 4 || rel.n_rows() < 3 {
                    // Insert a row reusing an existing CC so classes grow.
                    let row = rel
                        .push_row([
                            cc[rng.random_range(0..cc.len())],
                            vocab[rng.random_range(0..vocab.len())],
                            "headache",
                            "CT",
                            "hypertension",
                            vocab[rng.random_range(0..vocab.len())],
                        ])
                        .unwrap();
                    index.extend_synonym(&rel, &onto);
                    checker.apply_insert(&rel, &index, row).unwrap();
                } else if dice < 7 {
                    let row = rng.random_range(0..rel.n_rows());
                    checker.apply_retract(&mut rel, &index, row).unwrap();
                } else {
                    let row = rng.random_range(0..rel.n_rows());
                    let attr = if rng.random_bool(0.5) { med } else { ctry };
                    let value = vocab[rng.random_range(0..vocab.len())];
                    let old = rel.value(row, attr);
                    let new = rel.set(row, attr, value).unwrap();
                    index.extend_synonym(&rel, &onto);
                    checker.apply_update(&index, row, attr, old, new).unwrap();
                }
                let full = full_violations(&rel, &onto, &sigma);
                assert_eq!(
                    checker.violation_count(),
                    full,
                    "seed {seed} diverged at step {step}"
                );
                // The maintained frontier matches per-OFD validation.
                let validator = Validator::new(&rel, &onto);
                let frontier: Vec<String> = checker
                    .satisfied_sigma()
                    .iter()
                    .map(|o| o.display(rel.schema()))
                    .collect();
                let expected: Vec<String> = sigma
                    .iter()
                    .filter(|o| validator.check(o).satisfied())
                    .map(|o| o.display(rel.schema()))
                    .collect();
                assert_eq!(frontier, expected, "seed {seed} frontier at step {step}");
            }
        }
    }
}
