#![warn(missing_docs)]
//! # ofd-core
//!
//! Relational substrate and Ontology Functional Dependency (OFD) semantics:
//!
//! * interned values ([`ValuePool`]), schemas and u64-bitset attribute sets
//!   ([`AttrSet`]);
//! * column-major [`Relation`] instances with cell-level repair support;
//! * partitions Π_X and stripped partitions Π*_X with linear-time products
//!   ([`StrippedPartition`]);
//! * FDs and OFDs ([`Fd`], [`Ofd`]) and their verification over equivalence
//!   classes ([`Validator`]), including approximate support for
//!   κ-approximate discovery;
//! * execution guards ([`ExecGuard`], [`Partial`]) giving every
//!   long-running engine deadlines, work/memory budgets and cooperative
//!   cancellation with sound partial results;
//! * crash safety ([`SnapshotStore`], [`atomic_write`]): versioned,
//!   checksummed checkpoint snapshots written atomically at level/phase
//!   boundaries, plus seeded deterministic fault injection
//!   ([`FaultPlan`]) for I/O errors, worker panics and delays;
//! * zero-dependency observability ([`Obs`], [`MetricsSnapshot`]): counters,
//!   gauges, histograms and span timers threaded through the engines the
//!   same way the guards are;
//! * exact κ-support arithmetic ([`meets_support`], [`support_threshold`]),
//!   the single boundary comparison shared by discovery, the brute-force
//!   oracle and approximate cleaning.
//!
//! The running examples of the paper (Table 1 and its Example 1.2 update)
//! ship as [`table1`] / [`table1_updated`] and are exercised throughout the
//! test suites.

mod error;
mod evidence;
pub mod fault;
pub mod fxhash;
pub mod guard;
pub mod snapshot;
pub mod incremental;
pub mod lhs_synonyms;
pub mod nfd_check;
pub mod obs;
mod ofd;
pub mod support;
mod partition;
mod relation;
mod schema;
mod sense_index;
mod validate;
mod value;

pub use error::CoreError;
pub use evidence::EvidenceSet;
pub use fault::{
    silence_injected_panics, FaultPlan, FaultSite, FaultSpecError, NetFault, SnapshotFault,
    INJECTED_PANIC, NET_SITES,
};
pub use guard::{rss_kib, ExecGuard, GuardConfig, Interrupt, Partial};
pub use snapshot::{atomic_write, fnv1a64, fsync_dir, hash_ontology, hash_relation, CheckpointOptions, Fingerprint, LoadedSnapshot, SnapshotError, SnapshotStore, SNAPSHOT_VERSION};
pub use obs::{MetricsSnapshot, Obs, SpanGuard};
pub use support::{meets_support, support_threshold};
pub use incremental::{IncrementalChecker, RetractOutcome};
pub use nfd_check::NfdChecker;
pub use lhs_synonyms::{check_lhs_synonyms, InterpretationOutcome, LhsSynonymValidation};
pub use ofd::{Fd, Ofd, OfdKind};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use partition::{Classes, Partition, ProductScratch, StrippedPartition};
pub use relation::{table1, table1_updated, Relation, RelationBuilder, MAX_ROWS};
pub use schema::{AttrId, AttrSet, AttrSetIter, Schema, MAX_ATTRS};
pub use sense_index::SenseIndex;
pub use validate::{check_ofd_exact, check_ofd_with_index, estimate_support, ClassOutcome, Validation, Validator, Witness};
pub use value::{ValueId, ValuePool};
