//! OFD verification over equivalence classes (Definition 2.1, §4.3).
//!
//! Unlike traditional FDs, OFDs cannot be verified pairwise: every
//! equivalence class of the antecedent partition must have a *common*
//! interpretation across all its consequent values (the Table 2
//! counterexample: pairwise-common classes whose global intersection is
//! empty). Verification scans the stripped partition once, maintaining a
//! hash table of sense frequencies per class — linear in the number of
//! tuples, as the paper's complexity analysis requires.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::fxhash::FxHashMap;

use ofd_ontology::{Ontology, SenseId};

use crate::ofd::{Fd, Ofd, OfdKind};
use crate::partition::StrippedPartition;
use crate::relation::Relation;
use crate::sense_index::SenseIndex;
use crate::value::ValueId;

/// The interpretation that covers (part of) an equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Witness {
    /// A sense under which the covered values are synonyms.
    Sense(SenseId),
    /// Syntactic equality: the covered tuples all carry this literal value
    /// (the FD fast path / Opt-4; also values unknown to the ontology).
    Literal(ValueId),
}

/// Verification outcome for one (non-singleton) equivalence class.
#[derive(Debug, Clone)]
pub struct ClassOutcome {
    /// Position of the class in the stripped partition.
    pub class_index: usize,
    /// Smallest tuple id in the class (its representative).
    pub representative: u32,
    /// Number of tuples in the class.
    pub size: usize,
    /// Maximum number of tuples consistent under a single interpretation.
    pub covered: usize,
    /// The interpretation achieving `covered`.
    pub witness: Option<Witness>,
}

impl ClassOutcome {
    /// Whether the whole class is consistent under one interpretation.
    #[inline]
    pub fn satisfied(&self) -> bool {
        self.covered == self.size
    }
}

/// Result of checking one OFD over a relation.
#[derive(Debug, Clone)]
pub struct Validation {
    /// The dependency checked.
    pub ofd: Ofd,
    /// Relation size (for support computation).
    pub n_rows: usize,
    /// Per-class outcomes over the stripped antecedent partition.
    pub outcomes: Vec<ClassOutcome>,
    /// Tuples consistent under the per-class best interpretations, counting
    /// stripped-away singleton tuples as trivially consistent.
    pub covered_tuples: usize,
}

impl Validation {
    /// Whether the OFD holds exactly (`I ⊨ φ`).
    pub fn satisfied(&self) -> bool {
        self.outcomes.iter().all(ClassOutcome::satisfied)
    }

    /// Support `s(φ)`: the fraction of tuples in a maximum satisfying
    /// sub-relation (used by κ-approximate discovery).
    pub fn support(&self) -> f64 {
        if self.n_rows == 0 {
            1.0
        } else {
            self.covered_tuples as f64 / self.n_rows as f64
        }
    }

    /// Tuples left uncovered by the per-class best interpretations — the
    /// integer numerator of `1 − support()`.
    pub fn violating_tuples(&self) -> usize {
        self.n_rows - self.covered_tuples
    }

    /// Whether the OFD meets support κ, decided by the shared exact integer
    /// comparison [`crate::support::meets_support`] (never by the f64
    /// [`support`](Validation::support), which is for display only).
    pub fn meets_support(&self, kappa: f64) -> bool {
        crate::support::meets_support(self.violating_tuples(), self.n_rows, kappa)
    }

    /// Classes violating the OFD.
    pub fn violations(&self) -> impl Iterator<Item = &ClassOutcome> {
        self.outcomes.iter().filter(|o| !o.satisfied())
    }

    /// Number of violating classes.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }
}

/// Verifies OFDs and FDs against one relation and ontology.
///
/// The synonym-mode [`SenseIndex`] is built eagerly; inheritance-mode
/// indexes are built per `θ` on first use and cached.
#[derive(Debug)]
pub struct Validator<'a> {
    rel: &'a Relation,
    onto: &'a Ontology,
    syn_index: SenseIndex,
    inh_indexes: RefCell<HashMap<usize, SenseIndex>>,
}

impl<'a> Validator<'a> {
    /// Creates a validator for `rel` against `onto`.
    pub fn new(rel: &'a Relation, onto: &'a Ontology) -> Validator<'a> {
        Validator {
            rel,
            onto,
            syn_index: SenseIndex::synonym(rel, onto),
            inh_indexes: RefCell::new(HashMap::new()),
        }
    }

    /// Creates a validator with a caller-supplied synonym index (used by the
    /// cleaning algorithms to overlay candidate ontology repairs).
    pub fn with_index(rel: &'a Relation, onto: &'a Ontology, index: SenseIndex) -> Validator<'a> {
        Validator {
            rel,
            onto,
            syn_index: index,
            inh_indexes: RefCell::new(HashMap::new()),
        }
    }

    /// The relation under validation.
    pub fn relation(&self) -> &Relation {
        self.rel
    }

    /// The synonym-mode sense index.
    pub fn sense_index(&self) -> &SenseIndex {
        &self.syn_index
    }

    /// Checks an OFD, computing the antecedent partition from scratch.
    pub fn check(&self, ofd: &Ofd) -> Validation {
        let sp = StrippedPartition::of(self.rel, ofd.lhs);
        self.check_with_partition(ofd, &sp)
    }

    /// Checks an OFD against a precomputed stripped antecedent partition
    /// (the discovery lattice reuses partition products).
    pub fn check_with_partition(&self, ofd: &Ofd, partition: &StrippedPartition) -> Validation {
        match ofd.kind {
            OfdKind::Synonym => self.run(ofd, partition, &self.syn_index),
            OfdKind::Inheritance { theta } => {
                let mut cache = self.inh_indexes.borrow_mut();
                let index = cache
                    .entry(theta)
                    .or_insert_with(|| SenseIndex::inheritance(self.rel, self.onto, theta));
                self.run(ofd, partition, index)
            }
        }
    }

    /// Checks a plain FD (syntactic equality only) against a precomputed
    /// partition.
    pub fn check_fd_with_partition(&self, fd: &Fd, partition: &StrippedPartition) -> bool {
        let col = self.rel.column(fd.rhs);
        partition.classes().all(|class| {
            let first = col[class[0] as usize];
            class.iter().all(|&t| col[t as usize] == first)
        })
    }

    /// Checks a plain FD, computing the partition.
    pub fn check_fd(&self, fd: &Fd) -> bool {
        let sp = StrippedPartition::of(self.rel, fd.lhs);
        self.check_fd_with_partition(fd, &sp)
    }

    fn run(&self, ofd: &Ofd, partition: &StrippedPartition, index: &SenseIndex) -> Validation {
        check_ofd_with_index(self.rel, index, ofd, partition)
    }
}

/// Checks an OFD against a caller-supplied [`SenseIndex`] and precomputed
/// antecedent partition.
///
/// This is the thread-safe core of [`Validator::check_with_partition`]
/// (`Relation` and `SenseIndex` are `Sync`), used by the parallel discovery
/// path. The index's construction mode (synonym vs inheritance) determines
/// the semantics; the `ofd.kind` field is not consulted.
pub fn check_ofd_with_index(
    rel: &Relation,
    index: &SenseIndex,
    ofd: &Ofd,
    partition: &StrippedPartition,
) -> Validation {
    let col = rel.column(ofd.rhs);
    let mut outcomes = Vec::with_capacity(partition.class_count());
    let mut covered_total = rel.n_rows() - partition.tuple_count();
    let mut value_counts: FxHashMap<ValueId, u32> = FxHashMap::default();
    let mut sense_counts: FxHashMap<SenseId, u32> = FxHashMap::default();
    for (class_index, class) in partition.classes().enumerate() {
        let outcome = class_outcome(
            class_index,
            class,
            col,
            index,
            &mut value_counts,
            &mut sense_counts,
        );
        covered_total += outcome.covered;
        outcomes.push(outcome);
    }
    Validation {
        ofd: *ofd,
        n_rows: rel.n_rows(),
        outcomes,
        covered_tuples: covered_total,
    }
}

/// Estimates an OFD's support from a uniform tuple sample — exploratory
/// profiling for instances too large for exact verification. The estimate
/// converges to [`Validation::support`] as `sample_size → n` (property
/// tested); at `sample_size ≥ n` it is exact.
pub fn estimate_support(
    rel: &Relation,
    index: &SenseIndex,
    ofd: &Ofd,
    sample_size: usize,
    seed: u64,
) -> f64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let n = rel.n_rows();
    if n == 0 {
        return 1.0;
    }
    if sample_size >= n {
        let sp = StrippedPartition::of(rel, ofd.lhs);
        return check_ofd_with_index(rel, index, ofd, &sp).support();
    }
    // Deterministic pseudo-random sample without replacement: rank rows by
    // a seeded hash and keep the smallest `sample_size`.
    let mut ranked: Vec<(u64, u32)> = (0..n as u32)
        .map(|t| {
            let mut h = DefaultHasher::new();
            (seed, t).hash(&mut h);
            (h.finish(), t)
        })
        .collect();
    ranked.select_nth_unstable(sample_size - 1);
    let mut rows: Vec<u32> = ranked[..sample_size].iter().map(|&(_, t)| t).collect();
    rows.sort_unstable();

    // Build the sampled sub-relation's antecedent partition directly.
    let lhs: Vec<crate::schema::AttrId> = ofd.lhs.iter().collect();
    let mut groups: FxHashMap<Vec<ValueId>, Vec<u32>> = FxHashMap::default();
    for &t in &rows {
        let key: Vec<ValueId> = lhs.iter().map(|&a| rel.value(t as usize, a)).collect();
        groups.entry(key).or_default().push(t);
    }
    let col = rel.column(ofd.rhs);
    let mut covered = 0usize;
    let mut value_counts: FxHashMap<ValueId, u32> = FxHashMap::default();
    let mut sense_counts: FxHashMap<SenseId, u32> = FxHashMap::default();
    for class in groups.values() {
        if class.len() < 2 {
            covered += class.len();
            continue;
        }
        let outcome = class_outcome(0, class, col, index, &mut value_counts, &mut sense_counts);
        covered += outcome.covered;
    }
    covered as f64 / sample_size as f64
}

/// Exact-mode check with early exit: returns `false` at the *first*
/// violating class, skipping the full [`Validation`] construction. This is
/// the discovery hot path — the overwhelming majority of lattice candidates
/// fail, usually in an early class.
pub fn check_ofd_exact(
    rel: &Relation,
    index: &SenseIndex,
    ofd: &Ofd,
    partition: &StrippedPartition,
) -> bool {
    let col = rel.column(ofd.rhs);
    let mut value_counts: FxHashMap<ValueId, u32> = FxHashMap::default();
    let mut sense_counts: FxHashMap<SenseId, u32> = FxHashMap::default();
    'class: for class in partition.classes() {
        value_counts.clear();
        for &t in class {
            *value_counts.entry(col[t as usize]).or_insert(0) += 1;
        }
        if value_counts.len() == 1 {
            continue; // FD fast path
        }
        // A satisfying sense must cover every tuple: count per sense and
        // check whether any reaches the class size.
        sense_counts.clear();
        let size = class.len() as u32;
        for (&v, &c) in value_counts.iter() {
            let senses = index.senses(v);
            if senses.is_empty() {
                return false; // this value can never be covered
            }
            for &s in senses {
                let entry = sense_counts.entry(s).or_insert(0);
                *entry += c;
                if *entry == size {
                    continue 'class;
                }
            }
        }
        return false;
    }
    true
}

/// Core per-class routine: the maximum number of tuples whose consequent
/// values are consistent under a single interpretation, and that witness.
fn class_outcome(
    class_index: usize,
    class: &[u32],
    col: &[ValueId],
    index: &SenseIndex,
    value_counts: &mut FxHashMap<ValueId, u32>,
    sense_counts: &mut FxHashMap<SenseId, u32>,
) -> ClassOutcome {
    value_counts.clear();
    for &t in class {
        *value_counts.entry(col[t as usize]).or_insert(0) += 1;
    }
    let size = class.len();
    let representative = class.first().copied().unwrap_or(0);

    // Opt-4 fast path: a single distinct consequent value means the class
    // satisfies the traditional FD, hence the OFD, with no ontology lookups.
    if value_counts.len() == 1 {
        if let Some((&v, _)) = value_counts.iter().next() {
            return ClassOutcome {
                class_index,
                representative,
                size,
                covered: size,
                witness: Some(Witness::Literal(v)),
            };
        }
    }

    // Best literal cover: tuples sharing one exact value are consistent even
    // if the ontology does not know the value. An empty class (possible only
    // through a degenerate caller) is vacuously satisfied rather than a
    // panic.
    let Some((&lit_value, &lit_count)) = value_counts
        .iter()
        .max_by_key(|&(v, c)| (*c, std::cmp::Reverse(*v)))
    else {
        return ClassOutcome {
            class_index,
            representative,
            size,
            covered: size,
            witness: None,
        };
    };

    // Sense frequencies: a sense covers a tuple when it contains the tuple's
    // value.
    sense_counts.clear();
    for (&v, &c) in value_counts.iter() {
        for &s in index.senses(v) {
            *sense_counts.entry(s).or_insert(0) += c;
        }
    }
    let best_sense = sense_counts
        .iter()
        .max_by_key(|&(s, c)| (*c, std::cmp::Reverse(*s)))
        .map(|(&s, &c)| (s, c));

    let (covered, witness) = match best_sense {
        Some((s, c)) if c >= lit_count => (c, Witness::Sense(s)),
        _ => (lit_count, Witness::Literal(lit_value)),
    };
    ClassOutcome {
        class_index,
        representative,
        size,
        covered: covered as usize,
        witness: Some(witness),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{table1, table1_updated};
    use ofd_ontology::{samples, OntologyBuilder};

    #[test]
    fn f1_cc_to_ctry_fails_as_fd_but_holds_as_synonym_ofd() {
        // Example 1.1 / 2.2.
        let rel = table1();
        let onto = samples::country_ontology();
        let v = Validator::new(&rel, &onto);
        let fd = Fd::new(
            rel.schema().set(["CC"]).unwrap(),
            rel.schema().attr("CTRY").unwrap(),
        );
        assert!(!v.check_fd(&fd), "USA/America/Bharat break the plain FD");
        let ofd = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
        let val = v.check(&ofd);
        assert!(val.satisfied(), "synonyms rescue the dependency");
        assert_eq!(val.support(), 1.0);
        assert_eq!(val.violation_count(), 0);
    }

    #[test]
    fn f2_symp_diag_to_med_is_inheritance_not_synonym() {
        // Example 1.1: tylenol is-a acetaminophen is-a analgesic, so the
        // nausea class only resolves under inheritance semantics.
        let rel = table1();
        let onto = samples::medical_drug_ontology();
        let v = Validator::new(&rel, &onto);
        let syn = Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap();
        let val = v.check(&syn);
        assert!(!val.satisfied());
        assert_eq!(val.violation_count(), 1, "only the nausea class violates");
        let inh = Ofd::inheritance(syn.lhs, syn.rhs, 1);
        assert!(v.check(&inh).satisfied(), "θ=1 resolves via analgesic");
    }

    #[test]
    fn example_1_2_updates_break_the_headache_class() {
        let rel = table1_updated();
        let onto = samples::medical_drug_ontology();
        let v = Validator::new(&rel, &onto);
        let syn = Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap();
        let val = v.check(&syn);
        let headache = val
            .violations()
            .find(|o| o.representative == 7)
            .expect("headache class violates");
        assert_eq!(headache.size, 4);
        // Best covers: FDA diltiazem {cartia, tiazac} or MoH {cartia, ASA}.
        assert_eq!(headache.covered, 2);
    }

    #[test]
    fn table2_pairwise_common_but_empty_intersection() {
        // The defining example: every pair of Y-values shares a class, yet
        // no single class covers all three, so the OFD fails.
        let rel = Relation::from_rows(
            ["X", "Y"],
            [
                &["u", "v"] as &[&str],
                &["u", "w"],
                &["u", "z"],
            ],
        )
        .unwrap();
        let mut b = OntologyBuilder::new();
        b.concept("C").synonyms(["v", "z"]).build().unwrap();
        b.concept("D").synonyms(["v", "w"]).build().unwrap();
        b.concept("F").synonyms(["w", "z"]).build().unwrap();
        b.concept("G").synonyms(["z"]).build().unwrap();
        let onto = b.finish().unwrap();
        // Pairwise: every pair has a common sense.
        for (a, c) in [("v", "w"), ("v", "z"), ("w", "z")] {
            assert!(!onto.common_sense([a, c]).is_empty(), "{a},{c}");
        }
        let v = Validator::new(&rel, &onto);
        let ofd = Ofd::synonym_named(rel.schema(), &["X"], "Y").unwrap();
        let val = v.check(&ofd);
        assert!(!val.satisfied());
        // Best sense covers exactly 2 of the 3 tuples.
        assert_eq!(val.outcomes[0].covered, 2);
        assert!((val.support() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn support_counts_singletons_as_satisfied() {
        let rel = table1_updated();
        let onto = samples::medical_drug_ontology();
        let v = Validator::new(&rel, &onto);
        let syn = Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap();
        let val = v.check(&syn);
        // Classes: joint-pain (3, NSAID ✓), nausea (3, best 2 — tylenol and
        // acetaminophen share the acetaminophen sense but analgesic is only
        // an is-a ancestor), chest-pain (singleton, stripped), headache
        // (4, best 2).
        assert_eq!(val.covered_tuples, 1 + 3 + 2 + 2);
        assert!((val.support() - 8.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn meets_support_uses_exact_integer_arithmetic() {
        // Continuation of the case above: 8 of 11 tuples covered.
        let rel = table1_updated();
        let onto = samples::medical_drug_ontology();
        let v = Validator::new(&rel, &onto);
        let syn = Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap();
        let val = v.check(&syn);
        assert_eq!(val.violating_tuples(), 3);
        // Exactly at the boundary: ceil(8/11 · 11) = 8 ≤ 8.
        assert!(val.meets_support(8.0 / 11.0));
        // Just above it: ceil(0.75 · 11) = 9 > 8.
        assert!(!val.meets_support(0.75));
        assert!(!val.meets_support(1.0));
        assert!(val.meets_support(0.5));
    }

    #[test]
    fn empty_ontology_reduces_ofd_to_fd() {
        let rel = table1();
        let onto = ofd_ontology::Ontology::empty();
        let v = Validator::new(&rel, &onto);
        for lhs in [["CC"], ["SYMP"], ["TEST"]] {
            for rhs in ["CTRY", "DIAG", "MED"] {
                let ofd = Ofd::synonym_named(rel.schema(), &[lhs[0]], rhs).unwrap();
                let fd = ofd.as_fd();
                assert_eq!(
                    v.check(&ofd).satisfied(),
                    v.check_fd(&fd),
                    "{}",
                    ofd.display(rel.schema())
                );
            }
        }
    }

    #[test]
    fn trivial_ofd_always_holds() {
        let rel = table1();
        let onto = samples::medical_drug_ontology();
        let v = Validator::new(&rel, &onto);
        let schema = rel.schema();
        let ofd = Ofd::synonym(
            schema.set(["MED", "CC"]).unwrap(),
            schema.attr("MED").unwrap(),
        );
        assert!(ofd.is_trivial());
        assert!(v.check(&ofd).satisfied());
    }

    #[test]
    fn superkey_antecedent_always_satisfied() {
        // Opt-3: if X is a key, the stripped partition is empty and any
        // X → A holds vacuously.
        let rel = Relation::from_rows(
            ["ID", "B"],
            [&["1", "x"] as &[&str], &["2", "y"], &["3", "x"]],
        )
        .unwrap();
        let onto = ofd_ontology::Ontology::empty();
        let v = Validator::new(&rel, &onto);
        let ofd = Ofd::synonym_named(rel.schema(), &["ID"], "B").unwrap();
        let val = v.check(&ofd);
        assert!(val.satisfied());
        assert!(val.outcomes.is_empty(), "no non-singleton classes");
        assert_eq!(val.support(), 1.0);
    }

    #[test]
    fn witness_reports_the_covering_sense() {
        let rel = table1();
        let onto = samples::medical_drug_ontology();
        let v = Validator::new(&rel, &onto);
        let ofd = Ofd::synonym_named(rel.schema(), &["DIAG"], "MED").unwrap();
        let val = v.check(&ofd);
        let joint = val
            .outcomes
            .iter()
            .find(|o| o.representative == 0)
            .expect("osteoarthritis class");
        match joint.witness {
            Some(Witness::Sense(s)) => {
                assert_eq!(onto.concept(s).unwrap().label(), "NSAID");
            }
            other => panic!("expected a sense witness, got {other:?}"),
        }
    }

    #[test]
    fn sampled_support_converges_to_exact() {
        use crate::sense_index::SenseIndex;
        use crate::validate::estimate_support;
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let ofd = Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap();
        let exact = Validator::new(&rel, &onto).check(&ofd).support();
        // Full-sample estimate is exact.
        assert!((estimate_support(&rel, &index, &ofd, rel.n_rows(), 1) - exact).abs() < 1e-12);
        assert!(
            (estimate_support(&rel, &index, &ofd, 10 * rel.n_rows(), 1) - exact).abs() < 1e-12
        );
        // Sub-samples stay in [0, 1] and are seed-deterministic.
        for size in [2usize, 5, 8] {
            let a = estimate_support(&rel, &index, &ofd, size, 7);
            let b = estimate_support(&rel, &index, &ofd, size, 7);
            assert_eq!(a, b);
            assert!((0.0..=1.0).contains(&a));
        }
        // Empty relation edge case.
        let empty = Relation::from_rows(["A", "B"], std::iter::empty::<&[&str]>()).unwrap();
        let eidx = SenseIndex::synonym(&empty, &onto);
        let eofd = Ofd::synonym_named(empty.schema(), &["A"], "B").unwrap();
        assert_eq!(estimate_support(&empty, &eidx, &eofd, 5, 1), 1.0);
    }

    #[test]
    fn sampled_support_is_statistically_close_on_larger_data() {
        use crate::sense_index::SenseIndex;
        use crate::validate::estimate_support;
        // Build a 400-row relation with a known ~75% support dependency.
        let mut b = crate::relation::Relation::builder(
            crate::schema::Schema::new(["X", "Y"]).unwrap(),
        );
        for i in 0..400 {
            let x = format!("x{}", i % 20);
            let y = if i % 4 == 0 { "bad".to_owned() } else { format!("y{}", i % 20) };
            b.push_row([x.as_str(), y.as_str()]).unwrap();
        }
        let rel = b.finish();
        let onto = ofd_ontology::Ontology::empty();
        let index = SenseIndex::synonym(&rel, &onto);
        let ofd = Ofd::synonym_named(rel.schema(), &["X"], "Y").unwrap();
        let exact = Validator::new(&rel, &onto).check(&ofd).support();
        let est = estimate_support(&rel, &index, &ofd, 200, 3);
        assert!(
            (est - exact).abs() < 0.15,
            "estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn exact_early_exit_matches_full_validation() {
        use crate::partition::StrippedPartition;
        use crate::sense_index::SenseIndex;
        let rel = table1_updated();
        let onto = samples::combined_paper_ontology();
        let index = SenseIndex::synonym(&rel, &onto);
        let v = Validator::new(&rel, &onto);
        let n = rel.schema().len();
        for bits in 0..(1u64 << n) {
            let lhs = crate::schema::AttrSet::from_bits(bits);
            for a in rel.schema().attrs() {
                if lhs.contains(a) {
                    continue;
                }
                let ofd = Ofd::synonym(lhs, a);
                let sp = StrippedPartition::of(&rel, lhs);
                assert_eq!(
                    crate::validate::check_ofd_exact(&rel, &index, &ofd, &sp),
                    v.check_with_partition(&ofd, &sp).satisfied(),
                    "{}",
                    ofd.display(rel.schema())
                );
            }
        }
    }

    #[test]
    fn fd_with_partition_matches_fd_check() {
        let rel = table1();
        let onto = ofd_ontology::Ontology::empty();
        let v = Validator::new(&rel, &onto);
        let lhs = rel.schema().set(["SYMP"]).unwrap();
        let sp = StrippedPartition::of(&rel, lhs);
        let fd = Fd::new(lhs, rel.schema().attr("DIAG").unwrap());
        assert_eq!(v.check_fd(&fd), v.check_fd_with_partition(&fd, &sp));
        assert!(v.check_fd(&fd), "SYMP -> DIAG holds in Table 1");
    }
}
