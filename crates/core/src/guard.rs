//! Execution guards: deadlines, work/memory budgets and cooperative
//! cancellation for the long-running engines (discovery, FD baselines,
//! cleaning).
//!
//! An [`ExecGuard`] is a cheap, cloneable handle shared between the caller
//! and an engine. The engine probes it at its natural checkpoints —
//! lattice levels, candidate batches, node visits, search expansions —
//! via [`ExecGuard::check`]; the caller sets limits up front
//! ([`GuardConfig`]) and may flip the cancellation flag at any time from
//! any thread ([`ExecGuard::cancel`]). On an [`Interrupt`] the engine
//! stops where it is and returns a **sound** partial result wrapped in
//! [`Partial`]: everything already emitted is valid, the wrapper records
//! that the enumeration did not finish and why.
//!
//! Checkpoint placement policy: a checkpoint goes where the engine
//! completes a unit of output (so stopping there never truncates an
//! individual dependency or repair mid-construction) and inside any loop
//! whose trip count grows with the input (so the latency between a limit
//! expiring and the engine observing it is bounded by one unit of work,
//! not one run). Wall-clock reads are amortised: only every
//! [`TIME_CHECK_MASK`]+1-th probe looks at the clock, so a checkpoint in a
//! hot loop costs an atomic increment in the common case.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Why an engine stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The work-unit budget (checkpoint count) was exhausted.
    WorkBudgetExceeded,
    /// The process's resident set exceeded the memory budget.
    MemoryBudgetExceeded,
    /// The caller flipped the cancellation flag.
    Cancelled,
    /// A test-only fail point tripped (see [`ExecGuard::fail_after`]).
    FailPoint,
    /// A worker thread panicked; the panic was caught and isolated, and
    /// the run degraded to a sound partial result instead of aborting.
    WorkerPanic,
}

impl Interrupt {
    /// Stable snake_case slug for metrics labels
    /// (e.g. `guard.interrupt.deadline_exceeded`).
    pub fn label(self) -> &'static str {
        match self {
            Interrupt::DeadlineExceeded => "deadline_exceeded",
            Interrupt::WorkBudgetExceeded => "work_budget_exceeded",
            Interrupt::MemoryBudgetExceeded => "memory_budget_exceeded",
            Interrupt::Cancelled => "cancelled",
            Interrupt::FailPoint => "fail_point",
            Interrupt::WorkerPanic => "worker_panic",
        }
    }
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
            Interrupt::WorkBudgetExceeded => write!(f, "work budget exceeded"),
            Interrupt::MemoryBudgetExceeded => write!(f, "memory budget exceeded"),
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::FailPoint => write!(f, "fail point tripped"),
            Interrupt::WorkerPanic => write!(f, "worker panic"),
        }
    }
}

impl Error for Interrupt {}

/// A value an engine computed before an interrupt, tagged with whether the
/// computation ran to completion.
///
/// The contract every guarded engine upholds: the `value` of an incomplete
/// result is *sound* — a subset of (a prefix of) what the uninterrupted
/// run would have produced, with every individual item valid — it is only
/// *completeness* that is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partial<T> {
    /// The (possibly truncated) result.
    pub value: T,
    /// `true` when the computation ran to the end.
    pub complete: bool,
    /// Why the computation stopped, when `complete` is false.
    pub reason: Option<Interrupt>,
}

impl<T> Partial<T> {
    /// Wraps a result that ran to completion.
    pub fn complete(value: T) -> Partial<T> {
        Partial {
            value,
            complete: true,
            reason: None,
        }
    }

    /// Wraps a result truncated by `reason`.
    pub fn interrupted(value: T, reason: Interrupt) -> Partial<T> {
        Partial {
            value,
            complete: false,
            reason: Some(reason),
        }
    }

    /// Wraps a result whose completeness is decided by `outcome` — the
    /// usual way to finish a guarded function:
    /// `Partial::from_outcome(out, guard_result.err())`.
    pub fn from_outcome(value: T, interrupt: Option<Interrupt>) -> Partial<T> {
        Partial {
            value,
            complete: interrupt.is_none(),
            reason: interrupt,
        }
    }

    /// Maps the value, preserving the completeness tag.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Partial<U> {
        Partial {
            value: f(self.value),
            complete: self.complete,
            reason: self.reason,
        }
    }

    /// The value, if complete — an interrupted value is discarded.
    pub fn into_complete(self) -> Option<T> {
        if self.complete {
            Some(self.value)
        } else {
            None
        }
    }
}

/// Limits for a guarded run; all default to unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct GuardConfig {
    /// Wall-clock limit for the run.
    pub timeout: Option<Duration>,
    /// Maximum number of checkpoints (work units) the run may pass.
    pub max_work: Option<u64>,
    /// Resident-set ceiling in MiB (peak RSS, read from
    /// `/proc/self/status`; ignored on platforms without procfs).
    pub max_rss_mib: Option<usize>,
}

/// How many probes share one wall-clock / RSS read (power of two minus 1).
const TIME_CHECK_MASK: u64 = 0x3F;

#[derive(Debug)]
struct GuardState {
    /// Deadline, relative to `started`.
    deadline: Option<Instant>,
    /// Work-unit budget.
    max_work: Option<u64>,
    /// RSS ceiling in KiB (procfs unit).
    max_rss_kib: Option<u64>,
    /// Where to read the resident set from (`None` = `/proc/self/status`);
    /// overridable so the degraded no-procfs path is unit-testable.
    rss_source: Option<PathBuf>,
    /// Set once a probe wanted to enforce `max_rss_kib` but the RSS source
    /// was unreadable — the ceiling is inert from then on.
    rss_unavailable: AtomicBool,
    /// Checkpoints passed so far.
    work: AtomicU64,
    /// Cooperative cancellation flag.
    cancelled: AtomicBool,
    /// Sticky first interrupt, encoded via `encode_interrupt`.
    tripped: AtomicUsize,
    /// Test-only: trip at the Nth checkpoint (0 = disabled; N means the
    /// probe observing `work == N` fails).
    fail_at: AtomicU64,
}

const TRIP_NONE: usize = 0;

fn encode_interrupt(i: Interrupt) -> usize {
    match i {
        Interrupt::DeadlineExceeded => 1,
        Interrupt::WorkBudgetExceeded => 2,
        Interrupt::MemoryBudgetExceeded => 3,
        Interrupt::Cancelled => 4,
        Interrupt::FailPoint => 5,
        Interrupt::WorkerPanic => 6,
    }
}

fn decode_interrupt(code: usize) -> Option<Interrupt> {
    match code {
        1 => Some(Interrupt::DeadlineExceeded),
        2 => Some(Interrupt::WorkBudgetExceeded),
        3 => Some(Interrupt::MemoryBudgetExceeded),
        4 => Some(Interrupt::Cancelled),
        5 => Some(Interrupt::FailPoint),
        6 => Some(Interrupt::WorkerPanic),
        _ => None,
    }
}

/// A cheap, cloneable execution guard: clones share one deadline, budget
/// and cancellation flag.
///
/// The default guard is unlimited — `ExecGuard::default().check()` never
/// fails — so APIs can take a guard unconditionally and callers who don't
/// care pass `&ExecGuard::default()`.
#[derive(Debug, Clone, Default)]
pub struct ExecGuard {
    state: Arc<GuardState>,
}

impl Default for GuardState {
    fn default() -> GuardState {
        GuardState {
            deadline: None,
            max_work: None,
            max_rss_kib: None,
            rss_source: None,
            rss_unavailable: AtomicBool::new(false),
            work: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            tripped: AtomicUsize::new(TRIP_NONE),
            fail_at: AtomicU64::new(0),
        }
    }
}

impl ExecGuard {
    /// A guard with no limits; [`check`](ExecGuard::check) always succeeds
    /// unless [`cancel`](ExecGuard::cancel) is called.
    pub fn unlimited() -> ExecGuard {
        ExecGuard::default()
    }

    /// A guard enforcing `config`'s limits, with the clock starting now.
    pub fn new(config: GuardConfig) -> ExecGuard {
        ExecGuard {
            state: Arc::new(GuardState {
                deadline: config.timeout.map(|t| Instant::now() + t),
                max_work: config.max_work,
                max_rss_kib: config.max_rss_mib.map(|m| m as u64 * 1024),
                ..GuardState::default()
            }),
        }
    }

    /// A guard like [`new`](ExecGuard::new) but reading the resident set
    /// from `rss_source` instead of `/proc/self/status`. The seam that
    /// makes the degraded no-procfs path ([`rss_limit_inert`]
    /// (ExecGuard::rss_limit_inert)) testable on Linux; engines never need
    /// it.
    pub fn with_rss_source(config: GuardConfig, rss_source: impl Into<PathBuf>) -> ExecGuard {
        ExecGuard {
            state: Arc::new(GuardState {
                deadline: config.timeout.map(|t| Instant::now() + t),
                max_work: config.max_work,
                max_rss_kib: config.max_rss_mib.map(|m| m as u64 * 1024),
                rss_source: Some(rss_source.into()),
                ..GuardState::default()
            }),
        }
    }

    /// Shorthand for a deadline-only guard.
    pub fn with_timeout(timeout: Duration) -> ExecGuard {
        ExecGuard::new(GuardConfig {
            timeout: Some(timeout),
            ..GuardConfig::default()
        })
    }

    /// Shorthand for a work-budget-only guard.
    pub fn with_max_work(max_work: u64) -> ExecGuard {
        ExecGuard::new(GuardConfig {
            max_work: Some(max_work),
            ..GuardConfig::default()
        })
    }

    /// The checkpoint probe. Counts one unit of work and returns
    /// `Err(reason)` once any limit has been hit; after the first trip
    /// every later probe fails with the same (sticky) reason.
    ///
    /// Cost: one atomic fetch-add plus two relaxed loads in the common
    /// case; the wall clock and procfs are consulted every 64th probe
    /// (and on the very first).
    pub fn check(&self) -> Result<(), Interrupt> {
        let s = &*self.state;
        // Sticky: once tripped, stay tripped (keeps concurrent workers and
        // nested loops consistent about the reason).
        if let Some(i) = decode_interrupt(s.tripped.load(Ordering::Relaxed)) {
            return Err(i);
        }
        let n = s.work.fetch_add(1, Ordering::Relaxed) + 1;
        if s.cancelled.load(Ordering::Relaxed) {
            return Err(self.trip(Interrupt::Cancelled));
        }
        let fail_at = s.fail_at.load(Ordering::Relaxed);
        if fail_at != 0 && n >= fail_at {
            return Err(self.trip(Interrupt::FailPoint));
        }
        if let Some(max) = s.max_work {
            if n > max {
                return Err(self.trip(Interrupt::WorkBudgetExceeded));
            }
        }
        // Amortised clock / procfs reads.
        if n & TIME_CHECK_MASK == 1 {
            if let Some(deadline) = s.deadline {
                if Instant::now() >= deadline {
                    return Err(self.trip(Interrupt::DeadlineExceeded));
                }
            }
            if let Some(max_kib) = s.max_rss_kib {
                match read_rss_kib(s.rss_source.as_deref()) {
                    Some(rss) if rss > max_kib => {
                        return Err(self.trip(Interrupt::MemoryBudgetExceeded));
                    }
                    Some(_) => {}
                    // No readable RSS source: the ceiling is inert. Record
                    // it on the guard (for callers that report metrics) and
                    // warn once per process so operators learn the limit
                    // they configured is not being enforced.
                    None => {
                        s.rss_unavailable.store(true, Ordering::Relaxed);
                        static WARN_ONCE: Once = Once::new();
                        WARN_ONCE.call_once(|| {
                            eprintln!(
                                "warning: guard.rss.unavailable: --max-rss-mib is inert \
                                 (no readable RSS source on this platform)"
                            );
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Records `reason` as the sticky interrupt (first writer wins) and
    /// returns the reason actually recorded.
    fn trip(&self, reason: Interrupt) -> Interrupt {
        let s = &*self.state;
        match s.tripped.compare_exchange(
            TRIP_NONE,
            encode_interrupt(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => reason,
            Err(prev) => decode_interrupt(prev).unwrap_or(reason),
        }
    }

    /// Records an externally observed failure — e.g. a caught worker
    /// panic ([`Interrupt::WorkerPanic`]) — as the sticky interrupt, so
    /// every clone's next probe fails and the engine degrades to its
    /// sound partial result. First recorded interrupt wins; returns the
    /// one actually in effect. Safe from any thread, repeatedly.
    pub fn trip_external(&self, reason: Interrupt) -> Interrupt {
        self.trip(reason)
    }

    /// Flips the cancellation flag; every clone's next probe fails with
    /// [`Interrupt::Cancelled`]. Safe to call from any thread, repeatedly.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether any probe has failed (or will, at the next probe after a
    /// cancellation).
    pub fn is_tripped(&self) -> bool {
        self.state.tripped.load(Ordering::Relaxed) != TRIP_NONE
    }

    /// The sticky interrupt, if any probe has failed.
    pub fn interrupt(&self) -> Option<Interrupt> {
        decode_interrupt(self.state.tripped.load(Ordering::Relaxed))
    }

    /// Checkpoints passed so far (across all clones).
    pub fn work_done(&self) -> u64 {
        self.state.work.load(Ordering::Relaxed)
    }

    /// Test-only fail point: the probe observing the `n`-th checkpoint
    /// (1-based) fails with [`Interrupt::FailPoint`], deterministically.
    /// `n = 0` disables the fail point. Used by the fault-injection tests
    /// to stop an engine at an exact internal position.
    pub fn fail_after(&self, n: u64) {
        self.state.fail_at.store(n, Ordering::Relaxed);
    }

    /// Runs `check` and converts the outcome into the `Option<Interrupt>`
    /// shape [`Partial::from_outcome`] takes.
    pub fn probe(&self) -> Option<Interrupt> {
        self.check().err()
    }

    /// `true` once a probe wanted to enforce the configured RSS ceiling
    /// but could not read the resident set — the ceiling is inert and the
    /// run is effectively memory-unbounded. Callers with an `Obs` handle
    /// should surface this as a `guard.rss.unavailable` counter.
    pub fn rss_limit_inert(&self) -> bool {
        self.state.rss_unavailable.load(Ordering::Relaxed)
    }
}

/// Current resident set (VmRSS) in KiB from `/proc/self/status`; `None`
/// off Linux or if procfs is unreadable. Public so services can make
/// load-shedding decisions (and detect the degraded no-procfs path) with
/// the same reading the guard enforces.
pub fn rss_kib() -> Option<u64> {
    read_rss_kib(None)
}

/// VmRSS in KiB from `source` (`None` = `/proc/self/status`).
fn read_rss_kib(source: Option<&std::path::Path>) -> Option<u64> {
    let path = source.unwrap_or(std::path::Path::new("/proc/self/status"));
    let status = std::fs::read_to_string(path).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = ExecGuard::unlimited();
        for _ in 0..10_000 {
            assert!(g.check().is_ok());
        }
        assert!(!g.is_tripped());
        assert_eq!(g.interrupt(), None);
        assert_eq!(g.work_done(), 10_000);
    }

    #[test]
    fn zero_deadline_trips_on_first_probe() {
        let g = ExecGuard::with_timeout(Duration::ZERO);
        assert_eq!(g.check(), Err(Interrupt::DeadlineExceeded));
        // Sticky thereafter.
        assert_eq!(g.check(), Err(Interrupt::DeadlineExceeded));
        assert_eq!(g.interrupt(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let g = ExecGuard::with_timeout(Duration::from_secs(3600));
        for _ in 0..10_000 {
            assert!(g.check().is_ok());
        }
    }

    #[test]
    fn work_budget_counts_checkpoints() {
        let g = ExecGuard::with_max_work(5);
        for _ in 0..5 {
            assert!(g.check().is_ok());
        }
        assert_eq!(g.check(), Err(Interrupt::WorkBudgetExceeded));
    }

    #[test]
    fn cancellation_is_observed_at_the_next_checkpoint() {
        let g = ExecGuard::unlimited();
        assert!(g.check().is_ok());
        let clone = g.clone();
        clone.cancel();
        assert_eq!(g.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn cancellation_crosses_threads() {
        let g = ExecGuard::unlimited();
        let clone = g.clone();
        let handle = std::thread::spawn(move || clone.cancel());
        handle.join().expect("cancel thread");
        assert_eq!(g.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn fail_point_trips_at_exactly_the_nth_checkpoint() {
        let g = ExecGuard::unlimited();
        g.fail_after(3);
        assert!(g.check().is_ok());
        assert!(g.check().is_ok());
        assert_eq!(g.check(), Err(Interrupt::FailPoint));
    }

    #[test]
    fn first_trip_reason_is_sticky() {
        let g = ExecGuard::with_max_work(1);
        assert!(g.check().is_ok());
        assert_eq!(g.check(), Err(Interrupt::WorkBudgetExceeded));
        g.cancel();
        // The recorded reason does not change after the fact.
        assert_eq!(g.check(), Err(Interrupt::WorkBudgetExceeded));
    }

    #[test]
    fn clones_share_the_work_counter() {
        let g = ExecGuard::with_max_work(10);
        let c = g.clone();
        for _ in 0..5 {
            assert!(g.check().is_ok());
            assert!(c.check().is_ok());
        }
        assert!(g.check().is_err());
    }

    #[test]
    fn tiny_memory_budget_trips() {
        if rss_kib().is_none() {
            return; // no procfs on this platform
        }
        let g = ExecGuard::new(GuardConfig {
            max_rss_mib: Some(1),
            ..GuardConfig::default()
        });
        // The first probe reads procfs; any live process exceeds 1 MiB.
        assert_eq!(g.check(), Err(Interrupt::MemoryBudgetExceeded));
    }

    #[test]
    fn unreadable_rss_source_marks_the_limit_inert_instead_of_tripping() {
        let g = ExecGuard::with_rss_source(
            GuardConfig {
                max_rss_mib: Some(1),
                ..GuardConfig::default()
            },
            "/nonexistent/ofd-guard-rss-test",
        );
        assert!(!g.rss_limit_inert(), "inert flag starts clear");
        // A 1 MiB ceiling would trip the very first probe if the source
        // were readable (see tiny_memory_budget_trips); with the source
        // unreadable the run must continue, memory-unbounded but sound.
        for _ in 0..1_000 {
            assert!(g.check().is_ok());
        }
        assert!(g.rss_limit_inert(), "degraded path is recorded");
        assert!(g.clone().rss_limit_inert(), "clones share the flag");
        assert_eq!(g.interrupt(), None);
    }

    #[test]
    fn readable_rss_source_still_enforces_the_ceiling() {
        let dir = std::env::temp_dir().join(format!("ofd-guard-rss-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("status");
        std::fs::write(&path, "Name:\ttest\nVmRSS:\t   4096 kB\n").expect("write status");
        let g = ExecGuard::with_rss_source(
            GuardConfig {
                max_rss_mib: Some(1), // 1024 KiB < 4096 KiB reported
                ..GuardConfig::default()
            },
            &path,
        );
        assert_eq!(g.check(), Err(Interrupt::MemoryBudgetExceeded));
        assert!(!g.rss_limit_inert());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_wrappers_carry_the_tag() {
        let c = Partial::complete(vec![1, 2]);
        assert!(c.complete && c.reason.is_none());
        assert_eq!(c.into_complete(), Some(vec![1, 2]));

        let i = Partial::interrupted(vec![1], Interrupt::Cancelled);
        assert!(!i.complete);
        assert_eq!(i.reason, Some(Interrupt::Cancelled));
        assert_eq!(i.clone().into_complete(), None);
        let mapped = i.map(|v| v.len());
        assert_eq!(mapped.value, 1);
        assert!(!mapped.complete);

        let from = Partial::from_outcome(7, None);
        assert!(from.complete);
        let from = Partial::from_outcome(7, Some(Interrupt::DeadlineExceeded));
        assert!(!from.complete);
    }

    #[test]
    fn probe_mirrors_check() {
        let g = ExecGuard::with_max_work(1);
        assert_eq!(g.probe(), None);
        assert_eq!(g.probe(), Some(Interrupt::WorkBudgetExceeded));
    }

    #[test]
    fn interrupt_displays_are_informative() {
        for i in [
            Interrupt::DeadlineExceeded,
            Interrupt::WorkBudgetExceeded,
            Interrupt::MemoryBudgetExceeded,
            Interrupt::Cancelled,
            Interrupt::FailPoint,
            Interrupt::WorkerPanic,
        ] {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn trip_external_is_sticky_and_first_writer_wins() {
        let g = ExecGuard::default();
        assert_eq!(g.trip_external(Interrupt::WorkerPanic), Interrupt::WorkerPanic);
        assert_eq!(g.check(), Err(Interrupt::WorkerPanic));
        // A later external trip does not overwrite the first interrupt.
        assert_eq!(g.trip_external(Interrupt::Cancelled), Interrupt::WorkerPanic);
        assert_eq!(g.interrupt(), Some(Interrupt::WorkerPanic));
        // Clones share the sticky state.
        assert_eq!(g.clone().check(), Err(Interrupt::WorkerPanic));
    }
}
