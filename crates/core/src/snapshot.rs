//! Crash-safe checkpoint persistence: atomic writes, a versioned and
//! checksummed snapshot envelope, and a directory store that always
//! recovers the newest *valid* snapshot.
//!
//! ## Crash model
//!
//! A run may die at any instruction (process kill, OOM, power loss) and
//! any in-flight write may be torn. The store defends with three layers:
//!
//! 1. **Atomic replace** ([`atomic_write`]): payloads go to a temporary
//!    file in the target directory, are fsynced, then renamed over the
//!    final path — readers never observe a half-written file *created by
//!    this writer*.
//! 2. **Checksummed envelope**: every snapshot file starts with
//!    `OFDSNAP v1 <fnv64-hex> <len>` followed by the JSON body; a torn or
//!    bit-rotted file fails validation and is skipped, never trusted.
//! 3. **Append-only sequence** ([`SnapshotStore`]): each checkpoint gets a
//!    fresh `name.NNNNNN.ckpt` file; [`SnapshotStore::load_latest`] walks
//!    the sequence newest-first and returns the first snapshot that
//!    validates, so corrupting the newest file merely falls back to the
//!    one before it.
//!
//! Snapshot-write faults from a [`FaultPlan`](crate::FaultPlan) are
//! injected here — a clean I/O error, or a deliberately torn file at the
//! final path (simulating a *non-atomic* writer dying mid-write), which
//! the loader must reject by checksum.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::fault::{FaultPlan, SnapshotFault};
use crate::Relation;
use ofd_ontology::Ontology;

/// Version of the snapshot envelope and of every body schema; bump on any
/// incompatible change (older snapshots are then skipped, not misread).
pub const SNAPSHOT_VERSION: u32 = 1;

const MAGIC: &str = "OFDSNAP";

/// 64-bit FNV-1a: the snapshot checksum (also used for input
/// fingerprints). Not cryptographic — it guards against torn writes and
/// bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Incremental FNV-1a hasher for building input fingerprints from
/// heterogeneous parts without materializing one buffer.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }
}

impl Fingerprint {
    /// A fresh hasher.
    pub fn new() -> Fingerprint {
        Fingerprint::default()
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Feeds a length-prefixed string (so `["ab","c"]` ≠ `["a","bc"]`).
    pub fn update_str(&mut self, s: &str) -> &mut Self {
        self.update(&(s.len() as u64).to_le_bytes());
        self.update(s.as_bytes())
    }

    /// Feeds one u64.
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Feeds a relation — schema names, cell contents and value pool — into a
/// fingerprint. Two relations with the same digest are cell-for-cell
/// identical (up to FNV collisions).
pub fn hash_relation(fp: &mut Fingerprint, rel: &Relation) {
    let schema = rel.schema();
    fp.update_u64(schema.len() as u64);
    for a in schema.attrs() {
        fp.update_str(schema.name(a));
    }
    fp.update_u64(rel.n_rows() as u64);
    for a in schema.attrs() {
        for &v in rel.column(a) {
            fp.update_u64(v.index() as u64);
        }
    }
    fp.update_u64(rel.pool().len() as u64);
    for (_, text) in rel.pool().iter() {
        fp.update_str(text);
    }
}

/// Feeds an ontology — concept labels, parent links and synonym sets — into
/// a fingerprint.
pub fn hash_ontology(fp: &mut Fingerprint, onto: &Ontology) {
    fp.update_u64(onto.len() as u64);
    for concept in onto.concepts() {
        fp.update_str(concept.label());
        fp.update_u64(concept.parent().map_or(u64::MAX, |p| p.index() as u64));
        fp.update_u64(concept.synonyms().len() as u64);
        for s in concept.synonyms() {
            fp.update_str(s);
        }
    }
}

/// Checkpoint configuration shared by the discovery and cleaning drivers:
/// where snapshots go, and whether to restore from the newest valid one
/// before running.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Where snapshots are written and read. Install a [`FaultPlan`] on
    /// the store to inject snapshot-write faults.
    pub store: SnapshotStore,
    /// Restore from the newest valid snapshot before running. A missing,
    /// corrupt or fingerprint-mismatched snapshot falls back to a fresh
    /// run — resume is always safe to request.
    pub resume: bool,
}

impl CheckpointOptions {
    /// Checkpoints into `dir`, without resuming.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointOptions {
        CheckpointOptions {
            store: SnapshotStore::new(dir),
            resume: false,
        }
    }

    /// Toggles resume-from-snapshot.
    pub fn resume(mut self, on: bool) -> CheckpointOptions {
        self.resume = on;
        self
    }
}

/// Errors of the snapshot layer.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed (includes injected
    /// `snapshot-io` faults).
    Io(io::Error),
    /// A snapshot file failed validation (bad magic, version, checksum or
    /// JSON) — reported with the reason; loaders skip such files.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::Corrupt { path, reason } => {
                write!(f, "corrupt snapshot {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Fsyncs a directory so a rename that landed in it survives power loss.
///
/// POSIX only guarantees a rename is durable once the *directory* entry
/// is flushed; without this a checkpoint can pass its own fsync, be
/// renamed into place, and still vanish when power is cut before the
/// kernel writes the directory block back. On Unix a failure here is a
/// real durability gap and is propagated; on platforms where directory
/// handles cannot be opened or synced (e.g. Windows) the call is
/// best-effort and reports success.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, then fsync of the parent directory
/// so the rename itself is durable ([`fsync_dir`]). On any error before
/// the rename the destination is left untouched (either the old content
/// or absent); an error from the directory fsync means the new content is
/// visible but its durability across power loss is not guaranteed — which
/// checkpoint writers must treat as a failed snapshot.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    // The temp name must be unique per call, not just per process: two
    // threads (serve workers sharing a checkpoint dir) writing the same
    // destination would otherwise truncate each other's in-flight temp
    // file and fail the rename.
    static TMP_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let nonce = TMP_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        nonce
    ));
    let result = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Persist the rename itself: without the directory fsync the
        // checkpoint can vanish on power loss between the rename and the
        // kernel's own directory flush. Propagated, not best-effort — a
        // checkpoint whose durability is unknown counts as failed.
        if let Some(dir) = dir {
            fsync_dir(dir)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Serializes `body` into the versioned, checksummed envelope.
pub fn encode_snapshot(body: &Value) -> Vec<u8> {
    let json = serde_json::to_string(body).expect("JSON trees always serialize");
    let mut out = format!(
        "{MAGIC} v{SNAPSHOT_VERSION} {:016x} {}\n",
        fnv1a64(json.as_bytes()),
        json.len()
    )
    .into_bytes();
    out.extend_from_slice(json.as_bytes());
    out
}

/// Parses and validates an envelope produced by [`encode_snapshot`].
pub fn decode_snapshot(path: &Path, bytes: &[u8]) -> Result<Value, SnapshotError> {
    let corrupt = |reason: String| SnapshotError::Corrupt {
        path: path.to_path_buf(),
        reason,
    };
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("missing envelope header".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| corrupt("non-UTF-8 envelope header".into()))?;
    let mut parts = header.split_ascii_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(corrupt("bad magic".into()));
    }
    match parts.next() {
        Some(v) if v == format!("v{SNAPSHOT_VERSION}") => {}
        Some(v) => return Err(corrupt(format!("unsupported version {v:?}"))),
        None => return Err(corrupt("missing version".into())),
    }
    let checksum = parts
        .next()
        .and_then(|c| u64::from_str_radix(c, 16).ok())
        .ok_or_else(|| corrupt("missing checksum".into()))?;
    let len: usize = parts
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or_else(|| corrupt("missing length".into()))?;
    let body = &bytes[newline + 1..];
    if body.len() != len {
        return Err(corrupt(format!("length mismatch: header {len}, body {}", body.len())));
    }
    if fnv1a64(body) != checksum {
        return Err(corrupt("checksum mismatch".into()));
    }
    let text = std::str::from_utf8(body).map_err(|_| corrupt("non-UTF-8 body".into()))?;
    serde_json::from_str(text).map_err(|e| corrupt(format!("body is not valid JSON: {e}")))
}

/// A directory of sequenced snapshots for one or more named streams.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    faults: FaultPlan,
}

impl SnapshotStore {
    /// A store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> SnapshotStore {
        SnapshotStore {
            dir: dir.into(),
            faults: FaultPlan::none(),
        }
    }

    /// Installs a fault plan probed on every save.
    pub fn with_faults(mut self, faults: FaultPlan) -> SnapshotStore {
        self.faults = faults;
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_path(&self, name: &str, seq: u64) -> PathBuf {
        self.dir.join(format!("{name}.{seq:06}.ckpt"))
    }

    /// Saves `body` as snapshot `seq` of stream `name`, atomically.
    /// Injected faults surface as errors (and, for torn writes, leave an
    /// invalid file at the final path — exactly what a non-atomic crash
    /// would, so loaders get exercised against it).
    pub fn save(&self, name: &str, seq: u64, body: &Value) -> Result<PathBuf, SnapshotError> {
        fs::create_dir_all(&self.dir)?;
        let path = self.file_path(name, seq);
        let bytes = encode_snapshot(body);
        match self.faults.snapshot_write_fault() {
            Some(SnapshotFault::Error) => {
                return Err(SnapshotError::Io(io::Error::other("injected snapshot I/O fault")));
            }
            Some(SnapshotFault::Torn) => {
                // Simulate a non-atomic writer dying mid-write: half the
                // envelope lands at the final path.
                let torn = &bytes[..bytes.len() / 2];
                fs::write(&path, torn)?;
                return Err(SnapshotError::Io(io::Error::other("injected torn snapshot write")));
            }
            None => {}
        }
        atomic_write(&path, &bytes)?;
        Ok(path)
    }

    /// Loads the newest snapshot of stream `name` that validates, as
    /// `(seq, body, skipped)` where `skipped` counts newer files rejected
    /// as corrupt. `Ok(None)` when the stream has no valid snapshot (or
    /// the directory does not exist).
    pub fn load_latest(&self, name: &str) -> Result<Option<LoadedSnapshot>, SnapshotError> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let prefix = format!("{name}.");
        let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in entries {
            let entry = entry?;
            let file_name = entry.file_name();
            let Some(fname) = file_name.to_str() else {
                continue;
            };
            let Some(middle) = fname
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(".ckpt"))
            else {
                continue;
            };
            if let Ok(seq) = middle.parse::<u64>() {
                seqs.push((seq, entry.path()));
            }
        }
        seqs.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        let mut skipped = 0;
        for (seq, path) in seqs {
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => {
                    skipped += 1;
                    continue;
                }
            };
            match decode_snapshot(&path, &bytes) {
                Ok(body) => {
                    return Ok(Some(LoadedSnapshot {
                        seq,
                        body,
                        path,
                        skipped,
                    }))
                }
                Err(_) => skipped += 1,
            }
        }
        Ok(None)
    }

    /// Loads snapshot `seq` of stream `name` exactly. `Ok(None)` when the
    /// file does not exist; a file that fails validation is an error (the
    /// caller asked for that precise version, so silently falling back
    /// would lie).
    pub fn load_seq(&self, name: &str, seq: u64) -> Result<Option<LoadedSnapshot>, SnapshotError> {
        let path = self.file_path(name, seq);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let body = decode_snapshot(&path, &bytes)?;
        Ok(Some(LoadedSnapshot {
            seq,
            body,
            path,
            skipped: 0,
        }))
    }

    /// Distinct stream names present in the store's directory, sorted.
    /// Files that do not match the `name.NNNNNN.ckpt` pattern are ignored;
    /// a missing directory is an empty store, not an error.
    pub fn streams(&self) -> Result<Vec<String>, SnapshotError> {
        let mut names: Vec<String> = self
            .walk()?
            .into_iter()
            .map(|(name, _, _)| name)
            .collect();
        names.sort();
        names.dedup();
        Ok(names)
    }

    /// All sequence numbers on disk for stream `name`, ascending. Presence
    /// only — a listed sequence may still fail validation when loaded.
    pub fn versions(&self, name: &str) -> Result<Vec<u64>, SnapshotError> {
        let mut seqs: Vec<u64> = self
            .walk()?
            .into_iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, seq, _)| seq)
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        Ok(seqs)
    }

    /// Deletes all but the newest `keep_last` snapshots of stream `name`,
    /// returning how many files were removed. Streams that snapshot every
    /// batch (e.g. the serve session layer) call this after each save to
    /// bound disk growth; keeping more than one file preserves the
    /// newest-first corrupt-skipping fallback of [`SnapshotStore::load_latest`].
    pub fn prune(&self, name: &str, keep_last: usize) -> Result<usize, SnapshotError> {
        let mut files: Vec<(u64, PathBuf)> = self
            .walk()?
            .into_iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, seq, path)| (seq, path))
            .collect();
        files.sort_unstable_by_key(|(seq, _)| *seq);
        let cut = files.len().saturating_sub(keep_last);
        let mut removed = 0;
        for (_, path) in &files[..cut] {
            match fs::remove_file(path) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(removed)
    }

    /// Deletes snapshot `seq` of stream `name`, returning whether a file
    /// was actually removed. Used by replicated writers to roll back a
    /// version that failed to reach quorum; a missing file is a no-op so
    /// rollback is idempotent.
    pub fn remove(&self, name: &str, seq: u64) -> Result<bool, SnapshotError> {
        match fs::remove_file(self.file_path(name, seq)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Every `(stream, seq, path)` triple in the directory.
    fn walk(&self) -> Result<Vec<(String, u64, PathBuf)>, SnapshotError> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry?;
            let file_name = entry.file_name();
            let Some(fname) = file_name.to_str() else {
                continue;
            };
            let Some(stem) = fname.strip_suffix(".ckpt") else {
                continue;
            };
            let Some((name, seq)) = stem.rsplit_once('.') else {
                continue;
            };
            if let Ok(seq) = seq.parse::<u64>() {
                out.push((name.to_owned(), seq, entry.path()));
            }
        }
        Ok(out)
    }
}

/// A successfully loaded and validated snapshot.
#[derive(Debug, Clone)]
pub struct LoadedSnapshot {
    /// Sequence number of the snapshot file.
    pub seq: u64,
    /// The decoded JSON body.
    pub body: Value,
    /// The file it came from.
    pub path: PathBuf,
    /// Newer files that failed validation and were skipped to reach this
    /// one.
    pub skipped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSite;
    use serde_json::json;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!(
            "ofd_snapshot_test_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::new(dir)
    }

    #[test]
    fn save_load_round_trip() {
        let store = temp_store("roundtrip");
        let body = json!({"version": 1, "level": 3, "sigma": [1, 2, 3]});
        store.save("discovery", 3, &body).unwrap();
        let loaded = store.load_latest("discovery").unwrap().unwrap();
        assert_eq!(loaded.seq, 3);
        assert_eq!(loaded.body, body);
        assert_eq!(loaded.skipped, 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn newest_valid_snapshot_wins() {
        let store = temp_store("newest");
        store.save("d", 1, &json!({"level": 1})).unwrap();
        store.save("d", 2, &json!({"level": 2})).unwrap();
        let loaded = store.load_latest("d").unwrap().unwrap();
        assert_eq!(loaded.seq, 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let store = temp_store("fallback");
        store.save("d", 1, &json!({"level": 1})).unwrap();
        let p2 = store.save("d", 2, &json!({"level": 2})).unwrap();
        // Corrupt the newest file in place.
        let mut bytes = fs::read(&p2).unwrap();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        fs::write(&p2, &bytes).unwrap();
        let loaded = store.load_latest("d").unwrap().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.skipped, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bit_flip_is_detected() {
        let store = temp_store("bitflip");
        let p = store.save("d", 1, &json!({"x": 42})).unwrap();
        let mut bytes = fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&p, &bytes).unwrap();
        assert!(store.load_latest("d").unwrap().is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_directory_is_empty_not_error() {
        let store = SnapshotStore::new("/nonexistent/ofd/snapshot/dir");
        assert!(store.load_latest("d").unwrap().is_none());
        assert_eq!(store.prune("d", 1).unwrap(), 0);
    }

    #[test]
    fn prune_keeps_the_newest_and_other_streams() {
        let store = temp_store("prune");
        for seq in 1..=5 {
            store.save("session", seq, &json!({"seq": seq})).unwrap();
        }
        store.save("other", 1, &json!({"seq": 1})).unwrap();
        assert_eq!(store.prune("session", 2).unwrap(), 3);
        assert_eq!(store.versions("session").unwrap(), vec![4, 5]);
        assert_eq!(store.versions("other").unwrap(), vec![1]);
        let loaded = store.load_latest("session").unwrap().unwrap();
        assert_eq!(loaded.seq, 5);
        // Pruning to more files than exist removes nothing.
        assert_eq!(store.prune("session", 10).unwrap(), 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn streams_are_independent() {
        let store = temp_store("streams");
        store.save("a", 5, &json!({"s": "a"})).unwrap();
        store.save("b", 9, &json!({"s": "b"})).unwrap();
        assert_eq!(store.load_latest("a").unwrap().unwrap().seq, 5);
        assert_eq!(store.load_latest("b").unwrap().unwrap().seq, 9);
        assert!(store.load_latest("c").unwrap().is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn concurrent_handles_share_a_directory_without_corruption() {
        // The serve worker pool hands every job its own store handle, and
        // several of them point at subdirectories of one checkpoint root
        // — or, for same-stream writers, at the very same directory. Two
        // handles interleaving saves must never corrupt or cross-load.
        let store = temp_store("concurrent");
        let dir = store.dir().to_path_buf();
        let writers: Vec<_> = ["alpha", "beta"]
            .into_iter()
            .map(|stream| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let handle = SnapshotStore::new(&dir);
                    for seq in 1..=40u64 {
                        handle
                            .save(stream, seq, &json!({"stream": stream, "seq": seq}))
                            .unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // A third handle reads both streams: each latest is intact, from
        // the right writer, with nothing skipped as corrupt.
        let reader = SnapshotStore::new(&dir);
        for stream in ["alpha", "beta"] {
            let loaded = reader.load_latest(stream).unwrap().unwrap();
            assert_eq!(loaded.seq, 40);
            assert_eq!(loaded.skipped, 0, "no snapshot of {stream} was torn");
            assert_eq!(
                loaded.body.get("stream").and_then(Value::as_str),
                Some(stream),
                "stream {stream} cross-loaded another writer's snapshot"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_writers_on_one_stream_yield_a_self_consistent_latest() {
        // Worst case: two handles race on the SAME stream (two servers
        // misconfigured onto one job directory). Atomic writes mean the
        // loader must always see a checksum-valid snapshot whose body is
        // internally consistent — one writer's or the other's, never a
        // splice of both.
        let store = temp_store("interleave");
        let dir = store.dir().to_path_buf();
        let writers: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|writer| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let handle = SnapshotStore::new(&dir);
                    for seq in 1..=25u64 {
                        let body = json!({
                            "writer": writer,
                            "seq": seq,
                            "fingerprint": writer.wrapping_mul(1_000_003) ^ seq,
                        });
                        handle.save("discovery", seq, &body).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let loaded = SnapshotStore::new(&dir)
            .load_latest("discovery")
            .unwrap()
            .unwrap();
        assert_eq!(loaded.seq, 25);
        let writer = loaded.body.get("writer").and_then(Value::as_u64).unwrap();
        let fp = loaded.body.get("fingerprint").and_then(Value::as_u64).unwrap();
        assert!(writer == 1 || writer == 2);
        assert_eq!(
            fp,
            writer.wrapping_mul(1_000_003) ^ loaded.seq,
            "loaded body mixes fields from both writers"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_fault_leaves_previous_snapshot_intact() {
        let store = temp_store("iofault");
        store.save("d", 1, &json!({"level": 1})).unwrap();
        let faulty = store
            .clone()
            .with_faults(FaultPlan::scheduled(FaultSite::SnapshotIo, 1));
        assert!(matches!(
            faulty.save("d", 2, &json!({"level": 2})),
            Err(SnapshotError::Io(_))
        ));
        let loaded = store.load_latest("d").unwrap().unwrap();
        assert_eq!(loaded.seq, 1, "failed write must not clobber the stream");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn injected_torn_write_is_skipped_by_the_loader() {
        let store = temp_store("torn");
        store.save("d", 1, &json!({"level": 1})).unwrap();
        let faulty = store
            .clone()
            .with_faults(FaultPlan::scheduled(FaultSite::SnapshotTorn, 1));
        assert!(faulty.save("d", 2, &json!({"level": 2})).is_err());
        let loaded = store.load_latest("d").unwrap().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.skipped, 1, "torn file observed and rejected");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn atomic_write_replaces_existing_content() {
        let dir = std::env::temp_dir().join(format!("ofd_aw_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp litter.
        let leftover: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftover.is_empty(), "temp files must be cleaned up");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_fsyncs_the_parent_directory() {
        // The durability path: rename, then fsync_dir on the parent. A
        // live directory syncs cleanly; a vanished one must surface as an
        // error instead of a silently non-durable checkpoint.
        let dir = std::env::temp_dir().join(format!("ofd_fsync_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fsync_dir(&dir).expect("fsync of a real directory succeeds");
        atomic_write(&dir.join("snap.ckpt"), b"payload").expect("write with dir fsync");
        assert_eq!(fs::read(dir.join("snap.ckpt")).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
        #[cfg(unix)]
        {
            assert!(
                fsync_dir(&dir).is_err(),
                "fsync of a missing directory reports the durability gap"
            );
            assert!(
                atomic_write(&dir.join("snap.ckpt"), b"x").is_err(),
                "atomic_write cannot pretend durability without its parent"
            );
        }
    }

    #[test]
    fn store_enumerates_streams_and_versions() {
        let store = temp_store("enumerate");
        store.save("catalog-a", 1, &json!({"v": 1})).unwrap();
        store.save("catalog-a", 3, &json!({"v": 3})).unwrap();
        store.save("catalog-b", 7, &json!({"v": 7})).unwrap();
        assert_eq!(store.streams().unwrap(), vec!["catalog-a", "catalog-b"]);
        assert_eq!(store.versions("catalog-a").unwrap(), vec![1, 3]);
        assert_eq!(store.versions("catalog-b").unwrap(), vec![7]);
        assert!(store.versions("catalog-c").unwrap().is_empty());
        // Exact-version load: hit, miss, and corrupt-is-an-error.
        assert_eq!(
            store.load_seq("catalog-a", 3).unwrap().unwrap().body,
            json!({"v": 3})
        );
        assert!(store.load_seq("catalog-a", 2).unwrap().is_none());
        let p = store.save("catalog-a", 4, &json!({"v": 4})).unwrap();
        let mut bytes = fs::read(&p).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            store.load_seq("catalog-a", 4),
            Err(SnapshotError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_directory_enumerates_empty() {
        let store = SnapshotStore::new("/nonexistent/ofd/snapshot/dir");
        assert!(store.streams().unwrap().is_empty());
        assert!(store.versions("d").unwrap().is_empty());
        assert!(store.load_seq("d", 1).unwrap().is_none());
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        let mut a = Fingerprint::new();
        a.update_str("ab").update_str("c");
        let mut b = Fingerprint::new();
        b.update_str("a").update_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.update_str("ab").update_str("c");
        assert_eq!(a.finish(), c.finish());
        assert_ne!(
            Fingerprint::new().update_u64(1).update_u64(2).finish(),
            Fingerprint::new().update_u64(2).update_u64(1).finish()
        );
    }

    #[test]
    fn envelope_rejects_wrong_version_and_magic() {
        let body = json!({"v": 1});
        let bytes = encode_snapshot(&body);
        let p = Path::new("test.ckpt");
        assert!(decode_snapshot(p, &bytes).is_ok());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            decode_snapshot(p, &wrong),
            Err(SnapshotError::Corrupt { .. })
        ));
        let v2 = String::from_utf8(bytes.clone())
            .unwrap()
            .replace("v1", "v2");
        assert!(decode_snapshot(p, v2.as_bytes()).is_err());
    }
}
