//! Dependency types: traditional FDs and Ontology Functional Dependencies.

use std::fmt;

use crate::error::CoreError;
use crate::schema::{AttrId, AttrSet, Schema};

/// A traditional functional dependency `X → A` with a single-attribute
/// consequent (the normal form the axioms justify, §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd {
    /// Antecedent (left-hand side).
    pub lhs: AttrSet,
    /// Consequent (right-hand side).
    pub rhs: AttrId,
}

impl Fd {
    /// Constructs an FD.
    pub fn new(lhs: AttrSet, rhs: AttrId) -> Fd {
        Fd { lhs, rhs }
    }

    /// Whether the FD is trivial (`A ∈ X`, Reflexivity / Opt-1).
    pub fn is_trivial(&self) -> bool {
        self.lhs.contains(self.rhs)
    }

    /// Renders with attribute names, e.g. `[CC] -> CTRY`.
    pub fn display(&self, schema: &Schema) -> String {
        format!("{} -> {}", schema.display_set(self.lhs), schema.name(self.rhs))
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

/// The ontological relationship an OFD asserts on its consequent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfdKind {
    /// `X →_syn A`: per equivalence class, all `A`-values share a sense
    /// (Definition 2.1).
    Synonym,
    /// `X →_inh A`: per equivalence class, all `A`-values share a common
    /// ancestor within `theta` is-a steps (the paper's inheritance
    /// extension).
    Inheritance {
        /// Maximum path length to the common ancestor.
        theta: usize,
    },
}

impl fmt::Display for OfdKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfdKind::Synonym => write!(f, "syn"),
            OfdKind::Inheritance { theta } => write!(f, "inh(θ={theta})"),
        }
    }
}

/// An Ontology Functional Dependency `X →_kind A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ofd {
    /// Antecedent (left-hand side).
    pub lhs: AttrSet,
    /// Consequent (right-hand side; single attribute by normalization).
    pub rhs: AttrId,
    /// Synonym or inheritance semantics.
    pub kind: OfdKind,
}

impl Ofd {
    /// A synonym OFD `X →_syn A`.
    pub fn synonym(lhs: AttrSet, rhs: AttrId) -> Ofd {
        Ofd {
            lhs,
            rhs,
            kind: OfdKind::Synonym,
        }
    }

    /// An inheritance OFD `X →_inh A` with ancestor-distance bound `theta`.
    pub fn inheritance(lhs: AttrSet, rhs: AttrId, theta: usize) -> Ofd {
        Ofd {
            lhs,
            rhs,
            kind: OfdKind::Inheritance { theta },
        }
    }

    /// Builds a synonym OFD from attribute names.
    pub fn synonym_named(schema: &Schema, lhs: &[&str], rhs: &str) -> Result<Ofd, CoreError> {
        Ok(Ofd::synonym(
            schema.set(lhs.iter().copied())?,
            schema.attr(rhs)?,
        ))
    }

    /// Whether the OFD is trivial (`A ∈ X`, Opt-1).
    pub fn is_trivial(&self) -> bool {
        self.lhs.contains(self.rhs)
    }

    /// The underlying FD shape (dropping ontology semantics).
    pub fn as_fd(&self) -> Fd {
        Fd::new(self.lhs, self.rhs)
    }

    /// Renders with attribute names, e.g. `[CC] ->syn CTRY`.
    pub fn display(&self, schema: &Schema) -> String {
        format!(
            "{} ->{} {}",
            schema.display_set(self.lhs),
            self.kind,
            schema.name(self.rhs)
        )
    }
}

impl fmt::Display for Ofd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ->{} {}", self.lhs, self.kind, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AttrId {
        AttrId::from_index(i)
    }

    #[test]
    fn fd_triviality() {
        let fd = Fd::new(AttrSet::from_attrs([a(0), a(1)]), a(1));
        assert!(fd.is_trivial());
        let fd2 = Fd::new(AttrSet::single(a(0)), a(1));
        assert!(!fd2.is_trivial());
    }

    #[test]
    fn named_construction_and_display() {
        let schema = Schema::new(["CC", "CTRY", "SYMP", "DIAG", "MED"]).unwrap();
        let ofd = Ofd::synonym_named(&schema, &["SYMP", "DIAG"], "MED").unwrap();
        assert_eq!(ofd.display(&schema), "[SYMP, DIAG] ->syn MED");
        assert!(!ofd.is_trivial());
        assert!(Ofd::synonym_named(&schema, &["nope"], "MED").is_err());
        assert!(Ofd::synonym_named(&schema, &["CC"], "nope").is_err());
    }

    #[test]
    fn inheritance_kind_displays_theta() {
        let schema = Schema::new(["SYMP", "DIAG", "MED"]).unwrap();
        let ofd = Ofd::inheritance(schema.set(["SYMP"]).unwrap(), schema.attr("MED").unwrap(), 2);
        assert_eq!(ofd.display(&schema), "[SYMP] ->inh(θ=2) MED");
    }

    #[test]
    fn as_fd_drops_semantics() {
        let ofd = Ofd::inheritance(AttrSet::single(a(0)), a(2), 3);
        assert_eq!(ofd.as_fd(), Fd::new(AttrSet::single(a(0)), a(2)));
    }

    #[test]
    fn ofds_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Ofd::synonym(AttrSet::single(a(0)), a(1)));
        set.insert(Ofd::synonym(AttrSet::single(a(0)), a(1)));
        set.insert(Ofd::inheritance(AttrSet::single(a(0)), a(1), 1));
        assert_eq!(set.len(), 2);
    }
}
