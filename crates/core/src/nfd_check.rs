//! Null Functional Dependency (NFD) verification — Lien's semantics the
//! paper contrasts OFDs against (§3.1): *"whenever two tuples agree on
//! non-null values in X, they agree on the values in Y, which may be
//! partial."*
//!
//! The paper's Theorems 3.4/3.5 show the two **axiom systems** coincide,
//! yet the **instance semantics** differ: in Table 1 the OFD `CC → CTRY`
//! holds while the NFD `CC → CTRY` does not (USA vs America are neither
//! equal nor null), and NFDs check pairs while OFDs need whole equivalence
//! classes. This module makes that contrast executable.

use crate::ofd::Fd;
use crate::relation::Relation;
use crate::schema::AttrId;

/// Verifies NFDs over a relation in which cells equal to `null_marker`
/// (e.g. `""` or `"NULL"`) denote missing values.
#[derive(Debug, Clone)]
pub struct NfdChecker<'a> {
    rel: &'a Relation,
    null_marker: &'a str,
}

impl<'a> NfdChecker<'a> {
    /// Creates a checker with the given null marker.
    pub fn new(rel: &'a Relation, null_marker: &'a str) -> NfdChecker<'a> {
        NfdChecker { rel, null_marker }
    }

    /// Whether the cell at `(row, attr)` is null.
    pub fn is_null(&self, row: usize, attr: AttrId) -> bool {
        self.rel.text(row, attr) == self.null_marker
    }

    /// Whether the NFD `X → A` holds: for every pair of tuples agreeing on
    /// **non-null** `X`, the `A` values agree (a null `A` agrees with
    /// anything — Lien's "may be partial").
    ///
    /// Pairwise by definition (unlike OFDs); quadratic in the worst case,
    /// grouped by antecedent signature first so the common case is linear.
    pub fn check(&self, fd: &Fd) -> bool {
        self.violating_pair(fd).is_none()
    }

    /// The first violating tuple pair, if any.
    pub fn violating_pair(&self, fd: &Fd) -> Option<(u32, u32)> {
        use std::collections::HashMap;
        let lhs: Vec<AttrId> = fd.lhs.iter().collect();
        // Group tuples whose X is fully non-null by their X signature.
        let mut groups: HashMap<Vec<crate::ValueId>, Vec<u32>> = HashMap::new();
        for t in 0..self.rel.n_rows() {
            if lhs.iter().any(|&a| self.is_null(t, a)) {
                continue; // null in X: never forced to agree
            }
            let key: Vec<crate::ValueId> = lhs.iter().map(|&a| self.rel.value(t, a)).collect();
            groups.entry(key).or_default().push(t as u32);
        }
        for class in groups.values() {
            // All non-null A values in the class must be equal.
            let mut witness: Option<(u32, crate::ValueId)> = None;
            for &t in class {
                if self.is_null(t as usize, fd.rhs) {
                    continue;
                }
                let v = self.rel.value(t as usize, fd.rhs);
                match witness {
                    None => witness = Some((t, v)),
                    Some((t0, v0)) if v0 != v => return Some((t0, t)),
                    Some(_) => {}
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofd::Ofd;
    use crate::relation::table1;
    use crate::validate::Validator;
    use ofd_ontology::samples;

    #[test]
    fn paper_contrast_ofd_holds_nfd_does_not() {
        // §3.1: "an OFD [CC] → [CTRY] holds, but a corresponding NFD
        // [CC] → [CTRY] does NOT hold".
        let rel = table1();
        let onto = samples::combined_paper_ontology();
        let ofd = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
        assert!(Validator::new(&rel, &onto).check(&ofd).satisfied());
        let nfd = NfdChecker::new(&rel, "");
        assert!(!nfd.check(&ofd.as_fd()), "USA vs America violates the NFD");
        let (t1, t2) = nfd.violating_pair(&ofd.as_fd()).unwrap();
        assert!(t1 < t2);
    }

    #[test]
    fn nulls_agree_with_anything() {
        let rel = Relation::from_rows(
            ["X", "Y"],
            [
                &["a", "p"] as &[&str],
                &["a", ""],    // null Y: compatible with p
                &["", "q"],    // null X: exempt from agreement
                &["a", "p"],
            ],
        )
        .unwrap();
        let fd = Fd::new(
            rel.schema().set(["X"]).unwrap(),
            rel.schema().attr("Y").unwrap(),
        );
        let checker = NfdChecker::new(&rel, "");
        assert!(checker.check(&fd));
        assert!(checker.is_null(1, rel.schema().attr("Y").unwrap()));
        assert!(checker.is_null(2, rel.schema().attr("X").unwrap()));
    }

    #[test]
    fn non_null_disagreement_is_caught() {
        let rel = Relation::from_rows(
            ["X", "Y"],
            [&["a", "p"] as &[&str], &["a", "q"]],
        )
        .unwrap();
        let fd = Fd::new(
            rel.schema().set(["X"]).unwrap(),
            rel.schema().attr("Y").unwrap(),
        );
        let checker = NfdChecker::new(&rel, "");
        assert_eq!(checker.violating_pair(&fd), Some((0, 1)));
    }

    #[test]
    fn ofd_and_nfd_semantics_diverge_both_ways() {
        // The converse direction: an NFD can hold where the OFD-as-FD view
        // fails — nulls agree under NFDs but are ordinary (unknown) values
        // to an ontology-less OFD.
        let rel = Relation::from_rows(
            ["X", "Y"],
            [&["a", "p"] as &[&str], &["a", ""]],
        )
        .unwrap();
        let fd = Fd::new(
            rel.schema().set(["X"]).unwrap(),
            rel.schema().attr("Y").unwrap(),
        );
        assert!(NfdChecker::new(&rel, "").check(&fd));
        let onto = ofd_ontology::Ontology::empty();
        let ofd = Ofd::synonym(fd.lhs, fd.rhs);
        assert!(!Validator::new(&rel, &onto).check(&ofd).satisfied());
    }

    #[test]
    fn custom_null_marker() {
        let rel = Relation::from_rows(
            ["X", "Y"],
            [&["a", "NULL"] as &[&str], &["a", "p"]],
        )
        .unwrap();
        let fd = Fd::new(
            rel.schema().set(["X"]).unwrap(),
            rel.schema().attr("Y").unwrap(),
        );
        assert!(NfdChecker::new(&rel, "NULL").check(&fd));
        assert!(!NfdChecker::new(&rel, "").check(&fd));
    }
}
