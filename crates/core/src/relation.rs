//! Column-major relation instances over interned values.

use std::collections::HashSet;
use std::fmt;

use crate::error::CoreError;
use crate::schema::{AttrId, Schema};
use crate::value::{ValueId, ValuePool};

/// Hard cap on relation cardinality. The CSR partition engine and the
/// incremental membership maps address tuples as `u32`, and `u32::MAX`
/// itself is reserved as the partition sentinel (`UNASSIGNED` / `SKIP`), so
/// the largest admissible tuple id is `u32::MAX - 1`. Ingest rejects the
/// row that would exceed this instead of silently truncating ids.
pub const MAX_ROWS: usize = u32::MAX as usize;

/// A relation instance `I`: a schema plus column-major interned values.
///
/// Columns are `Vec<ValueId>` so partition computation touches one cache-
/// friendly array per attribute. Cells are mutable ([`Relation::set`]) to
/// support data repairs.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    pool: ValuePool,
    columns: Vec<Vec<ValueId>>,
    rows: usize,
}

impl Relation {
    /// Starts building a relation over `schema`.
    pub fn builder(schema: Schema) -> RelationBuilder {
        let width = schema.len();
        RelationBuilder {
            relation: Relation {
                schema,
                pool: ValuePool::new(),
                columns: vec![Vec::new(); width],
                rows: 0,
            },
        }
    }

    /// Convenience constructor: schema from `names`, then one `push_row` per
    /// element of `rows`.
    pub fn from_rows<'a, N, R>(names: N, rows: R) -> Result<Relation, CoreError>
    where
        N: IntoIterator<Item = &'a str>,
        R: IntoIterator<Item = &'a [&'a str]>,
    {
        let mut b = Relation::builder(Schema::new(names)?);
        for row in rows {
            b.push_row(row.iter().copied())?;
        }
        Ok(b.finish())
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The value pool (interned strings).
    #[inline]
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Number of tuples.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.schema.len()
    }

    /// Whether the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The interned value at `(row, attr)`.
    #[inline]
    pub fn value(&self, row: usize, attr: AttrId) -> ValueId {
        self.columns[attr.index()][row]
    }

    /// The cell text at `(row, attr)`.
    #[inline]
    pub fn text(&self, row: usize, attr: AttrId) -> &str {
        self.pool.resolve(self.value(row, attr))
    }

    /// One whole column of interned values.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &[ValueId] {
        &self.columns[attr.index()]
    }

    /// All cell texts of one row, in schema order.
    pub fn row_texts(&self, row: usize) -> Vec<&str> {
        self.schema
            .attrs()
            .map(|a| self.text(row, a))
            .collect()
    }

    /// Appends a row, interning its values. Returns the new row index.
    ///
    /// Fails with [`CoreError::MalformedInput`] once the relation holds
    /// [`MAX_ROWS`] tuples: tuple ids are `u32` throughout the partition
    /// engine, so admitting more rows would silently truncate them.
    pub fn push_row<'a, I>(&mut self, values: I) -> Result<usize, CoreError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        if self.rows >= MAX_ROWS {
            return Err(CoreError::MalformedInput(format!(
                "relation is at the {MAX_ROWS}-row cap (tuple ids are u32)"
            )));
        }
        let ids: Vec<ValueId> = values.into_iter().map(|v| self.pool.intern(v)).collect();
        if ids.len() != self.schema.len() {
            return Err(CoreError::ArityMismatch {
                row: self.rows,
                expected: self.schema.len(),
                got: ids.len(),
            });
        }
        for (col, id) in self.columns.iter_mut().zip(ids) {
            col.push(id);
        }
        self.rows += 1;
        Ok(self.rows - 1)
    }

    /// Updates one cell (a **data repair**), interning the new value.
    pub fn set(&mut self, row: usize, attr: AttrId, value: &str) -> Result<ValueId, CoreError> {
        if row >= self.rows {
            return Err(CoreError::RowOutOfBounds {
                row,
                rows: self.rows,
            });
        }
        if attr.index() >= self.schema.len() {
            return Err(CoreError::AttributeOutOfBounds {
                attr: attr.index(),
                width: self.schema.len(),
            });
        }
        let id = self.pool.intern(value);
        self.columns[attr.index()][row] = id;
        Ok(id)
    }

    /// Removes a row in O(attrs) by swapping the last row into its place.
    ///
    /// Returns the *former* index of the row that was moved into `row`'s
    /// slot (always the old last index), or `None` when `row` *was* the
    /// last row and nothing moved. Callers that keep row-addressed state
    /// (e.g. [`crate::IncrementalChecker`]) must rename that tuple id.
    pub fn swap_remove_row(&mut self, row: usize) -> Result<Option<usize>, CoreError> {
        if row >= self.rows {
            return Err(CoreError::RowOutOfBounds {
                row,
                rows: self.rows,
            });
        }
        for col in &mut self.columns {
            col.swap_remove(row);
        }
        self.rows -= 1;
        Ok((row < self.rows).then_some(self.rows))
    }

    /// Updates one cell to an already-interned value.
    pub fn set_id(&mut self, row: usize, attr: AttrId, value: ValueId) -> Result<(), CoreError> {
        if row >= self.rows {
            return Err(CoreError::RowOutOfBounds {
                row,
                rows: self.rows,
            });
        }
        self.columns[attr.index()][row] = value;
        Ok(())
    }

    /// Number of distinct values in a column.
    pub fn distinct_count(&self, attr: AttrId) -> usize {
        let mut seen: HashSet<ValueId> = HashSet::with_capacity(64);
        seen.extend(self.column(attr).iter().copied());
        seen.len()
    }

    /// Counts cells that differ between two same-shape relations —
    /// `dist(I, I')` from the repair model (§5.1).
    pub fn cell_distance(&self, other: &Relation) -> Result<usize, CoreError> {
        if self.schema != other.schema {
            return Err(CoreError::MalformedDependency(
                "cell_distance requires identical schemas".into(),
            ));
        }
        if self.rows != other.rows {
            return Err(CoreError::RowOutOfBounds {
                row: other.rows,
                rows: self.rows,
            });
        }
        let mut dist = 0;
        for attr in self.schema.attrs() {
            for row in 0..self.rows {
                if self.text(row, attr) != other.text(row, attr) {
                    dist += 1;
                }
            }
        }
        Ok(dist)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.schema.attrs().map(|a| self.schema.name(a)).collect();
        writeln!(f, "{}", names.join(" | "))?;
        for row in 0..self.rows.min(20) {
            writeln!(f, "{}", self.row_texts(row).join(" | "))?;
        }
        if self.rows > 20 {
            writeln!(f, "… ({} more rows)", self.rows - 20)?;
        }
        Ok(())
    }
}

/// Incrementally builds a [`Relation`].
#[derive(Debug)]
pub struct RelationBuilder {
    relation: Relation,
}

impl RelationBuilder {
    /// Appends a row of cell texts.
    pub fn push_row<'a, I>(&mut self, values: I) -> Result<usize, CoreError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.relation.push_row(values)
    }

    /// Rows added so far.
    pub fn n_rows(&self) -> usize {
        self.relation.n_rows()
    }

    /// Finalizes the relation.
    pub fn finish(self) -> Relation {
        self.relation
    }
}

/// The paper's Table 1: eleven clinical-trial tuples over
/// `(CC, CTRY, SYMP, TEST, DIAG, MED)`, *without* the blue Example 1.2
/// updates (see [`table1_updated`]).
pub fn table1() -> Relation {
    let rows: &[&[&str]] = &[
        &["US", "USA", "joint pain", "CT", "osteoarthritis", "ibuprofen"],
        &["IN", "India", "joint pain", "CT", "osteoarthritis", "NSAID"],
        &["CA", "Canada", "joint pain", "CT", "osteoarthritis", "naproxen"],
        &["IN", "Bharat", "nausea", "EEG", "migrane", "analgesic"],
        &["US", "America", "nausea", "EEG", "migrane", "tylenol"],
        &["US", "USA", "nausea", "EEG", "migrane", "acetaminophen"],
        &["IN", "India", "chest pain", "X-ray", "hypertension", "morphine"],
        &["US", "USA", "headache", "CT", "hypertension", "cartia"],
        &["US", "USA", "headache", "MRI", "hypertension", "tiazac"],
        &["US", "America", "headache", "MRI", "hypertension", "tiazac"],
        &["US", "USA", "headache", "CT", "hypertension", "tiazac"],
    ];
    Relation::from_rows(["CC", "CTRY", "SYMP", "TEST", "DIAG", "MED"], rows.iter().copied())
        .expect("table1 is well-formed")
}

/// Table 1 with the Example 1.2 updates applied: `t9[MED] = ASA` and
/// `t11[MED] = adizem` (rows are 0-indexed here, so tuples 8 and 10).
pub fn table1_updated() -> Relation {
    let mut r = table1();
    let med = r.schema().attr("MED").expect("MED exists");
    r.set(8, med, "ASA").expect("t9 update");
    r.set(10, med, "adizem").expect("t11 update");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_reads_back() {
        let r = table1();
        assert_eq!(r.n_rows(), 11);
        assert_eq!(r.n_attrs(), 6);
        let cc = r.schema().attr("CC").unwrap();
        let ctry = r.schema().attr("CTRY").unwrap();
        assert_eq!(r.text(0, cc), "US");
        assert_eq!(r.text(3, ctry), "Bharat");
        assert_eq!(r.row_texts(2), vec!["CA", "Canada", "joint pain", "CT", "osteoarthritis", "naproxen"]);
    }

    #[test]
    fn interning_shares_ids_across_columns_and_rows() {
        let r = table1();
        let cc = r.schema().attr("CC").unwrap();
        assert_eq!(r.value(0, cc), r.value(4, cc), "US appears twice");
        // 'NSAID' appears as data and is one pooled value.
        assert!(r.pool().get("NSAID").is_some());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut b = Relation::builder(Schema::new(["A", "B"]).unwrap());
        assert!(matches!(
            b.push_row(["only one"]),
            Err(CoreError::ArityMismatch { .. })
        ));
        b.push_row(["x", "y"]).unwrap();
        assert_eq!(b.n_rows(), 1);
    }

    #[test]
    fn set_updates_cell_and_rejects_out_of_bounds() {
        let mut r = table1();
        let med = r.schema().attr("MED").unwrap();
        r.set(8, med, "ASA").unwrap();
        assert_eq!(r.text(8, med), "ASA");
        assert!(matches!(
            r.set(99, med, "x"),
            Err(CoreError::RowOutOfBounds { .. })
        ));
        assert!(matches!(
            r.set(0, AttrId::from_index(63), "x"),
            Err(CoreError::AttributeOutOfBounds { .. })
        ));
    }

    #[test]
    fn table1_updated_matches_example_1_2() {
        let r = table1_updated();
        let med = r.schema().attr("MED").unwrap();
        assert_eq!(r.text(8, med), "ASA");
        assert_eq!(r.text(10, med), "adizem");
        assert_eq!(r.text(7, med), "cartia");
    }

    #[test]
    fn distinct_count_counts_values() {
        let r = table1();
        let cc = r.schema().attr("CC").unwrap();
        assert_eq!(r.distinct_count(cc), 3); // US, IN, CA
        let diag = r.schema().attr("DIAG").unwrap();
        assert_eq!(r.distinct_count(diag), 3);
    }

    #[test]
    fn cell_distance_counts_changed_cells() {
        let a = table1();
        let b = table1_updated();
        assert_eq!(a.cell_distance(&b).unwrap(), 2);
        assert_eq!(a.cell_distance(&a).unwrap(), 0);
    }

    #[test]
    fn cell_distance_rejects_mismatched_shapes() {
        let a = table1();
        let other = Relation::from_rows(["X"], [&["1"] as &[&str]]).unwrap();
        assert!(a.cell_distance(&other).is_err());
    }

    #[test]
    fn display_truncates() {
        let r = table1();
        let s = r.to_string();
        assert!(s.contains("CC | CTRY"));
        assert!(s.contains("ibuprofen"));
    }

    #[test]
    fn push_row_after_finish_supports_growth() {
        let mut r = table1();
        let n = r
            .push_row(["US", "USA", "fever", "CT", "flu", "tylenol"])
            .unwrap();
        assert_eq!(n, 11);
        assert_eq!(r.n_rows(), 12);
    }

    #[test]
    fn ingest_rejects_rows_past_the_u32_cap() {
        // Materialising u32::MAX rows is infeasible; fake the count instead.
        // The cap check runs before any column is touched, so the phantom
        // row count is never observed by the rejected push.
        let mut r = Relation::builder(Schema::new(["A"]).unwrap()).finish();
        // u32::MAX is the partition sentinel, so index MAX_ROWS - 1
        // (== u32::MAX - 1) is the last admissible id: a relation holding
        // exactly MAX_ROWS rows is full.
        r.rows = MAX_ROWS;
        let err = r.push_row(["x"]).unwrap_err();
        assert!(
            matches!(err, CoreError::MalformedInput(ref m) if m.contains("cap")),
            "expected a typed MalformedInput, got {err:?}"
        );
        // No partial column writes happened.
        assert!(r.columns.iter().all(Vec::is_empty));
    }

    #[test]
    fn swap_remove_row_moves_the_last_row_in() {
        let mut r = table1();
        let cc = r.schema().attr("CC").unwrap();
        let last = r.row_texts(10).join("|");
        assert_eq!(r.swap_remove_row(2).unwrap(), Some(10));
        assert_eq!(r.n_rows(), 10);
        assert_eq!(r.row_texts(2).join("|"), last);
        // Removing the (new) last row moves nothing.
        assert_eq!(r.swap_remove_row(9).unwrap(), None);
        assert_eq!(r.n_rows(), 9);
        assert!(matches!(
            r.swap_remove_row(9),
            Err(CoreError::RowOutOfBounds { .. })
        ));
        assert_eq!(r.text(0, cc), "US");
    }
}
