//! `ofd-obs`: zero-dependency observability — counters, gauges, fixed-bucket
//! histograms and lightweight span timers — for the long-running engines.
//!
//! An [`Obs`] is a cheap, cloneable handle that threads through the system
//! exactly like [`ExecGuard`](crate::ExecGuard): engines take it
//! unconditionally and callers who don't care pass [`Obs::disabled`] (the
//! default), whose every operation is a branch-on-`None` no-op. An enabled
//! handle shares one registry between all clones, so counters accumulated on
//! worker threads and in nested phases land in a single
//! [`MetricsSnapshot`].
//!
//! Determinism contract: engines must emit *count-like* metrics (counters,
//! histograms over data-dependent quantities) so their totals are identical
//! run-to-run and independent of worker-thread count; anything wall-clock
//! derived (span durations, utilization) goes into spans or gauges. The
//! metrics-invariance tests rely on this split.
//!
//! The JSON serializer is hand-rolled (ofd-core stays dependency-free); the
//! schema is versioned and checked by a plain-Rust test in CI:
//!
//! ```json
//! {
//!   "version": 1,
//!   "enabled": true,
//!   "counters": {"discovery.candidates": 42},
//!   "gauges": {"discovery.verify.utilization": 0.93},
//!   "histograms": {"discovery.partition.class_count":
//!       {"bounds": [1.0, 2.0], "counts": [0, 1, 0], "count": 1, "sum": 2.0}},
//!   "spans": [{"name": "fastofd.run", "parent": null,
//!              "start_us": 0, "elapsed_us": 1234}]
//! }
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A fixed-boundary monotonic histogram: `counts[i]` tallies observations
/// `≤ bounds[i]`, with one overflow bucket at the end
/// (`counts.len() == bounds.len() + 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket boundaries, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (one extra overflow bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// One closed span: a named timed section with its parent (an index into
/// the snapshot's span list) when it was opened inside another span on the
/// same thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Index of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Start offset from the registry's creation, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub elapsed_us: u64,
}

/// A point-in-time copy of an [`Obs`] registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Whether the handle was enabled (a disabled handle snapshots empty).
    pub enabled: bool,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values (last write wins), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Closed spans in close order.
    pub spans: Vec<SpanSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's total, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|&(_, v)| v)
            .sum()
    }

    /// A gauge's value, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Serializes the snapshot to the versioned JSON schema; `pretty` adds
    /// newlines and two-space indentation.
    pub fn to_json_string(&self, pretty: bool) -> String {
        let mut w = JsonWriter::new(pretty);
        w.open_object();
        w.key("version");
        w.raw("1");
        w.key("enabled");
        w.raw(if self.enabled { "true" } else { "false" });
        w.key("counters");
        w.open_object();
        for (name, v) in &self.counters {
            w.key(name);
            w.raw(&v.to_string());
        }
        w.close_object();
        w.key("gauges");
        w.open_object();
        for (name, v) in &self.gauges {
            w.key(name);
            w.number(*v);
        }
        w.close_object();
        w.key("histograms");
        w.open_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.open_object();
            w.key("bounds");
            w.open_array();
            for b in &h.bounds {
                w.item();
                w.number(*b);
            }
            w.close_array();
            w.key("counts");
            w.open_array();
            for c in &h.counts {
                w.item();
                w.raw(&c.to_string());
            }
            w.close_array();
            w.key("count");
            w.raw(&h.count.to_string());
            w.key("sum");
            w.number(h.sum);
            w.close_object();
        }
        w.close_object();
        w.key("spans");
        w.open_array();
        for s in &self.spans {
            w.item();
            w.open_object();
            w.key("name");
            w.string(&s.name);
            w.key("parent");
            match s.parent {
                Some(p) => w.raw(&p.to_string()),
                None => w.raw("null"),
            }
            w.key("start_us");
            w.raw(&s.start_us.to_string());
            w.key("elapsed_us");
            w.raw(&s.elapsed_us.to_string());
            w.close_object();
        }
        w.close_array();
        w.close_object();
        w.finish()
    }

    /// Renders the span tree as indented text (for `--trace` on stderr).
    pub fn render_trace(&self) -> String {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            match s.parent {
                Some(p) if p < self.spans.len() => children[p].push(i),
                _ => roots.push(i),
            }
        }
        // Render children (and roots) in start order.
        let by_start = |ids: &mut Vec<usize>, spans: &[SpanSnapshot]| {
            ids.sort_by_key(|&i| (spans[i].start_us, i));
        };
        by_start(&mut roots, &self.spans);
        for c in &mut children {
            by_start(c, &self.spans);
        }
        let mut out = String::new();
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            let s = &self.spans[i];
            let _ = writeln!(
                out,
                "{:indent$}{} {:.3}ms",
                "",
                s.name,
                s.elapsed_us as f64 / 1000.0,
                indent = depth * 2
            );
            for &c in children[i].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

/// Minimal JSON writer: the only encoder ofd-core needs, kept private so
/// the crate stays dependency-free.
struct JsonWriter {
    out: String,
    pretty: bool,
    depth: usize,
    /// Whether the current container already has an entry (comma control).
    has_entry: Vec<bool>,
}

impl JsonWriter {
    fn new(pretty: bool) -> JsonWriter {
        JsonWriter {
            out: String::new(),
            pretty,
            depth: 0,
            has_entry: Vec::new(),
        }
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
    }

    fn entry_prefix(&mut self) {
        if let Some(has) = self.has_entry.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        self.newline_indent();
    }

    fn open_object(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.has_entry.push(false);
    }

    fn close_object(&mut self) {
        let had = self.has_entry.pop().unwrap_or(false);
        self.depth -= 1;
        if had {
            self.newline_indent();
        }
        self.out.push('}');
    }

    fn open_array(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.has_entry.push(false);
    }

    fn close_array(&mut self) {
        let had = self.has_entry.pop().unwrap_or(false);
        self.depth -= 1;
        if had {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Starts an object entry: comma, key and colon.
    fn key(&mut self, name: &str) {
        self.entry_prefix();
        self.push_escaped(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Starts an array element (comma control only).
    fn item(&mut self) {
        self.entry_prefix();
    }

    fn raw(&mut self, token: &str) {
        self.out.push_str(token);
    }

    fn string(&mut self, s: &str) {
        self.push_escaped(s);
    }

    fn number(&mut self, v: f64) {
        if v.is_finite() {
            // `{:?}` prints a round-trippable decimal form; JSON accepts
            // its exponent notation.
            let _ = write!(self.out, "{v:?}");
        } else {
            // JSON has no NaN/Infinity.
            self.out.push_str("null");
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn finish(self) -> String {
        self.out
    }
}

#[derive(Debug, Default)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

#[derive(Debug)]
struct SpanRecord {
    name: String,
    parent: Option<usize>,
    start_us: u64,
    elapsed_us: u64,
    closed: bool,
}

#[derive(Debug)]
struct ObsInner {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<Vec<SpanRecord>>,
    epoch: Instant,
}

thread_local! {
    /// Per-thread stack of open spans: (registry identity, span index).
    /// Spans opened on worker threads (empty stack for their registry)
    /// become roots — cross-thread parenting is intentionally not modeled.
    static SPAN_STACK: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

/// A cloneable observability handle; clones share one metrics registry.
///
/// The default handle is disabled: every operation is a no-op costing one
/// branch, so engines thread an `Obs` unconditionally the same way they
/// thread an [`ExecGuard`](crate::ExecGuard).
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A no-op handle (the default).
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// A handle with a live registry; the span epoch starts now.
    pub fn enabled() -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether this handle records anything. Engines may use this to skip
    /// metric *computation* (not just recording) that would otherwise cost
    /// time on the hot path.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            if n > 0 {
                let mut c = inner.counters.lock().unwrap();
                *c.entry(name.to_owned()).or_insert(0) += n;
            }
        }
    }

    /// Ensures the named counter exists (at zero) without incrementing it.
    /// Schema-pinned counters use this so a zero total still appears in
    /// snapshots — [`Obs::add`] deliberately drops zero increments.
    pub fn touch_counter(&self, name: &str) {
        if let Some(inner) = &self.inner {
            let mut c = inner.counters.lock().unwrap();
            c.entry(name.to_owned()).or_insert(0);
        }
    }

    /// Adds one to the named counter.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the named gauge (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.gauges.lock().unwrap().insert(name.to_owned(), value);
        }
    }

    /// Records `value` into the named histogram. The bucket boundaries are
    /// fixed at the histogram's first observation; later calls reuse them
    /// (pass the same constant slice).
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut hs = inner.histograms.lock().unwrap();
        let h = hs.entry(name.to_owned()).or_insert_with(|| Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        });
        let bucket = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.counts[bucket] += 1;
        h.count += 1;
        h.sum += value;
    }

    /// Opens a named span; the span closes (and records its duration) when
    /// the returned guard drops. Spans nest per thread: a span opened while
    /// another span of the same registry is open on the same thread records
    /// it as its parent.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let id = Arc::as_ptr(inner) as usize;
        let start = Instant::now();
        let start_us = start.duration_since(inner.epoch).as_micros() as u64;
        let index = {
            let mut spans = inner.spans.lock().unwrap();
            let parent = SPAN_STACK.with(|s| {
                s.borrow()
                    .iter()
                    .rev()
                    .find(|&&(rid, _)| rid == id)
                    .map(|&(_, i)| i)
            });
            spans.push(SpanRecord {
                name: name.to_owned(),
                parent,
                start_us,
                elapsed_us: 0,
                closed: false,
            });
            spans.len() - 1
        };
        SPAN_STACK.with(|s| s.borrow_mut().push((id, index)));
        SpanGuard {
            active: Some(ActiveSpan {
                inner: Arc::clone(inner),
                index,
                started: start,
            }),
        }
    }

    /// Copies the registry into a [`MetricsSnapshot`]. Open spans are
    /// omitted (they have no duration yet); a disabled handle snapshots
    /// empty with `enabled: false`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters: Vec<(String, u64)> = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let gauges: Vec<(String, f64)> = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let histograms: Vec<(String, HistogramSnapshot)> = inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        counts: h.counts.clone(),
                        count: h.count,
                        sum: h.sum,
                    },
                )
            })
            .collect();
        // Open spans are dropped, so parent indexes must be remapped onto
        // the compacted list.
        let spans_guard = inner.spans.lock().unwrap();
        let mut remap: Vec<Option<usize>> = vec![None; spans_guard.len()];
        let mut spans: Vec<SpanSnapshot> = Vec::new();
        for (i, s) in spans_guard.iter().enumerate() {
            if !s.closed {
                continue;
            }
            remap[i] = Some(spans.len());
            spans.push(SpanSnapshot {
                name: s.name.clone(),
                parent: s.parent.and_then(|p| remap[p]),
                start_us: s.start_us,
                elapsed_us: s.elapsed_us,
            });
        }
        MetricsSnapshot {
            enabled: true,
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

struct ActiveSpan {
    inner: Arc<ObsInner>,
    index: usize,
    started: Instant,
}

/// RAII guard returned by [`Obs::span`]; closes the span on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed_us = active.started.elapsed().as_micros() as u64;
        {
            let mut spans = active.inner.spans.lock().unwrap();
            let rec = &mut spans[active.index];
            rec.elapsed_us = elapsed_us;
            rec.closed = true;
        }
        let id = Arc::as_ptr(&active.inner) as usize;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(rid, i)| rid == id && i == active.index)
            {
                stack.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.inc("x");
        obs.add("x", 5);
        obs.set_gauge("g", 1.0);
        obs.observe("h", &[1.0], 0.5);
        {
            let _s = obs.span("s");
        }
        let snap = obs.snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(Obs::default().snapshot(), snap);
    }

    #[test]
    fn counters_accumulate_across_clones_and_threads() {
        let obs = Obs::enabled();
        obs.add("a", 2);
        obs.inc("a");
        let clone = obs.clone();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = clone.clone();
                scope.spawn(move || c.add("a", 10));
            }
        });
        assert_eq!(obs.snapshot().counter("a"), Some(43));
        assert_eq!(obs.snapshot().counter("missing"), None);
    }

    #[test]
    fn counter_sum_matches_prefix() {
        let obs = Obs::enabled();
        obs.add("level.1.c", 3);
        obs.add("level.2.c", 4);
        obs.add("other", 100);
        assert_eq!(obs.snapshot().counter_sum("level."), 7);
    }

    #[test]
    fn gauges_take_the_last_write() {
        let obs = Obs::enabled();
        obs.set_gauge("g", 1.5);
        obs.set_gauge("g", 2.5);
        assert_eq!(obs.snapshot().gauge("g"), Some(2.5));
    }

    #[test]
    fn histograms_bucket_observations() {
        let obs = Obs::enabled();
        let bounds = [1.0, 4.0, 16.0];
        for v in [0.5, 2.0, 3.0, 20.0] {
            obs.observe("h", &bounds, v);
        }
        let snap = obs.snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.bounds, vec![1.0, 4.0, 16.0]);
        assert_eq!(h.counts, vec![1, 2, 0, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 25.5).abs() < 1e-12);
    }

    #[test]
    fn spans_nest_on_one_thread_and_root_on_workers() {
        let obs = Obs::enabled();
        {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
            }
            let worker = obs.clone();
            std::thread::spawn(move || {
                let _w = worker.span("worker");
            })
            .join()
            .unwrap();
        }
        let snap = obs.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"inner"));
        assert!(names.contains(&"worker"));
        let outer = snap.spans.iter().position(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer));
        let worker = snap.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, None, "cross-thread spans are roots");
        assert_eq!(snap.spans[outer].parent, None);
    }

    #[test]
    fn open_spans_are_omitted_and_parents_remapped() {
        let obs = Obs::enabled();
        let _open = obs.span("still-open");
        {
            let _closed = obs.span("closed-child");
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "closed-child");
        // Its parent (the open span) is not in the snapshot.
        assert_eq!(snap.spans[0].parent, None);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let obs = Obs::enabled();
        obs.add("a\"b", 1);
        obs.set_gauge("g", 0.5);
        obs.observe("h", &[1.0], 2.0);
        {
            let _s = obs.span("root");
        }
        let compact = obs.snapshot().to_json_string(false);
        assert!(compact.starts_with('{') && compact.ends_with('}'));
        assert!(compact.contains("\"version\":1"));
        assert!(compact.contains("\"a\\\"b\":1"));
        assert!(compact.contains("\"enabled\":true"));
        assert!(!compact.contains('\n'));
        let pretty = obs.snapshot().to_json_string(true);
        assert!(pretty.contains('\n'));
        assert!(pretty.contains("\"version\": 1"));
    }

    #[test]
    fn non_finite_gauges_serialize_as_null() {
        let obs = Obs::enabled();
        obs.set_gauge("bad", f64::NAN);
        let json = obs.snapshot().to_json_string(false);
        assert!(json.contains("\"bad\":null"));
    }

    #[test]
    fn trace_renders_the_span_tree() {
        let obs = Obs::enabled();
        {
            let _outer = obs.span("outer");
            let _inner = obs.span("inner");
        }
        let trace = obs.snapshot().render_trace();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("outer "));
        assert!(lines[1].starts_with("  inner "));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = Obs::enabled().snapshot();
        let json = snap.to_json_string(true);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": []"));
        assert!(snap.render_trace().is_empty());
    }
}
