//! Schemas, attribute identifiers and [`AttrSet`] — the u64 bitset over
//! attributes that powers the lattice algorithms.

use std::fmt;

use crate::error::CoreError;

/// Maximum schema width supported by [`AttrSet`]'s u64 representation.
pub const MAX_ATTRS: usize = 64;

/// Identifier of an attribute within one [`Schema`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub(crate) u16);

impl AttrId {
    /// The dense index of this attribute.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an attribute id from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(index < MAX_ATTRS, "attribute index {index} exceeds {MAX_ATTRS}");
        AttrId(index as u16)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// An immutable relation schema: an ordered list of attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
}

impl Schema {
    /// Builds a schema from attribute names, rejecting duplicates and widths
    /// beyond [`MAX_ATTRS`].
    pub fn new<I, S>(names: I) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.len() > MAX_ATTRS {
            return Err(CoreError::SchemaTooWide(names.len()));
        }
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(CoreError::DuplicateAttribute(n.clone()));
            }
        }
        Ok(Schema { names })
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Resolves an attribute name to its id.
    pub fn attr(&self, name: &str) -> Result<AttrId, CoreError> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(AttrId::from_index)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_owned()))
    }

    /// The name of an attribute.
    pub fn name(&self, attr: AttrId) -> &str {
        &self.names[attr.index()]
    }

    /// Iterates over all attribute ids in order.
    pub fn attrs(&self) -> impl ExactSizeIterator<Item = AttrId> + '_ {
        (0..self.names.len()).map(AttrId::from_index)
    }

    /// The set of all attributes.
    pub fn all(&self) -> AttrSet {
        AttrSet::all(self.names.len())
    }

    /// Builds an [`AttrSet`] from attribute names.
    pub fn set<'a, I>(&self, names: I) -> Result<AttrSet, CoreError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut s = AttrSet::empty();
        for n in names {
            s.insert(self.attr(n)?);
        }
        Ok(s)
    }

    /// Renders an attribute set using this schema's names, e.g. `[CC, DIAG]`.
    pub fn display_set(&self, set: AttrSet) -> String {
        let names: Vec<&str> = set.iter().map(|a| self.name(a)).collect();
        format!("[{}]", names.join(", "))
    }
}

/// A set of attributes represented as a u64 bitmask.
///
/// All lattice bookkeeping (levels, candidate sets `C⁺(X)`, prefix blocks)
/// runs on this type; operations are branch-free bit arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        AttrSet(0)
    }

    /// The set `{0, 1, …, width-1}`.
    #[inline]
    pub fn all(width: usize) -> Self {
        assert!(width <= MAX_ATTRS, "width {width} exceeds {MAX_ATTRS}");
        if width == MAX_ATTRS {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << width) - 1)
        }
    }

    /// A singleton set.
    #[inline]
    pub fn single(attr: AttrId) -> Self {
        AttrSet(1u64 << attr.index())
    }

    /// The raw bitmask.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a set from a raw bitmask.
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, attr: AttrId) -> bool {
        self.0 & (1u64 << attr.index()) != 0
    }

    /// Inserts an attribute (in place).
    #[inline]
    pub fn insert(&mut self, attr: AttrId) {
        self.0 |= 1u64 << attr.index();
    }

    /// Removes an attribute (in place).
    #[inline]
    pub fn remove(&mut self, attr: AttrId) {
        self.0 &= !(1u64 << attr.index());
    }

    /// `self ∪ {attr}` as a new set.
    #[inline]
    pub fn with(self, attr: AttrId) -> Self {
        AttrSet(self.0 | (1u64 << attr.index()))
    }

    /// `self \ {attr}` as a new set.
    #[inline]
    pub fn without(self, attr: AttrId) -> Self {
        AttrSet(self.0 & !(1u64 << attr.index()))
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: Self) -> Self {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn minus(self, other: Self) -> Self {
        AttrSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊂ other` (strict).
    #[inline]
    pub fn is_proper_subset(self, other: Self) -> bool {
        self.is_subset(other) && self != other
    }

    /// Whether the sets share no attribute.
    #[inline]
    pub fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over members in ascending attribute order.
    pub fn iter(self) -> AttrSetIter {
        AttrSetIter(self.0)
    }

    /// The smallest attribute in the set, if any.
    #[inline]
    pub fn first(self) -> Option<AttrId> {
        if self.0 == 0 {
            None
        } else {
            Some(AttrId(self.0.trailing_zeros() as u16))
        }
    }

    /// The single member of a singleton set.
    ///
    /// Returns `None` when the set does not have exactly one member.
    #[inline]
    pub fn as_single(self) -> Option<AttrId> {
        if self.0.count_ones() == 1 {
            self.first()
        } else {
            None
        }
    }

    /// Builds a set from an iterator of attribute ids.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(attrs: I) -> Self {
        let mut s = AttrSet::empty();
        for a in attrs {
            s.insert(a);
        }
        s
    }

    /// Iterates over every subset of `self` obtained by removing exactly one
    /// attribute — the lattice parents of the node `self`.
    pub fn parents(self) -> impl Iterator<Item = (AttrId, AttrSet)> {
        self.iter().map(move |a| (a, self.without(a)))
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        AttrSet::from_attrs(iter)
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for a in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of an [`AttrSet`].
#[derive(Debug, Clone)]
pub struct AttrSetIter(u64);

impl Iterator for AttrSetIter {
    type Item = AttrId;

    #[inline]
    fn next(&mut self) -> Option<AttrId> {
        if self.0 == 0 {
            return None;
        }
        let tz = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(AttrId(tz as u16))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AttrId {
        AttrId::from_index(i)
    }

    #[test]
    fn schema_basics() {
        let s = Schema::new(["CC", "CTRY", "SYMP"]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr("CTRY").unwrap(), a(1));
        assert_eq!(s.name(a(2)), "SYMP");
        assert!(matches!(s.attr("nope"), Err(CoreError::UnknownAttribute(_))));
        let set = s.set(["CC", "SYMP"]).unwrap();
        assert_eq!(s.display_set(set), "[CC, SYMP]");
        assert_eq!(s.all().len(), 3);
    }

    #[test]
    fn schema_rejects_duplicates_and_width() {
        assert!(matches!(
            Schema::new(["A", "A"]),
            Err(CoreError::DuplicateAttribute(_))
        ));
        let wide: Vec<String> = (0..65).map(|i| format!("A{i}")).collect();
        assert!(matches!(Schema::new(wide), Err(CoreError::SchemaTooWide(65))));
        let ok: Vec<String> = (0..64).map(|i| format!("A{i}")).collect();
        assert!(Schema::new(ok).is_ok());
    }

    #[test]
    fn set_operations() {
        let x = AttrSet::from_attrs([a(0), a(2), a(5)]);
        let y = AttrSet::from_attrs([a(2), a(3)]);
        assert_eq!(x.len(), 3);
        assert!(x.contains(a(2)));
        assert!(!x.contains(a(1)));
        assert_eq!(x.union(y).len(), 4);
        assert_eq!(x.intersect(y), AttrSet::single(a(2)));
        assert_eq!(x.minus(y), AttrSet::from_attrs([a(0), a(5)]));
        assert!(AttrSet::single(a(2)).is_subset(x));
        assert!(AttrSet::single(a(2)).is_proper_subset(x));
        assert!(!x.is_proper_subset(x));
        assert!(x.minus(y).is_disjoint(y));
    }

    #[test]
    fn with_without_do_not_mutate() {
        let x = AttrSet::single(a(1));
        let y = x.with(a(3));
        assert_eq!(x.len(), 1);
        assert_eq!(y.len(), 2);
        assert_eq!(y.without(a(3)), x);
    }

    #[test]
    fn iter_is_sorted_and_exact() {
        let x = AttrSet::from_attrs([a(5), a(0), a(2)]);
        let got: Vec<usize> = x.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![0, 2, 5]);
        assert_eq!(x.iter().len(), 3);
    }

    #[test]
    fn first_and_single() {
        assert_eq!(AttrSet::empty().first(), None);
        assert_eq!(AttrSet::empty().as_single(), None);
        assert_eq!(AttrSet::single(a(4)).as_single(), Some(a(4)));
        let two = AttrSet::from_attrs([a(1), a(4)]);
        assert_eq!(two.as_single(), None);
        assert_eq!(two.first(), Some(a(1)));
    }

    #[test]
    fn parents_enumerates_one_removals() {
        let x = AttrSet::from_attrs([a(0), a(1), a(3)]);
        let ps: Vec<(AttrId, AttrSet)> = x.parents().collect();
        assert_eq!(ps.len(), 3);
        for (removed, parent) in ps {
            assert_eq!(parent.len(), 2);
            assert!(!parent.contains(removed));
            assert!(parent.is_proper_subset(x));
        }
    }

    #[test]
    fn all_width_edge_cases() {
        assert_eq!(AttrSet::all(0), AttrSet::empty());
        assert_eq!(AttrSet::all(64).len(), 64);
        assert_eq!(AttrSet::all(15).len(), 15);
    }

    #[test]
    fn from_iterator_and_bits_round_trip() {
        let attrs = [a(1), a(3), a(7)];
        let set: AttrSet = attrs.into_iter().collect();
        assert_eq!(set.len(), 3);
        assert_eq!(AttrSet::from_bits(set.bits()), set);
        // Set algebra laws on a concrete triple.
        let other = AttrSet::from_attrs([a(3), a(9)]);
        assert_eq!(set.union(other).minus(other).intersect(set), set.minus(other));
        assert_eq!(set.minus(set), AttrSet::empty());
        assert!(set.intersect(other).is_subset(set));
        assert!(set.intersect(other).is_subset(other));
    }

    #[test]
    fn display_formats() {
        let x = AttrSet::from_attrs([a(0), a(3)]);
        assert_eq!(x.to_string(), "{A0,A3}");
        assert_eq!(AttrSet::empty().to_string(), "{}");
    }
}
