//! Synonyms in **antecedent** attributes — the extension the paper defers
//! to future work and analyzes in its response letter (W2): under an
//! interpretation, synonymous antecedent values merge equivalence classes,
//! so validation must consider *every* interpretation, each inducing its
//! own (coarser) partition.
//!
//! Given an OFD `X →syn A` and an ontology whose concepts carry
//! interpretation labels (e.g. `FDA`, `MoH`), [`check_lhs_synonyms`]
//! canonicalizes the antecedent under each interpretation, re-partitions,
//! and verifies the consequent per merged class. The dependency holds with
//! lhs synonyms iff it holds under **every** interpretation — exactly the
//! response letter's reading, where updating `t7[MED]` fixes the FDA view
//! but breaks the MoH view.

use std::collections::HashMap;

use ofd_ontology::{InterpretationId, Ontology};

use crate::fxhash::FxHashMap;
use crate::ofd::Ofd;
use crate::relation::Relation;
use crate::validate::{Validation, Validator};
use crate::value::ValueId;

/// Outcome of lhs-synonym validation for one interpretation.
#[derive(Debug)]
pub struct InterpretationOutcome {
    /// The interpretation the antecedent was canonicalized under.
    pub interpretation: InterpretationId,
    /// Its label.
    pub label: String,
    /// Number of merged (non-singleton) classes evaluated.
    pub merged_classes: usize,
    /// Consequent verification over the merged classes.
    pub validation: Validation,
}

/// Result of [`check_lhs_synonyms`].
#[derive(Debug)]
pub struct LhsSynonymValidation {
    /// One outcome per interpretation label registered in the ontology.
    pub outcomes: Vec<InterpretationOutcome>,
}

impl LhsSynonymValidation {
    /// Whether the OFD holds under **every** interpretation.
    pub fn satisfied(&self) -> bool {
        self.outcomes.iter().all(|o| o.validation.satisfied())
    }

    /// Interpretations under which the OFD is violated.
    pub fn violated_interpretations(&self) -> impl Iterator<Item = &InterpretationOutcome> {
        self.outcomes.iter().filter(|o| !o.validation.satisfied())
    }

    /// Total (non-singleton) classes across interpretations — the "larger
    /// total number of equivalence classes" cost the response letter
    /// highlights.
    pub fn total_classes(&self) -> usize {
        self.outcomes.iter().map(|o| o.merged_classes).sum()
    }
}

/// Per-interpretation canonicalization table: `(interpretation, value)` →
/// canonical token. Values untouched by an interpretation stay literal.
fn canonicalizer(
    rel: &Relation,
    onto: &Ontology,
    interp: InterpretationId,
) -> FxHashMap<ValueId, String> {
    let mut map: FxHashMap<ValueId, String> = FxHashMap::default();
    for concept in onto.concepts() {
        if !concept.interpretations().contains(&interp) {
            continue;
        }
        let Some(canonical) = concept.canonical() else {
            continue;
        };
        for syn in concept.synonyms() {
            if let Some(vid) = rel.pool().get(syn) {
                // First (smallest sense id) concept wins, deterministically.
                map.entry(vid).or_insert_with(|| canonical.to_owned());
            }
        }
    }
    map
}

/// Validates `ofd` with synonyms honoured on the **antecedent**: for each
/// interpretation, antecedent values are canonicalized (merging classes)
/// and the consequent is checked per merged class under ordinary synonym
/// semantics.
pub fn check_lhs_synonyms(
    rel: &Relation,
    onto: &Ontology,
    ofd: &Ofd,
) -> LhsSynonymValidation {
    let validator = Validator::new(rel, onto);
    let lhs_attrs: Vec<_> = ofd.lhs.iter().collect();
    let mut outcomes = Vec::new();

    for (idx, label) in onto.interpretation_labels().iter().enumerate() {
        let interp = InterpretationId::from_index(idx);
        let canon = canonicalizer(rel, onto, interp);
        // Merged partition over canonicalized antecedent keys.
        let mut groups: HashMap<Vec<String>, Vec<u32>> = HashMap::new();
        for t in 0..rel.n_rows() {
            let key: Vec<String> = lhs_attrs
                .iter()
                .map(|&a| {
                    let v = rel.value(t, a);
                    canon
                        .get(&v)
                        .cloned()
                        .unwrap_or_else(|| rel.pool().resolve(v).to_owned())
                })
                .collect();
            groups.entry(key).or_default().push(t as u32);
        }
        let merged = crate::partition::StrippedPartition::from_classes(
            rel.n_rows(),
            groups.into_values(),
        );
        let validation = validator.check_with_partition(ofd, &merged);
        outcomes.push(InterpretationOutcome {
            interpretation: interp,
            label: label.clone(),
            merged_classes: merged.class_count(),
            validation,
        });
    }
    LhsSynonymValidation { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_ontology::OntologyBuilder;

    /// The response letter's example table: SYMP → MED with country-coded
    /// drug standards, and MED → DISEASE with merged antecedent classes.
    fn response_letter_instance() -> (Relation, Ontology) {
        let rel = Relation::from_rows(
            ["SYMP", "MED", "DISEASE"],
            [
                &["Headache", "Cartia", "Hyperpiesis"] as &[&str],
                &["Headache", "Tiazac", "Hypertension"],
                &["Headache", "Bevyxxa", "Hypertension"],
                &["Headache", "Bevyxxa", "Hypertension"],
                &["Headache", "Berixaban", "HHD"],
                &["Headache", "Tiazac", "HHD"],
                &["Headache", "Aspirin", "Hyperiesia"],
            ],
        )
        .expect("response letter table");
        let mut b = OntologyBuilder::new();
        let fda = b.interpretation("FDA");
        let moh = b.interpretation("MoH");
        b.concept("diltiazem")
            .synonyms(["Cartia", "Tiazac", "Cardizem"])
            .interpretations([fda])
            .build()
            .unwrap();
        b.concept("acetylsalicylic acid")
            .synonyms(["Cartia", "Aspirin", "ASA"])
            .interpretations([moh])
            .build()
            .unwrap();
        // Disease vocabulary: one hypertension family covering the
        // legitimate variants (Hyperiesia is the t7 typo, outside it).
        b.concept("hypertensive disease")
            .synonyms(["Hypertension", "HHD", "Hyperpiesis"])
            .interpretations([fda, moh])
            .build()
            .unwrap();
        (rel, b.finish().unwrap())
    }

    #[test]
    fn fda_interpretation_merges_cartia_and_tiazac_classes() {
        let (rel, onto) = response_letter_instance();
        let ofd = Ofd::synonym_named(rel.schema(), &["MED"], "DISEASE").unwrap();
        let result = check_lhs_synonyms(&rel, &onto, &ofd);
        let fda = &result.outcomes[0];
        assert_eq!(fda.label, "FDA");
        // {t1,t2,t6} merge (Cartia ≡ Tiazac under FDA) + {t3,t4}: two
        // non-singleton merged classes, as the response letter derives.
        assert_eq!(fda.merged_classes, 2);
        // DISEASE values {Hyperpiesis, Hypertension, HHD} share the
        // hypertensive-disease sense, so the FDA view is satisfied.
        assert!(fda.validation.satisfied());
    }

    #[test]
    fn moh_interpretation_exposes_the_t7_typo() {
        let (rel, onto) = response_letter_instance();
        let ofd = Ofd::synonym_named(rel.schema(), &["MED"], "DISEASE").unwrap();
        let result = check_lhs_synonyms(&rel, &onto, &ofd);
        let moh = &result.outcomes[1];
        assert_eq!(moh.label, "MoH");
        // Under MoH, Cartia ≡ Aspirin merges {t1, t7}; their DISEASE values
        // {Hyperpiesis, Hyperiesia} share no sense — a violation only this
        // interpretation can see.
        assert!(!moh.validation.satisfied());
        assert!(!result.satisfied());
        assert_eq!(result.violated_interpretations().count(), 1);
    }

    #[test]
    fn lhs_synonyms_evaluate_more_classes_than_plain_validation() {
        // The response letter's cost argument: all interpretations together
        // inspect more classes than the syntactic partition alone.
        let (rel, onto) = response_letter_instance();
        let ofd = Ofd::synonym_named(rel.schema(), &["MED"], "DISEASE").unwrap();
        let plain = crate::partition::StrippedPartition::of(&rel, ofd.lhs);
        let with_lhs = check_lhs_synonyms(&rel, &onto, &ofd);
        assert!(with_lhs.total_classes() >= plain.class_count());
    }

    #[test]
    fn no_interpretations_means_trivially_satisfied_views() {
        let rel = Relation::from_rows(["A", "B"], [&["x", "1"] as &[&str], &["x", "2"]])
            .unwrap();
        let onto = Ontology::empty();
        let ofd = Ofd::synonym_named(rel.schema(), &["A"], "B").unwrap();
        let result = check_lhs_synonyms(&rel, &onto, &ofd);
        assert!(result.outcomes.is_empty());
        assert!(result.satisfied(), "vacuously true with no interpretations");
    }

    #[test]
    fn untagged_values_stay_literal() {
        let (rel, onto) = response_letter_instance();
        // SYMP → MED: SYMP values are not in any concept, so every
        // interpretation reproduces the plain partition (one Headache
        // class of 7 tuples).
        let ofd = Ofd::synonym_named(rel.schema(), &["SYMP"], "MED").unwrap();
        let result = check_lhs_synonyms(&rel, &onto, &ofd);
        for o in &result.outcomes {
            assert_eq!(o.merged_classes, 1);
        }
    }
}
