//! [`SenseIndex`]: constant-time `names(v)` lookups keyed by interned
//! [`ValueId`]s instead of strings, as assumed by the paper's complexity
//! analysis (§4.3).

use ofd_ontology::{Ontology, SenseId};

use crate::relation::Relation;
use crate::value::ValueId;

/// Maps every interned value of a relation to the sorted senses containing
/// it. Two construction modes:
///
/// * [`SenseIndex::synonym`] — `names(v)`, for synonym-OFD checking;
/// * [`SenseIndex::inheritance`] — `names(v)` expanded with every ancestor
///   within `theta` is-a steps, so an inheritance OFD holds exactly when the
///   expanded sets of a class intersect (a shared ancestor within `theta`).
#[derive(Debug, Clone)]
pub struct SenseIndex {
    per_value: Vec<Vec<SenseId>>,
}

impl SenseIndex {
    /// Builds the synonym-mode index for all values currently interned in
    /// `rel`'s pool.
    pub fn synonym(rel: &Relation, onto: &Ontology) -> SenseIndex {
        let mut idx = SenseIndex {
            per_value: Vec::new(),
        };
        idx.extend_synonym(rel, onto);
        idx
    }

    /// Builds the inheritance-mode index: each value maps to the ancestors
    /// (within `theta` steps, inclusive of the containing sense itself) of
    /// every sense containing it.
    pub fn inheritance(rel: &Relation, onto: &Ontology, theta: usize) -> SenseIndex {
        let n = rel.pool().len();
        let mut per_value = Vec::with_capacity(n);
        for (_, text) in rel.pool().iter() {
            let mut senses: Vec<SenseId> = Vec::new();
            for &s in onto.names(text) {
                for (anc, _) in onto
                    .ancestors_within(s, theta)
                    .expect("sense from names() exists")
                {
                    senses.push(anc);
                }
            }
            senses.sort_unstable();
            senses.dedup();
            per_value.push(senses);
        }
        SenseIndex { per_value }
    }

    /// Resolves values interned after this index was built (e.g. repair
    /// values) in synonym mode.
    pub fn extend_synonym(&mut self, rel: &Relation, onto: &Ontology) {
        for i in self.per_value.len()..rel.pool().len() {
            let text = rel.pool().resolve(ValueId::from_index(i));
            let mut senses = onto.names(text).to_vec();
            senses.sort_unstable();
            self.per_value.push(senses);
        }
    }

    /// Resolves values interned after this index was built in inheritance
    /// mode, expanding with ancestors within `theta` steps exactly as
    /// [`SenseIndex::inheritance`] does at construction. `theta` must match
    /// the construction-time value for the index to stay coherent.
    pub fn extend_inheritance(&mut self, rel: &Relation, onto: &Ontology, theta: usize) {
        for i in self.per_value.len()..rel.pool().len() {
            let text = rel.pool().resolve(ValueId::from_index(i));
            let mut senses: Vec<SenseId> = Vec::new();
            for &s in onto.names(text) {
                for (anc, _) in onto
                    .ancestors_within(s, theta)
                    .expect("sense from names() exists")
                {
                    senses.push(anc);
                }
            }
            senses.sort_unstable();
            senses.dedup();
            self.per_value.push(senses);
        }
    }

    /// The senses containing `value`, sorted ascending. Values unknown to
    /// the index (or the ontology) yield the empty slice.
    #[inline]
    pub fn senses(&self, value: ValueId) -> &[SenseId] {
        self.per_value
            .get(value.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `value` belongs to sense `sense`.
    #[inline]
    pub fn in_sense(&self, value: ValueId, sense: SenseId) -> bool {
        self.senses(value).binary_search(&sense).is_ok()
    }

    /// Manually records that `value` belongs to `sense` — used by the
    /// cleaning algorithms to overlay *candidate* ontology repairs without
    /// rebuilding the ontology.
    pub fn add_sense(&mut self, value: ValueId, sense: SenseId) {
        if self.per_value.len() <= value.index() {
            self.per_value.resize_with(value.index() + 1, Vec::new);
        }
        let senses = &mut self.per_value[value.index()];
        if let Err(pos) = senses.binary_search(&sense) {
            senses.insert(pos, sense);
        }
    }

    /// Number of values indexed.
    pub fn len(&self) -> usize {
        self.per_value.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.per_value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{table1, table1_updated};
    use ofd_ontology::samples;

    #[test]
    fn synonym_index_matches_ontology_names() {
        let rel = table1();
        let onto = samples::medical_drug_ontology();
        let idx = SenseIndex::synonym(&rel, &onto);
        let cartia = rel.pool().get("cartia").unwrap();
        assert_eq!(idx.senses(cartia).len(), 2);
        let joint_pain = rel.pool().get("joint pain").unwrap();
        assert!(idx.senses(joint_pain).is_empty(), "SYMP values are not drugs");
    }

    #[test]
    fn inheritance_index_adds_ancestors() {
        let rel = table1();
        let onto = samples::medical_drug_ontology();
        let syn = SenseIndex::synonym(&rel, &onto);
        let inh0 = SenseIndex::inheritance(&rel, &onto, 0);
        let inh2 = SenseIndex::inheritance(&rel, &onto, 2);
        let tylenol = rel.pool().get("tylenol").unwrap();
        assert_eq!(syn.senses(tylenol), inh0.senses(tylenol));
        assert!(inh2.senses(tylenol).len() > syn.senses(tylenol).len());
        // tylenol(acetaminophen) and analgesic share the analgesic ancestor
        // within θ=1.
        let inh1 = SenseIndex::inheritance(&rel, &onto, 1);
        let analgesic = rel.pool().get("analgesic").unwrap();
        let common: Vec<_> = inh1
            .senses(tylenol)
            .iter()
            .filter(|s| inh1.senses(analgesic).contains(s))
            .collect();
        assert!(!common.is_empty());
    }

    #[test]
    fn extend_resolves_new_values() {
        let mut rel = table1();
        let onto = samples::medical_drug_ontology();
        let mut idx = SenseIndex::synonym(&rel, &onto);
        let before = idx.len();
        let med = rel.schema().attr("MED").unwrap();
        rel.set(0, med, "aspirin").unwrap();
        idx.extend_synonym(&rel, &onto);
        assert_eq!(idx.len(), before + 1);
        let aspirin = rel.pool().get("aspirin").unwrap();
        assert_eq!(idx.senses(aspirin).len(), 1, "aspirin is MoH-only");
    }

    #[test]
    fn extend_inheritance_matches_fresh_construction() {
        let mut rel = table1();
        let onto = samples::medical_drug_ontology();
        for theta in [0usize, 1, 2] {
            let mut idx = SenseIndex::inheritance(&rel, &onto, theta);
            let med = rel.schema().attr("MED").unwrap();
            rel.set(5, med, "aspirin").unwrap();
            rel.set(6, med, "no-such-drug").unwrap();
            idx.extend_inheritance(&rel, &onto, theta);
            let fresh = SenseIndex::inheritance(&rel, &onto, theta);
            assert_eq!(idx.len(), fresh.len(), "theta={theta}");
            for i in 0..idx.len() {
                let v = ValueId::from_index(i);
                assert_eq!(idx.senses(v), fresh.senses(v), "theta={theta} value {i}");
            }
        }
    }

    #[test]
    fn add_sense_overlays_candidate_repairs() {
        let rel = table1_updated();
        let onto = samples::medical_drug_ontology();
        let mut idx = SenseIndex::synonym(&rel, &onto);
        let adizem = rel.pool().get("adizem").unwrap();
        assert!(idx.senses(adizem).is_empty());
        let dilt = onto.names("tiazac")[0];
        idx.add_sense(adizem, dilt);
        assert!(idx.in_sense(adizem, dilt));
        // Idempotent.
        idx.add_sense(adizem, dilt);
        assert_eq!(idx.senses(adizem).len(), 1);
    }

    #[test]
    fn out_of_range_values_yield_empty() {
        let rel = table1();
        let onto = samples::medical_drug_ontology();
        let idx = SenseIndex::synonym(&rel, &onto);
        assert!(idx.senses(ValueId::from_index(10_000)).is_empty());
    }
}
