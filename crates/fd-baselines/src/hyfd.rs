//! HyFD (Papenbrock & Naumann, 2016) — the modern *hybrid* FD-discovery
//! algorithm, included beyond the paper's seven comparators as the field's
//! current reference point.
//!
//! Three phases, iterated to a fixpoint:
//!
//! 1. **Sampling** — compare a cheap subset of tuple pairs (sorted-
//!    neighbourhood windows per attribute) and record their agree sets as
//!    known non-FDs;
//! 2. **Induction** — maintain, per consequent, the most-general antecedent
//!    hypotheses consistent with every known non-FD (FDep-style
//!    specialization);
//! 3. **Validation** — check the surviving hypotheses against the *full*
//!    data via partitions; each failure yields a concrete violating pair
//!    whose agree set feeds back into induction.
//!
//! On exit every hypothesis is validated, and the same most-general-cover
//! argument as FDep's shows the output is exactly the minimal FD set.

use ofd_core::{FxHashMap, FxHashSet};

use ofd_core::{AttrId, AttrSet, ExecGuard, Fd, Obs, Partial, Relation, StrippedPartition, ValueId};

use crate::common::{record_interrupt, sort_fds};

/// Runs HyFD, returning the minimal non-trivial FDs of `rel`.
pub fn discover(rel: &Relation) -> Vec<Fd> {
    discover_guarded(rel, &ExecGuard::unlimited()).value
}

/// [`discover`] with an execution guard, probed per sampled tuple, per
/// induced non-FD and per validated hypothesis.
///
/// Only hypotheses that passed a full-data validation round are emitted on
/// interrupt. Such a hypothesis `X → A` is a true minimal FD: it holds over
/// the whole relation, and every proper subset of `X` is contained in some
/// recorded agree set missing `A` (otherwise the cover would have kept the
/// subset instead), i.e. is violated by a concrete tuple pair. Validated
/// hypotheses are also stable — a later violation's agree set can never
/// contain a valid antecedent — so the partial output is a subset of the
/// full output.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_with(rel, guard, &Obs::disabled())
}

/// [`discover_guarded`] with an observability handle: records
/// `baseline.hyfd.node_visits` (hypotheses validated against the full data)
/// and `baseline.hyfd.partition_products` (full stripped-partition builds
/// on validation-cache misses), plus labelled guard interrupts.
pub fn discover_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let n_attrs = schema.len();
    let n = rel.n_rows();
    let all = schema.all();
    let mut node_visits: u64 = 0;
    let mut partition_builds: u64 = 0;

    let agree_set_of = |t1: usize, t2: usize| -> AttrSet {
        let mut s = AttrSet::empty();
        for a in schema.attrs() {
            if rel.value(t1, a) == rel.value(t2, a) {
                s.insert(a);
            }
        }
        s
    };

    // Phase 1: sampling via sorted-neighbourhood windows per attribute.
    // A truncated sample only makes hypotheses too general; phase 3's
    // full-data validation gates everything that is emitted.
    let mut non_fds: FxHashSet<AttrSet> = FxHashSet::default();
    const WINDOW: usize = 3;
    'sampling: for a in schema.attrs() {
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&t| rel.value(t as usize, a));
        for (i, &t1) in order.iter().enumerate() {
            if guard.check().is_err() {
                break 'sampling;
            }
            for &t2 in order.iter().skip(i + 1).take(WINDOW) {
                non_fds.insert(agree_set_of(t1 as usize, t2 as usize));
            }
        }
    }
    non_fds.remove(&all); // duplicate tuples violate nothing

    // Phase 2: induction — per consequent, most-general hypotheses.
    let mut covers: Vec<Vec<AttrSet>> = (0..n_attrs).map(|_| vec![AttrSet::empty()]).collect();
    let specialize = |cover: &mut Vec<AttrSet>, s: AttrSet, a: AttrId, universe: AttrSet| {
        let mut next: Vec<AttrSet> = Vec::new();
        let mut to_fix: Vec<AttrSet> = Vec::new();
        for &x in cover.iter() {
            if x.is_subset(s) {
                to_fix.push(x);
            } else {
                next.push(x);
            }
        }
        for x in to_fix {
            for b in universe.minus(s).iter() {
                if b == a {
                    continue;
                }
                let candidate = x.with(b);
                if !next.iter().any(|y| y.is_subset(candidate)) {
                    next.retain(|y| !candidate.is_subset(*y));
                    next.push(candidate);
                }
            }
        }
        *cover = next;
    };
    let apply_non_fd = |covers: &mut Vec<Vec<AttrSet>>, s: AttrSet| {
        for a in schema.attrs() {
            if !s.contains(a) {
                let universe = all.without(a);
                specialize(&mut covers[a.index()], s, a, universe);
            }
        }
    };
    for &s in &non_fds {
        if guard.check().is_err() {
            break;
        }
        apply_non_fd(&mut covers, s);
    }

    // Phase 3: validate hypotheses against the full data; feed violating
    // pairs back. Partition results are cached across rounds. `validated`
    // records hypotheses that survived a full-data check — the only ones
    // emitted on interrupt.
    let mut partitions: FxHashMap<u64, StrippedPartition> =
        FxHashMap::default();
    let mut validated: Vec<FxHashSet<u64>> = (0..n_attrs).map(|_| FxHashSet::default()).collect();
    loop {
        let mut new_non_fds: Vec<AttrSet> = Vec::new();
        'validation: for a in schema.attrs() {
            let col = rel.column(a);
            for &x in &covers[a.index()] {
                if guard.check().is_err() {
                    break 'validation;
                }
                node_visits += 1;
                let sp = partitions.entry(x.bits()).or_insert_with(|| {
                    partition_builds += 1;
                    StrippedPartition::of(rel, x)
                });
                if let Some((t1, t2)) = violating_pair(sp, col) {
                    new_non_fds.push(agree_set_of(t1 as usize, t2 as usize));
                } else {
                    validated[a.index()].insert(x.bits());
                }
            }
        }
        if guard.is_tripped() || new_non_fds.is_empty() {
            break;
        }
        for s in new_non_fds {
            if non_fds.insert(s) {
                apply_non_fd(&mut covers, s);
            }
        }
    }

    let mut fds: Vec<Fd> = Vec::new();
    for a in schema.attrs() {
        for &x in &covers[a.index()] {
            if validated[a.index()].contains(&x.bits()) {
                fds.push(Fd::new(x, a));
            }
        }
    }
    sort_fds(&mut fds);
    obs.add("baseline.hyfd.node_visits", node_visits);
    obs.add("baseline.hyfd.partition_products", partition_builds);
    record_interrupt(obs, guard);
    Partial::from_outcome(fds, guard.interrupt())
}

/// A pair of tuples inside one antecedent class with differing consequent
/// values, if any.
fn violating_pair(sp: &StrippedPartition, col: &[ValueId]) -> Option<(u32, u32)> {
    for class in sp.classes() {
        let first = class[0];
        let v0 = col[first as usize];
        for &t in &class[1..] {
            if col[t as usize] != v0 {
                return Some((first, t));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::brute_force_fds;
    use ofd_core::{table1, table1_updated};

    #[test]
    fn matches_brute_force_on_paper_tables() {
        for rel in [table1(), table1_updated()] {
            assert_eq!(discover(&rel), brute_force_fds(&rel));
        }
    }

    #[test]
    fn handles_keys_constants_and_duplicates() {
        let rel = Relation::from_rows(
            ["K", "C", "V"],
            [
                &["1", "c", "x"] as &[&str],
                &["2", "c", "y"],
                &["2", "c", "y"], // duplicate row
                &["3", "c", "x"],
            ],
        )
        .unwrap();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn sampling_misses_are_caught_by_validation() {
        // A relation whose only violating pair is far apart in every
        // attribute ordering, so windowed sampling alone would miss it.
        let mut rows: Vec<[String; 3]> = Vec::new();
        for i in 0..30 {
            rows.push([format!("g{}", i / 3), format!("m{i:02}"), format!("v{}", i / 3)]);
        }
        // Rows 0 and 29 share g-group? No: inject an explicit violation in
        // group g0 via the last row.
        rows.push(["g0".to_owned(), "m99".to_owned(), "vX".to_owned()]);
        let mut b = Relation::builder(ofd_core::Schema::new(["A", "B", "C"]).unwrap());
        for r in &rows {
            b.push_row(r.iter().map(String::as_str)).unwrap();
        }
        let rel = b.finish();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }
}
