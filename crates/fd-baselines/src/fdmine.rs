//! FDMine (Yao & Hamilton, 2008): level-wise FD discovery with closure
//! tracking and equivalence pruning.
//!
//! FDMine's raw output is famously **non-minimal** — the paper's Exp-1
//! observes ~24× more dependencies than the minimal set, blowing memory on
//! larger inputs. [`discover_raw`] reproduces that behaviour (its output is
//! a *cover*: logically equivalent to the true FD set, verified by property
//! tests); [`discover`] is the minimized view used for cross-algorithm
//! comparisons.

use ofd_core::FxHashMap;

use ofd_core::{
    AttrId, AttrSet, ExecGuard, Fd, Obs, Partial, ProductScratch, Relation, StrippedPartition,
};

use crate::common::{minimize_fds, record_interrupt, sort_fds};

struct Node {
    attrs: AttrSet,
    partition: StrippedPartition,
    card: usize,
    /// Attributes known to be determined by `attrs` (inherited from the two
    /// join parents plus locally discovered — deliberately *not* from all
    /// subsets, which is the source of FDMine's non-minimal output).
    closure: AttrSet,
}

fn card_of(n_rows: usize, p: &StrippedPartition) -> usize {
    p.class_count() + (n_rows - p.tuple_count())
}

/// Runs FDMine and returns its raw (generally non-minimal) output — a cover
/// of the FD set of `rel`.
pub fn discover_raw(rel: &Relation) -> Vec<Fd> {
    discover_raw_guarded(rel, &ExecGuard::unlimited()).value
}

/// [`discover_raw`] with an execution guard, probed once per lattice node.
///
/// Every raw emission is either verified by cardinality equality or a sound
/// Armstrong inference from verified ones, so an interrupted prefix contains
/// only valid FDs. It stops being a *cover*, though — minimize the prefix
/// (as [`discover_guarded`] does) to compare against other baselines.
pub fn discover_raw_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_raw_with(rel, guard, &Obs::disabled())
}

/// [`discover_raw_guarded`] with an observability handle: records
/// `baseline.fdmine.node_visits` (lattice nodes whose candidates were
/// probed) and `baseline.fdmine.partition_products` (partition products for
/// probes and next-level generation), plus labelled guard interrupts.
pub fn discover_raw_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let n = schema.len();
    let n_rows = rel.n_rows();
    let all = schema.all();
    let mut scratch = ProductScratch::default();
    let mut fds: Vec<Fd> = Vec::new();
    let mut node_visits: u64 = 0;
    let mut products: u64 = 0;

    let single: Vec<StrippedPartition> = schema
        .attrs()
        .map(|a| StrippedPartition::of_attr(rel, a))
        .collect();

    // Constants: ∅ → A.
    let card0 = usize::from(n_rows > 0);
    for a in schema.attrs() {
        if card_of(n_rows, &single[a.index()]) == card0 {
            fds.push(Fd::new(AttrSet::empty(), a));
        }
    }

    let mut level: Vec<Node> = schema
        .attrs()
        .map(|a| Node {
            attrs: AttrSet::single(a),
            partition: single[a.index()].clone(),
            card: card_of(n_rows, &single[a.index()]),
            closure: AttrSet::empty(),
        })
        .collect();

    'levels: for _l in 1..=n {
        // Discover FDs at this level: X → A for A ∉ X ∪ closure(X).
        for node in &mut level {
            if guard.check().is_err() {
                break 'levels;
            }
            node_visits += 1;
            let probe = all.minus(node.attrs).minus(node.closure);
            for a in probe.iter() {
                products += 1;
                let joined = node
                    .partition
                    .product_with_scratch(&single[a.index()], &mut scratch);
                if card_of(n_rows, &joined) == node.card {
                    fds.push(Fd::new(node.attrs, a));
                    node.closure.insert(a);
                }
            }
        }

        // Equivalence pruning: Y is redundant when X ∪ closure(X) ⊇ Y and
        // Y ∪ closure(Y) ⊇ X (X ↔ Y); keep the earlier node.
        let mut kept: Vec<Node> = Vec::new();
        for node in level.drain(..) {
            let equivalent = kept.iter().any(|k| {
                node.attrs.is_subset(k.attrs.union(k.closure))
                    && k.attrs.is_subset(node.attrs.union(node.closure))
            });
            if !equivalent {
                kept.push(node);
            }
        }
        level = kept;

        // Key pruning: nodes determining every attribute stop expanding.
        level.retain(|node| node.attrs.union(node.closure) != all);

        // Generate the next level from prefix blocks.
        let mut order: Vec<usize> = (0..level.len()).collect();
        order.sort_by_key(|&i| {
            let attrs: Vec<u16> = level[i].attrs.iter().map(|x| x.index() as u16).collect();
            attrs
        });
        let mut seen: FxHashMap<u64, ()> = FxHashMap::default();
        let mut next: Vec<Node> = Vec::new();
        let mut block_start = 0;
        while block_start < order.len() {
            let head = level[order[block_start]].attrs;
            let head_prefix = head.without(last_attr(head));
            let mut block_end = block_start + 1;
            while block_end < order.len() {
                let cur = level[order[block_end]].attrs;
                if cur.without(last_attr(cur)) != head_prefix {
                    break;
                }
                block_end += 1;
            }
            for i in block_start..block_end {
                for j in (i + 1)..block_end {
                    if guard.check().is_err() {
                        break 'levels;
                    }
                    let x1 = &level[order[i]];
                    let x2 = &level[order[j]];
                    let attrs = x1.attrs.union(x2.attrs);
                    if seen.insert(attrs.bits(), ()).is_some() {
                        continue;
                    }
                    // Skip candidates already determined by a parent
                    // (their FDs are derivable).
                    if attrs.is_subset(x1.attrs.union(x1.closure))
                        || attrs.is_subset(x2.attrs.union(x2.closure))
                    {
                        continue;
                    }
                    products += 1;
                    let partition =
                        x1.partition.product_with_scratch(&x2.partition, &mut scratch);
                    let card = card_of(n_rows, &partition);
                    next.push(Node {
                        attrs,
                        partition,
                        card,
                        closure: x1.closure.union(x2.closure).minus(attrs),
                    });
                }
            }
            block_start = block_end;
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }

    sort_fds(&mut fds);
    fds.dedup();
    obs.add("baseline.fdmine.node_visits", node_visits);
    obs.add("baseline.fdmine.partition_products", products);
    record_interrupt(obs, guard);
    Partial::from_outcome(fds, guard.interrupt())
}

/// FDMine's output minimized — the view comparable with the other
/// baselines.
pub fn discover(rel: &Relation) -> Vec<Fd> {
    minimize_fds(discover_raw(rel))
}

/// [`discover`] with an execution guard.
///
/// On interrupt the minimized prefix is a subset of the full minimized
/// output: any FD that would displace a prefix member has a strictly
/// smaller antecedent and therefore was emitted at an earlier — fully
/// completed — level, i.e. it is already in the prefix.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_raw_guarded(rel, guard).map(minimize_fds)
}

/// [`discover_guarded`] with an observability handle (see
/// [`discover_raw_with`] for the recorded counters).
pub fn discover_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    discover_raw_with(rel, guard, obs).map(minimize_fds)
}

fn last_attr(set: AttrSet) -> AttrId {
    set.iter().last().expect("non-empty node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{brute_force_fds, fd_holds};
    use ofd_core::table1;
    use ofd_logic::{equivalent, Dependency};

    fn as_deps(fds: &[Fd]) -> Vec<Dependency> {
        fds.iter().map(|&f| f.into()).collect()
    }

    #[test]
    fn raw_output_is_a_sound_cover_on_table1() {
        let rel = table1();
        let raw = discover_raw(&rel);
        for fd in &raw {
            assert!(fd_holds(&rel, fd), "{}", fd.display(rel.schema()));
        }
        let brute = brute_force_fds(&rel);
        assert!(
            equivalent(&as_deps(&raw), &as_deps(&brute)),
            "raw cover must be logically equivalent to the minimal set"
        );
    }

    #[test]
    fn raw_output_can_exceed_minimal_output() {
        let rel = table1();
        let raw = discover_raw(&rel);
        let min = discover(&rel);
        assert!(raw.len() >= min.len());
    }

    #[test]
    fn minimized_view_contains_only_minimal_fds() {
        let rel = table1();
        let min = discover(&rel);
        for a in &min {
            for b in &min {
                if a.rhs == b.rhs && a != b {
                    assert!(!a.lhs.is_proper_subset(b.lhs));
                }
            }
        }
    }

    #[test]
    fn equivalence_pruned_cover_still_equivalent() {
        // A and B are mutual renamings — the equivalence-pruning path.
        let rel = Relation::from_rows(
            ["A", "B", "C"],
            [
                &["1", "x", "p"] as &[&str],
                &["2", "y", "p"],
                &["1", "x", "q"],
            ],
        )
        .unwrap();
        let raw = discover_raw(&rel);
        let brute = brute_force_fds(&rel);
        assert!(equivalent(&as_deps(&raw), &as_deps(&brute)));
    }
}
