//! Shared machinery for the baseline FD-discovery algorithms: agree sets,
//! difference sets, cardinalities, minimality filtering and a brute-force
//! reference.

use ofd_core::FxHashSet;

use ofd_core::{AttrSet, ExecGuard, Fd, Obs, Relation, StrippedPartition};

/// Records a labelled `guard.interrupt.<reason>` counter when `guard` has
/// tripped (no-op otherwise) — shared by every baseline's `discover_with`.
pub fn record_interrupt(obs: &Obs, guard: &ExecGuard) {
    if let Some(i) = guard.interrupt() {
        obs.inc(&format!("guard.interrupt.{}", i.label()));
    }
}

/// Computes the *agree sets* of `rel`: for every tuple pair, the set of
/// attributes on which the two tuples agree. Quadratic in the number of
/// tuples by nature — this is why DepMiner / FastFDs / FDep blow up at large
/// N in the paper's Exp-1, and we reproduce that honestly.
///
/// The returned set always contains the full-relation-relevant sets only;
/// the empty agree set appears if some tuple pair disagrees everywhere.
pub fn agree_sets(rel: &Relation) -> FxHashSet<AttrSet> {
    agree_sets_guarded(rel, &ExecGuard::unlimited())
        .expect("an unlimited guard never interrupts")
}

/// [`agree_sets`] with an execution guard, probed once per outer tuple
/// (each probe covers one row's pairwise comparisons).
///
/// Returns `None` when interrupted: a partial agree-set family
/// *under-reports* violations, so any FD mined from it could be invalid —
/// the callers therefore discard it entirely rather than emit from it.
pub fn agree_sets_guarded(rel: &Relation, guard: &ExecGuard) -> Option<FxHashSet<AttrSet>> {
    let n = rel.n_rows();
    let attrs: Vec<_> = rel.schema().attrs().collect();
    let cols: Vec<&[ofd_core::ValueId]> = attrs.iter().map(|&a| rel.column(a)).collect();
    let mut out = FxHashSet::default();
    for i in 0..n {
        if guard.check().is_err() {
            return None;
        }
        for j in (i + 1)..n {
            let mut s = AttrSet::empty();
            for (k, &a) in attrs.iter().enumerate() {
                if cols[k][i] == cols[k][j] {
                    s.insert(a);
                }
            }
            out.insert(s);
        }
    }
    Some(out)
}

/// Difference sets `D(r)`: complements of the agree sets w.r.t. the full
/// schema (FastFDs' starting point).
pub fn difference_sets(rel: &Relation) -> FxHashSet<AttrSet> {
    let all = rel.schema().all();
    agree_sets(rel).into_iter().map(|s| all.minus(s)).collect()
}

/// [`difference_sets`] with an execution guard; `None` when interrupted
/// (see [`agree_sets_guarded`] for why a partial family is discarded).
pub fn difference_sets_guarded(
    rel: &Relation,
    guard: &ExecGuard,
) -> Option<FxHashSet<AttrSet>> {
    let all = rel.schema().all();
    agree_sets_guarded(rel, guard)
        .map(|ag| ag.into_iter().map(|s| all.minus(s)).collect())
}

/// The maximal sets of a family (no member is a proper subset of another
/// retained member).
pub fn maximal_sets(family: impl IntoIterator<Item = AttrSet>) -> Vec<AttrSet> {
    let mut sets: Vec<AttrSet> = family.into_iter().collect();
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut out: Vec<AttrSet> = Vec::new();
    for s in sets {
        if !out.iter().any(|m| s.is_subset(*m)) {
            out.push(s);
        }
    }
    out
}

/// The minimal sets of a family.
pub fn minimal_sets(family: impl IntoIterator<Item = AttrSet>) -> Vec<AttrSet> {
    let mut sets: Vec<AttrSet> = family.into_iter().collect();
    sets.sort_by_key(|s| s.len());
    let mut out: Vec<AttrSet> = Vec::new();
    for s in sets {
        if !out.iter().any(|m| m.is_subset(s)) {
            out.push(s);
        }
    }
    out
}

/// All *minimal hitting sets* (transversals) of `family` over the universe
/// `universe`: minimal sets intersecting every member. Level-wise expansion
/// with subset pruning — the DepMiner §4 procedure.
///
/// If `family` is empty, the empty set is the unique transversal. If any
/// member is empty, there is no transversal.
pub fn minimal_transversals(universe: AttrSet, family: &[AttrSet]) -> Vec<AttrSet> {
    if family.iter().any(|f| f.is_empty()) {
        return Vec::new();
    }
    if family.is_empty() {
        return vec![AttrSet::empty()];
    }
    // Incremental: transversals of the first k members, refined per member.
    let mut partial: Vec<AttrSet> = vec![AttrSet::empty()];
    for &member in family {
        let mut next: FxHashSet<AttrSet> = FxHashSet::default();
        for &t in &partial {
            if !t.is_disjoint(member) {
                next.insert(t);
            } else {
                for a in member.intersect(universe).iter() {
                    next.insert(t.with(a));
                }
            }
        }
        partial = minimal_sets(next);
    }
    partial.sort_by_key(|s| (s.len(), s.bits()));
    partial
}

/// Number of equivalence classes of Π_X *including singletons* — FUN's and
/// FDMine's cardinality measure.
pub fn cardinality(rel: &Relation, attrs: AttrSet) -> usize {
    let sp = StrippedPartition::of(rel, attrs);
    sp.class_count() + (rel.n_rows() - sp.tuple_count())
}

/// Keeps only minimal, non-trivial FDs and sorts canonically.
pub fn minimize_fds(fds: impl IntoIterator<Item = Fd>) -> Vec<Fd> {
    let all: Vec<Fd> = fds.into_iter().filter(|f| !f.is_trivial()).collect();
    let mut out: Vec<Fd> = Vec::new();
    for f in &all {
        let minimal = !all
            .iter()
            .any(|g| g.rhs == f.rhs && g.lhs.is_proper_subset(f.lhs));
        if minimal && !out.contains(f) {
            out.push(*f);
        }
    }
    sort_fds(&mut out);
    out
}

/// Canonical output ordering shared by every baseline.
pub fn sort_fds(fds: &mut [Fd]) {
    fds.sort_by_key(|f| (f.lhs.len(), f.lhs.bits(), f.rhs));
}

/// Whether the FD `X → A` holds exactly over `rel` (pairwise equality).
pub fn fd_holds(rel: &Relation, fd: &Fd) -> bool {
    let sp = StrippedPartition::of(rel, fd.lhs);
    let col = rel.column(fd.rhs);
    sp.classes().all(|class| {
        let first = col[class[0] as usize];
        class.iter().all(|&t| col[t as usize] == first)
    })
}

/// Brute-force reference: all minimal non-trivial FDs, by enumeration.
pub fn brute_force_fds(rel: &Relation) -> Vec<Fd> {
    let n = rel.schema().len();
    assert!(n <= 16, "brute force is for small schemas");
    let mut valid: Vec<Fd> = Vec::new();
    for bits in 0..(1u64 << n) {
        let lhs = AttrSet::from_bits(bits);
        for a in rel.schema().attrs() {
            if lhs.contains(a) {
                continue;
            }
            let fd = Fd::new(lhs, a);
            if fd_holds(rel, &fd) {
                valid.push(fd);
            }
        }
    }
    minimize_fds(valid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{table1, AttrId};

    fn a(i: usize) -> AttrId {
        AttrId::from_index(i)
    }

    fn s(items: &[usize]) -> AttrSet {
        AttrSet::from_attrs(items.iter().map(|&i| a(i)))
    }

    #[test]
    fn agree_sets_of_table1_contain_symp_diag_pairs() {
        let rel = table1();
        let ag = agree_sets(&rel);
        // t9 (US,USA,headache,MRI,hypertension,tiazac) vs
        // t10 (US,America,headache,MRI,hypertension,tiazac): agree on all
        // but CTRY.
        let schema = rel.schema();
        let expected = schema
            .set(["CC", "SYMP", "TEST", "DIAG", "MED"])
            .unwrap();
        assert!(ag.contains(&expected), "missing {expected}");
        // t1 vs t4 agree on nothing... t1 CC=US, t4 CC=IN; SYMP differ; all
        // six attributes differ, so the empty agree set must be present.
        assert!(ag.contains(&AttrSet::empty()));
    }

    #[test]
    fn difference_sets_complement_agree_sets() {
        let rel = table1();
        let all = rel.schema().all();
        let ag = agree_sets(&rel);
        let df = difference_sets(&rel);
        for d in &df {
            assert!(ag.contains(&all.minus(*d)));
        }
        assert_eq!(ag.len(), df.len());
    }

    #[test]
    fn maximal_and_minimal_sets() {
        let family = vec![s(&[0]), s(&[0, 1]), s(&[2]), s(&[0, 1, 2])];
        let max = maximal_sets(family.clone());
        assert_eq!(max, vec![s(&[0, 1, 2])]);
        let min = minimal_sets(family);
        let mut min_sorted = min.clone();
        min_sorted.sort_by_key(|x| x.bits());
        assert_eq!(min_sorted, vec![s(&[0]), s(&[2])]);
    }

    #[test]
    fn transversals_of_simple_family() {
        let u = s(&[0, 1, 2, 3]);
        // Family {{0,1},{1,2}} → minimal transversals {1}, {0,2}.
        let family = vec![s(&[0, 1]), s(&[1, 2])];
        let ts = minimal_transversals(u, &family);
        assert_eq!(ts, vec![s(&[1]), s(&[0, 2])]);
    }

    #[test]
    fn transversal_edge_cases() {
        let u = s(&[0, 1]);
        assert_eq!(minimal_transversals(u, &[]), vec![AttrSet::empty()]);
        assert!(minimal_transversals(u, &[AttrSet::empty()]).is_empty());
    }

    #[test]
    fn cardinality_counts_distinct_projections() {
        let rel = table1();
        let schema = rel.schema();
        assert_eq!(cardinality(&rel, schema.set(["CC"]).unwrap()), 3);
        assert_eq!(cardinality(&rel, schema.set(["SYMP"]).unwrap()), 4);
        assert_eq!(cardinality(&rel, AttrSet::empty()), 1);
        assert_eq!(cardinality(&rel, schema.all()), 11, "all rows distinct");
    }

    #[test]
    fn minimize_removes_supersets_and_trivials() {
        let fds = vec![
            Fd::new(s(&[0]), a(2)),
            Fd::new(s(&[0, 1]), a(2)),
            Fd::new(s(&[0, 2]), a(2)),
        ];
        let min = minimize_fds(fds);
        assert_eq!(min, vec![Fd::new(s(&[0]), a(2))]);
    }

    #[test]
    fn brute_force_fds_on_table1_sanity() {
        let rel = table1();
        let fds = brute_force_fds(&rel);
        let schema = rel.schema();
        // SYMP -> DIAG holds in Table 1.
        assert!(fds.contains(&Fd::new(
            schema.set(["SYMP"]).unwrap(),
            schema.attr("DIAG").unwrap()
        )));
        // CC -> CTRY does not (USA vs America).
        assert!(!fds.iter().any(|f| f.lhs == schema.set(["CC"]).unwrap()
            && f.rhs == schema.attr("CTRY").unwrap()));
        // Everything reported holds and is minimal.
        for f in &fds {
            assert!(fd_holds(&rel, f));
        }
    }
}
