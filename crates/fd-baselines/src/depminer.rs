//! Dep-Miner (Lopes, Petit & Lakhal, 2000): agree sets → per-attribute
//! maximal sets → left-hand sides as minimal transversals of their
//! complements.
//!
//! Like FastFDs, the pairwise agree-set computation is quadratic in the
//! number of tuples (the paper's Exp-1 terminates it beyond 100K records).

use ofd_core::{AttrSet, ExecGuard, Fd, Obs, Partial, Relation};

use crate::common::{
    agree_sets_guarded, maximal_sets, minimal_transversals, record_interrupt, sort_fds,
};

/// Runs Dep-Miner, returning the minimal non-trivial FDs of `rel`.
pub fn discover(rel: &Relation) -> Vec<Fd> {
    discover_guarded(rel, &ExecGuard::unlimited()).value
}

/// [`discover`] with an execution guard, probed throughout the quadratic
/// agree-set scan and once per consequent attribute.
///
/// An interrupt during the agree-set scan yields the empty set (a partial
/// agree-set family under-reports violations, so nothing mined from it is
/// trustworthy); an interrupt afterwards keeps the FDs of every fully
/// processed consequent, which are exactly what the full run emits for
/// those consequents.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_with(rel, guard, &Obs::disabled())
}

/// [`discover_guarded`] with an observability handle: records
/// `baseline.depminer.node_visits` (consequents processed plus antecedents
/// mined from their transversals; Dep-Miner builds no partitions), plus
/// labelled guard interrupts.
pub fn discover_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let mut node_visits: u64 = 0;
    let Some(ag) = agree_sets_guarded(rel, guard) else {
        record_interrupt(obs, guard);
        return Partial::from_outcome(Vec::new(), guard.interrupt());
    };
    let ag: Vec<AttrSet> = ag.into_iter().collect();
    let mut fds = Vec::new();

    for a in schema.attrs() {
        if guard.check().is_err() {
            break;
        }
        node_visits += 1;
        let universe = schema.all().without(a);
        // max(dep(r), A): maximal agree sets not containing A.
        let max_a = maximal_sets(ag.iter().copied().filter(|s| !s.contains(a)));
        // X → A holds iff X ⊄ S for every S ∈ max(A), i.e. X hits every
        // complement (R \ {A}) \ S. Minimal such X are the minimal
        // transversals.
        let family: Vec<AttrSet> = max_a.iter().map(|s| universe.minus(*s)).collect();
        for lhs in minimal_transversals(universe, &family) {
            node_visits += 1;
            fds.push(Fd::new(lhs, a));
        }
    }

    sort_fds(&mut fds);
    obs.add("baseline.depminer.node_visits", node_visits);
    record_interrupt(obs, guard);
    Partial::from_outcome(fds, guard.interrupt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::brute_force_fds;
    use ofd_core::table1;

    #[test]
    fn matches_brute_force_on_table1() {
        let rel = table1();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn handles_keys_constants_and_undetermined() {
        let rel = Relation::from_rows(
            ["K", "C", "U"],
            [
                &["1", "c", "x"] as &[&str],
                &["2", "c", "x"],
                &["3", "c", "y"],
            ],
        )
        .unwrap();
        let fds = discover(&rel);
        assert_eq!(fds, brute_force_fds(&rel));
        let schema = rel.schema();
        // C is constant.
        assert!(fds.contains(&Fd::new(AttrSet::empty(), schema.attr("C").unwrap())));
        // K is a key, so K -> U.
        assert!(fds.contains(&Fd::new(
            schema.set(["K"]).unwrap(),
            schema.attr("U").unwrap()
        )));
    }

    #[test]
    fn empty_agree_set_blocks_empty_lhs() {
        // Rows disagree everywhere: only key-like FDs possible; in a
        // two-row fully-distinct relation each single attribute is a key.
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["1", "x"] as &[&str], &["2", "y"]],
        )
        .unwrap();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }
}
