#![warn(missing_docs)]
//! # fd-baselines
//!
//! Native Rust implementations of the seven classic FD-discovery algorithms
//! the paper compares FastOFD against in Exp-1/Exp-2 (originally via their
//! Metanome implementations):
//!
//! | module | algorithm | strategy | scaling in N |
//! |--------|-----------|----------|--------------|
//! | [`tane`] | TANE (Huhtala et al. 1999) | lattice + partitions + RHS⁺ | linear |
//! | [`fun`] | FUN (Novelli & Cicchetti 2001) | free sets + cardinalities | linear |
//! | [`fdmine`] | FDMine (Yao & Hamilton 2008) | closures + equivalences | linear, non-minimal output |
//! | [`dfd`] | DFD (Abedjan et al. 2014) | random-walk lattice | linear |
//! | [`depminer`] | Dep-Miner (Lopes et al. 2000) | agree sets + transversals | quadratic |
//! | [`fastfds`] | FastFDs (Wyss et al. 2001) | difference sets + DFS covers | quadratic |
//! | [`fdep`] | FDep (Flach & Savnik 1999) | negative/positive covers | quadratic |
//!
//! An eighth, beyond-the-paper baseline lives in [`hyfd`]: HyFD
//! (Papenbrock & Naumann 2016), the modern hybrid sampling + induction +
//! validation algorithm.
//!
//! Every `discover` function returns the same canonical result — the
//! minimal, non-trivial FDs of the relation, sorted by (|X|, X, A) — except
//! [`fdmine::discover_raw`], which exposes FDMine's historically non-minimal
//! cover. Property tests below run all seven against a brute-force oracle on
//! random relations.

pub mod common;
pub mod depminer;
pub mod dfd;
pub mod fastfds;
pub mod fdep;
pub mod fdmine;
pub mod fun;
pub mod hyfd;
pub mod tane;

use ofd_core::{ExecGuard, Fd, Obs, Partial, Relation};

/// The seven baseline algorithms, as an enumerable set for the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// TANE — lattice, partitions, RHS⁺ pruning.
    Tane,
    /// FUN — free sets and cardinality inference.
    Fun,
    /// FDMine — closures with equivalence pruning.
    FdMine,
    /// DFD — random-walk lattice traversal.
    Dfd,
    /// Dep-Miner — agree sets and minimal transversals.
    DepMiner,
    /// FastFDs — difference sets and DFS covers.
    FastFds,
    /// FDep — negative/positive cover induction.
    FDep,
}

impl Algorithm {
    /// All baselines in the paper's listing order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Tane,
        Algorithm::Fun,
        Algorithm::FdMine,
        Algorithm::Dfd,
        Algorithm::DepMiner,
        Algorithm::FastFds,
        Algorithm::FDep,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Tane => "TANE",
            Algorithm::Fun => "FUN",
            Algorithm::FdMine => "FDMine",
            Algorithm::Dfd => "DFD",
            Algorithm::DepMiner => "DepMiner",
            Algorithm::FastFds => "FastFDs",
            Algorithm::FDep => "FDep",
        }
    }

    /// Whether the algorithm's tuple-pairwise core makes it quadratic in N
    /// (the ones the paper terminates on large inputs).
    pub fn is_quadratic(self) -> bool {
        matches!(
            self,
            Algorithm::DepMiner | Algorithm::FastFds | Algorithm::FDep
        )
    }

    /// Runs the algorithm on `rel`.
    pub fn discover(self, rel: &Relation) -> Vec<Fd> {
        self.discover_guarded(rel, &ExecGuard::unlimited()).value
    }

    /// Runs the algorithm under an execution guard (deadline / budget /
    /// cancellation), probed per node visit.
    ///
    /// On interrupt the result is tagged incomplete and contains a *sound
    /// subset* of the full output: every FD in it is valid over `rel`,
    /// minimal, and appears in the uninterrupted run's output. Each module
    /// documents its own partial-result argument.
    pub fn discover_guarded(self, rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
        self.discover_with(rel, guard, &Obs::disabled())
    }

    /// Lower-case counter slug: `baseline.<slug>.node_visits` etc.
    pub fn slug(self) -> &'static str {
        match self {
            Algorithm::Tane => "tane",
            Algorithm::Fun => "fun",
            Algorithm::FdMine => "fdmine",
            Algorithm::Dfd => "dfd",
            Algorithm::DepMiner => "depminer",
            Algorithm::FastFds => "fastfds",
            Algorithm::FDep => "fdep",
        }
    }

    /// [`Algorithm::discover_guarded`] with an observability handle. Every
    /// baseline records `baseline.<slug>.node_visits`; the partition-based
    /// ones (TANE, FUN, FDMine, DFD) also record
    /// `baseline.<slug>.partition_products`, and all label guard interrupts
    /// as `guard.interrupt.<reason>` counters. Counter totals are
    /// deterministic (all baselines are single-threaded).
    pub fn discover_with(self, rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
        match self {
            Algorithm::Tane => tane::discover_with(rel, guard, obs),
            Algorithm::Fun => fun::discover_with(rel, guard, obs),
            Algorithm::FdMine => fdmine::discover_with(rel, guard, obs),
            Algorithm::Dfd => dfd::discover_with(rel, guard, obs),
            Algorithm::DepMiner => depminer::discover_with(rel, guard, obs),
            Algorithm::FastFds => fastfds::discover_with(rel, guard, obs),
            Algorithm::FDep => fdep::discover_with(rel, guard, obs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::brute_force_fds;
    use ofd_core::{table1, table1_updated, Schema};
    use proptest::prelude::*;

    /// FDMine's equivalence pruning makes its output canonical only
    /// *modulo attribute equivalences* (§Exp-1: "FDMine returns a much
    /// larger number of non-minimal dependencies"); it is validated by
    /// cover-equivalence instead of set equality.
    fn exact_algorithms() -> impl Iterator<Item = Algorithm> {
        Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::FdMine)
    }

    fn assert_fdmine_cover(rel: &Relation, oracle: &[ofd_core::Fd]) {
        use ofd_logic::{equivalent, Dependency};
        let raw = fdmine::discover_raw(rel);
        let raw_deps: Vec<Dependency> = raw.iter().map(|&f| f.into()).collect();
        let oracle_deps: Vec<Dependency> = oracle.iter().map(|&f| f.into()).collect();
        assert!(
            equivalent(&raw_deps, &oracle_deps),
            "FDMine output must be a cover of the FD set"
        );
    }

    #[test]
    fn all_algorithms_agree_on_the_paper_tables() {
        for rel in [table1(), table1_updated()] {
            let oracle = brute_force_fds(&rel);
            for alg in exact_algorithms() {
                assert_eq!(alg.discover(&rel), oracle, "{} diverged", alg.name());
            }
            assert_fdmine_cover(&rel, &oracle);
        }
    }

    #[test]
    fn unlimited_guard_matches_unguarded_runs() {
        let rel = table1();
        for alg in Algorithm::ALL {
            let p = alg.discover_guarded(&rel, &ExecGuard::unlimited());
            assert!(p.complete && p.reason.is_none(), "{}", alg.name());
            assert_eq!(p.value, alg.discover(&rel), "{}", alg.name());
        }
        let p = hyfd::discover_guarded(&rel, &ExecGuard::unlimited());
        assert!(p.complete);
        assert_eq!(p.value, hyfd::discover(&rel));
    }

    #[test]
    fn immediate_interrupt_is_reported_and_sound() {
        let rel = table1();
        for alg in Algorithm::ALL {
            let guard = ExecGuard::unlimited();
            guard.fail_after(1);
            let p = alg.discover_guarded(&rel, &guard);
            assert!(!p.complete, "{} ignored the fail point", alg.name());
            assert!(p.reason.is_some(), "{}", alg.name());
            let full = alg.discover(&rel);
            for fd in &p.value {
                assert!(common::fd_holds(&rel, fd), "{} emitted an invalid FD", alg.name());
                assert!(full.contains(fd), "{} emitted an FD outside the full output", alg.name());
            }
        }
    }

    #[test]
    fn names_and_classification() {
        assert_eq!(Algorithm::Tane.name(), "TANE");
        assert!(!Algorithm::Tane.is_quadratic());
        assert!(Algorithm::FDep.is_quadratic());
        assert_eq!(Algorithm::ALL.len(), 7);
    }

    #[test]
    fn instrumented_runs_match_and_count_node_visits() {
        let rel = table1();
        for alg in Algorithm::ALL {
            let obs = Obs::enabled();
            let p = alg.discover_with(&rel, &ExecGuard::unlimited(), &obs);
            assert_eq!(p.value, alg.discover(&rel), "{}", alg.name());
            let snap = obs.snapshot();
            let visits = format!("baseline.{}.node_visits", alg.slug());
            assert!(
                snap.counter(&visits).unwrap_or(0) > 0,
                "{} recorded no node visits",
                alg.name()
            );
            assert_eq!(snap.counter_sum("guard.interrupt."), 0, "{}", alg.name());
        }
        let obs = Obs::enabled();
        let p = hyfd::discover_with(&rel, &ExecGuard::unlimited(), &obs);
        assert_eq!(p.value, hyfd::discover(&rel));
        let snap = obs.snapshot();
        assert!(snap.counter("baseline.hyfd.node_visits").unwrap_or(0) > 0);
        assert!(snap.counter("baseline.hyfd.partition_products").unwrap_or(0) > 0);
    }

    #[test]
    fn interrupted_baseline_labels_the_interrupt() {
        let rel = table1();
        let guard = ExecGuard::unlimited();
        guard.fail_after(2);
        let obs = Obs::enabled();
        let p = Algorithm::Tane.discover_with(&rel, &guard, &obs);
        assert!(!p.complete);
        assert_eq!(
            obs.snapshot().counter("guard.interrupt.fail_point"),
            Some(1)
        );
    }

    #[test]
    fn tane_approx_agrees_with_fastofd_style_thresholds() {
        // TANE's approximate mode at κ = 1 equals its exact mode on random
        // instances too — checked here on the paper tables (the property
        // test below covers random relations via the oracle).
        for rel in [table1(), table1_updated()] {
            assert_eq!(tane::discover_approx(&rel, 1.0), tane::discover(&rel));
        }
    }

    fn arb_relation() -> impl Strategy<Value = Relation> {
        (2usize..5, prop::collection::vec(prop::collection::vec(0u8..3, 4), 0..12)).prop_map(
            |(n_attrs, rows)| {
                let names: Vec<String> = (0..n_attrs).map(|i| format!("A{i}")).collect();
                let mut b = Relation::builder(
                    Schema::new(names.iter().map(String::as_str)).unwrap(),
                );
                for row in &rows {
                    let cells: Vec<String> =
                        row[..n_attrs].iter().map(|v| format!("v{v}")).collect();
                    b.push_row(cells.iter().map(String::as_str)).unwrap();
                }
                b.finish()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The seven algorithms and the brute-force oracle agree on random
        /// relations — the strongest cross-validation in the crate.
        #[test]
        fn all_algorithms_agree(rel in arb_relation()) {
            let oracle = brute_force_fds(&rel);
            for alg in exact_algorithms() {
                prop_assert_eq!(alg.discover(&rel), oracle.clone(), "{}", alg.name());
            }
            prop_assert_eq!(hyfd::discover(&rel), oracle.clone(), "HyFD");
            assert_fdmine_cover(&rel, &oracle);
        }

        /// Interrupting any algorithm at an arbitrary checkpoint yields a
        /// valid subset of its uninterrupted output — the partial-result
        /// soundness contract of `discover_guarded`.
        #[test]
        fn interrupted_runs_emit_sound_subsets(
            (rel, n) in (arb_relation(), 1u64..60)
        ) {
            type Run<'a> = (&'a str, Vec<Fd>, ofd_core::Partial<Vec<Fd>>);
            let mut runs: Vec<Run> = Vec::new();
            for alg in Algorithm::ALL {
                let guard = ExecGuard::unlimited();
                guard.fail_after(n);
                runs.push((alg.name(), alg.discover(&rel), alg.discover_guarded(&rel, &guard)));
            }
            let hyfd_guard = ExecGuard::unlimited();
            hyfd_guard.fail_after(n);
            runs.push(("HyFD", hyfd::discover(&rel), hyfd::discover_guarded(&rel, &hyfd_guard)));
            for (name, full, partial) in &runs {
                for fd in &partial.value {
                    prop_assert!(common::fd_holds(&rel, fd), "{} emitted an invalid FD", name);
                    prop_assert!(full.contains(fd), "{} emitted an FD outside the full output", name);
                }
                if partial.complete {
                    prop_assert_eq!(&partial.value, full, "{} claims completeness", name);
                }
            }
        }
    }
}
