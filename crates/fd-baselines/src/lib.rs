#![warn(missing_docs)]
//! # fd-baselines
//!
//! Native Rust implementations of the seven classic FD-discovery algorithms
//! the paper compares FastOFD against in Exp-1/Exp-2 (originally via their
//! Metanome implementations):
//!
//! | module | algorithm | strategy | scaling in N |
//! |--------|-----------|----------|--------------|
//! | [`tane`] | TANE (Huhtala et al. 1999) | lattice + partitions + RHS⁺ | linear |
//! | [`fun`] | FUN (Novelli & Cicchetti 2001) | free sets + cardinalities | linear |
//! | [`fdmine`] | FDMine (Yao & Hamilton 2008) | closures + equivalences | linear, non-minimal output |
//! | [`dfd`] | DFD (Abedjan et al. 2014) | random-walk lattice | linear |
//! | [`depminer`] | Dep-Miner (Lopes et al. 2000) | agree sets + transversals | quadratic |
//! | [`fastfds`] | FastFDs (Wyss et al. 2001) | difference sets + DFS covers | quadratic |
//! | [`fdep`] | FDep (Flach & Savnik 1999) | negative/positive covers | quadratic |
//!
//! An eighth, beyond-the-paper baseline lives in [`hyfd`]: HyFD
//! (Papenbrock & Naumann 2016), the modern hybrid sampling + induction +
//! validation algorithm.
//!
//! Every `discover` function returns the same canonical result — the
//! minimal, non-trivial FDs of the relation, sorted by (|X|, X, A) — except
//! [`fdmine::discover_raw`], which exposes FDMine's historically non-minimal
//! cover. Property tests below run all seven against a brute-force oracle on
//! random relations.

pub mod common;
pub mod depminer;
pub mod dfd;
pub mod fastfds;
pub mod fdep;
pub mod fdmine;
pub mod fun;
pub mod hyfd;
pub mod tane;

use ofd_core::{Fd, Relation};

/// The seven baseline algorithms, as an enumerable set for the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// TANE — lattice, partitions, RHS⁺ pruning.
    Tane,
    /// FUN — free sets and cardinality inference.
    Fun,
    /// FDMine — closures with equivalence pruning.
    FdMine,
    /// DFD — random-walk lattice traversal.
    Dfd,
    /// Dep-Miner — agree sets and minimal transversals.
    DepMiner,
    /// FastFDs — difference sets and DFS covers.
    FastFds,
    /// FDep — negative/positive cover induction.
    FDep,
}

impl Algorithm {
    /// All baselines in the paper's listing order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Tane,
        Algorithm::Fun,
        Algorithm::FdMine,
        Algorithm::Dfd,
        Algorithm::DepMiner,
        Algorithm::FastFds,
        Algorithm::FDep,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Tane => "TANE",
            Algorithm::Fun => "FUN",
            Algorithm::FdMine => "FDMine",
            Algorithm::Dfd => "DFD",
            Algorithm::DepMiner => "DepMiner",
            Algorithm::FastFds => "FastFDs",
            Algorithm::FDep => "FDep",
        }
    }

    /// Whether the algorithm's tuple-pairwise core makes it quadratic in N
    /// (the ones the paper terminates on large inputs).
    pub fn is_quadratic(self) -> bool {
        matches!(
            self,
            Algorithm::DepMiner | Algorithm::FastFds | Algorithm::FDep
        )
    }

    /// Runs the algorithm on `rel`.
    pub fn discover(self, rel: &Relation) -> Vec<Fd> {
        match self {
            Algorithm::Tane => tane::discover(rel),
            Algorithm::Fun => fun::discover(rel),
            Algorithm::FdMine => fdmine::discover(rel),
            Algorithm::Dfd => dfd::discover(rel),
            Algorithm::DepMiner => depminer::discover(rel),
            Algorithm::FastFds => fastfds::discover(rel),
            Algorithm::FDep => fdep::discover(rel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::brute_force_fds;
    use ofd_core::{table1, table1_updated, Schema};
    use proptest::prelude::*;

    /// FDMine's equivalence pruning makes its output canonical only
    /// *modulo attribute equivalences* (§Exp-1: "FDMine returns a much
    /// larger number of non-minimal dependencies"); it is validated by
    /// cover-equivalence instead of set equality.
    fn exact_algorithms() -> impl Iterator<Item = Algorithm> {
        Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::FdMine)
    }

    fn assert_fdmine_cover(rel: &Relation, oracle: &[ofd_core::Fd]) {
        use ofd_logic::{equivalent, Dependency};
        let raw = fdmine::discover_raw(rel);
        let raw_deps: Vec<Dependency> = raw.iter().map(|&f| f.into()).collect();
        let oracle_deps: Vec<Dependency> = oracle.iter().map(|&f| f.into()).collect();
        assert!(
            equivalent(&raw_deps, &oracle_deps),
            "FDMine output must be a cover of the FD set"
        );
    }

    #[test]
    fn all_algorithms_agree_on_the_paper_tables() {
        for rel in [table1(), table1_updated()] {
            let oracle = brute_force_fds(&rel);
            for alg in exact_algorithms() {
                assert_eq!(alg.discover(&rel), oracle, "{} diverged", alg.name());
            }
            assert_fdmine_cover(&rel, &oracle);
        }
    }

    #[test]
    fn names_and_classification() {
        assert_eq!(Algorithm::Tane.name(), "TANE");
        assert!(!Algorithm::Tane.is_quadratic());
        assert!(Algorithm::FDep.is_quadratic());
        assert_eq!(Algorithm::ALL.len(), 7);
    }

    fn arb_relation() -> impl Strategy<Value = Relation> {
        (2usize..5, prop::collection::vec(prop::collection::vec(0u8..3, 4), 0..12)).prop_map(
            |(n_attrs, rows)| {
                let names: Vec<String> = (0..n_attrs).map(|i| format!("A{i}")).collect();
                let mut b = Relation::builder(
                    Schema::new(names.iter().map(String::as_str)).unwrap(),
                );
                for row in &rows {
                    let cells: Vec<String> =
                        row[..n_attrs].iter().map(|v| format!("v{v}")).collect();
                    b.push_row(cells.iter().map(String::as_str)).unwrap();
                }
                b.finish()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The seven algorithms and the brute-force oracle agree on random
        /// relations — the strongest cross-validation in the crate.
        #[test]
        fn all_algorithms_agree(rel in arb_relation()) {
            let oracle = brute_force_fds(&rel);
            for alg in exact_algorithms() {
                prop_assert_eq!(alg.discover(&rel), oracle.clone(), "{}", alg.name());
            }
            prop_assert_eq!(hyfd::discover(&rel), oracle.clone(), "HyFD");
            assert_fdmine_cover(&rel, &oracle);
        }
    }
}
