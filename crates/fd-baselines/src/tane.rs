//! TANE (Huhtala et al., 1999): level-wise lattice FD discovery with
//! partition refinement, RHS⁺ candidate pruning and key pruning.
//!
//! This is the strongest of the lattice baselines and the closest relative
//! of FastOFD — the paper reports FastOFD at ~1.8× TANE's runtime due to
//! ontology verification (Exp-1).

use ofd_core::FxHashMap;

use ofd_core::{
    meets_support, AttrId, AttrSet, ExecGuard, Fd, Obs, Partial, ProductScratch, Relation,
    StrippedPartition, ValueId,
};

use crate::common::{record_interrupt, sort_fds};

struct Node {
    attrs: AttrSet,
    c_plus: AttrSet,
    partition: StrippedPartition,
}

/// Error measure `||Π*|| − |Π*|`; two partitions induce the same refinement
/// on the consequent iff the antecedent's and the joined error agree.
fn err(p: &StrippedPartition) -> usize {
    p.tuple_count() - p.class_count()
}

/// Runs TANE, returning the minimal non-trivial FDs of `rel`.
pub fn discover(rel: &Relation) -> Vec<Fd> {
    discover_guarded(rel, &ExecGuard::unlimited()).value
}

/// [`discover`] with an execution guard, probed once per lattice node.
///
/// On interrupt the result is a *sound prefix* of the full output: every
/// emitted FD was individually verified by partition-error equality (or, for
/// key emissions, certified by the virtual-C⁺ minimality test against fully
/// completed lower levels), and the emission sequence is deterministic, so
/// the partial set is always a subset of what the uninterrupted run returns.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_with(rel, guard, &Obs::disabled())
}

/// [`discover_guarded`] with an observability handle: records
/// `baseline.tane.node_visits` (lattice nodes whose dependencies were
/// computed) and `baseline.tane.partition_products` (stripped-partition
/// products during level generation), plus a labelled
/// `guard.interrupt.<reason>` counter on interrupt.
pub fn discover_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let n = schema.len();
    let all = schema.all();
    let mut fds: Vec<Fd> = Vec::new();
    let mut scratch = ProductScratch::default();
    let mut node_visits: u64 = 0;
    let mut products: u64 = 0;

    let mut prev: Vec<Node> = vec![Node {
        attrs: AttrSet::empty(),
        c_plus: all,
        partition: StrippedPartition::of(rel, AttrSet::empty()),
    }];
    let mut prev_index: FxHashMap<u64, usize> =
        std::iter::once((AttrSet::empty().bits(), 0)).collect();
    // Final C⁺ value of every node ever processed (including pruned ones),
    // so the key-pruning step can resolve C⁺ of nodes absent from the
    // current level by intersecting ancestors (TANE §4.4).
    let mut history: FxHashMap<u64, AttrSet> =
        std::iter::once((AttrSet::empty().bits(), all)).collect();

    'levels: for level in 1..=n {
        if guard.check().is_err() {
            break;
        }
        // Generate level nodes (all parents must exist — key/e  mpty pruning
        // may have removed them, in which case the child is dead too).
        let mut current: Vec<Node> = if level == 1 {
            schema
                .attrs()
                .map(|a| Node {
                    attrs: AttrSet::single(a),
                    c_plus: all,
                    partition: StrippedPartition::of_attr(rel, a),
                })
                .collect()
        } else {
            generate_next(&prev, &prev_index, &mut scratch, guard, &mut products)
        };
        if current.is_empty() {
            break;
        }

        // C⁺(X) = ⋂_{A ∈ X} C⁺(X \ A).
        for node in &mut current {
            let mut cp = all;
            for (_, parent) in node.attrs.parents() {
                match prev_index.get(&parent.bits()) {
                    Some(&pi) => cp = cp.intersect(prev[pi].c_plus),
                    None => cp = AttrSet::empty(),
                }
            }
            node.c_plus = cp;
        }

        // compute_dependencies.
        for node in &mut current {
            if guard.check().is_err() {
                break 'levels;
            }
            node_visits += 1;
            let cands = node.attrs.intersect(node.c_plus);
            for a in cands.iter() {
                let lhs = node.attrs.without(a);
                let Some(&pi) = prev_index.get(&lhs.bits()) else {
                    continue;
                };
                if err(&prev[pi].partition) == err(&node.partition) {
                    fds.push(Fd::new(lhs, a));
                    node.c_plus.remove(a);
                    // TANE's extra pruning rule (sound for FDs, not OFDs):
                    // remove every B ∈ R \ X from C⁺(X).
                    node.c_plus = node.c_plus.minus(all.minus(node.attrs));
                }
            }
        }

        // Record final C⁺ values before pruning.
        for node in &current {
            history.insert(node.attrs.bits(), node.c_plus);
        }

        // prune: drop empty-C⁺ nodes; key nodes emit their remaining
        // dependencies and are dropped.
        let mut virtual_cache: FxHashMap<u64, AttrSet> = FxHashMap::default();
        let key_emissions: Vec<Fd> = current
            .iter()
            .filter(|node| node.partition.is_superkey() && !node.c_plus.is_empty())
            .flat_map(|node| {
                let x = node.attrs;
                node.c_plus
                    .minus(x)
                    .iter()
                    .filter(|&a| {
                        // A ∈ ⋂_{B ∈ X} C⁺(X ∪ {A} \ {B}); siblings missing
                        // from the lattice get their C⁺ from ancestors.
                        x.iter().all(|b| {
                            let sibling = x.with(a).without(b);
                            virtual_cplus(sibling, all, &history, &mut virtual_cache)
                                .contains(a)
                        })
                    })
                    .map(move |a| Fd::new(x, a))
                    .collect::<Vec<_>>()
            })
            .collect();
        fds.extend(key_emissions);
        current.retain(|node| !node.c_plus.is_empty() && !node.partition.is_superkey());

        prev_index = current
            .iter()
            .enumerate()
            .map(|(i, node)| (node.attrs.bits(), i))
            .collect();
        prev = current;
        if prev.is_empty() {
            break;
        }
    }

    sort_fds(&mut fds);
    fds.dedup();
    obs.add("baseline.tane.node_visits", node_visits);
    obs.add("baseline.tane.partition_products", products);
    record_interrupt(obs, guard);
    Partial::from_outcome(fds, guard.interrupt())
}

/// Runs TANE's approximate extension (TANE §4.4): discovers the minimal FDs
/// whose g₃-style support meets `kappa`, using the same exact integer
/// threshold semantics as FastOFD ([`ofd_core::support_threshold`]).
///
/// `X → A` is κ-approximate when removing at most `n − ⌈κ·n⌉` tuples makes
/// it exact; the violation count of a candidate is the number of tuples
/// outside the majority consequent value within each antecedent class.
/// Validity is monotone under antecedent growth, so the basic C⁺ candidate
/// rule (remove `A` from `C⁺(X)` once `X \ A → A` is valid) yields exactly
/// the minimal κ-approximate FDs. TANE's *extra* RHS⁺ rule and key pruning
/// are sound only for exact FDs and are not applied here.
///
/// At `kappa = 1.0` the output equals [`discover`].
pub fn discover_approx(rel: &Relation, kappa: f64) -> Vec<Fd> {
    discover_approx_guarded(rel, kappa, &ExecGuard::unlimited()).value
}

/// [`discover_approx`] with an execution guard, probed once per lattice
/// node. The same sound-prefix argument as [`discover_guarded`] applies:
/// every emission is individually verified against the data.
pub fn discover_approx_guarded(
    rel: &Relation,
    kappa: f64,
    guard: &ExecGuard,
) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let n = schema.len();
    let n_rows = rel.n_rows();
    let all = schema.all();
    let mut fds: Vec<Fd> = Vec::new();
    let mut scratch = ProductScratch::default();
    let mut products: u64 = 0;

    let mut prev: Vec<Node> = vec![Node {
        attrs: AttrSet::empty(),
        c_plus: all,
        partition: StrippedPartition::of(rel, AttrSet::empty()),
    }];
    let mut prev_index: FxHashMap<u64, usize> =
        std::iter::once((AttrSet::empty().bits(), 0)).collect();

    'levels: for level in 1..=n {
        if guard.check().is_err() {
            break;
        }
        let mut current: Vec<Node> = if level == 1 {
            schema
                .attrs()
                .map(|a| Node {
                    attrs: AttrSet::single(a),
                    c_plus: all,
                    partition: StrippedPartition::of_attr(rel, a),
                })
                .collect()
        } else {
            generate_next(&prev, &prev_index, &mut scratch, guard, &mut products)
        };
        if current.is_empty() {
            break;
        }

        // C⁺(X) = ⋂_{A ∈ X} C⁺(X \ A), exactly as in the exact variant.
        for node in &mut current {
            let mut cp = all;
            for (_, parent) in node.attrs.parents() {
                match prev_index.get(&parent.bits()) {
                    Some(&pi) => cp = cp.intersect(prev[pi].c_plus),
                    None => cp = AttrSet::empty(),
                }
            }
            node.c_plus = cp;
        }

        for node in &mut current {
            if guard.check().is_err() {
                break 'levels;
            }
            let cands = node.attrs.intersect(node.c_plus);
            for a in cands.iter() {
                let lhs = node.attrs.without(a);
                let Some(&pi) = prev_index.get(&lhs.bits()) else {
                    continue;
                };
                let violations = g3_violations(&prev[pi].partition, rel.column(a));
                if meets_support(violations, n_rows, kappa) {
                    fds.push(Fd::new(lhs, a));
                    node.c_plus.remove(a);
                }
            }
        }

        // Only empty-C⁺ pruning: superkey nodes must keep expanding because
        // their supersets can still carry new minimal approximate FDs'
        // parent partitions.
        current.retain(|node| !node.c_plus.is_empty());

        prev_index = current
            .iter()
            .enumerate()
            .map(|(i, node)| (node.attrs.bits(), i))
            .collect();
        prev = current;
        if prev.is_empty() {
            break;
        }
    }

    sort_fds(&mut fds);
    fds.dedup();
    Partial::from_outcome(fds, guard.interrupt())
}

/// g₃-style violation count of `X → A`: per class of the antecedent's
/// stripped partition, the tuples outside the majority consequent value.
/// Stripped-away singleton classes never violate.
fn g3_violations(sp: &StrippedPartition, col: &[ValueId]) -> usize {
    let mut freq: FxHashMap<ValueId, usize> = FxHashMap::default();
    let mut total = 0;
    for class in sp.classes() {
        freq.clear();
        let mut majority = 0;
        for &t in class.iter() {
            let c = freq.entry(col[t as usize]).or_insert(0usize);
            *c += 1;
            majority = majority.max(*c);
        }
        total += class.len() - majority;
    }
    total
}

/// Once the guard trips (it is sticky) the partially generated level is
/// returned; the caller's next probe fails before any of its nodes are used
/// for emission, so a truncated level never produces output.
fn generate_next(
    prev: &[Node],
    prev_index: &FxHashMap<u64, usize>,
    scratch: &mut ProductScratch,
    guard: &ExecGuard,
    products: &mut u64,
) -> Vec<Node> {
    let mut order: Vec<usize> = (0..prev.len()).collect();
    order.sort_by_key(|&i| {
        let attrs: Vec<u16> = prev[i].attrs.iter().map(|a| a.index() as u16).collect();
        attrs
    });
    let mut out = Vec::new();
    let mut block_start = 0;
    while block_start < order.len() {
        let head = prev[order[block_start]].attrs;
        let head_prefix = head.without(last_attr(head));
        let mut block_end = block_start + 1;
        while block_end < order.len() {
            let cur = prev[order[block_end]].attrs;
            if cur.without(last_attr(cur)) != head_prefix {
                break;
            }
            block_end += 1;
        }
        for i in block_start..block_end {
            for j in (i + 1)..block_end {
                if guard.check().is_err() {
                    return out;
                }
                let a = &prev[order[i]];
                let b = &prev[order[j]];
                let attrs = a.attrs.union(b.attrs);
                if !attrs
                    .parents()
                    .all(|(_, p)| prev_index.contains_key(&p.bits()))
                {
                    continue;
                }
                *products += 1;
                out.push(Node {
                    attrs,
                    c_plus: AttrSet::empty(),
                    partition: a.partition.product_with_scratch(&b.partition, scratch),
                });
            }
        }
        block_start = block_end;
    }
    out
}

fn last_attr(set: AttrSet) -> AttrId {
    set.iter().last().expect("non-empty node")
}

/// C⁺ of a (possibly never-materialized) node: its recorded value when
/// available, otherwise the intersection of its parents' virtual C⁺ values
/// (bottoming out at the level-0 node, which is always in `history`).
fn virtual_cplus(
    attrs: AttrSet,
    all: AttrSet,
    history: &FxHashMap<u64, AttrSet>,
    cache: &mut FxHashMap<u64, AttrSet>,
) -> AttrSet {
    if let Some(&v) = history.get(&attrs.bits()) {
        return v;
    }
    if let Some(&v) = cache.get(&attrs.bits()) {
        return v;
    }
    let mut cp = all;
    for (_, parent) in attrs.parents() {
        cp = cp.intersect(virtual_cplus(parent, all, history, cache));
        if cp.is_empty() {
            break;
        }
    }
    cache.insert(attrs.bits(), cp);
    cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::brute_force_fds;
    use ofd_core::table1;

    #[test]
    fn matches_brute_force_on_table1() {
        let rel = table1();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn finds_constants_at_level_one() {
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["c", "1"] as &[&str], &["c", "2"]],
        )
        .unwrap();
        let fds = discover(&rel);
        assert!(fds.contains(&Fd::new(
            AttrSet::empty(),
            rel.schema().attr("A").unwrap()
        )));
    }

    #[test]
    fn key_pruning_emits_key_dependencies() {
        // A is a key; A -> B and A -> C must be emitted despite pruning.
        let rel = Relation::from_rows(
            ["A", "B", "C"],
            [
                &["1", "x", "p"] as &[&str],
                &["2", "x", "q"],
                &["3", "y", "p"],
            ],
        )
        .unwrap();
        let fds = discover(&rel);
        assert_eq!(fds, brute_force_fds(&rel));
        let schema = rel.schema();
        let a = schema.set(["A"]).unwrap();
        assert!(fds.contains(&Fd::new(a, schema.attr("B").unwrap())));
        assert!(fds.contains(&Fd::new(a, schema.attr("C").unwrap())));
    }

    #[test]
    fn single_row_relation_everything_holds() {
        let rel = Relation::from_rows(["A", "B"], [&["x", "y"] as &[&str]]).unwrap();
        let fds = discover(&rel);
        assert_eq!(fds, brute_force_fds(&rel));
        // ∅ -> A and ∅ -> B.
        assert_eq!(fds.len(), 2);
        assert!(fds.iter().all(|f| f.lhs.is_empty()));
    }

    #[test]
    fn approx_at_kappa_one_matches_exact_discovery() {
        for rel in [table1(), ofd_core::table1_updated()] {
            assert_eq!(discover_approx(&rel, 1.0), discover(&rel));
        }
    }

    #[test]
    fn approx_boundary_support_uses_integer_threshold() {
        // One antecedent class of 10 rows: 8 share the majority consequent
        // value, 2 deviate — support is exactly 8/10.
        let rows: Vec<[&str; 2]> = vec![
            ["k", "good"],
            ["k", "good"],
            ["k", "good"],
            ["k", "good"],
            ["k", "good"],
            ["k", "good"],
            ["k", "good"],
            ["k", "good"],
            ["k", "bad1"],
            ["k", "bad2"],
        ];
        let mut b = Relation::builder(ofd_core::Schema::new(["X", "A"]).unwrap());
        for r in &rows {
            b.push_row(r.iter().copied()).unwrap();
        }
        let rel = b.finish();
        let a = rel.schema().attr("A").unwrap();
        let has_a = |kappa: f64| discover_approx(&rel, kappa).iter().any(|f| f.rhs == a);
        assert!(has_a(0.8), "8/10 must satisfy κ = 0.8 exactly");
        assert!(
            !has_a(0.8 + 1e-13),
            "⌈(0.8 + ε)·10⌉ = 9 > 8: the old float-epsilon compare would wrongly accept"
        );
        assert!(!has_a(0.9));
    }

    #[test]
    fn approx_output_is_minimal_and_monotone_in_kappa() {
        let rel = table1();
        let loose = discover_approx(&rel, 0.8);
        let tight = discover_approx(&rel, 1.0);
        for f in &loose {
            for g in &loose {
                if f.rhs == g.rhs {
                    assert!(
                        !f.lhs.is_proper_subset(g.lhs),
                        "{} subsumes {}",
                        f.display(rel.schema()),
                        g.display(rel.schema())
                    );
                }
            }
        }
        // Every exact FD is covered by an approximate one with lhs ⊆ its own.
        for t in &tight {
            assert!(
                loose.iter().any(|l| l.rhs == t.rhs && l.lhs.is_subset(t.lhs)),
                "{} lost at κ = 0.8",
                t.display(rel.schema())
            );
        }
    }

    #[test]
    fn instrumented_run_counts_nodes_and_products() {
        let rel = table1();
        let obs = Obs::enabled();
        let p = discover_with(&rel, &ExecGuard::unlimited(), &obs);
        assert_eq!(p.value, discover(&rel));
        let snap = obs.snapshot();
        assert!(snap.counter("baseline.tane.node_visits").unwrap_or(0) > 0);
        assert!(snap.counter("baseline.tane.partition_products").unwrap_or(0) > 0);
        assert!(snap.counter_sum("guard.interrupt.").eq(&0));
    }
}
