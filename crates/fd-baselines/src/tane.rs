//! TANE (Huhtala et al., 1999): level-wise lattice FD discovery with
//! partition refinement, RHS⁺ candidate pruning and key pruning.
//!
//! This is the strongest of the lattice baselines and the closest relative
//! of FastOFD — the paper reports FastOFD at ~1.8× TANE's runtime due to
//! ontology verification (Exp-1).

use std::collections::HashMap;

use ofd_core::{AttrId, AttrSet, ExecGuard, Fd, Partial, ProductScratch, Relation, StrippedPartition};

use crate::common::sort_fds;

struct Node {
    attrs: AttrSet,
    c_plus: AttrSet,
    partition: StrippedPartition,
}

/// Error measure `||Π*|| − |Π*|`; two partitions induce the same refinement
/// on the consequent iff the antecedent's and the joined error agree.
fn err(p: &StrippedPartition) -> usize {
    p.tuple_count() - p.class_count()
}

/// Runs TANE, returning the minimal non-trivial FDs of `rel`.
pub fn discover(rel: &Relation) -> Vec<Fd> {
    discover_guarded(rel, &ExecGuard::unlimited()).value
}

/// [`discover`] with an execution guard, probed once per lattice node.
///
/// On interrupt the result is a *sound prefix* of the full output: every
/// emitted FD was individually verified by partition-error equality (or, for
/// key emissions, certified by the virtual-C⁺ minimality test against fully
/// completed lower levels), and the emission sequence is deterministic, so
/// the partial set is always a subset of what the uninterrupted run returns.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let n = schema.len();
    let all = schema.all();
    let mut fds: Vec<Fd> = Vec::new();
    let mut scratch = ProductScratch::default();

    let mut prev: Vec<Node> = vec![Node {
        attrs: AttrSet::empty(),
        c_plus: all,
        partition: StrippedPartition::of(rel, AttrSet::empty()),
    }];
    let mut prev_index: HashMap<u64, usize> =
        std::iter::once((AttrSet::empty().bits(), 0)).collect();
    // Final C⁺ value of every node ever processed (including pruned ones),
    // so the key-pruning step can resolve C⁺ of nodes absent from the
    // current level by intersecting ancestors (TANE §4.4).
    let mut history: HashMap<u64, AttrSet> =
        std::iter::once((AttrSet::empty().bits(), all)).collect();

    'levels: for level in 1..=n {
        if guard.check().is_err() {
            break;
        }
        // Generate level nodes (all parents must exist — key/e  mpty pruning
        // may have removed them, in which case the child is dead too).
        let mut current: Vec<Node> = if level == 1 {
            schema
                .attrs()
                .map(|a| Node {
                    attrs: AttrSet::single(a),
                    c_plus: all,
                    partition: StrippedPartition::of_attr(rel, a),
                })
                .collect()
        } else {
            generate_next(&prev, &prev_index, &mut scratch, guard)
        };
        if current.is_empty() {
            break;
        }

        // C⁺(X) = ⋂_{A ∈ X} C⁺(X \ A).
        for node in &mut current {
            let mut cp = all;
            for (_, parent) in node.attrs.parents() {
                match prev_index.get(&parent.bits()) {
                    Some(&pi) => cp = cp.intersect(prev[pi].c_plus),
                    None => cp = AttrSet::empty(),
                }
            }
            node.c_plus = cp;
        }

        // compute_dependencies.
        for node in &mut current {
            if guard.check().is_err() {
                break 'levels;
            }
            let cands = node.attrs.intersect(node.c_plus);
            for a in cands.iter() {
                let lhs = node.attrs.without(a);
                let Some(&pi) = prev_index.get(&lhs.bits()) else {
                    continue;
                };
                if err(&prev[pi].partition) == err(&node.partition) {
                    fds.push(Fd::new(lhs, a));
                    node.c_plus.remove(a);
                    // TANE's extra pruning rule (sound for FDs, not OFDs):
                    // remove every B ∈ R \ X from C⁺(X).
                    node.c_plus = node.c_plus.minus(all.minus(node.attrs));
                }
            }
        }

        // Record final C⁺ values before pruning.
        for node in &current {
            history.insert(node.attrs.bits(), node.c_plus);
        }

        // prune: drop empty-C⁺ nodes; key nodes emit their remaining
        // dependencies and are dropped.
        let mut virtual_cache: HashMap<u64, AttrSet> = HashMap::new();
        let key_emissions: Vec<Fd> = current
            .iter()
            .filter(|node| node.partition.is_superkey() && !node.c_plus.is_empty())
            .flat_map(|node| {
                let x = node.attrs;
                node.c_plus
                    .minus(x)
                    .iter()
                    .filter(|&a| {
                        // A ∈ ⋂_{B ∈ X} C⁺(X ∪ {A} \ {B}); siblings missing
                        // from the lattice get their C⁺ from ancestors.
                        x.iter().all(|b| {
                            let sibling = x.with(a).without(b);
                            virtual_cplus(sibling, all, &history, &mut virtual_cache)
                                .contains(a)
                        })
                    })
                    .map(move |a| Fd::new(x, a))
                    .collect::<Vec<_>>()
            })
            .collect();
        fds.extend(key_emissions);
        current.retain(|node| !node.c_plus.is_empty() && !node.partition.is_superkey());

        prev_index = current
            .iter()
            .enumerate()
            .map(|(i, node)| (node.attrs.bits(), i))
            .collect();
        prev = current;
        if prev.is_empty() {
            break;
        }
    }

    sort_fds(&mut fds);
    fds.dedup();
    Partial::from_outcome(fds, guard.interrupt())
}

/// Once the guard trips (it is sticky) the partially generated level is
/// returned; the caller's next probe fails before any of its nodes are used
/// for emission, so a truncated level never produces output.
fn generate_next(
    prev: &[Node],
    prev_index: &HashMap<u64, usize>,
    scratch: &mut ProductScratch,
    guard: &ExecGuard,
) -> Vec<Node> {
    let mut order: Vec<usize> = (0..prev.len()).collect();
    order.sort_by_key(|&i| {
        let attrs: Vec<u16> = prev[i].attrs.iter().map(|a| a.index() as u16).collect();
        attrs
    });
    let mut out = Vec::new();
    let mut block_start = 0;
    while block_start < order.len() {
        let head = prev[order[block_start]].attrs;
        let head_prefix = head.without(last_attr(head));
        let mut block_end = block_start + 1;
        while block_end < order.len() {
            let cur = prev[order[block_end]].attrs;
            if cur.without(last_attr(cur)) != head_prefix {
                break;
            }
            block_end += 1;
        }
        for i in block_start..block_end {
            for j in (i + 1)..block_end {
                if guard.check().is_err() {
                    return out;
                }
                let a = &prev[order[i]];
                let b = &prev[order[j]];
                let attrs = a.attrs.union(b.attrs);
                if !attrs
                    .parents()
                    .all(|(_, p)| prev_index.contains_key(&p.bits()))
                {
                    continue;
                }
                out.push(Node {
                    attrs,
                    c_plus: AttrSet::empty(),
                    partition: a.partition.product_with_scratch(&b.partition, scratch),
                });
            }
        }
        block_start = block_end;
    }
    out
}

fn last_attr(set: AttrSet) -> AttrId {
    set.iter().last().expect("non-empty node")
}

/// C⁺ of a (possibly never-materialized) node: its recorded value when
/// available, otherwise the intersection of its parents' virtual C⁺ values
/// (bottoming out at the level-0 node, which is always in `history`).
fn virtual_cplus(
    attrs: AttrSet,
    all: AttrSet,
    history: &HashMap<u64, AttrSet>,
    cache: &mut HashMap<u64, AttrSet>,
) -> AttrSet {
    if let Some(&v) = history.get(&attrs.bits()) {
        return v;
    }
    if let Some(&v) = cache.get(&attrs.bits()) {
        return v;
    }
    let mut cp = all;
    for (_, parent) in attrs.parents() {
        cp = cp.intersect(virtual_cplus(parent, all, history, cache));
        if cp.is_empty() {
            break;
        }
    }
    cache.insert(attrs.bits(), cp);
    cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::brute_force_fds;
    use ofd_core::table1;

    #[test]
    fn matches_brute_force_on_table1() {
        let rel = table1();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn finds_constants_at_level_one() {
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["c", "1"] as &[&str], &["c", "2"]],
        )
        .unwrap();
        let fds = discover(&rel);
        assert!(fds.contains(&Fd::new(
            AttrSet::empty(),
            rel.schema().attr("A").unwrap()
        )));
    }

    #[test]
    fn key_pruning_emits_key_dependencies() {
        // A is a key; A -> B and A -> C must be emitted despite pruning.
        let rel = Relation::from_rows(
            ["A", "B", "C"],
            [
                &["1", "x", "p"] as &[&str],
                &["2", "x", "q"],
                &["3", "y", "p"],
            ],
        )
        .unwrap();
        let fds = discover(&rel);
        assert_eq!(fds, brute_force_fds(&rel));
        let schema = rel.schema();
        let a = schema.set(["A"]).unwrap();
        assert!(fds.contains(&Fd::new(a, schema.attr("B").unwrap())));
        assert!(fds.contains(&Fd::new(a, schema.attr("C").unwrap())));
    }

    #[test]
    fn single_row_relation_everything_holds() {
        let rel = Relation::from_rows(["A", "B"], [&["x", "y"] as &[&str]]).unwrap();
        let fds = discover(&rel);
        assert_eq!(fds, brute_force_fds(&rel));
        // ∅ -> A and ∅ -> B.
        assert_eq!(fds.len(), 2);
        assert!(fds.iter().all(|f| f.lhs.is_empty()));
    }
}
