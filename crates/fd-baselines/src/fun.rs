//! FUN (Novelli & Cicchetti, 2001): FD discovery over *free sets* —
//! attribute sets none of whose proper subsets has the same cardinality
//! (number of distinct projections).
//!
//! Freeness is anti-monotone, so the free sets form a downward-closed
//! level-wise search space; `X → A` holds iff `|Π_X| = |Π_{X∪A}|`, and
//! minimal FD antecedents are always free sets.

use ofd_core::FxHashMap;

use ofd_core::{
    AttrId, AttrSet, ExecGuard, Fd, Obs, Partial, ProductScratch, Relation, StrippedPartition,
};

use crate::common::{record_interrupt, sort_fds};

struct Node {
    attrs: AttrSet,
    partition: StrippedPartition,
    card: usize,
}

fn card_of(rel: &Relation, p: &StrippedPartition) -> usize {
    p.class_count() + (rel.n_rows() - p.tuple_count())
}

/// Runs FUN, returning the minimal non-trivial FDs of `rel`.
pub fn discover(rel: &Relation) -> Vec<Fd> {
    discover_guarded(rel, &ExecGuard::unlimited()).value
}

/// [`discover`] with an execution guard, probed once per free-set node
/// (emission and generation).
///
/// On interrupt the result is a *sound prefix*: each emission is verified by
/// cardinality equality against the data, and because free sets are visited
/// level-by-level (antecedent sizes never decrease), `push_if_minimal` can
/// never retro-actively drop an already-emitted FD — so the partial list is
/// a subset of the uninterrupted output.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_with(rel, guard, &Obs::disabled())
}

/// [`discover_guarded`] with an observability handle: records
/// `baseline.fun.node_visits` (free-set nodes whose candidates were probed)
/// and `baseline.fun.partition_products` (partition products for both
/// probes and next-level generation), plus labelled guard interrupts.
pub fn discover_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let n = schema.len();
    let n_rows = rel.n_rows();
    let mut scratch = ProductScratch::default();
    let mut fds: Vec<Fd> = Vec::new();
    let mut node_visits: u64 = 0;
    let mut products: u64 = 0;

    // Single-attribute partitions (reused to extend candidates by one
    // attribute when probing X → A).
    let single: Vec<StrippedPartition> = schema
        .attrs()
        .map(|a| StrippedPartition::of_attr(rel, a))
        .collect();
    let single_card: Vec<usize> = single.iter().map(|p| card_of(rel, p)).collect();

    // Level 0: the empty set. Its cardinality is 1 (0 for an empty
    // relation); columns matching it are constants, giving ∅ → A.
    let card0 = usize::from(n_rows > 0);
    for a in schema.attrs() {
        if single_card[a.index()] == card0 {
            fds.push(Fd::new(AttrSet::empty(), a));
        }
    }

    // Level 1: free singletons — {A} is free iff card({A}) > card(∅).
    let mut prev: Vec<Node> = schema
        .attrs()
        .filter(|a| single_card[a.index()] > card0)
        .map(|a| Node {
            attrs: AttrSet::single(a),
            partition: single[a.index()].clone(),
            card: single_card[a.index()],
        })
        .collect();
    // Cardinalities of all known free sets (for freeness tests).
    let mut card_by_set: FxHashMap<u64, usize> = std::iter::once((0u64, card0)).collect();
    for node in &prev {
        card_by_set.insert(node.attrs.bits(), node.card);
    }

    'levels: for _level in 1..=n {
        // Emit FDs from the current free sets: X → A iff card(X∪A)=card(X).
        for node in &prev {
            if guard.check().is_err() {
                break 'levels;
            }
            node_visits += 1;
            if node.card == n_rows {
                // X is a key: X → A for all A ∉ X; supersets are non-free.
                for a in schema.all().minus(node.attrs).iter() {
                    push_if_minimal(&mut fds, Fd::new(node.attrs, a));
                }
                continue;
            }
            for a in schema.all().minus(node.attrs).iter() {
                products += 1;
                let joined = node
                    .partition
                    .product_with_scratch(&single[a.index()], &mut scratch);
                if card_of(rel, &joined) == node.card {
                    push_if_minimal(&mut fds, Fd::new(node.attrs, a));
                }
            }
        }

        // Generate next level of free sets.
        let prev_index: FxHashMap<u64, usize> = prev
            .iter()
            .enumerate()
            .map(|(i, node)| (node.attrs.bits(), i))
            .collect();
        let mut next: Vec<Node> = Vec::new();
        let mut order: Vec<usize> = (0..prev.len()).collect();
        order.sort_by_key(|&i| {
            let attrs: Vec<u16> = prev[i].attrs.iter().map(|x| x.index() as u16).collect();
            attrs
        });
        let mut block_start = 0;
        while block_start < order.len() {
            let head = prev[order[block_start]].attrs;
            let head_prefix = head.without(last_attr(head));
            let mut block_end = block_start + 1;
            while block_end < order.len() {
                let cur = prev[order[block_end]].attrs;
                if cur.without(last_attr(cur)) != head_prefix {
                    break;
                }
                block_end += 1;
            }
            for i in block_start..block_end {
                for j in (i + 1)..block_end {
                    if guard.check().is_err() {
                        break 'levels;
                    }
                    let a = &prev[order[i]];
                    let b = &prev[order[j]];
                    let attrs = a.attrs.union(b.attrs);
                    if !attrs
                        .parents()
                        .all(|(_, p)| prev_index.contains_key(&p.bits()))
                    {
                        continue; // some subset is non-free ⇒ X is non-free
                    }
                    products += 1;
                    let partition = a.partition.product_with_scratch(&b.partition, &mut scratch);
                    let card = card_of(rel, &partition);
                    // Free iff strictly finer than every parent.
                    let free = attrs.parents().all(|(_, p)| {
                        card_by_set
                            .get(&p.bits())
                            .is_some_and(|&pc| pc < card)
                    });
                    if free {
                        card_by_set.insert(attrs.bits(), card);
                        next.push(Node {
                            attrs,
                            partition,
                            card,
                        });
                    }
                }
            }
            block_start = block_end;
        }
        if next.is_empty() {
            break;
        }
        prev = next;
    }

    sort_fds(&mut fds);
    fds.dedup();
    obs.add("baseline.fun.node_visits", node_visits);
    obs.add("baseline.fun.partition_products", products);
    record_interrupt(obs, guard);
    Partial::from_outcome(fds, guard.interrupt())
}

fn push_if_minimal(fds: &mut Vec<Fd>, fd: Fd) {
    if fds
        .iter()
        .any(|g| g.rhs == fd.rhs && g.lhs.is_subset(fd.lhs))
    {
        return;
    }
    fds.retain(|g| !(g.rhs == fd.rhs && fd.lhs.is_proper_subset(g.lhs)));
    fds.push(fd);
}

fn last_attr(set: AttrSet) -> AttrId {
    set.iter().last().expect("non-empty node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::brute_force_fds;
    use ofd_core::table1;

    #[test]
    fn matches_brute_force_on_table1() {
        let rel = table1();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn constants_and_keys() {
        let rel = Relation::from_rows(
            ["K", "C", "V"],
            [
                &["1", "c", "x"] as &[&str],
                &["2", "c", "y"],
                &["3", "c", "x"],
            ],
        )
        .unwrap();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn equal_cardinality_columns_are_bidirectional() {
        // A and B are renamings of each other: A -> B and B -> A.
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["1", "x"] as &[&str], &["2", "y"], &["1", "x"]],
        )
        .unwrap();
        let fds = discover(&rel);
        assert_eq!(fds, brute_force_fds(&rel));
        assert_eq!(fds.len(), 2);
    }
}
