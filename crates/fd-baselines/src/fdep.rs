//! FDep (Flach & Savnik, 1999): negative-cover construction from pairwise
//! tuple comparisons, followed by positive-cover specialization.
//!
//! The negative cover records maximal non-FDs; the positive cover starts at
//! the most general hypotheses `∅ → A` and is specialized against every
//! violation. Memory-hungry on large inputs (the paper reports it exceeding
//! main memory in Exp-1/Exp-2).

use ofd_core::{AttrSet, ExecGuard, Fd, Obs, Partial, Relation};

use crate::common::{agree_sets_guarded, maximal_sets, record_interrupt, sort_fds};

/// Runs FDep, returning the minimal non-trivial FDs of `rel`.
pub fn discover(rel: &Relation) -> Vec<Fd> {
    discover_guarded(rel, &ExecGuard::unlimited()).value
}

/// [`discover`] with an execution guard, probed throughout the quadratic
/// agree-set scan and once per specialization step.
///
/// A consequent's hypotheses are sound only after specialization against
/// *every* violation, so an interrupt mid-specialization discards that
/// consequent entirely; fully processed consequents contribute exactly what
/// the full run emits for them — a sound subset.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_with(rel, guard, &Obs::disabled())
}

/// [`discover_guarded`] with an observability handle: records
/// `baseline.fdep.node_visits` (specialization steps — one per violation
/// applied to a consequent's hypothesis cover, plus one per consequent;
/// FDep builds no partitions), plus labelled guard interrupts.
pub fn discover_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let mut node_visits: u64 = 0;
    let Some(ag) = agree_sets_guarded(rel, guard) else {
        record_interrupt(obs, guard);
        return Partial::from_outcome(Vec::new(), guard.interrupt());
    };
    let ag: Vec<AttrSet> = ag.into_iter().collect();
    let mut fds = Vec::new();

    'attrs: for a in schema.attrs() {
        if guard.check().is_err() {
            break;
        }
        node_visits += 1;
        let universe = schema.all().without(a);
        // Negative cover for A: maximal agree sets S with A ∉ S — every
        // X ⊆ S is a violated antecedent for X → A.
        let violations = maximal_sets(ag.iter().copied().filter(|s| !s.contains(a)));

        // Positive cover: start with the most general hypothesis ∅ → A and
        // specialize against each violation.
        let mut cover: Vec<AttrSet> = vec![AttrSet::empty()];
        for s in &violations {
            if guard.check().is_err() {
                // A partially specialized cover still contains violated
                // hypotheses — drop this consequent.
                break 'attrs;
            }
            node_visits += 1;
            let mut next: Vec<AttrSet> = Vec::new();
            let mut to_specialize: Vec<AttrSet> = Vec::new();
            for x in cover {
                if x.is_subset(*s) {
                    to_specialize.push(x);
                } else {
                    next.push(x);
                }
            }
            for x in to_specialize {
                for b in universe.minus(*s).iter() {
                    let candidate = x.with(b);
                    // Keep only most-general (minimal) hypotheses.
                    if !next.iter().any(|y| y.is_subset(candidate)) {
                        next.retain(|y| !candidate.is_subset(*y));
                        next.push(candidate);
                    }
                }
            }
            cover = next;
        }
        for lhs in cover {
            fds.push(Fd::new(lhs, a));
        }
    }

    sort_fds(&mut fds);
    obs.add("baseline.fdep.node_visits", node_visits);
    record_interrupt(obs, guard);
    Partial::from_outcome(fds, guard.interrupt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::brute_force_fds;
    use ofd_core::table1;

    #[test]
    fn matches_brute_force_on_table1() {
        let rel = table1();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn specialization_handles_overlapping_violations() {
        let rel = Relation::from_rows(
            ["A", "B", "C"],
            [
                &["1", "x", "p"] as &[&str],
                &["1", "x", "q"],
                &["2", "x", "p"],
                &["2", "y", "q"],
            ],
        )
        .unwrap();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn all_identical_rows_make_everything_constant() {
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["x", "y"] as &[&str], &["x", "y"], &["x", "y"]],
        )
        .unwrap();
        let fds = discover(&rel);
        assert_eq!(fds.len(), 2);
        assert!(fds.iter().all(|f| f.lhs.is_empty()));
        assert_eq!(fds, brute_force_fds(&rel));
    }
}
