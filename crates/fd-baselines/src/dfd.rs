//! DFD (Abedjan, Schulze & Naumann, 2014): per-consequent lattice traversal
//! with random walks, node classification into minimal dependencies and
//! maximal non-dependencies, and dualization to find unclassified nodes.
//!
//! For each consequent `A`, the walk maintains `MinDeps` and `MaxNonDeps`;
//! candidate nodes are the minimal transversals of the complements of the
//! known maximal non-dependencies (any true minimal dependency is such a
//! transversal). Unclassified candidates trigger a random walk: downward
//! from dependencies to a minimal one, upward from non-dependencies to a
//! maximal one. The process terminates exactly when every candidate is a
//! confirmed minimal dependency — sound and complete irrespective of the
//! random choices, which only affect how quickly the lattice is covered.

use ofd_core::FxHashMap;

use ofd_core::{AttrId, AttrSet, ExecGuard, Fd, Obs, Partial, Relation, StrippedPartition};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::common::{minimal_transversals, record_interrupt, sort_fds};

/// Runs DFD with a fixed seed (deterministic output ordering).
pub fn discover(rel: &Relation) -> Vec<Fd> {
    discover_seeded(rel, 0xDFD)
}

/// Runs DFD with a caller-chosen random seed.
pub fn discover_seeded(rel: &Relation, seed: u64) -> Vec<Fd> {
    discover_seeded_guarded(rel, seed, &ExecGuard::unlimited()).value
}

/// [`discover`] with an execution guard, probed once per candidate node.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_seeded_guarded(rel, 0xDFD, guard)
}

/// [`discover_seeded`] with an execution guard.
///
/// On interrupt the result is a sound subset of the full output: every
/// entry of `MinDeps` was certified minimal by `walk_down` (which verifies
/// all children), so even a half-explored consequent contributes only true
/// minimal dependencies — and the full run finds *all* of them.
pub fn discover_seeded_guarded(
    rel: &Relation,
    seed: u64,
    guard: &ExecGuard,
) -> Partial<Vec<Fd>> {
    discover_seeded_with(rel, seed, guard, &Obs::disabled())
}

/// [`discover_guarded`] with an observability handle (default seed).
pub fn discover_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    discover_seeded_with(rel, 0xDFD, guard, obs)
}

/// [`discover_seeded_guarded`] with an observability handle: records
/// `baseline.dfd.node_visits` (lattice nodes classified by a dependency
/// check, including random-walk steps) and
/// `baseline.dfd.partition_products` (stripped-partition products in the
/// incremental partition cache), plus labelled guard interrupts.
pub fn discover_seeded_with(
    rel: &Relation,
    seed: u64,
    guard: &ExecGuard,
    obs: &Obs,
) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fds: Vec<Fd> = Vec::new();
    let mut node_visits: u64 = 0;
    let mut products: u64 = 0;

    for a in schema.attrs() {
        let universe = schema.all().without(a);
        let mut ctx = RhsContext {
            rel,
            rhs: a,
            partitions: FxHashMap::default(),
            visits: 0,
            products: 0,
        };
        let mut min_deps: Vec<AttrSet> = Vec::new();
        let mut max_non_deps: Vec<AttrSet> = Vec::new();

        'walks: loop {
            if guard.check().is_err() {
                break;
            }
            let family: Vec<AttrSet> =
                max_non_deps.iter().map(|m| universe.minus(*m)).collect();
            let candidates = minimal_transversals(universe, &family);
            let mut progress = false;
            for c in candidates {
                if guard.check().is_err() {
                    break 'walks;
                }
                if min_deps.contains(&c) {
                    continue;
                }
                progress = true;
                if ctx.is_dep(c) {
                    let m = walk_down(&mut ctx, c, &mut rng);
                    min_deps.push(m);
                } else {
                    let m = walk_up(&mut ctx, c, universe, &mut rng);
                    max_non_deps.retain(|existing| !existing.is_subset(m));
                    max_non_deps.push(m);
                }
            }
            if !progress {
                break;
            }
        }
        fds.extend(min_deps.into_iter().map(|lhs| Fd::new(lhs, a)));
        node_visits += ctx.visits;
        products += ctx.products;
        if guard.is_tripped() {
            break;
        }
    }

    sort_fds(&mut fds);
    obs.add("baseline.dfd.node_visits", node_visits);
    obs.add("baseline.dfd.partition_products", products);
    record_interrupt(obs, guard);
    Partial::from_outcome(fds, guard.interrupt())
}

struct RhsContext<'a> {
    rel: &'a Relation,
    rhs: AttrId,
    /// Stripped partitions by attribute-set bits, built incrementally via
    /// partition products (as in the original DFD implementation).
    partitions: FxHashMap<u64, StrippedPartition>,
    /// Dependency checks performed (one per classified lattice node).
    visits: u64,
    /// Partition products performed by the incremental cache.
    products: u64,
}

impl RhsContext<'_> {
    fn partition(&mut self, attrs: AttrSet) -> &StrippedPartition {
        if !self.partitions.contains_key(&attrs.bits()) {
            let p = match attrs.len() {
                0 => StrippedPartition::of(self.rel, AttrSet::empty()),
                1 => StrippedPartition::of_attr(self.rel, attrs.first().expect("singleton")),
                _ => {
                    let a = attrs.first().expect("non-empty");
                    let rest = attrs.without(a);
                    let single = self.partition(AttrSet::single(a)).clone();
                    let rest_p = self.partition(rest).clone();
                    self.products += 1;
                    rest_p.product(&single)
                }
            };
            self.partitions.insert(attrs.bits(), p);
        }
        &self.partitions[&attrs.bits()]
    }

    fn err(&mut self, attrs: AttrSet) -> usize {
        let p = self.partition(attrs);
        p.tuple_count() - p.class_count()
    }

    /// `X → A` holds iff adding `A` to `X` does not refine the partition.
    fn is_dep(&mut self, x: AttrSet) -> bool {
        self.visits += 1;
        self.err(x) == self.err(x.with(self.rhs))
    }
}

/// Descends from a dependency to a minimal one, trying children in random
/// order; verifying every child certifies minimality.
fn walk_down(ctx: &mut RhsContext<'_>, start: AttrSet, rng: &mut StdRng) -> AttrSet {
    let mut current = start;
    loop {
        let mut attrs: Vec<AttrId> = current.iter().collect();
        attrs.shuffle(rng);
        let mut descended = false;
        for b in attrs {
            let child = current.without(b);
            if ctx.is_dep(child) {
                current = child;
                descended = true;
                break;
            }
        }
        if !descended {
            return current;
        }
    }
}

/// Ascends from a non-dependency to a maximal one within `universe`.
fn walk_up(
    ctx: &mut RhsContext<'_>,
    start: AttrSet,
    universe: AttrSet,
    rng: &mut StdRng,
) -> AttrSet {
    let mut current = start;
    loop {
        let mut attrs: Vec<AttrId> = universe.minus(current).iter().collect();
        attrs.shuffle(rng);
        let mut ascended = false;
        for b in attrs {
            let parent = current.with(b);
            if !ctx.is_dep(parent) {
                current = parent;
                ascended = true;
                break;
            }
        }
        if !ascended {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::brute_force_fds;
    use ofd_core::table1;

    #[test]
    fn matches_brute_force_on_table1() {
        let rel = table1();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn deterministic_for_a_seed_and_seed_independent_results() {
        let rel = table1();
        let a = discover_seeded(&rel, 1);
        let b = discover_seeded(&rel, 1);
        assert_eq!(a, b);
        // Different seeds change the walk, never the answer.
        for seed in [2, 42, 31337] {
            assert_eq!(discover_seeded(&rel, seed), a, "seed {seed}");
        }
    }

    #[test]
    fn constants_and_undetermined_attributes() {
        let rel = Relation::from_rows(
            ["A", "B", "C"],
            [
                &["c", "1", "x"] as &[&str],
                &["c", "2", "x"],
                &["c", "3", "y"],
            ],
        )
        .unwrap();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn single_attribute_relation() {
        let rel = Relation::from_rows(["A"], [&["x"] as &[&str], &["y"]]).unwrap();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
        assert!(discover(&rel).is_empty());
    }
}
