//! FastFDs (Wyss, Giannella & Robertson, 2001): difference-set based FD
//! discovery via depth-first search for minimal covers.
//!
//! Quadratic in tuples (pairwise difference sets), which is why the paper's
//! Exp-1 shows it timing out beyond ~100K records — a behaviour this
//! implementation reproduces by construction.

use ofd_core::FxHashSet;

use ofd_core::{AttrId, AttrSet, ExecGuard, Fd, Obs, Partial, Relation};

use crate::common::{difference_sets_guarded, minimal_sets, record_interrupt, sort_fds};

/// Runs FastFDs, returning the minimal non-trivial FDs of `rel`.
pub fn discover(rel: &Relation) -> Vec<Fd> {
    discover_guarded(rel, &ExecGuard::unlimited()).value
}

/// [`discover`] with an execution guard, probed throughout the quadratic
/// difference-set scan and once per DFS node.
///
/// An interrupt during the difference-set scan yields the empty set (a
/// partial family misses difference sets, so a "cover" of it may not be a
/// real FD). After the scan, interrupts only truncate the cover search:
/// every collected cover hits *all* of `D_A` and `is_minimal_cover` checks
/// against all of `D_A`, so each emitted FD is valid and minimal even when
/// the DFS was cut short — a subset of the full output.
pub fn discover_guarded(rel: &Relation, guard: &ExecGuard) -> Partial<Vec<Fd>> {
    discover_with(rel, guard, &Obs::disabled())
}

/// [`discover_guarded`] with an observability handle: records
/// `baseline.fastfds.node_visits` (DFS nodes expanded during the cover
/// search, plus one per consequent; FastFDs builds no partitions), plus
/// labelled guard interrupts.
pub fn discover_with(rel: &Relation, guard: &ExecGuard, obs: &Obs) -> Partial<Vec<Fd>> {
    let schema = rel.schema();
    let all = schema.all();
    let mut node_visits: u64 = 0;
    let Some(diffs) = difference_sets_guarded(rel, guard) else {
        record_interrupt(obs, guard);
        return Partial::from_outcome(Vec::new(), guard.interrupt());
    };
    let diffs: Vec<AttrSet> = diffs.into_iter().collect();
    let mut fds: Vec<Fd> = Vec::new();

    for a in schema.attrs() {
        if guard.check().is_err() {
            break;
        }
        node_visits += 1;
        // D_A: difference sets containing A, with A removed.
        let d_a: Vec<AttrSet> = diffs
            .iter()
            .filter(|d| d.contains(a))
            .map(|d| d.without(a))
            .collect();
        if d_a.iter().any(|d| d.is_empty()) {
            // Some tuple pair differs *only* on A: no FD with consequent A.
            continue;
        }
        if d_a.is_empty() {
            // No pair ever differs on A: A is constant.
            fds.push(Fd::new(AttrSet::empty(), a));
            continue;
        }
        // Minimize per consequent: covering the minimal difference sets
        // covers them all.
        let d_a = minimal_sets(d_a);
        let mut covers: FxHashSet<AttrSet> = FxHashSet::default();
        let order = attribute_order(&d_a, all.without(a));
        dfs(&d_a, AttrSet::empty(), &order, 0, &mut covers, guard, &mut node_visits);
        for x in covers {
            if is_minimal_cover(x, &d_a) {
                fds.push(Fd::new(x, a));
            }
        }
    }

    sort_fds(&mut fds);
    obs.add("baseline.fastfds.node_visits", node_visits);
    record_interrupt(obs, guard);
    Partial::from_outcome(fds, guard.interrupt())
}

/// Orders candidate attributes by descending frequency in the difference
/// sets (the paper's greedy heuristic), ties by index.
fn attribute_order(d_a: &[AttrSet], universe: AttrSet) -> Vec<AttrId> {
    let mut counted: Vec<(usize, AttrId)> = universe
        .iter()
        .map(|attr| {
            let freq = d_a.iter().filter(|d| d.contains(attr)).count();
            (freq, attr)
        })
        .collect();
    counted.sort_by_key(|&(freq, attr)| (std::cmp::Reverse(freq), attr));
    counted.into_iter().map(|(_, a)| a).collect()
}

/// Depth-first search over attribute orderings, accumulating covers.
/// Interrupts truncate the search; the covers already collected stay valid.
#[allow(clippy::too_many_arguments)]
fn dfs(
    d_a: &[AttrSet],
    current: AttrSet,
    order: &[AttrId],
    next: usize,
    covers: &mut FxHashSet<AttrSet>,
    guard: &ExecGuard,
    visits: &mut u64,
) {
    if guard.check().is_err() {
        return;
    }
    *visits += 1;
    if d_a.iter().all(|d| !d.is_disjoint(current)) {
        covers.insert(current);
        return;
    }
    for (i, &attr) in order.iter().enumerate().skip(next) {
        // Only branch on attributes that still cover something uncovered.
        let useful = d_a
            .iter()
            .any(|d| d.is_disjoint(current) && d.contains(attr));
        if useful {
            dfs(d_a, current.with(attr), order, i + 1, covers, guard, visits);
        }
    }
}

/// A cover is minimal when removing any attribute leaves some difference set
/// uncovered.
fn is_minimal_cover(x: AttrSet, d_a: &[AttrSet]) -> bool {
    x.iter().all(|attr| {
        let reduced = x.without(attr);
        d_a.iter().any(|d| d.is_disjoint(reduced))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::brute_force_fds;
    use ofd_core::table1;

    #[test]
    fn matches_brute_force_on_table1() {
        let rel = table1();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }

    #[test]
    fn constant_column_yields_empty_lhs() {
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["c", "1"] as &[&str], &["c", "2"]],
        )
        .unwrap();
        let fds = discover(&rel);
        assert!(fds.contains(&Fd::new(AttrSet::empty(), rel.schema().attr("A").unwrap())));
        assert_eq!(fds, brute_force_fds(&rel));
    }

    #[test]
    fn no_fd_when_pair_differs_only_on_consequent() {
        // Two rows equal on A, differing on B: nothing determines B.
        let rel = Relation::from_rows(
            ["A", "B"],
            [&["x", "1"] as &[&str], &["x", "2"]],
        )
        .unwrap();
        let fds = discover(&rel);
        let b = rel.schema().attr("B").unwrap();
        assert!(fds.iter().all(|f| f.rhs != b));
        assert_eq!(fds, brute_force_fds(&rel));
    }

    #[test]
    fn unmaximized_difference_sets_still_give_minimal_covers() {
        let rel = Relation::from_rows(
            ["A", "B", "C", "D"],
            [
                &["1", "a", "x", "p"] as &[&str],
                &["1", "b", "y", "p"],
                &["2", "a", "y", "q"],
                &["2", "b", "x", "q"],
            ],
        )
        .unwrap();
        assert_eq!(discover(&rel), brute_force_fds(&rel));
    }
}
