//! Criterion benches for the discovery side of the paper's evaluation:
//! partition primitives, OFD verification, FastOFD vs the lattice FD
//! baselines (Exp-1's fixed-N column) and the optimization ablation
//! (Exp-3). Sizes follow `OFD_BENCH_SCALE`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fd_baselines::Algorithm;
use ofd_bench::Params;
use ofd_core::{Ofd, StrippedPartition, Validator};
use ofd_datagen::{clinical, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};

fn config(p: &Params, n_rows: usize, n_attrs: usize) -> PresetConfig {
    PresetConfig {
        n_rows,
        n_attrs,
        n_senses: p.lambda_default,
        synonyms: 3,
        n_ofds: p.sigma_default,
        ambiguity: 0.2,
        seed: p.seed,
    }
}

fn bench_partitions(c: &mut Criterion) {
    let p = Params::from_env();
    let ds = clinical(&config(&p, p.n(4_000), 15));
    let rel = &ds.clean;
    let schema = rel.schema();
    let cc = schema.set(["CC"]).unwrap();
    let symp = schema.set(["SYMP"]).unwrap();
    let p_cc = StrippedPartition::of(rel, cc);
    let p_symp = StrippedPartition::of(rel, symp);

    let mut g = c.benchmark_group("partitions");
    g.bench_function("stripped_of_single_attr", |b| {
        b.iter(|| StrippedPartition::of(black_box(rel), black_box(cc)))
    });
    g.bench_function("product", |b| {
        b.iter(|| black_box(&p_cc).product(black_box(&p_symp)))
    });
    g.finish();
}

fn bench_validation(c: &mut Criterion) {
    let p = Params::from_env();
    let ds = clinical(&config(&p, p.n(4_000), 15));
    let rel = &ds.clean;
    let validator = Validator::new(rel, &ds.full_ontology);
    let ofd = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
    let inh = Ofd::inheritance(ofd.lhs, ofd.rhs, 1);

    let mut g = c.benchmark_group("validation");
    g.bench_function("synonym_ofd", |b| b.iter(|| validator.check(black_box(&ofd))));
    g.bench_function("inheritance_ofd", |b| b.iter(|| validator.check(black_box(&inh))));
    g.bench_function("plain_fd", |b| b.iter(|| validator.check_fd(black_box(&ofd.as_fd()))));
    g.finish();
}

/// Exp-1's fixed-N comparison: FastOFD vs the linear-scaling baselines.
fn bench_discovery_algorithms(c: &mut Criterion) {
    let p = Params::from_env();
    let ds = clinical(&config(&p, p.n(2_000), 8));
    let rel = &ds.clean;

    let mut g = c.benchmark_group("discovery_exp1_point");
    g.sample_size(10);
    g.bench_function("FastOFD", |b| {
        b.iter(|| FastOfd::new(black_box(rel), black_box(&ds.full_ontology)).run())
    });
    for alg in [Algorithm::Tane, Algorithm::Fun, Algorithm::FdMine, Algorithm::Dfd] {
        g.bench_with_input(BenchmarkId::new("baseline", alg.name()), &alg, |b, alg| {
            b.iter(|| alg.discover(black_box(rel)))
        });
    }
    g.finish();
}

/// Exp-3's ablation: FastOFD with and without the pruning rules.
fn bench_discovery_opts(c: &mut Criterion) {
    let p = Params::from_env();
    let ds = clinical(&config(&p, p.n(2_000), 8));
    let rel = &ds.clean;

    let mut g = c.benchmark_group("discovery_exp3_opts");
    g.sample_size(10);
    g.bench_function("all_opts", |b| {
        b.iter(|| FastOfd::new(black_box(rel), &ds.full_ontology).run())
    });
    g.bench_function("no_opts", |b| {
        b.iter(|| {
            FastOfd::new(black_box(rel), &ds.full_ontology)
                .options(DiscoveryOptions::new().no_optimizations())
                .run()
        })
    });
    g.finish();
}

/// Ablation for the verification-parallelism design choice (DESIGN.md):
/// identical output, wall-clock scales with cores when verification
/// dominates.
fn bench_discovery_parallel(c: &mut Criterion) {
    let p = Params::from_env();
    let ds = clinical(&config(&p, p.n(4_000), 10));
    let rel = &ds.clean;
    let mut g = c.benchmark_group("discovery_parallelism");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    FastOfd::new(black_box(rel), &ds.full_ontology)
                        .options(DiscoveryOptions::new().threads(threads))
                        .run()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_partitions,
    bench_validation,
    bench_discovery_algorithms,
    bench_discovery_opts,
    bench_discovery_parallel
);
criterion_main!(benches);
