//! Criterion benches for the cleaning side: sense assignment (Exp-6/8's
//! timing core), beam search (Exp-9), the full OFDClean pipeline
//! (Table 8's timing core), the holistic baseline (Exp-14) and the EMD
//! primitive.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use ofd_bench::Params;
use ofd_clean::{
    assign_all, beam_search, build_classes, emd, holo_clean, ofd_clean, Histogram, HoloConfig,
    OfdCleanConfig, SenseView,
};
use ofd_core::SenseIndex;
use ofd_datagen::{kiva, Dataset, PresetConfig};

fn dirty_kiva(p: &Params, n_rows: usize) -> Dataset {
    let mut ds = kiva(&PresetConfig {
        n_rows,
        n_attrs: 15,
        n_senses: p.lambda_default,
        synonyms: 3,
        n_ofds: p.sigma_default,
        ambiguity: 0.2,
        seed: p.seed,
    });
    ds.degrade_ontology(p.inc_default / 100.0, p.seed);
    ds.inject_errors(p.err_default / 100.0, p.seed);
    ds
}

fn bench_sense_assignment(c: &mut Criterion) {
    let p = Params::from_env();
    let ds = dirty_kiva(&p, p.n(2_000));
    let classes = build_classes(&ds.relation, &ds.ofds);
    let index = SenseIndex::synonym(&ds.relation, &ds.ontology);
    let overlay = HashSet::new();
    let view = SenseView {
        base: &index,
        overlay: &overlay,
    };
    c.bench_function("sense_assignment_exp8_point", |b| {
        b.iter(|| assign_all(black_box(&classes), view))
    });
}

fn bench_beam_search(c: &mut Criterion) {
    let p = Params::from_env();
    let ds = dirty_kiva(&p, p.n(2_000));
    let classes = build_classes(&ds.relation, &ds.ofds);
    let index = SenseIndex::synonym(&ds.relation, &ds.ontology);
    let overlay = HashSet::new();
    let view = SenseView {
        base: &index,
        overlay: &overlay,
    };
    let assignment = assign_all(&classes, view);
    let mut g = c.benchmark_group("beam_search_exp9");
    g.sample_size(10);
    for b_width in [1usize, 3, 5] {
        g.bench_function(format!("b{b_width}"), |bench| {
            bench.iter(|| {
                beam_search(
                    black_box(&ds.relation),
                    &ds.ofds,
                    &classes,
                    &assignment,
                    &index,
                    Some(b_width),
                    None,
                )
            })
        });
    }
    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let p = Params::from_env();
    let ds = dirty_kiva(&p, p.n(1_000));
    let config = OfdCleanConfig::default();
    let mut g = c.benchmark_group("pipeline_table8_point");
    g.sample_size(10);
    g.bench_function("ofdclean", |b| {
        b.iter(|| ofd_clean(black_box(&ds.relation), &ds.ontology, &ds.ofds, &config))
    });
    g.bench_function("holo_baseline", |b| {
        b.iter(|| {
            holo_clean(
                black_box(&ds.relation),
                &ds.ontology,
                &ds.ofds,
                &HoloConfig::default(),
            )
        })
    });
    g.finish();
}

fn bench_emd(c: &mut Criterion) {
    let mut pa: Histogram<u32> = Histogram::new();
    let mut qa: Histogram<u32> = Histogram::new();
    for i in 0..64u32 {
        pa.add(i, (i % 7) as f64);
        qa.add(i, ((i + 3) % 5) as f64);
    }
    c.bench_function("emd_64_tokens", |b| {
        b.iter(|| emd(black_box(&pa), black_box(&qa)))
    });
}

/// Ablation: incremental violation tracking vs full revalidation after a
/// single cell update (DESIGN.md's interactive-cleaning design choice).
fn bench_incremental_checker(c: &mut Criterion) {
    use ofd_core::{IncrementalChecker, Validator};
    let p = Params::from_env();
    let ds = dirty_kiva(&p, p.n(2_000));
    let index = SenseIndex::synonym(&ds.relation, &ds.ontology);
    let mut g = c.benchmark_group("incremental_vs_full");
    g.bench_function("full_revalidation", |b| {
        let validator = Validator::new(&ds.relation, &ds.ontology);
        b.iter(|| {
            ds.ofds
                .iter()
                .map(|o| validator.check(black_box(o)).violation_count())
                .sum::<usize>()
        })
    });
    g.bench_function("incremental_update", |b| {
        let mut rel = ds.relation.clone();
        let attr = ds.ofds[0].rhs;
        let mut checker = IncrementalChecker::new(&rel, &index, &ds.ofds);
        let v_a = rel.value(0, attr);
        let v_b = rel.value(1, attr);
        let mut flip = false;
        b.iter(|| {
            let (old, new) = if flip { (v_b, v_a) } else { (v_a, v_b) };
            rel.set_id(0, attr, new).expect("in bounds");
            checker
                .apply_update(black_box(&index), 0, attr, old, new)
                .expect("flip is in sync");
            flip = !flip;
            checker.violation_count()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sense_assignment,
    bench_beam_search,
    bench_full_pipeline,
    bench_emd,
    bench_incremental_checker
);
criterion_main!(benches);
