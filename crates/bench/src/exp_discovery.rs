//! Discovery experiments: Exp-1 … Exp-5 (Figures 8a–8c plus the lattice
//! compactness and false-positive analyses of §7.2/§7.3).

use fd_baselines::Algorithm;
use ofd_core::{Fd, Validator};
use ofd_datagen::{clinical, generate, AttrRole, PresetConfig, SynthSpec};
use ofd_discovery::{DiscoveryOptions, FastOfd};
use serde_json::{json, Value};

use crate::params::Params;
use crate::report::{timed, ExpResult};

fn preset(p: &Params, n_rows: usize, n_attrs: usize) -> PresetConfig {
    PresetConfig {
        n_rows,
        n_attrs,
        n_senses: p.lambda_default,
        synonyms: 3,
        n_ofds: p.sigma_default,
        ambiguity: 0.2,
        seed: p.seed,
    }
}

/// Exp-1 (Fig. 8a): scalability in the number of tuples — FastOFD vs the
/// seven FD discovery baselines.
pub fn exp1(p: &Params) -> ExpResult {
    let mut result = ExpResult::new(
        "exp1",
        "Fig. 8a — scalability in N (runtime, seconds)",
        json!({"n_attrs": p.attrs_discovery, "sweep": p.scaled_n_sweep(),
               "quadratic_cap": p.n(p.quadratic_cap)}),
        &[
            "N", "FastOFD", "TANE", "FUN", "FDMine", "DFD", "DepMiner", "FastFDs", "FDep",
            "HyFD*",
        ],
    );
    let cap = p.n(p.quadratic_cap);
    for n in p.scaled_n_sweep() {
        let ds = clinical(&preset(p, n, p.attrs_discovery));
        let (fast, t_fast) = timed(|| {
            FastOfd::new(&ds.clean, &ds.full_ontology)
                .options(DiscoveryOptions::new().guard(p.guard.clone()).obs(p.obs.clone()))
                .run()
        });
        let mut row = vec![json!(n), json!(t_fast)];
        let mut fd_counts = Vec::new();
        for alg in Algorithm::ALL {
            if alg.is_quadratic() && n > cap {
                // Reproduces the paper terminating the pairwise algorithms
                // on large inputs.
                row.push(Value::Null);
                continue;
            }
            let (fds, secs) = timed(|| alg.discover_with(&ds.clean, &p.guard, &p.obs).value);
            fd_counts.push((alg.name(), fds.len()));
            row.push(json!(secs));
        }
        // Beyond the paper's seven: HyFD as the modern reference point.
        let (_, t_hyfd) = timed(|| fd_baselines::hyfd::discover_with(&ds.clean, &p.guard, &p.obs));
        row.push(json!(t_hyfd));
        result.push_row(row);
        if n == *p.scaled_n_sweep().last().unwrap() {
            result.note(format!(
                "at N={n}: FastOFD found {} OFDs vs {} plain FDs (TANE)",
                fast.len(),
                fd_counts
                    .iter()
                    .find(|(a, _)| *a == "TANE")
                    .map(|(_, c)| *c)
                    .unwrap_or(0)
            ));
            // The paper's "FDMine returns ~24x non-minimal dependencies".
            let raw = fd_baselines::fdmine::discover_raw(&ds.clean).len();
            let minimal = fd_baselines::fdmine::discover(&ds.clean).len().max(1);
            result.note(format!(
                "FDMine raw output: {} dependencies vs {} minimal ({:.1}x — paper reports ~24x on clinical data)",
                raw,
                minimal,
                raw as f64 / minimal as f64
            ));
        }
    }
    result.note("expected shape: lattice algorithms linear in N; FastOFD ≈ 1.5–2.5× TANE; quadratic baselines capped; HyFD* is a beyond-paper reference");
    if let Some(rss) = crate::report::peak_rss_mib() {
        result.note(format!(
            "peak RSS after the sweep: {rss:.0} MiB (the paper reports FDep/FDMine exceeding main memory at scale)"
        ));
    }
    result
}

/// Exp-2 (Fig. 8b): scalability in the number of attributes.
pub fn exp2(p: &Params) -> ExpResult {
    let n = p.n(2_000);
    let mut result = ExpResult::new(
        "exp2",
        "Fig. 8b — scalability in n (runtime, seconds)",
        json!({"n_rows": n, "sweep": p.attr_sweep.clone()}),
        &[
            "n", "FastOFD", "TANE", "FUN", "FDMine", "DFD", "DepMiner", "FastFDs", "FDep",
        ],
    );
    for &n_attrs in &p.attr_sweep {
        let ds = clinical(&preset(p, n, n_attrs));
        let (fast, t_fast) = timed(|| {
            FastOfd::new(&ds.clean, &ds.full_ontology)
                .options(DiscoveryOptions::new().guard(p.guard.clone()).obs(p.obs.clone()))
                .run()
        });
        let mut row = vec![json!(n_attrs), json!(t_fast)];
        let mut n_fds = 0;
        for alg in Algorithm::ALL {
            let (fds, secs) = timed(|| alg.discover_with(&ds.clean, &p.guard, &p.obs).value);
            if alg == Algorithm::Tane {
                n_fds = fds.len();
            }
            row.push(json!(secs));
        }
        result.push_row(row);
        if n_attrs == *p.attr_sweep.last().unwrap() {
            // The paper's "3.1× more dependencies" counts synonym plus
            // inheritance OFDs (both subsume FDs).
            let inh = FastOfd::new(&ds.clean, &ds.full_ontology)
                .options(
                    DiscoveryOptions::new().kind(ofd_core::OfdKind::Inheritance { theta: 1 }),
                )
                .run();
            let total = fast.len() + inh.len();
            let ratio = if n_fds > 0 {
                total as f64 / n_fds as f64
            } else {
                f64::INFINITY
            };
            result.note(format!(
                "at n={n_attrs}: {} synonym + {} inheritance OFDs vs {} plain FDs ({ratio:.1}x dependencies)",
                fast.len(),
                inh.len(),
                n_fds
            ));
        }
    }
    result.note("expected shape: exponential growth in n for every algorithm");
    result
}

/// The Exp-3 dataset: half the dependents are multi-sense OFDs, half are
/// pure FDs (the paper "modified the data to include five FDs").
fn exp3_dataset(p: &Params, n_rows: usize) -> (ofd_datagen::Dataset, Vec<Fd>) {
    let dep = |det: &[&str], entities: usize, senses: usize, synonyms: usize| AttrRole::Dependent {
        determinants: det.iter().map(|s| (*s).to_owned()).collect(),
        entities,
        senses,
        synonyms,
    };
    let spec = SynthSpec {
        attrs: vec![
            ("ID".into(), AttrRole::Key),
            ("CC".into(), AttrRole::Driver { domain: 30 }),
            ("SYMP".into(), AttrRole::Driver { domain: 40 }),
            ("CTRY".into(), dep(&["CC"], 30, p.lambda_default, 3)),
            ("TEST".into(), AttrRole::Driver { domain: 10 }),
            ("DIAG".into(), dep(&["SYMP", "TEST"], 60, p.lambda_default, 3)),
            ("MED".into(), dep(&["CC", "SYMP"], 80, p.lambda_default, 3)),
            // Pure-FD dependents (single sense, no synonym variation):
            ("STATUS".into(), dep(&["TEST"], 10, 1, 0)),
            ("PHASE_GRP".into(), dep(&["SYMP"], 12, 1, 0)),
            ("OUTCOME".into(), dep(&["CC", "TEST"], 25, 1, 0)),
        ],
        n_rows,
        seed: p.seed,
        extra_ofds: 0,
        ambiguity: 0.2,
        family_size: 1,
        family_mix: 0.0,
    };
    let ds = generate(&spec);
    let schema = ds.clean.schema();
    let known: Vec<Fd> = [
        (vec!["TEST"], "STATUS"),
        (vec!["SYMP"], "PHASE_GRP"),
        (vec!["CC", "TEST"], "OUTCOME"),
    ]
    .into_iter()
    .map(|(lhs, rhs)| {
        Fd::new(
            schema.set(lhs.iter().copied()).expect("known attr"),
            schema.attr(rhs).expect("known attr"),
        )
    })
    .collect();
    // Sanity: the known FDs must hold exactly.
    let v = Validator::new(&ds.clean, &ds.full_ontology);
    for fd in &known {
        assert!(v.check_fd(fd), "planted FD must hold");
    }
    (ds, known)
}

/// Exp-3 (Fig. 8c): benefit of each optimization.
pub fn exp3(p: &Params) -> ExpResult {
    let n = p.n(10_000);
    let (ds, known) = exp3_dataset(p, n);
    let mut result = ExpResult::new(
        "exp3",
        "Fig. 8c — optimization benefits (runtime, seconds)",
        json!({"n_rows": n, "n_attrs": 10, "known_fds": known.len()}),
        &["variant", "secs", "candidates", "verified", "speedup_vs_none"],
    );
    let variants: Vec<(&str, DiscoveryOptions)> = vec![
        ("no-opts", DiscoveryOptions::new().no_optimizations()),
        ("opt2", DiscoveryOptions::new().opt2(true).opt3(false).opt4(false)),
        ("opt3", DiscoveryOptions::new().opt2(false).opt3(true).opt4(false)),
        (
            "opt4",
            DiscoveryOptions::new()
                .opt2(false)
                .opt3(false)
                .opt4(true)
                .known_fds(known.clone()),
        ),
        (
            "all",
            DiscoveryOptions::new().opt4(true).known_fds(known.clone()),
        ),
    ];
    let mut base_secs = None;
    let mut reference: Option<usize> = None;
    const REPS: usize = 3;
    for (name, opts) in variants {
        // Minimum over repetitions: robust against scheduler noise.
        let mut best_secs = f64::INFINITY;
        let mut out = None;
        for _ in 0..REPS {
            let (run, secs) = timed(|| {
                FastOfd::new(&ds.clean, &ds.full_ontology)
                    .options(opts.clone().guard(p.guard.clone()).obs(p.obs.clone()))
                    .run()
            });
            best_secs = best_secs.min(secs);
            out = Some(run);
        }
        let out = out.expect("at least one repetition");
        // An interrupted variant may legitimately return a shorter Σ.
        match reference {
            None if out.complete => reference = Some(out.len()),
            Some(r) if out.complete => {
                assert_eq!(r, out.len(), "variants must agree on output")
            }
            _ => {}
        }
        if name == "no-opts" {
            base_secs = Some(best_secs);
        }
        let speedup = base_secs.map(|b| b / best_secs).unwrap_or(1.0);
        result.push_row(vec![
            json!(name),
            json!(best_secs),
            json!(out.stats.total_candidates()),
            json!(out.stats.total_verified()),
            json!(speedup),
        ]);
    }
    result.note("expected shape: Opt-2 largest win, Opt-4 next, Opt-3 smallest; combined best (paper: 31%/27%/14%, ~24% together)");
    result
}

/// Exp-4: efficiency over lattice levels (the 61% / 25% compactness claim).
pub fn exp4(p: &Params) -> ExpResult {
    let n = p.n(4_000);
    let n_attrs = 12usize.min(*p.attr_sweep.last().unwrap_or(&12));
    let ds = clinical(&preset(p, n, n_attrs));
    let out = FastOfd::new(&ds.clean, &ds.full_ontology)
        .options(DiscoveryOptions::new().guard(p.guard.clone()).obs(p.obs.clone()))
        .run();
    let mut result = ExpResult::new(
        "exp4",
        "§7.2 — OFDs and time per lattice level",
        json!({"n_rows": n, "n_attrs": n_attrs}),
        &["level", "nodes", "candidates", "found", "secs"],
    );
    for l in &out.stats.levels {
        result.push_row(vec![
            json!(l.level),
            json!(l.nodes),
            json!(l.candidates),
            json!(l.found),
            json!(l.elapsed.as_secs_f64()),
        ]);
    }
    let k = 6.min(n_attrs);
    result.note(format!(
        "{:.0}% of OFDs found in the first {k} levels using {:.0}% of the time (paper: 61% / 25%)",
        100.0 * out.stats.found_in_first_levels(k),
        100.0 * out.stats.time_in_first_levels(k),
    ));
    result
}

/// Exp-5: false-positive data-quality errors eliminated by OFDs vs FDs.
pub fn exp5(p: &Params) -> ExpResult {
    let n = p.n(4_000);
    let n_attrs = 12usize.min(*p.attr_sweep.last().unwrap_or(&12));
    let ds = clinical(&preset(p, n, n_attrs));
    let out = FastOfd::new(&ds.clean, &ds.full_ontology)
        .options(DiscoveryOptions::new().guard(p.guard.clone()).obs(p.obs.clone()))
        .run();
    let validator = Validator::new(&ds.clean, &ds.full_ontology);
    let mut result = ExpResult::new(
        "exp5",
        "§7.3 — tuples with syntactically non-equal (synonym) consequents per level",
        json!({"n_rows": n, "n_attrs": n_attrs}),
        &["level", "ofds", "fp_saved_pct"],
    );
    let max_level = out.ofds.iter().map(|d| d.level).max().unwrap_or(0);
    for level in 1..=max_level {
        let at_level: Vec<_> = out.ofds.iter().filter(|d| d.level == level).collect();
        if at_level.is_empty() {
            continue;
        }
        let mut nonequal = 0usize;
        let mut total = 0usize;
        for d in &at_level {
            let val = validator.check(&d.ofd);
            for outcome in &val.outcomes {
                total += outcome.size;
                // An OFD-satisfied class whose witness is a sense (not a
                // literal) carries syntactically non-equal synonyms — a
                // false positive under plain-FD cleaning.
                if outcome.satisfied()
                    && matches!(outcome.witness, Some(ofd_core::Witness::Sense(_)))
                {
                    nonequal += outcome.size;
                }
            }
        }
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * nonequal as f64 / total as f64
        };
        result.push_row(vec![json!(level), json!(at_level.len()), json!(pct)]);
    }
    result.note("expected shape: large share (paper: 75% at level 1) of flagged tuples are synonym false positives, declining with level");
    result
}
