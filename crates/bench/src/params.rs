//! Experiment parameters (the paper's Table 5) and size scaling.
//!
//! Paper defaults (bold in Table 5): |λ| = 4, err% = 3, N = 0.4 M, b = 3,
//! inc% = 4, |Σ| = 10, τ = 65 %. Absolute tuple counts are scaled down by
//! default so `exp all` completes on a laptop; set `OFD_BENCH_SCALE` (a
//! float multiplier) or pass `--full` to approach paper scale. Shapes —
//! who wins, the growth curves, where crossovers fall — are invariant to
//! the scale.

/// Sweep values and defaults for every experiment.
#[derive(Debug, Clone)]
pub struct Params {
    /// Multiplier applied to every tuple count.
    pub scale: f64,
    /// Senses per entity sweep (Table 5: 2, **4**, 6, 8, 10).
    pub lambda_sweep: Vec<usize>,
    /// Default |λ|.
    pub lambda_default: usize,
    /// Error-rate sweep in percent (Table 5: **3**, 6, 9, 12, 15).
    pub err_sweep: Vec<f64>,
    /// Default err%.
    pub err_default: f64,
    /// Beam-size sweep (Table 5: 1, 2, **3**, 4, 5).
    pub beam_sweep: Vec<usize>,
    /// Default beam size.
    pub beam_default: usize,
    /// Incompleteness sweep in percent (Table 5: 2, **4**, 6, 8, 10).
    pub inc_sweep: Vec<f64>,
    /// Default inc%.
    pub inc_default: f64,
    /// |Σ| sweep (Table 5: **10**, 20, 30, 40, 50).
    pub sigma_sweep: Vec<usize>,
    /// Default |Σ|.
    pub sigma_default: usize,
    /// Data-repair budget τ (fraction of |I|; §7: 65%).
    pub tau: f64,
    /// Base tuple-count sweep for scalability experiments (pre-scaling).
    pub n_sweep: Vec<usize>,
    /// Base tuple count for non-scalability experiments (pre-scaling).
    pub n_default: usize,
    /// Attribute-count sweep for Exp-2.
    pub attr_sweep: Vec<usize>,
    /// Default schema width for discovery experiments.
    pub attrs_discovery: usize,
    /// Tuple cap for the quadratic baselines (DepMiner/FastFDs/FDep) —
    /// beyond it they are reported as terminated, as in the paper.
    pub quadratic_cap: usize,
    /// Random seed.
    pub seed: u64,
    /// Execution guard shared by every engine invocation of the run
    /// (`--timeout-ms` / `--max-work` / `--max-rss-mib` on the `exp`
    /// binary). The guard is sticky: once it trips, the remaining
    /// experiments return immediately and their reports are annotated
    /// INCOMPLETE.
    pub guard: ofd_core::ExecGuard,
    /// Observability handle shared by every engine invocation of the run
    /// (`--metrics-out` / `--trace` on the `exp` binary). Disabled by
    /// default, in which case every instrumentation call is a no-op.
    pub obs: ofd_core::Obs,
}

impl Params {
    /// Parameters honouring `OFD_BENCH_SCALE` (default 1.0).
    pub fn from_env() -> Params {
        let scale = std::env::var("OFD_BENCH_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        Params::with_scale(scale)
    }

    /// Parameters at a given scale.
    pub fn with_scale(scale: f64) -> Params {
        Params {
            scale,
            lambda_sweep: vec![2, 4, 6, 8, 10],
            lambda_default: 4,
            err_sweep: vec![3.0, 6.0, 9.0, 12.0, 15.0],
            err_default: 3.0,
            beam_sweep: vec![1, 2, 3, 4, 5],
            beam_default: 3,
            inc_sweep: vec![2.0, 4.0, 6.0, 8.0, 10.0],
            inc_default: 4.0,
            sigma_sweep: vec![10, 20, 30, 40, 50],
            sigma_default: 10,
            tau: 0.65,
            n_sweep: vec![2_000, 4_000, 6_000, 8_000, 10_000],
            n_default: 4_000,
            attr_sweep: vec![4, 6, 8, 10, 12],
            attrs_discovery: 8,
            quadratic_cap: 4_000,
            seed: 42,
            guard: ofd_core::ExecGuard::unlimited(),
            obs: ofd_core::Obs::disabled(),
        }
    }

    /// Paper-scale parameters (`--full`): N up to 1 M tuples, 15 attributes.
    pub fn full() -> Params {
        Params {
            n_sweep: vec![200_000, 400_000, 600_000, 800_000, 1_000_000],
            n_default: 400_000,
            attr_sweep: vec![4, 6, 8, 10, 12, 15],
            attrs_discovery: 15,
            quadratic_cap: 100_000,
            ..Params::with_scale(1.0)
        }
    }

    /// Applies the scale to a tuple count (minimum 200).
    pub fn n(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(200)
    }

    /// The scaled N sweep.
    pub fn scaled_n_sweep(&self) -> Vec<usize> {
        self.n_sweep.iter().map(|&n| self.n(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table5() {
        let p = Params::with_scale(1.0);
        assert_eq!(p.lambda_default, 4);
        assert_eq!(p.err_default, 3.0);
        assert_eq!(p.beam_default, 3);
        assert_eq!(p.inc_default, 4.0);
        assert_eq!(p.sigma_default, 10);
        assert_eq!(p.tau, 0.65);
        assert_eq!(p.lambda_sweep, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn scaling_applies_with_floor() {
        let p = Params::with_scale(0.01);
        assert_eq!(p.n(2_000), 200, "floored at 200");
        let p2 = Params::with_scale(2.0);
        assert_eq!(p2.n(2_000), 4_000);
    }

    #[test]
    fn full_params_reach_paper_scale() {
        let p = Params::full();
        assert_eq!(*p.n_sweep.last().unwrap(), 1_000_000);
        assert_eq!(*p.attr_sweep.last().unwrap(), 15);
    }
}
